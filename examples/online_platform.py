#!/usr/bin/env python
"""Online platform operation: Poisson arrivals, windowed matching, queueing.

Extends the paper's one-shot rounds to the continuous operating loop a real
exchange platform runs: jobs arrive over time, the platform batches each
decision window, matches the batch with its trained predictors, and hands
tasks to clusters that may still be busy with earlier batches.

The script contrasts the two-stage baseline with MFCP under increasing
load, reporting waiting time, flow time, success rate and fleet
utilization.

Run:  python examples/online_platform.py
"""

from __future__ import annotations

from repro.clusters import make_setting
from repro.methods import MFCP, MFCPConfig, FitContext, MatchSpec, TSM
from repro.sim import OnlineConfig, PoissonArrivals, simulate_online
from repro.utils.tables import Table
from repro.workloads import TaskPool


def main() -> None:
    pool = TaskPool(90, rng=37)
    clusters = make_setting("A")
    train_tasks, _ = pool.split(0.6, rng=2)
    spec = MatchSpec()
    ctx = FitContext.build(clusters, train_tasks, spec, rng=3)

    methods = [
        TSM().fit(ctx),
        MFCP("analytic", MFCPConfig(epochs=40)).fit(ctx),
    ]
    print(f"Platform: {[c.name for c in clusters]}, "
          f"{len(train_tasks)} profiled jobs, 12h horizon\n")

    table = Table(
        ["Load (jobs/h)", "Method", "Jobs", "Wait (h)", "Flow (h)", "Success", "Util"],
        title="Online operation under increasing load",
    )
    for rate in (3.0, 8.0, 15.0):
        for method in methods:
            stats = simulate_online(
                clusters, method, PoissonArrivals(pool, rate), spec,
                OnlineConfig(window_hours=0.5, horizon_hours=12.0), rng=11,
            )
            table.add_row([
                f"{rate:g}", method.name, stats.jobs_arrived,
                f"{stats.mean_wait_hours:.2f}", f"{stats.mean_flow_hours:.2f}",
                f"{stats.success_rate:.0%}", f"{stats.utilization:.0%}",
            ])
    print(table.render())
    print("\nUnder load, better matching translates into shorter queues: the "
          "regret-trained predictor keeps waiting times lower at high rates.")


if __name__ == "__main__":
    main()
