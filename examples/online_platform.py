#!/usr/bin/env python
"""Online platform operation: the serving layer end to end.

Drives :class:`repro.serve.Dispatcher` — the continuously operating
micro-batching matchmaker — through one simulated day of a computing
resource exchange platform:

1. train the two-stage predictor stack and register the checkpoint in a
   versioned :class:`~repro.serve.ModelRegistry`;
2. keep training (a "nightly retrain") and register version 2;
3. replay a diurnal arrival stream through the dispatcher with the
   warm-start solver cache, a mid-day cluster outage (dropout + rejoin,
   orphaned jobs re-queued), and a scheduled mid-run hot-swap to the
   retrained checkpoint;
4. report the serving stats: windows, shedding, re-queues, solver effort,
   warm-start cache hit rate, and p50/p95 assignment latency.

Run:  python examples/online_platform.py
"""

from __future__ import annotations

import tempfile

from repro.clusters import make_setting
from repro.matching.relaxed import SolverConfig
from repro.methods import FitContext, MatchSpec, TSM
from repro.predictors.training import TrainConfig
from repro.serve import (
    Dispatcher,
    DispatcherConfig,
    DiurnalLoad,
    ModelRegistry,
    Outage,
)
from repro.utils.rng import as_generator
from repro.workloads import TaskPool


def main() -> None:
    pool = TaskPool(64, rng=37)
    clusters = make_setting("A")
    train_tasks, _ = pool.split(0.6, rng=2)
    # Serving-grade solver: looser tolerance than the offline experiments
    # (the rounded assignment is stable long before the 1e-7 tail).
    spec = MatchSpec(solver=SolverConfig(tol=1e-4, max_iters=400))
    ctx = FitContext.build(clusters, train_tasks, spec, rng=3)

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(f"{tmp}/registry")

        print("== model registry ==")
        method = TSM(train_config=TrainConfig(epochs=60)).fit(ctx)
        registry.save(method, config=TrainConfig(epochs=60), tag="initial-fit")
        retrained = TSM(train_config=TrainConfig(epochs=180)).fit(ctx)
        info = registry.save(retrained, config=TrainConfig(epochs=180),
                             tag="nightly-retrain")
        for v in registry.versions():
            meta = registry.info(v).meta
            print(f"  {v}: tag={meta['tag']!r} "
                  f"params={meta['n_parameters']} sha={str(meta['git_sha'])[:8]}")

        # One simulated day of diurnal traffic: quiet nights, busy noons.
        load = DiurnalLoad(pool, peak_rate=90.0, trough_rate=15.0,
                           period_hours=24.0, phase=-0.25)
        events = load.draw(24.0, as_generator(11))

        # The first cluster drops out for two hours mid-day; its
        # in-flight jobs are orphaned and re-queued (zero tasks lost).
        outage = Outage(clusters[0].cluster_id, start=11.0, end=13.0)

        dispatcher = Dispatcher(
            clusters, method, spec,
            DispatcherConfig(max_batch=16, max_wait_hours=0.25,
                             queue_capacity=64),
            registry=registry,
            # Hot-swap to the retrained checkpoint before window 12
            # (~mid-morning) without stopping the loop.
            swap_schedule={12: info.version},
        )
        stats = dispatcher.run(events, rng=5, outages=[outage])

        print(f"\n== one day of serving ({len(events)} arrivals, "
              f"cluster {outage.cluster_id} down {outage.start:g}h-{outage.end:g}h, "
              f"hot-swap at window 12) ==")
        print("  " + stats.summary())
        pct = stats.latency_percentiles()
        print(f"  assignment latency: p50={pct['p50'] * 1e3:.1f}ms "
              f"p95={pct['p95'] * 1e3:.1f}ms")
        print(f"  solver: {stats.mean_solver_iterations:.0f} iterations/window "
              f"(warm-start cache hit rate "
              f"{stats.cache['hit_rate']:.0%}, model swaps: {stats.swaps})")
        assert stats.conserved, "serving must never lose a task"
        print("\nEvery arrival is accounted for: completed, shed under "
              "backpressure, or re-queued across the outage — none lost.")


if __name__ == "__main__":
    main()
