#!/usr/bin/env python
"""Closed-loop continual learning: drift → retrain → canary → hot-swap.

The batch reproduction answers "how good is predict-then-match with a
*frozen* predictor"; a real computing resource exchange platform never
gets to freeze anything.  This example runs the full closed loop from
DESIGN.md §12 on the typed :class:`repro.serve.ServeConfig` facade, in
two mirrored scenarios:

**Scenario 1 — recovery.**  The platform is deployed with a badly
undertrained predictor (one epoch — a stand-in for a stale or broken
deploy).  The retraining controller harvests execution labels from the
live stream into its replay buffer, refits candidates inside the event
loop on a cooperative step budget, shadow-evaluates each candidate
against the live model on held-out labels (time MSE, reliability
calibration, sampled Eq.-6 decision regret), and hot-swaps only the
candidates that pass the canary.  Served time-prediction error drops by
an order of magnitude, and every promotion is recorded in the
checkpoint registry's lineage.

**Scenario 2 — protection.**  The same platform deployed with a
*well*-trained predictor.  The controller still triggers refits, but
the candidates (fit on a few hundred online labels) cannot beat the
incumbent, so the canary gate rejects them: they are saved to the
registry for audit with tag ``canary-rejected`` but the live pointer
never moves and the dispatcher never swaps.  A closed loop that cannot
say "no" is a liability; this is the half that makes the automation
safe.

Both scenarios are deterministic (simulated time only) — re-running
this file reproduces the same versions, digests and swap windows.

Run:  python examples/continual_learning.py
"""

from __future__ import annotations

import tempfile

from repro.monitor import MonitorConfig
from repro.retrain import RetrainConfig
from repro.serve import ServeConfig, build_platform
from repro.utils.rng import as_generator

RETRAIN = RetrainConfig(
    trigger="periodic", period_windows=5, min_labels=24,
    min_cluster_labels=4, sample_size=128, epochs=8, mode="incremental",
    steps_per_window=64, canary_min_holdout=4, guard_windows=3,
    cooldown_windows=6)


def run_scenario(train_epochs: int, registry_root: str, horizon_hours: float):
    config = ServeConfig(
        pool_size=24, seed=0, train_epochs=train_epochs,
        solver_max_iters=300, max_batch=8,
        monitor=MonitorConfig(sample_every=5),
        retrain=RETRAIN, registry_root=registry_root,
    )
    platform = build_platform(config)
    events = platform.load("poisson", 30.0).draw(
        horizon_hours, as_generator(config.seed + 3))
    stats = platform.run(events)
    return platform, stats, events


def describe(platform, stats, events) -> None:
    controller, registry = platform.controller, platform.registry
    print(f"  {len(events)} arrivals, {stats.windows} windows, "
          f"{stats.swaps} hot-swap(s); buffer {controller.buffer.stats()}")
    for ev in controller.events:
        kind = ev["kind"]
        if kind == "triggered":
            print(f"  window {ev['window']:>3}: refit triggered ({ev['reason']}; "
                  f"{ev['n_train']} train / {ev['n_holdout']} holdout)")
        elif kind == "promoted":
            print(f"  window {ev['window']:>3}: canary PASS -> {ev['version']} "
                  f"promoted (parent {ev['parent']})")
        elif kind == "rejected":
            print(f"  window {ev['window']:>3}: canary FAIL -> {ev['version']} "
                  f"audited ({', '.join(ev['reasons'])}); live unchanged")
        elif kind == "guard_passed":
            print(f"  window {ev['window']:>3}: post-swap guard passed "
                  f"({ev['version']})")
        elif kind == "rollback":
            print(f"  window {ev['window']:>3}: guard degraded -> rollback "
                  f"{ev['from_version']} -> {ev['to_version']}")
    print(f"  registry: live={registry.live()} "
          f"lineage={' <- '.join(registry.lineage())}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        print("== scenario 1: undertrained deploy, closed loop recovers ==")
        platform, stats, events = run_scenario(
            train_epochs=1, registry_root=f"{tmp}/recovery",
            horizon_hours=12.0)
        describe(platform, stats, events)
        controller = platform.controller
        kinds = [ev["kind"] for ev in controller.events]
        assert "promoted" in kinds, "expected at least one canary pass"
        assert stats.swaps >= 1, "expected at least one applied hot-swap"
        first_swap = next(ev["window"] for ev in controller.events
                          if ev["kind"] == "promoted")
        pre = [m for w, m in controller.window_errors if w <= first_swap]
        post = [m for w, m in controller.window_errors if w > first_swap]
        pre_mse = sum(pre) / len(pre)
        post_mse = sum(post) / len(post)
        print(f"  served log-time MSE: {pre_mse:.3f} before first swap "
              f"-> {post_mse:.3f} after")
        assert post_mse < pre_mse, "retraining should reduce served error"

        print("\n== scenario 2: healthy deploy, canary gate protects it ==")
        platform, stats, events = run_scenario(
            train_epochs=120, registry_root=f"{tmp}/protection",
            horizon_hours=6.0)
        describe(platform, stats, events)
        controller, registry = platform.controller, platform.registry
        kinds = [ev["kind"] for ev in controller.events]
        assert "rejected" in kinds, "expected the canary to reject candidates"
        assert "promoted" not in kinds, "no candidate should beat the incumbent"
        assert stats.swaps == 0, "live model must stay untouched"
        assert registry.live() == "v0001", "live pointer must not move"
        rejected = [ev["version"] for ev in controller.events
                    if ev["kind"] == "rejected"]
        print(f"  {len(rejected)} candidate(s) rejected "
              f"({', '.join(rejected)}), live still {registry.live()}")

    print("\nThe same loop runs online via "
          "'repro serve run --retrain --registry DIR' and offline via "
          "'repro retrain --log RUN.jsonl --registry DIR'.")


if __name__ == "__main__":
    main()
