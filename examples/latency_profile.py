#!/usr/bin/env python
"""Where does a dispatch window's wall-clock latency go?

An exchange platform that misses its latency SLO needs to know *which
stage* to fix — batch formation, predictor forwards, the relaxed solve,
rounding, or observer overhead — not just that p95 moved.  This example
runs a two-shard profiled fleet and walks the whole observability plane
(DESIGN.md §14):

1. build two shard platforms from one :class:`repro.serve.ServeConfig`
   with ``profile=True`` (shards differ only in seed), each serving its
   stream under a shard-labeled JSONL recorder;
2. print shard 0's per-window latency budget — named stages must cover
   >= 95% of measured p95 end-to-end latency, the residual reported as
   ``unattributed``;
3. export the collapsed-stack flamegraph (speedscope / flamegraph.pl);
4. merge both shards' run logs losslessly into one fleet-level
   Prometheus snapshot — the ``shard`` label keeps every series
   distinct.

The profiler is a pure observer: the dispatch trace is byte-identical
with it on or off (latencies in the trace are simulated time).

Run:  python examples/latency_profile.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

from repro.monitor import prometheus_text
from repro.serve import ServeConfig, build_platform
from repro.telemetry import aggregate_runs, recording
from repro.utils.rng import as_generator

BASE = ServeConfig(pool_size=48, train_epochs=30, max_batch=12,
                   profile=True)
SHARDS = (0, 1)


def serve_shard(shard: int, out_dir: Path):
    """Serve one shard's stream under a shard-labeled recorder."""
    config = replace(BASE, seed=BASE.seed + shard)
    platform = build_platform(config)
    events = platform.load("poisson", 45.0).draw(
        3.0, as_generator(config.seed + 3))
    with recording("jsonl", run=f"shard-{shard}", out_dir=out_dir,
                   labels={"shard": str(shard)}):
        stats = platform.run(events)
    return platform, stats


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        out_dir = Path(tmp)
        platforms = {s: serve_shard(s, out_dir) for s in SHARDS}

        platform, stats = platforms[0]
        budget = stats.profile
        print(f"== shard 0 latency budget ({budget['windows']} windows, "
              f"coverage_p95 {100 * budget['coverage_p95']:.1f}%) ==")
        for path, s in budget["stages"].items():
            if ";" in path:
                continue  # depth-1 view; nested paths go to the flamegraph
            print(f"  {path:<10} total {s['total_s'] * 1e3:8.1f} ms  "
                  f"p95 {s['p95'] * 1e3:7.2f} ms  calls {s['calls']}")
        unattr = budget["unattributed"]
        print(f"  {'(unattr)':<10} total {unattr['total_s'] * 1e3:8.1f} ms")
        for name, s in budget["sim_stages"].items():
            print(f"  {name:<14} p95 {s['p95']:.3f} simulated hours "
                  f"(not wall-clock)")
        assert budget["coverage_p95"] >= 0.95, \
            "named stages must cover >= 95% of p95 end-to-end latency"

        flame = out_dir / "shard0_flame.txt"
        platform.profiler.write_flamegraph(flame)
        lines = flame.read_text().splitlines()
        print(f"\n== flamegraph ({len(lines)} collapsed stacks, load in "
              f"speedscope) ==")
        for line in lines[:4]:
            print(f"  {line}")

        logs = sorted(out_dir.glob("shard-*.jsonl"))
        merged = aggregate_runs(logs)
        text = prometheus_text(merged)
        shard_lines = [l for l in text.splitlines() if 'shard="' in l]
        print(f"\n== fleet-level merge of {len(logs)} shard logs "
              f"({len(shard_lines)} shard-labeled samples) ==")
        for line in shard_lines:
            if "windows" in line or "stage_total" in line:
                print(f"  {line}")

        # Lossless: every per-shard series survives the merge distinctly.
        for shard in SHARDS:
            assert any(f'shard="{shard}"' in l for l in shard_lines), \
                f"shard {shard}'s labeled series must survive the fleet merge"
        print("\nEvery shard's series survived the merge under its own "
              "label — aggregation loses nothing.")


if __name__ == "__main__":
    main()
