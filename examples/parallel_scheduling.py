#!/usr/bin/env python
"""Parallel task execution: the non-convex setting of paper §3.4 / §4.5.

Clusters run their assigned tasks concurrently; the realized batch window
is ``ζ(k) · Σt`` with ζ an exponential decay from 1 to 0.6.  This makes
the matching objective non-convex (Eq. 16), where only the zeroth-order
variant MFCP-FG applies among MFCP methods.

The script:

1. fits TSM and MFCP-FG under the parallel matching spec;
2. compares their matchings on several test rounds (regret vs oracle);
3. executes the winning matching on the discrete-event simulator in
   parallel mode, confirming the analytic batch-window model.

Run:  python examples/parallel_scheduling.py
"""

from __future__ import annotations

import numpy as np

from repro.clusters import make_setting
from repro.experiments import default_config, oracle_matching
from repro.matching import makespan
from repro.matching.speedup import ExponentialDecaySpeedup
from repro.methods import MFCP, MFCPConfig, FitContext, MatchSpec, TSM
from repro.sim import ExecutionConfig, simulate_matching
from repro.utils.tables import Table
from repro.workloads import TaskPool

ZETA = ExponentialDecaySpeedup(floor=0.6, rate=0.5)  # §4.5's curve


def main() -> None:
    pool = TaskPool(80, rng=23)
    clusters = make_setting("A")
    train_tasks, test_tasks = pool.split(0.7, rng=9)

    spec = MatchSpec(speedup=(ZETA,))  # shared scheduler on every cluster
    ctx = FitContext.build(clusters, train_tasks, spec, rng=10)
    tsm = TSM().fit(ctx)
    mfcp = MFCP("forward", MFCPConfig(epochs=40)).fit(ctx)
    print("Parallel-execution spec: ζ decays 1 → 0.6 with cluster load")
    print(f"ζ(1)={float(ZETA.value(np.array(1.0))):.2f}  "
          f"ζ(3)={float(ZETA.value(np.array(3.0))):.2f}  "
          f"ζ(8)={float(ZETA.value(np.array(8.0))):.2f}\n")

    config = default_config()
    rng = np.random.default_rng(12)
    table = Table(["Round", "Oracle h", "TSM regret", "MFCP-FG regret"],
                  title="Non-convex matching rounds (8 tasks each)")
    last = None
    for r in range(5):
        idx = rng.choice(len(test_tasks), 8, replace=False)
        tasks = [test_tasks[int(i)] for i in idx]
        T = np.stack([c.true_times(tasks) for c in clusters])
        A = np.stack([c.true_reliabilities(tasks) for c in clusters])
        problem = spec.build_problem(T, A)
        X_oracle = oracle_matching(problem, config)
        base = makespan(X_oracle, problem)
        row = [r + 1, f"{base:.2f}"]
        for method in (tsm, mfcp):
            X = method.decide(problem, tasks)
            row.append(f"{(makespan(X, problem) - base) / problem.N:+.4f}")
            last = (tasks, X, problem)
        table.add_row(row)
    print(table.render())

    # Execute the final MFCP-FG matching on the DES in parallel mode.
    tasks, X, problem = last
    result = simulate_matching(
        clusters, tasks, X, ExecutionConfig(mode="parallel", speedup=ZETA)
    )
    print(f"\nDES check: analytic ζ-makespan {makespan(X, problem):.3f}h vs "
          f"simulated {result.makespan:.3f}h "
          f"(match: {np.isclose(result.makespan, makespan(X, problem))})")


if __name__ == "__main__":
    main()
