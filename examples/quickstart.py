#!/usr/bin/env python
"""Quickstart: train a matching-focused predictor and compare it with the
classic predict-then-optimize pipeline on one allocation round.

This walks the library's core loop end to end:

1. build a task pool (synthetic CV/NLP training jobs) and a cluster triple;
2. measure the training tasks on every cluster (noisy observations);
3. fit the two-stage baseline (TSM) and MFCP with analytic gradients;
4. sample a test round, match it with both methods, and report the paper's
   three metrics against the exact oracle matching.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.clusters import make_setting
from repro.experiments import default_config, oracle_matching
from repro.matching import makespan
from repro.methods import MFCP, MFCPConfig, FitContext, MatchSpec, TSM
from repro.metrics import cluster_utilization, mean_assigned_reliability
from repro.utils.tables import Table
from repro.workloads import TaskPool


def main() -> None:
    # --- 1. Substrate: tasks and clusters -------------------------------
    pool = TaskPool(80, rng=7)
    clusters = make_setting("A")  # a100-dgx + v100-legacy + tpu-pod
    train_tasks, test_tasks = pool.split(0.7, rng=1)
    print(f"Pool: {len(pool)} tasks ({pool.feature_dim}-dim features), "
          f"clusters: {[c.name for c in clusters]}")

    # --- 2+3. Measure and fit -------------------------------------------
    spec = MatchSpec()  # γ rule, β, λ, solver settings
    ctx = FitContext.build(clusters, train_tasks, spec, rng=2)
    print(f"Measured {len(train_tasks)} training tasks on {len(clusters)} clusters")

    tsm = TSM().fit(ctx)
    mfcp = MFCP("analytic", MFCPConfig(epochs=40)).fit(ctx)
    print("Fitted TSM (MSE two-stage) and MFCP-AD (regret-trained)")

    # --- 4. One allocation round ----------------------------------------
    rng = np.random.default_rng(3)
    tasks = [test_tasks[int(i)] for i in rng.choice(len(test_tasks), 5, replace=False)]
    T = np.stack([c.true_times(tasks) for c in clusters])
    A = np.stack([c.true_reliabilities(tasks) for c in clusters])
    problem = spec.build_problem(T, A)

    X_oracle = oracle_matching(problem, default_config())
    oracle_cost = makespan(X_oracle, problem)

    table = Table(["Method", "Makespan (h)", "Regret", "Reliability", "Utilization"],
                  title="One allocation round (5 tasks, 3 clusters)")
    table.add_row(["oracle", f"{oracle_cost:.3f}", "0.000",
                   f"{mean_assigned_reliability(X_oracle, A):.3f}",
                   f"{cluster_utilization(X_oracle, problem):.3f}"])
    for method in (tsm, mfcp):
        X = method.decide(problem, tasks)
        cost = makespan(X, problem)
        table.add_row([
            method.name,
            f"{cost:.3f}",
            f"{(cost - oracle_cost) / problem.N:.3f}",
            f"{mean_assigned_reliability(X, A):.3f}",
            f"{cluster_utilization(X, problem):.3f}",
        ])
    print()
    print(table.render())
    print("\nLower regret and higher utilization for MFCP is the paper's headline result.")


if __name__ == "__main__":
    main()
