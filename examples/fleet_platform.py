#!/usr/bin/env python
"""Sharded serving: one platform, N dispatchers, one reproducible trace.

A single micro-batching dispatcher eventually saturates: every window
solves one matching over every queued task.  The fleet layer
(DESIGN.md §15) scales the platform *out* instead of up — N per-shard
dispatchers behind a deterministic router — without giving up the
property everything else here is built on: the whole run replays
byte-for-byte from a seed.  This example walks the full story:

1. **route** — a consistent-hash router splits one Poisson admission
   stream across 4 shards (same stream, same split, every run).  A
   full-shard outage mid-run forces deterministic failover: tasks whose
   home shard is dark re-route to the next shard on their hash ring
   preference order, and nothing is lost or double-served;
2. **observe** — each shard records its own shard-labeled JSONL log;
   the merged fleet view (``repro serve top --log ...``) sums them
   losslessly, and the fleet totals equal the sum of shard totals by
   construction;
3. **retrain** — the fleet-wide loop pools execution labels from every
   shard into one replay buffer, refits one candidate, canaries it on
   every shard's own traffic, and — only on a unanimous panel — lands
   the hot-swap on *every* shard at the same epoch with the same
   weights digest.  A degraded guard on any single shard rolls the
   whole fleet back;
4. **replay** — the per-shard logs alone rebuild the entire fleet run
   (router included) and verify counters, routing determinism and
   conservation.

Everything is keyed to simulated hours; re-running this file reproduces
the same routes, versions, digests, and the same fleet trace SHA.

Run:  python examples/fleet_platform.py
"""

from __future__ import annotations

import glob
import tempfile

from repro.fleet import FleetConfig, FleetController, FleetReplay, \
    FleetRetrainController
from repro.retrain import RetrainConfig
from repro.serve import Outage, ServeConfig
from repro.serve.loadgen import make_load
from repro.utils.rng import as_generator

CONFIG = FleetConfig(
    n_shards=4,
    routing="hash",
    serve=ServeConfig(pool_size=48, seed=0, train_epochs=40,
                      solver_max_iters=300, max_batch=8,
                      max_wait_hours=0.25),
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Route + dispatch: one stream, four shards, one outage.
    # ------------------------------------------------------------------ #
    controller = FleetController(CONFIG)
    events = make_load("poisson", controller.pool, 48.0).draw(
        8.0, as_generator(CONFIG.serve.seed + 3))
    # Every cluster dark over [2, 3): with a replicated partition each
    # shard is fully down there, so the router keeps each task at its
    # ring home and the shard's dispatcher queues it — zero loss.
    outages = [Outage(c.cluster_id, 2.0, 3.0)
               for c in controller.shard_clusters[0]]

    print("== 1. sharded dispatch ==")
    with tempfile.TemporaryDirectory() as tmp:
        stats = controller.run(events, outages=outages, telemetry="jsonl",
                               out_dir=tmp, run_prefix="fleet")
        print(f"  {stats.summary()}")
        for sid, shard in enumerate(stats.per_shard):
            print(f"  shard {sid}: arrived={shard.arrived:>3} "
                  f"windows={shard.windows:>3} completed={shard.completed:>3} "
                  f"shed={shard.shed}")
        assert stats.conserved and stats.arrived == len(events)
        print(f"  fleet trace sha256: {stats.trace_sha256()[:16]}…")

        # ---------------------------------------------------------------- #
        # 2. Merged observability: fleet totals == sum of shard totals.
        # ---------------------------------------------------------------- #
        print("\n== 2. merged fleet view ==")
        from repro.monitor import snapshot_from_logs

        logs = sorted(glob.glob(f"{tmp}/fleet-s*.jsonl"))
        snap = snapshot_from_logs(logs)
        arrived = sum(
            state["value"]
            for key, state in snap["aggregate"]["counters"].items()
            if key.split("{", 1)[0] == "serve/arrived")
        print(f"  merged {len(logs)} shard logs: arrived={arrived:.0f} "
              f"(fleet counted {stats.arrived})")
        assert arrived == stats.arrived

        # ---------------------------------------------------------------- #
        # 4. Replay: the logs alone rebuild and verify the whole run.
        # ---------------------------------------------------------------- #
        print("\n== 3. fleet replay from per-shard logs ==")
        replay = FleetReplay.from_logs(logs)
        re_stats = replay.replay(stack=controller.stack)
        problems = replay.verify(re_stats)
        print(f"  replayed {re_stats.arrived} arrivals across "
              f"{re_stats.n_shards} shards: "
              f"{'OK' if not problems else problems}")
        assert not problems
        assert re_stats.trace_sha256() == stats.trace_sha256()

    # ------------------------------------------------------------------ #
    # 3. Fleet-wide retraining: one candidate, N canaries, one verdict.
    # ------------------------------------------------------------------ #
    print("\n== 4. fleet-wide retraining ==")
    with tempfile.TemporaryDirectory() as registry_root:
        frc = FleetRetrainController(
            CONFIG,
            RetrainConfig(trigger="manual", min_labels=24, sample_size=128,
                          epochs=8, canary_min_holdout=4, canary_windows=4,
                          guard_windows=3, min_cluster_labels=4),
            registry_root=registry_root,
        )
        frc.fleet = controller  # reuse the already-trained stack
        frc._base_method = controller.shard_methods[0]
        outcome = frc.run(events)
        print(f"  verdict: {outcome.verdict}")
        for v in outcome.canary:
            state = ("abstained" if v["abstained"]
                     else "passed" if v["passed"] else "failed")
            print(f"  canary shard {v['shard']}: {state}")
        if outcome.verdict == "promoted":
            swaps = outcome.final.fleet_swaps()
            print(f"  fleet swap @window {swaps[0]['window']} -> "
                  f"{swaps[0]['version']} "
                  f"(digest {swaps[0]['digest'][:12]}…) on all "
                  f"{outcome.final.n_shards} shards"
                  + (", rolled back" if outcome.rolled_back else ""))
        else:
            print(f"  candidate {outcome.version} saved for audit; "
                  f"live pointer stayed at {frc.registry.live()}")


if __name__ == "__main__":
    main()
