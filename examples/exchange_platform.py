#!/usr/bin/env python
"""A computing resource exchange platform, end to end.

Simulates the full operating loop of the platform in Fig. 1 of the paper:
user-submitted deep-learning jobs arrive in rounds; the platform predicts
per-cluster performance with its trained MFCP predictors, matches tasks to
third-party clusters under a reliability constraint, and the matched work
then *actually executes* on the discrete-event cluster simulator — with
runtime jitter, random failures, and retries.

Reported per round: predicted vs realized makespan, realized success rate,
and cluster utilization; plus a final platform-level summary.

Run:  python examples/exchange_platform.py
"""

from __future__ import annotations

import numpy as np

from repro.clusters import make_setting
from repro.matching import makespan
from repro.methods import MFCP, MFCPConfig, FitContext, MatchSpec
from repro.sim import ExecutionConfig, simulate_matching
from repro.utils.tables import Table
from repro.workloads import TaskPool

N_ROUNDS = 6
TASKS_PER_ROUND = 6


def main() -> None:
    pool = TaskPool(90, rng=17)
    clusters = make_setting("B")  # the flakiest cluster mix: v100 + rtx + farm
    train_tasks, live_tasks = pool.split(0.6, rng=5)

    spec = MatchSpec(gamma_quantile=0.5)
    ctx = FitContext.build(clusters, train_tasks, spec, rng=6)
    platform = MFCP("analytic", MFCPConfig(epochs=50)).fit(ctx)
    print(f"Platform online: {[c.name for c in clusters]}, "
          f"predictors trained on {len(train_tasks)} profiled jobs\n")

    rng = np.random.default_rng(8)
    exec_cfg = ExecutionConfig(jitter_std=0.08, failures=True, max_retries=1)

    table = Table(
        ["Round", "Jobs", "Predicted h", "Realized h", "Success", "Utilization"],
        title="Live allocation rounds (sequential-exclusive execution)",
    )
    total_busy = 0.0
    total_span = 0.0
    successes = 0
    jobs = 0
    for r in range(N_ROUNDS):
        idx = rng.choice(len(live_tasks), TASKS_PER_ROUND, replace=False)
        tasks = [live_tasks[int(i)] for i in idx]
        T = np.stack([c.true_times(tasks) for c in clusters])
        A = np.stack([c.true_reliabilities(tasks) for c in clusters])
        problem = spec.build_problem(T, A)

        # The platform only sees its own predictions when deciding.
        T_hat, A_hat = platform.predict(tasks)
        predicted_cost = None
        X = platform.decide(problem, tasks)
        predicted_cost = makespan(X, problem.with_predictions(T_hat, A_hat))

        result = simulate_matching(clusters, tasks, X, exec_cfg, rng=rng)
        table.add_row([
            r + 1,
            len(tasks),
            f"{predicted_cost:.2f}",
            f"{result.makespan:.2f}",
            f"{result.success_rate:.0%}",
            f"{result.utilization:.0%}",
        ])
        total_busy += sum(result.cluster_busy.values())
        total_span += result.makespan
        successes += sum(1 for rec in result.records if rec.outcome.value == "success")
        jobs += len(tasks)

    print(table.render())
    print(
        f"\nPlatform summary: {jobs} jobs, {successes}/{jobs} succeeded "
        f"({successes / jobs:.0%}); cluster-hours sold {total_busy:.1f}h over "
        f"{total_span:.1f}h of wall clock "
        f"(fleet utilization {total_busy / (len(clusters) * total_span):.0%})."
    )


if __name__ == "__main__":
    main()
