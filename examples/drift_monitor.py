#!/usr/bin/env python
"""Drift detection in production: a synthetic model-degradation scenario.

A computing resource exchange platform never finds out its predictor
went stale from a dashboard of MSE — it finds out when matchings start
paying makespan.  This example stages exactly that failure and shows
the quality monitor catching it:

1. train the two-stage predictor stack properly (version 1) and also
   register a badly undertrained checkpoint (version 2) — a stand-in
   for any quietly-broken deploy: a truncated retrain, a bad feature
   pipeline, a stale snapshot;
2. serve a steady Poisson stream with :class:`repro.monitor.QualityMonitor`
   attached to the dispatcher, and hot-swap to the broken checkpoint
   mid-run;
3. watch the drift banks (Page–Hinkley / windowed error quantiles on
   execution-time error, CUSUM on reliability calibration) fire shortly
   after the swap, and the monitor raise a single ``retrain_suggested``
   alert — the trigger the ROADMAP's async retraining loop consumes.

Run:  python examples/drift_monitor.py
"""

from __future__ import annotations

import tempfile

from repro.clusters import make_setting
from repro.matching.relaxed import SolverConfig
from repro.methods import FitContext, MatchSpec, TSM
from repro.monitor import MonitorConfig, QualityMonitor
from repro.predictors.training import TrainConfig
from repro.serve import Dispatcher, DispatcherConfig, ModelRegistry, PoissonLoad
from repro.utils.rng import as_generator
from repro.workloads import TaskPool

#: Hot-swap to the broken checkpoint at this dispatch window.
SWAP_WINDOW = 15


def main() -> None:
    pool = TaskPool(64, rng=21)
    clusters = make_setting("A")
    train_tasks, _ = pool.split(0.6, rng=2)
    spec = MatchSpec(solver=SolverConfig(tol=1e-4, max_iters=400))
    ctx = FitContext.build(clusters, train_tasks, spec, rng=3)

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(f"{tmp}/registry")

        print("== checkpoints ==")
        good = TSM(train_config=TrainConfig(epochs=150)).fit(ctx)
        registry.save(good, config=TrainConfig(epochs=150), tag="good-fit")
        broken = TSM(train_config=TrainConfig(epochs=2)).fit(ctx)
        info = registry.save(broken, config=TrainConfig(epochs=2),
                             tag="broken-deploy")
        for v in registry.versions():
            print(f"  {v}: tag={registry.info(v).meta['tag']!r}")

        events = PoissonLoad(pool, 60.0).draw(8.0, as_generator(11))
        # Alert thresholds are calibrated to the *baseline* model, exactly
        # as an operator would: the well-trained predictor still carries
        # ~0.4 mean relative time error with heavy tails (short tasks blow
        # up the ratio), so the allowed per-sample drift must sit at that
        # scale or the detector pages on a healthy deploy.
        monitor = QualityMonitor(MonitorConfig(
            sample_every=5, time_delta=0.2, time_threshold=6.0))
        dispatcher = Dispatcher(
            clusters, good, spec,
            DispatcherConfig(max_batch=16, max_wait_hours=0.25,
                             queue_capacity=64),
            registry=registry,
            swap_schedule={SWAP_WINDOW: info.version},
            callbacks=[monitor],
        )
        stats = dispatcher.run(events, rng=5)

        print(f"\n== serving ({len(events)} arrivals, broken checkpoint "
              f"hot-swapped in at window {SWAP_WINDOW}) ==")
        print("  " + stats.summary())

        print(f"\n== monitor verdict ({monitor.windows_seen} windows "
              f"watched) ==")
        for alert in monitor.alerts:
            print(f"  [{alert.kind}] window {alert.window} "
                  f"t={alert.time:.2f}h {alert.signal}/{alert.detector}: "
                  f"{alert.message}")
        summary = monitor.summary()
        print(f"  sampled regret attribution: {summary['attribution']}")

        # The swap applies at the *start* of SWAP_WINDOW, so that window is
        # already served by the broken checkpoint — alerts there are hits.
        drift_alerts = [a for a in monitor.alerts if a.kind == "drift"]
        assert all(a.window >= SWAP_WINDOW for a in drift_alerts), \
            "drift must not fire while the good model serves"
        assert monitor.retrain_suggested_at, \
            "the broken deploy must trigger a retrain suggestion"
        first = monitor.retrain_suggested_at[0]
        print(f"\nThe broken deploy at window {SWAP_WINDOW} was flagged at "
              f"window {first} — retrain suggested "
              f"{first - SWAP_WINDOW} windows after the regression shipped.")


if __name__ == "__main__":
    main()
