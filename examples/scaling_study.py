#!/usr/bin/env python
"""Scaling study: how matching quality evolves with round size (mini Fig. 5).

Sweeps the number of tasks per allocation round and reports regret and
cluster utilization for the two-stage baseline and MFCP-AD.  Larger rounds
give the matcher more freedom to balance clusters — utilization rises for
every method — while regret grows with the number of decisions taken.

Run:  python examples/scaling_study.py           (quick)
      REPRO_PROFILE=full python examples/scaling_study.py
"""

from __future__ import annotations

from repro.clusters import make_setting
from repro.experiments import default_config
from repro.experiments.runner import run_experiment
from repro.methods import MFCP, TSM
from repro.utils.tables import render_series


def main() -> None:
    config = default_config(seeds=(0, 1), eval_rounds=8)
    task_counts = (4, 8, 12, 16)

    def factory():
        return [TSM(train_config=config.supervised), MFCP("analytic", config.mfcp)]

    regret = {"TSM": [], "MFCP-AD": []}
    util = {"TSM": [], "MFCP-AD": []}
    for n in task_counts:
        print(f"running N={n} ...")
        reports = run_experiment(
            lambda: make_setting("A"), factory, config, n_tasks=n
        )
        for name in regret:
            regret[name].append(reports[name].regret[0])
            util[name].append(reports[name].utilization[0])

    print()
    print(render_series("N tasks", list(task_counts), regret,
                        title="Regret vs round size", digits=4))
    print()
    print(render_series("N tasks", list(task_counts), util,
                        title="Cluster utilization vs round size"))
    print("\nExpected shape (paper Fig. 5): regret grows with N for both methods "
          "with MFCP below TSM; utilization rises with N with MFCP highest.")


if __name__ == "__main__":
    main()
