"""Tests for the extension solvers: Frank–Wolfe, simulated annealing, and
the vectorized batch solver (+ batched zeroth-order estimation)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import (
    AnnealingConfig,
    BatchProblem,
    FrankWolfeConfig,
    MatchingProblem,
    SolverConfig,
    ZeroOrderConfig,
    feasible_gamma,
    kkt_vjp,
    makespan,
    reliability_value,
    round_assignment,
    solve_annealing,
    solve_branch_and_bound,
    solve_frank_wolfe,
    solve_relaxed,
    solve_relaxed_batch,
    zo_vjp,
)

from tests.conftest import random_problem


class TestFrankWolfe:
    def test_matches_mirror_descent_objective(self, rng):
        p = replace(random_problem(rng), entropy=0.02)
        fw = solve_frank_wolfe(p, FrankWolfeConfig(max_iters=800))
        md = solve_relaxed(p, SolverConfig(max_iters=800))
        assert fw.objective == pytest.approx(md.objective, abs=0.05)

    def test_iterates_feasible(self, rng):
        p = random_problem(rng, gamma_quantile=0.6)
        sol = solve_frank_wolfe(p)
        assert p.reliability_slack(sol.X) > 0
        np.testing.assert_allclose(sol.X.sum(axis=0), np.ones(p.N), atol=1e-9)

    def test_monotone_history(self, rng):
        p = random_problem(rng)
        sol = solve_frank_wolfe(p)
        assert np.all(np.diff(sol.history) <= 1e-9)

    def test_rounded_matches_exact(self, rng):
        p = random_problem(rng)
        Xr = round_assignment(solve_frank_wolfe(p).X, p)
        exact = solve_branch_and_bound(p)
        assert makespan(Xr, p) <= 1.5 * exact.objective + 1e-9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FrankWolfeConfig(max_iters=0)
        with pytest.raises(ValueError):
            FrankWolfeConfig(init_step=1.5)


class TestAnnealing:
    def test_finds_exact_optimum_on_small_instances(self, rng):
        hits = 0
        for k in range(5):
            p = random_problem(rng, n=5)
            exact = solve_branch_and_bound(p)
            ann = solve_annealing(p, AnnealingConfig(steps=3000), rng=k)
            assert ann.feasible
            assert ann.objective >= exact.objective - 1e-9
            hits += ann.objective == pytest.approx(exact.objective, abs=1e-9)
        assert hits >= 3  # usually exact on tiny instances

    def test_respects_constraint(self, rng):
        p = random_problem(rng, gamma_quantile=0.7)
        ann = solve_annealing(p, rng=0)
        if ann.feasible:
            assert reliability_value(ann.X, p) >= -1e-9

    def test_cold_start_works(self, rng):
        p = random_problem(rng)
        ann = solve_annealing(p, rng=0, warm_start=False)
        assert ann.feasible

    def test_infeasible_detected(self, rng):
        T = rng.uniform(0.5, 2.0, (3, 4))
        A = np.full((3, 4), 0.5)
        p = MatchingProblem(T=T, A=A, gamma=0.9)
        ann = solve_annealing(p, rng=0, warm_start=False)
        assert not ann.feasible

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AnnealingConfig(steps=0)
        with pytest.raises(ValueError):
            AnnealingConfig(t_start=0.01, t_end=0.1)


class TestBatchSolver:
    def _batch(self, rng, B=8, entropy=0.05):
        T = rng.uniform(0.2, 3.0, (3, 5))
        A = rng.uniform(0.6, 0.99, (3, 5))
        gamma = feasible_gamma(T, A, quantile=0.4)
        Ts = np.stack([T * np.exp(rng.normal(0, 0.05, T.shape)) for _ in range(B)])
        As = np.tile(A, (B, 1, 1))
        return BatchProblem(T=Ts, A=As, gamma=np.full(B, gamma), entropy=entropy)

    def test_matches_scalar_solver(self, rng):
        bp = self._batch(rng)
        bs = solve_relaxed_batch(bp, max_iters=300)
        for b in range(bp.B):
            p = MatchingProblem(T=bp.T[b], A=bp.A[b], gamma=float(bp.gamma[b]),
                                entropy=bp.entropy)
            sc = solve_relaxed(p, SolverConfig(max_iters=300))
            assert bs.objective[b] == pytest.approx(sc.objective, abs=1e-3)

    def test_all_instances_feasible(self, rng):
        bp = self._batch(rng)
        bs = solve_relaxed_batch(bp)
        slack = np.einsum("bmn,bmn->b", bs.X, bp.A) / (bp.M * bp.N) - bp.gamma
        assert np.all(slack > 0)
        np.testing.assert_allclose(bs.X.sum(axis=1), np.ones((bp.B, bp.N)), atol=1e-9)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            BatchProblem(T=np.ones((2, 3)), A=np.ones((2, 3)), gamma=np.zeros(2))
        bp = self._batch(rng)
        with pytest.raises(ValueError):
            solve_relaxed_batch(bp, lr=0)
        with pytest.raises(ValueError):
            solve_relaxed_batch(bp, x0=np.ones((1, 3, 5)))

    def test_unattainable_gamma_rejected(self, rng):
        T = rng.uniform(0.5, 2.0, (1, 3, 4))
        A = np.full((1, 3, 4), 0.5)
        with pytest.raises(ValueError):
            solve_relaxed_batch(BatchProblem(T=T, A=A, gamma=np.array([0.9])))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_batch_objective_close_to_scalar(self, seed):
        rng = np.random.default_rng(seed)
        bp = self._batch(rng, B=3)
        bs = solve_relaxed_batch(bp, max_iters=200)
        for b in range(3):
            p = MatchingProblem(T=bp.T[b], A=bp.A[b], gamma=float(bp.gamma[b]),
                                entropy=bp.entropy)
            sc = solve_relaxed(p, SolverConfig(max_iters=200))
            assert bs.objective[b] <= sc.objective + 0.02


class TestBatchedZeroOrder:
    def test_vectorized_agrees_with_scalar_and_analytic(self, rng):
        p = replace(random_problem(rng, n=5), entropy=0.08)
        cfg = SolverConfig(max_iters=2000, tol=1e-13, patience=30)
        sol = solve_relaxed(p, cfg)
        gX = rng.normal(size=(p.M, p.N))
        ref = kkt_vjp(sol.X, p, gX)
        refv = np.concatenate([ref.dT[0], ref.dA[0]])
        zg = zo_vjp(p, sol, 0, gX,
                    ZeroOrderConfig(samples=32, delta=0.02, warm_start_iters=200,
                                    vectorized=True),
                    solver_config=cfg, rng=5)
        est = np.concatenate([zg.dt, zg.da])
        cos = est @ refv / (np.linalg.norm(est) * np.linalg.norm(refv) + 1e-12)
        assert cos > 0.7

    def test_deterministic(self, rng):
        p = replace(random_problem(rng, n=4), entropy=0.05)
        sol = solve_relaxed(p)
        gX = rng.normal(size=(p.M, p.N))
        cfg = ZeroOrderConfig(samples=8, delta=0.05, vectorized=True)
        z1 = zo_vjp(p, sol, 1, gX, cfg, rng=9)
        z2 = zo_vjp(p, sol, 1, gX, cfg, rng=9)
        np.testing.assert_allclose(z1.dt, z2.dt)

    def test_parallel_objective_falls_back_to_scalar(self, rng):
        from repro.matching import ExponentialDecaySpeedup

        p = replace(random_problem(rng, n=4),
                    speedup=(ExponentialDecaySpeedup(),), entropy=0.02)
        sol = solve_relaxed(p)
        gX = rng.normal(size=(p.M, p.N))
        zg = zo_vjp(p, sol, 0, gX,
                    ZeroOrderConfig(samples=4, delta=0.05, vectorized=True), rng=0)
        assert np.all(np.isfinite(zg.dt))  # scalar fallback handled ζ
