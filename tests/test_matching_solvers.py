"""Tests for Algorithm 1 (relaxed solver), rounding, and the exact solvers."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.matching import (
    ExponentialDecaySpeedup,
    MatchingProblem,
    SolverConfig,
    assignment_from_labels,
    barrier_value,
    feasible_gamma,
    labels_from_assignment,
    makespan,
    project_simplex_columns,
    reliability_value,
    round_assignment,
    solve_branch_and_bound,
    solve_bruteforce,
    solve_relaxed,
)

from tests.conftest import random_problem


class TestSolverConfig:
    @pytest.mark.parametrize(
        "kw", [dict(lr=0), dict(max_iters=0), dict(projection="newton"), dict(backtrack=0)]
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            SolverConfig(**kw)


class TestProjection:
    def test_simplex_projection_properties(self, rng):
        X = rng.normal(size=(4, 6))
        P = project_simplex_columns(X)
        assert np.all(P >= 0)
        np.testing.assert_allclose(P.sum(axis=0), np.ones(6), atol=1e-12)

    def test_simplex_projection_idempotent(self, rng):
        X = rng.random((3, 5))
        X /= X.sum(axis=0, keepdims=True)
        np.testing.assert_allclose(project_simplex_columns(X), X, atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(arrays(np.float64, (3, 4), elements=st.floats(-5, 5, allow_nan=False)))
    def test_property_projection_is_closest_point(self, X):
        """The projection must beat any random simplex point in distance."""
        P = project_simplex_columns(X)
        rng = np.random.default_rng(0)
        for _ in range(5):
            Q = rng.random((3, 4))
            Q /= Q.sum(axis=0, keepdims=True)
            assert np.linalg.norm(P - X) <= np.linalg.norm(Q - X) + 1e-9


class TestRelaxedSolver:
    def test_decreases_objective(self, rng):
        p = random_problem(rng)
        sol = solve_relaxed(p)
        assert sol.objective <= barrier_value(p.feasible_start(), p) + 1e-12
        assert np.all(np.diff(sol.history) <= 1e-9)  # monotone for mirror

    def test_iterates_stay_feasible(self, rng):
        p = random_problem(rng, gamma_quantile=0.6)
        sol = solve_relaxed(p)
        assert p.reliability_slack(sol.X) > 0
        np.testing.assert_allclose(sol.X.sum(axis=0), np.ones(p.N), atol=1e-9)

    @pytest.mark.parametrize("projection", ["mirror", "euclidean"])
    def test_projections_agree_on_rounded_solution(self, rng, projection):
        p = random_problem(rng)
        ref = round_assignment(solve_relaxed(p).X, p)
        sol = solve_relaxed(p, SolverConfig(projection=projection, max_iters=600))
        got = round_assignment(sol.X, p)
        assert makespan(got, p) == pytest.approx(makespan(ref, p), rel=0.15)

    def test_warm_start_shape_validated(self, rng):
        p = random_problem(rng)
        with pytest.raises(ValueError):
            solve_relaxed(p, x0=np.ones((2, 2)))

    def test_infeasible_warm_start_falls_back(self, rng):
        p = random_problem(rng, gamma_quantile=0.6)
        bad = p.uniform_assignment()  # may violate at q=0.6
        sol = solve_relaxed(p, x0=bad)
        assert p.reliability_slack(sol.X) > 0

    def test_parallel_objective_solvable(self, rng):
        p = replace(random_problem(rng), speedup=(ExponentialDecaySpeedup(),))
        sol = solve_relaxed(p)
        assert np.isfinite(sol.objective)

    def test_deterministic(self, rng):
        p = random_problem(rng)
        s1, s2 = solve_relaxed(p), solve_relaxed(p)
        np.testing.assert_allclose(s1.X, s2.X)


class TestRounding:
    def test_labels_roundtrip(self, rng):
        labels = rng.integers(0, 3, size=7)
        X = assignment_from_labels(labels, 3)
        np.testing.assert_array_equal(labels_from_assignment(X), labels)

    def test_labels_validated(self):
        with pytest.raises(ValueError):
            assignment_from_labels(np.array([0, 5]), 3)

    def test_round_is_binary_and_complete(self, rng):
        p = random_problem(rng)
        Xr = round_assignment(solve_relaxed(p).X, p)
        assert set(np.unique(Xr)) <= {0.0, 1.0}
        np.testing.assert_allclose(Xr.sum(axis=0), np.ones(p.N))

    def test_repair_restores_feasibility(self, rng):
        p = random_problem(rng, gamma_quantile=0.7)
        # Worst-case relaxed input: everything on the least reliable cluster.
        worst = np.argmin(p.A.mean(axis=1))
        X = np.full((p.M, p.N), 1e-3)
        X[worst] = 1.0
        X /= X.sum(axis=0, keepdims=True)
        Xr = round_assignment(X, p, repair=True)
        assert reliability_value(Xr, p) >= -1e-9

    def test_local_search_never_worsens(self, rng):
        p = random_problem(rng)
        X0 = round_assignment(solve_relaxed(p).X, p, local_search=False)
        X1 = round_assignment(solve_relaxed(p).X, p, local_search=True)
        assert makespan(X1, p) <= makespan(X0, p) + 1e-12


class TestExactSolvers:
    def test_bruteforce_bnb_agree(self, rng):
        for _ in range(5):
            p = random_problem(rng, m=3, n=5)
            bf = solve_bruteforce(p)
            bb = solve_branch_and_bound(p)
            assert bf.feasible and bb.feasible
            assert bb.objective == pytest.approx(bf.objective, abs=1e-9)

    def test_exact_beats_or_matches_rounding(self, rng):
        for _ in range(5):
            p = random_problem(rng, m=3, n=5)
            exact = solve_branch_and_bound(p)
            heur = round_assignment(solve_relaxed(p).X, p)
            if reliability_value(heur, p) >= 0:
                assert exact.objective <= makespan(heur, p) + 1e-9

    def test_bruteforce_size_guard(self, rng):
        p = random_problem(rng, m=3, n=5)
        with pytest.raises(ValueError):
            solve_bruteforce(p, max_states=10)

    def test_infeasible_instance_detected(self, rng):
        T = rng.uniform(0.5, 2.0, (3, 4))
        A = np.full((3, 4), 0.5)
        p = MatchingProblem(T=T, A=A, gamma=0.9)
        assert not solve_bruteforce(p).feasible
        assert not solve_branch_and_bound(p).feasible

    def test_bnb_respects_reliability_constraint(self, rng):
        p = random_problem(rng, gamma_quantile=0.8)
        sol = solve_branch_and_bound(p)
        if sol.feasible:
            assert reliability_value(sol.X, p) >= -1e-9

    def test_bnb_parallel_objective(self, rng):
        p = replace(random_problem(rng, n=5), speedup=(ExponentialDecaySpeedup(),))
        bb = solve_branch_and_bound(p)
        bf = solve_bruteforce(p)
        assert bb.objective == pytest.approx(bf.objective, abs=1e-9)

    def test_node_limit_enforced(self, rng):
        p = random_problem(rng, m=3, n=10)
        with pytest.raises(RuntimeError):
            solve_branch_and_bound(p, node_limit=5)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_property_relax_round_within_factor_of_exact(seed):
    """End-to-end heuristic quality: relax+round stays within 2× of the
    exact optimum on random small instances (usually it is equal)."""
    rng = np.random.default_rng(seed)
    T = rng.uniform(0.2, 3.0, (3, 5))
    A = rng.uniform(0.6, 0.99, (3, 5))
    p = MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.3))
    exact = solve_bruteforce(p)
    heur = round_assignment(solve_relaxed(p).X, p)
    assert makespan(heur, p) <= 2.0 * exact.objective + 1e-9
