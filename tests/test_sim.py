"""Tests for the discrete-event kernel and the cluster execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matching import MatchingProblem, feasible_gamma, makespan
from repro.matching.rounding import assignment_from_labels
from repro.matching.speedup import ExponentialDecaySpeedup
from repro.sim import ExecutionConfig, Simulator, TaskOutcome, simulate_matching
from repro.sim.trace import SimulationResult, TaskRecord


class TestSimulatorKernel:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda s: order.append("b"))
        sim.schedule(1.0, lambda s: order.append("a"))
        sim.schedule(3.0, lambda s: order.append("c"))
        end = sim.run()
        assert order == ["a", "b", "c"]
        assert end == 3.0

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda s: order.append("low"), priority=1)
        sim.schedule(1.0, lambda s: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        hits = []

        def chain(s):
            hits.append(s.now)
            if len(hits) < 3:
                s.schedule(1.0, chain)

        sim.schedule(0.0, chain)
        sim.run()
        assert hits == [0.0, 1.0, 2.0]

    def test_cancel(self):
        sim = Simulator()
        hits = []
        ev = sim.schedule(1.0, lambda s: hits.append(1))
        sim.cancel(ev)
        sim.run()
        assert hits == []
        assert sim.pending == 0

    def test_until_pauses_and_resumes(self):
        sim = Simulator()
        hits = []
        sim.schedule(5.0, lambda s: hits.append(5))
        assert sim.run(until=2.0) == 2.0
        assert hits == []
        sim.run()
        assert hits == [5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda s: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def forever(s):
            s.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestTrace:
    def test_record_validation(self):
        with pytest.raises(ValueError):
            TaskRecord(0, 0, start=2.0, end=1.0, outcome=TaskOutcome.SUCCESS)

    def test_empty_result_raises(self):
        r = SimulationResult()
        with pytest.raises(ValueError):
            r.success_rate
        with pytest.raises(ValueError):
            r.utilization


class TestEngine:
    @pytest.fixture()
    def scenario(self, task_pool, setting_a):
        tasks = task_pool.tasks[:8]
        rng = np.random.default_rng(4)
        X = assignment_from_labels(rng.integers(0, 3, 8), 3)
        T = np.stack([c.true_times(tasks) for c in setting_a])
        A = np.stack([c.true_reliabilities(tasks) for c in setting_a])
        problem = MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.2))
        return setting_a, tasks, X, problem

    def test_deterministic_sequential_matches_analytic(self, scenario):
        clusters, tasks, X, problem = scenario
        res = simulate_matching(clusters, tasks, X)
        assert res.makespan == pytest.approx(makespan(X, problem))
        assert res.success_rate == 1.0
        assert len(res.records) == len(tasks)

    def test_deterministic_parallel_matches_analytic(self, scenario):
        clusters, tasks, X, problem = scenario
        zeta = ExponentialDecaySpeedup()
        from dataclasses import replace

        pz = replace(problem, speedup=(zeta,))
        res = simulate_matching(
            clusters, tasks, X, ExecutionConfig(mode="parallel", speedup=zeta)
        )
        assert res.makespan == pytest.approx(makespan(X, pz))

    def test_utilization_matches_analytic(self, scenario):
        from repro.metrics import cluster_utilization

        clusters, tasks, X, problem = scenario
        res = simulate_matching(clusters, tasks, X)
        assert res.utilization == pytest.approx(cluster_utilization(X, problem))

    def test_failures_reduce_success_rate(self, scenario):
        clusters, tasks, X, _ = scenario
        rates = []
        for seed in range(30):
            res = simulate_matching(
                clusters, tasks, X, ExecutionConfig(failures=True), rng=seed
            )
            rates.append(res.success_rate)
        mean_rate = float(np.mean(rates))
        # True mean reliability in setting A is ~0.96; allow a wide band.
        assert 0.80 <= mean_rate <= 1.0
        assert min(rates) < 1.0 or mean_rate > 0.99  # some failure observed

    def test_retries_improve_success(self, scenario):
        clusters, tasks, X, _ = scenario
        no_retry, retry = [], []
        for seed in range(40):
            r0 = simulate_matching(clusters, tasks, X,
                                   ExecutionConfig(failures=True, max_retries=0), rng=seed)
            r2 = simulate_matching(clusters, tasks, X,
                                   ExecutionConfig(failures=True, max_retries=2), rng=seed)
            no_retry.append(r0.success_rate)
            retry.append(r2.success_rate)
        assert np.mean(retry) >= np.mean(no_retry)

    def test_jitter_preserves_mean(self, scenario):
        clusters, tasks, X, problem = scenario
        spans = [
            simulate_matching(clusters, tasks, X,
                              ExecutionConfig(jitter_std=0.1), rng=seed).makespan
            for seed in range(40)
        ]
        assert np.mean(spans) == pytest.approx(makespan(X, problem), rel=0.1)

    def test_shape_validation(self, scenario):
        clusters, tasks, X, _ = scenario
        with pytest.raises(ValueError):
            simulate_matching(clusters, tasks, X[:, :3])
        with pytest.raises(ValueError):
            ExecutionConfig(mode="warp")
        with pytest.raises(ValueError):
            ExecutionConfig(jitter_std=-1)
