"""Tests for the closed-loop online learning pipeline (repro.retrain).

Covers the full loop plus the serving-API redesign that ships with it:

- label harvesting edge cases: orphan/re-queue dedup, causality
  (``end <= now``), eviction, newest-first holdout split, and the
  conservation identity between buffer contents and dispatcher records;
- cooperative refits: StepwiseTrainer reproduces the blocking training
  loops' trajectory exactly when driven in arbitrary step budgets;
- the checkpoint registry's promotion surface: deterministic weights
  digests, live pointer, lineage, rollback, and the invariant that
  canary-rejected checkpoints are saved but never become live;
- the canary gate: insufficient holdout always fails, a self-comparison
  always passes, a degraded candidate fails with named reasons;
- the typed ServeConfig facade: validation, JSON round-trip, and the
  deprecation shims over the legacy dict helpers;
- alert sinks: fan-out, file tailing, and sink-failure isolation;
- the end-to-end closed loop: drift -> retrain -> canary -> hot-swap ->
  lower served error, byte-identical on re-run; the mirrored scenario
  where every candidate is rejected and live never moves; and trace
  replay of a run whose checkpoints were swapped by the loop itself.
"""

from __future__ import annotations

import io
import json
import warnings

import numpy as np
import pytest

from repro.monitor import (
    CallableSink,
    FileTailSink,
    MonitorConfig,
    QualityMonitor,
    TraceReplay,
)
from repro.predictors.models import PredictorPair
from repro.predictors.training import (
    StepwiseTrainer,
    TrainConfig,
    train_reliability,
    train_time_mse,
)
from repro.retrain import (
    CanaryGate,
    CanaryWindow,
    Label,
    RefitJob,
    ReplayBuffer,
    RetrainConfig,
)
from repro.serve import (
    Dispatcher,
    DispatcherConfig,
    ModelRegistry,
    Outage,
    ServeCallback,
    ServeConfig,
    build_platform,
    build_stack,
    weights_digest,
)
from repro.telemetry import recording
from repro.utils.rng import as_generator


def _label(task_id=0, arrival=0.0, cluster_id=0, window=0, dispatched=0.5,
           end=1.0, realized_hours=0.4, success=True, requeues=0, d=3):
    return Label(task_id=task_id, arrival=arrival, cluster_id=cluster_id,
                 window=window, dispatched=dispatched, end=end,
                 realized_hours=realized_hours, success=success,
                 requeues=requeues, features=np.full(d, float(task_id)))


# --------------------------------------------------------------------- #
# Replay buffer: dedup, causality, eviction, split.
# --------------------------------------------------------------------- #


class TestReplayBuffer:
    def test_later_dispatch_supersedes_earlier(self):
        buf = ReplayBuffer()
        buf.add(_label(dispatched=0.5, end=1.0, realized_hours=0.4))
        buf.add(_label(dispatched=2.0, end=2.6, realized_hours=0.6))
        assert len(buf) == 1
        assert buf.labels()[0].realized_hours == 0.6
        assert buf.stats()["superseded"] == 1

    def test_out_of_order_phantom_is_dropped(self):
        buf = ReplayBuffer()
        buf.add(_label(dispatched=2.0, end=2.6, realized_hours=0.6))
        buf.add(_label(dispatched=0.5, end=1.0, realized_hours=0.4))
        assert len(buf) == 1
        assert buf.labels()[0].realized_hours == 0.6
        assert buf.stats()["superseded"] == 0

    def test_same_task_different_arrivals_are_distinct(self):
        buf = ReplayBuffer()
        buf.add(_label(task_id=7, arrival=0.25))
        buf.add(_label(task_id=7, arrival=1.75))
        assert len(buf) == 2

    def test_discard_voids_requeued_label(self):
        buf = ReplayBuffer()
        buf.add(_label(task_id=3, arrival=0.5))
        assert buf.discard(3, 0.5)
        assert not buf.discard(3, 0.5)
        assert len(buf) == 0
        assert buf.stats()["discarded"] == 1

    def test_ready_enforces_causality(self):
        buf = ReplayBuffer()
        buf.add(_label(task_id=0, end=1.0))
        buf.add(_label(task_id=1, end=3.0))
        assert [l.task_id for l in buf.ready(2.0)] == [0]
        assert [l.task_id for l in buf.ready(3.0)] == [0, 1]

    def test_capacity_evicts_oldest_by_end(self):
        buf = ReplayBuffer(capacity=2)
        for tid, end in ((0, 5.0), (1, 1.0), (2, 9.0)):
            buf.add(_label(task_id=tid, end=end))
        assert sorted(l.task_id for l in buf.labels()) == [0, 2]
        assert buf.stats()["evicted"] == 1

    def test_sample_is_deterministic_and_causal(self):
        buf = ReplayBuffer()
        for tid in range(20):
            buf.add(_label(task_id=tid, end=float(tid)))
        a = buf.sample(15.0, 5, as_generator(0))
        b = buf.sample(15.0, 5, as_generator(0))
        assert [l.key for l in a] == [l.key for l in b]
        assert all(l.end <= 15.0 for l in a)

    def test_split_holdout_takes_newest(self):
        buf = ReplayBuffer()
        labels = [_label(task_id=tid, end=float(tid)) for tid in range(8)]
        train, hold = buf.split_holdout(labels, 0.25)
        assert [l.task_id for l in hold] == [6, 7]
        assert [l.task_id for l in train] == [0, 1, 2, 3, 4, 5]

    def test_datasets_censor_failed_runs_from_time_head(self):
        labels = [_label(task_id=0, success=True, realized_hours=0.5),
                  _label(task_id=1, success=False, realized_hours=0.1)]
        ds = ReplayBuffer.datasets(labels)[0]
        assert ds.n_time == 1 and ds.n_rel == 2
        assert ds.t.tolist() == [0.5]
        assert ds.a.tolist() == [1.0, 0.0]


class _Harvester(ServeCallback):
    """Minimal harvesting callback: the controller's buffer wiring alone."""

    def __init__(self):
        self.buffer = ReplayBuffer()

    def on_window(self, snapshot):
        self.buffer.harvest(snapshot)

    def on_requeue(self, task_id, arrival, t):
        self.buffer.discard(task_id, arrival)


class TestHarvestFromDispatcher:
    """Edge cases against a real outage-ridden run (ISSUE satellite 5)."""

    @pytest.fixture(scope="class")
    def harvested(self, retrain_stack):
        from repro.serve import PoissonLoad

        pool, clusters, spec, method = retrain_stack
        events = PoissonLoad(pool, 60.0).draw(3.0, as_generator(3))
        harvester = _Harvester()
        dispatcher = Dispatcher(
            clusters, method, spec,
            DispatcherConfig(max_batch=8, max_wait_hours=0.25,
                             queue_capacity=64),
            callbacks=[harvester])
        stats = dispatcher.run(
            events, rng=4,
            outages=[Outage(cluster_id=0, start=0.6, end=1.4)])
        return harvester.buffer, stats

    def test_outage_run_requeues(self, harvested):
        _, stats = harvested
        assert stats.requeued > 0, "fixture must exercise the orphan path"

    def test_no_duplicate_logical_arrivals(self, harvested):
        buf, _ = harvested
        keys = [l.key for l in buf.labels()]
        assert len(keys) == len(set(keys))

    def test_requeued_labels_resolve_to_final_dispatch(self, harvested):
        buf, stats = harvested
        final = {(r.task_id, r.arrival): r for r in stats.records}
        requeued = [l for l in buf.labels() if l.requeues > 0]
        assert requeued, "orphaned tasks must re-appear with requeues > 0"
        for label in buf.labels():
            rec = final[label.key]
            assert label.end == rec.end
            assert label.success == rec.success
            assert label.requeues == rec.requeues

    def test_no_time_travelling_labels(self, harvested):
        buf, _ = harvested
        for label in buf.labels():
            assert label.end >= label.dispatched >= label.arrival

    def test_conservation_buffer_matches_run_counters(self, harvested):
        buf, stats = harvested
        # Every executed logical arrival yields exactly one surviving
        # label; phantoms from pre-outage dispatches are superseded or
        # discarded, never double-counted.
        assert len(buf) == stats.completed + stats.failed
        s = buf.stats()
        assert s["harvested"] == len(buf) + s["superseded"] + s["discarded"]


# --------------------------------------------------------------------- #
# Cooperative refits.
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def retrain_stack():
    """Small trained serving stack shared across the retrain tests."""
    from repro.clusters import make_setting
    from repro.matching.relaxed import SolverConfig
    from repro.methods import TSM, FitContext, MatchSpec
    from repro.workloads import TaskPool

    pool = TaskPool(24, rng=0)
    clusters = make_setting("A")
    train, _ = pool.split(0.6, rng=1)
    spec = MatchSpec(solver=SolverConfig(tol=1e-4, max_iters=300))
    ctx = FitContext.build(clusters, train, spec, rng=2)
    method = TSM(train_config=TrainConfig(epochs=8)).fit(ctx)
    return pool, clusters, spec, method


def _toy_data(n=24, d=4, seed=0):
    rng = as_generator(seed)
    Z = rng.normal(size=(n, d))
    t = np.exp(rng.normal(size=n) * 0.3 + 0.5)
    a = rng.uniform(0.2, 1.0, size=n)
    return Z, t, a


class TestStepwiseTrainer:
    def test_matches_blocking_time_loop_exactly(self):
        Z, t, _ = _toy_data()
        cfg = TrainConfig(epochs=5, batch_size=8)
        blocking = PredictorPair(Z.shape[1], (8,), rng=7)
        stepwise = PredictorPair(Z.shape[1], (8,), rng=7)
        res = train_time_mse(blocking.time, Z, t, cfg, as_generator(11))
        trainer = StepwiseTrainer(stepwise.time, Z, t, cfg, as_generator(11),
                                  loss="log_mse")
        while not trainer.done:
            trainer.run_steps(3)  # deliberately awkward budget
        np.testing.assert_allclose(trainer.result().history, res.history)
        probe = as_generator(5).normal(size=(6, Z.shape[1]))
        np.testing.assert_array_equal(blocking.time.predict(probe),
                                      stepwise.time.predict(probe))

    def test_matches_blocking_reliability_loop_exactly(self):
        Z, _, a = _toy_data()
        cfg = TrainConfig(epochs=4, batch_size=8)
        blocking = PredictorPair(Z.shape[1], (8,), rng=3)
        stepwise = PredictorPair(Z.shape[1], (8,), rng=3)
        res = train_reliability(blocking.reliability, Z, a, cfg, as_generator(9))
        trainer = StepwiseTrainer(stepwise.reliability, Z, a, cfg,
                                  as_generator(9), loss="mse")
        while not trainer.done:
            trainer.run_steps(1)
        np.testing.assert_allclose(trainer.result().history, res.history)

    def test_budget_is_respected_and_done_is_sticky(self):
        Z, t, _ = _toy_data()
        trainer = StepwiseTrainer(PredictorPair(Z.shape[1], (8,), rng=0).time,
                                  Z, t, TrainConfig(epochs=2, batch_size=8),
                                  as_generator(0))
        assert trainer.run_steps(1) == 1
        assert trainer.steps_done == 1
        total = trainer.total_steps
        assert trainer.run_steps(10_000) == total - 1
        assert trainer.done
        assert trainer.run_steps(5) == 0
        with pytest.raises(RuntimeError):
            trainer.step()


class TestRefitJob:
    def _datasets(self, d=4):
        labels = [_label(task_id=tid, cluster_id=tid % 2, end=float(tid), d=d)
                  for tid in range(20)]
        return ReplayBuffer.datasets(labels)

    def test_skips_starved_clusters_but_trains_the_rest(self):
        live = [PredictorPair(4, (8,), rng=i) for i in range(2)]
        datasets = self._datasets()
        job = RefitJob.build(live, [0, 1], {0: datasets[0]},
                             config=TrainConfig(epochs=2, batch_size=8),
                             rng=as_generator(0), min_cluster_labels=4)
        assert job.trained_clusters == [0]
        assert job.skipped_clusters == [1]
        while not job.done:
            job.run_steps(7)
        # Starved cluster keeps the live weights; trained cluster moved.
        probe = as_generator(1).normal(size=(3, 4))
        np.testing.assert_array_equal(live[1].time.predict(probe),
                                      job.pairs[1].time.predict(probe))
        assert not np.array_equal(live[0].time.predict(probe),
                                  job.pairs[0].time.predict(probe))

    def test_all_clusters_starved_raises(self):
        live = [PredictorPair(4, (8,), rng=0)]
        with pytest.raises(ValueError):
            RefitJob.build(live, [0], {}, rng=as_generator(0))


# --------------------------------------------------------------------- #
# Registry promotion surface.
# --------------------------------------------------------------------- #


class TestRegistryPromotion:
    @pytest.fixture()
    def registry(self, retrain_stack, tmp_path):
        _, _, _, method = retrain_stack
        reg = ModelRegistry(tmp_path / "registry")
        reg.save(method, tag="bootstrap")
        reg.set_live("v0001")
        return reg, method

    def test_digest_is_deterministic_and_weight_sensitive(self, retrain_stack):
        _, _, _, method = retrain_stack
        d1, d2 = weights_digest(method), weights_digest(method)
        assert d1 == d2 and len(d1) == 64
        other = [p.clone(rng=as_generator(0)) for p in method.pairs]
        trainer = StepwiseTrainer(other[0].time, *_toy_data(d=other[0].in_features)[:2],
                                  TrainConfig(epochs=1, batch_size=8),
                                  as_generator(0))
        trainer.run_steps(1)
        assert weights_digest(other) != d1

    def test_save_never_moves_live(self, registry, retrain_stack):
        reg, method = registry
        info = reg.save(method, tag="canary-rejected", parent="v0001")
        assert reg.live() == "v0001"
        assert info.version == "v0002"
        assert reg.info("v0002").meta["tag"] == "canary-rejected"

    def test_lineage_and_rollback(self, registry, retrain_stack):
        reg, method = registry
        reg.save(method, tag="refit-incremental", parent="v0001")
        reg.set_live("v0002")
        reg.save(method, tag="refit-incremental", parent="v0002")
        reg.set_live("v0003")
        assert reg.lineage() == ["v0003", "v0002", "v0001"]
        info = reg.rollback()
        assert info.version == "v0002"
        assert reg.live() == "v0002"

    def test_live_pointer_survives_reopen(self, registry, tmp_path):
        reg, _ = registry
        assert ModelRegistry(tmp_path / "registry").live() == reg.live()


# --------------------------------------------------------------------- #
# Canary gate.
# --------------------------------------------------------------------- #


class TestCanaryGate:
    def _fixture(self, d=4, n=24, seed=0):
        rng = as_generator(seed)
        pairs = [PredictorPair(d, (8,), rng=1)]
        labels = [
            _label(task_id=i, cluster_id=0, end=float(i),
                   realized_hours=float(np.exp(rng.normal() * 0.2)),
                   success=bool(rng.uniform() < 0.9), d=d)
            for i in range(n)
        ]
        Z = np.stack([l.features for l in labels[:6]])
        windows = [CanaryWindow(
            window=0, pair_rows=(0,),
            T=np.abs(rng.normal(size=(1, 6))) + 0.1,
            A=rng.uniform(0.5, 1.0, size=(1, 6)),
            gamma=0.5, Z=Z)]
        return pairs, labels, windows

    def test_insufficient_holdout_always_fails(self):
        pairs, labels, windows = self._fixture()
        gate = CanaryGate(min_holdout=12)
        decision = gate.evaluate(pairs, pairs, {0: 0}, labels[:5], windows)
        assert not decision.passed
        assert decision.reasons == ("insufficient_holdout(5<12)",)
        assert np.isnan(decision.time_mse_candidate)

    def test_self_comparison_passes(self):
        pairs, labels, windows = self._fixture()
        gate = CanaryGate(min_holdout=4)
        decision = gate.evaluate(pairs, pairs, {0: 0}, labels, windows)
        assert decision.passed and decision.reasons == ()
        assert decision.time_mse_candidate == decision.time_mse_live
        assert decision.regret_candidate == decision.regret_live

    def test_degraded_candidate_fails_with_named_axes(self):
        pairs, labels, windows = self._fixture()
        bad = [PredictorPair(4, (8,), rng=99)]
        Z = np.stack([l.features for l in labels])
        ok = np.array([l.success for l in labels])
        t = np.array([l.realized_hours for l in labels])[ok]
        # Train the live model so the untrained candidate is clearly worse.
        train_time_mse(pairs[0].time, Z[ok], t,
                       TrainConfig(epochs=60, batch_size=8), as_generator(0))
        gate = CanaryGate(min_holdout=4)
        decision = gate.evaluate(bad, pairs, {0: 0}, labels, windows)
        assert not decision.passed
        assert "time_mse" in decision.reasons
        assert decision.metrics()["canary_passed"] == 0.0

    def test_no_cached_windows_is_vacuously_equal_on_regret(self):
        pairs, labels, _ = self._fixture()
        gate = CanaryGate(min_holdout=4)
        decision = gate.evaluate(pairs, pairs, {0: 0}, labels, [])
        assert decision.passed
        assert np.isnan(decision.regret_candidate)


# --------------------------------------------------------------------- #
# ServeConfig facade + deprecation shims.
# --------------------------------------------------------------------- #


class TestServeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(pool_size=0)
        with pytest.raises(ValueError):
            ServeConfig(shed_policy="panic")
        with pytest.raises(ValueError):
            RetrainConfig(trigger="hope")
        with pytest.raises(ValueError):
            RetrainConfig(holdout_fraction=1.5)

    def test_json_round_trip_with_subsystems(self):
        config = ServeConfig(
            pool_size=20, train_epochs=5, max_batch=12,
            monitor=MonitorConfig(sample_every=5),
            retrain=RetrainConfig(trigger="both", period_windows=6, seed=3),
            registry_root="/tmp/reg")
        params = json.loads(json.dumps(config.to_params()))
        assert ServeConfig.from_params(params) == config

    def test_from_params_tolerates_legacy_dicts(self):
        legacy = ServeConfig(pool_size=20).to_params()
        for key in ("monitor", "retrain", "registry_root"):
            legacy.pop(key)
        config = ServeConfig.from_params(legacy)
        assert config.monitor is None and config.retrain is None

    def test_with_overrides(self):
        base = ServeConfig()
        assert base.with_overrides(seed=9).seed == 9
        assert base.seed == 0

    def test_solver_knobs_validate_and_round_trip(self):
        with pytest.raises(ValueError):
            ServeConfig(solve_mode="quantum")
        with pytest.raises(ValueError):
            ServeConfig(warm_start="maybe")
        config = ServeConfig(warm_start="learned", solve_mode="blocks")
        params = json.loads(json.dumps(config.to_params()))
        assert params["solve_mode"] == "blocks"
        assert ServeConfig.from_params(params) == config
        dcfg = config.dispatcher_config()
        assert dcfg.solve_mode == "blocks"
        assert dcfg.learned_seeds and dcfg.warm_start

    def test_legacy_bool_warm_start_normalizes(self):
        # Old logs / callers passed warm_start=True/False; the typed
        # config coerces to the tri-state and round-trips as strings.
        assert ServeConfig(warm_start=True).warm_start == "cache"
        assert ServeConfig(warm_start=False).warm_start == "off"
        off = ServeConfig(warm_start=False)
        assert not off.dispatcher_config().warm_start
        legacy = off.to_params()
        legacy["warm_start"] = False
        assert ServeConfig.from_params(legacy) == off
        legacy.pop("solve_mode")  # pre-blocks logs
        assert ServeConfig.from_params(legacy).solve_mode == "scalar"

    def test_legacy_helpers_removed(self):
        # The PR-5 deprecation shims are gone: ServeConfig / build_stack
        # from repro.serve are the only way in.
        with pytest.raises(ImportError):
            from repro.monitor import serve_params  # noqa: F401
        with pytest.raises(ImportError):
            from repro.monitor.replay import build_stack  # noqa: F401
        import repro.monitor as monitor

        assert "serve_params" not in monitor.__all__
        assert "build_stack" not in monitor.__all__

    def test_clusters_registry_shim_removed(self):
        import importlib
        import sys

        sys.modules.pop("repro.clusters.registry", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.clusters.registry")


# --------------------------------------------------------------------- #
# Alert sinks.
# --------------------------------------------------------------------- #


class _ExplodingSink:
    def emit(self, alert):
        raise RuntimeError("sink down")


def _alert():
    from repro.monitor.quality import Alert

    return Alert(window=3, time=1.5, kind="drift", signal="time_error",
                 detector="page-hinkley", value=0.42, message="drifted")


def _monitored_run(retrain_stack, sinks):
    from repro.serve import PoissonLoad

    pool, clusters, spec, method = retrain_stack
    monitor = QualityMonitor(MonitorConfig(sample_every=5, time_threshold=0.5,
                                           time_delta=0.01), sinks=sinks)
    dispatcher = Dispatcher(clusters, method, spec,
                            DispatcherConfig(max_batch=8, max_wait_hours=0.25,
                                             queue_capacity=64),
                            callbacks=[monitor])
    events = PoissonLoad(pool, 40.0).draw(3.0, as_generator(3))
    dispatcher.run(events, rng=4)
    return monitor


class TestAlertSinks:
    def test_fan_out_reaches_every_sink(self, retrain_stack, tmp_path):
        path = tmp_path / "alerts.jsonl"
        seen = []
        monitor = _monitored_run(
            retrain_stack, [FileTailSink(path), CallableSink(seen.append)])
        assert monitor.alerts, "fixture must raise at least one alert"
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == len(monitor.alerts) == len(seen)
        assert lines[0]["kind"] == monitor.alerts[0].kind
        assert seen[0]["window"] == monitor.alerts[0].window

    def test_failing_sink_is_isolated(self, retrain_stack):
        seen = []
        monitor = _monitored_run(
            retrain_stack, [_ExplodingSink(), CallableSink(seen.append)])
        assert monitor.alerts, "fixture must raise at least one alert"
        # The healthy sink got every alert; failures were counted, and
        # the run itself was never interrupted.
        assert len(seen) == len(monitor.alerts)
        assert monitor.sink_errors["_ExplodingSink"] == len(monitor.alerts)
        assert monitor.summary()["sink_errors"]["_ExplodingSink"] > 0

    def test_add_sink_chains(self, tmp_path):
        seen = []
        monitor = QualityMonitor().add_sink(CallableSink(seen.append))
        assert monitor.sinks

    def test_callable_sink_retries_transient_failures(self):
        calls, naps = [], []

        def flaky(payload):
            calls.append(payload)
            if len(calls) < 3:
                raise RuntimeError("endpoint 503")

        sink = CallableSink(flaky, max_attempts=3, backoff_s=0.1,
                            sleep=naps.append)
        sink.emit(_alert())
        assert sink.emitted == 1 and sink.retries == 2
        assert sink.dead_lettered == 0
        # Exponential schedule: backoff_s, 2*backoff_s.
        assert naps == [0.1, 0.2]

    def test_callable_sink_dead_letters_after_exhaustion(self, tmp_path):
        dead = tmp_path / "dead.jsonl"

        def down(payload):
            raise RuntimeError("endpoint down")

        sink = CallableSink(down, "pager", max_attempts=2, backoff_s=0.0,
                            dead_letter=dead, sleep=lambda s: None)
        alert = _alert()
        with pytest.raises(RuntimeError, match="endpoint down"):
            sink.emit(alert)
        assert sink.dead_lettered == 1 and sink.emitted == 0
        (record,) = [json.loads(l) for l in dead.read_text().splitlines()]
        assert record["sink"] == "pager"
        assert record["attempts"] == 2
        assert "endpoint down" in record["error"]
        assert record["alert"]["kind"] == alert.kind
        # The operator replay path: feeding the payload back through a
        # healthy sink delivers the original alert dict.
        seen = []
        CallableSink(seen.append).fn(record["alert"])
        assert seen == [record["alert"]]

    def test_monitor_counts_dead_lettered_sink_errors(self, retrain_stack,
                                                      tmp_path):
        dead = tmp_path / "dead.jsonl"

        def down(payload):
            raise RuntimeError("endpoint down")

        sink = CallableSink(down, max_attempts=2, backoff_s=0.0,
                            dead_letter=dead, sleep=lambda s: None)
        monitor = _monitored_run(retrain_stack, [sink])
        assert monitor.alerts, "fixture must raise at least one alert"
        # Isolation intact: every alert dead-lettered AND counted.
        assert sink.dead_lettered == len(monitor.alerts)
        assert monitor.sink_errors["CallableSink"] == len(monitor.alerts)
        assert len(dead.read_text().splitlines()) == len(monitor.alerts)


# --------------------------------------------------------------------- #
# The closed loop, end to end.
# --------------------------------------------------------------------- #

#: Drift-triggered closed loop sized for tests: the label-count backoff
#: defers the (single) drift trigger until enough evidence accumulated.
LOOP_RETRAIN = RetrainConfig(
    trigger="drift", min_labels=90, min_cluster_labels=4, sample_size=128,
    epochs=8, steps_per_window=64, canary_min_holdout=4, guard_windows=3,
    cooldown_windows=4)


def _loop_config(train_epochs, retrain=LOOP_RETRAIN):
    return ServeConfig(
        pool_size=24, seed=0, train_epochs=train_epochs,
        solver_max_iters=300, max_batch=8,
        monitor=MonitorConfig(sample_every=5), retrain=retrain)


def _run_loop(config, root, horizon=8.0, telemetry=None, out_dir=None):
    platform = build_platform(config, registry_root=str(root))
    events = platform.load("poisson", 30.0).draw(
        horizon, as_generator(config.seed + 3))
    if telemetry:
        with recording(mode="jsonl", run=telemetry, out_dir=str(out_dir),
                       meta={"serve": config.to_params()},
                       stream=io.StringIO()):
            stats = platform.run(events)
    else:
        stats = platform.run(events)
    return platform, stats


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def recovery(self, tmp_path_factory):
        """Undertrained deploy: drift fires, refit promotes, error drops."""
        root = tmp_path_factory.mktemp("loop")
        config = _loop_config(train_epochs=1)
        platform, stats = _run_loop(config, root / "a", telemetry="loop",
                                    out_dir=root)
        return config, platform, stats, root

    def test_drift_alert_started_the_cascade(self, recovery):
        _, platform, _, _ = recovery
        kinds = [a.kind for a in platform.monitor.alerts]
        assert "retrain_suggested" in kinds
        triggered = [e for e in platform.controller.events
                     if e["kind"] == "triggered"]
        assert triggered and triggered[0]["reason"].startswith("drift")

    def test_canary_passed_and_swap_applied(self, recovery):
        _, platform, stats, _ = recovery
        kinds = [e["kind"] for e in platform.controller.events]
        assert "promoted" in kinds
        assert stats.swaps >= 1
        assert platform.registry.live() != "v0001"
        assert [s["reason"] for s in stats.swap_events] == ["retrain"] * stats.swaps

    def test_post_swap_error_below_pre_retrain_level(self, recovery):
        _, platform, _, _ = recovery
        first = next(e["window"] for e in platform.controller.events
                     if e["kind"] == "promoted")
        errors = platform.controller.window_errors
        pre = [m for w, m in errors if w <= first]
        post = [m for w, m in errors if w > first]
        assert pre and post
        assert np.mean(post) < np.mean(pre)

    def test_promotion_lineage_is_recorded(self, recovery):
        _, platform, _, _ = recovery
        lineage = platform.registry.lineage()
        assert lineage[-1] == "v0001"
        assert len(lineage) >= 2

    def test_rerun_is_byte_identical(self, recovery):
        config, platform, stats, root = recovery
        platform2, stats2 = _run_loop(config, root / "b")
        assert stats2.trace_bytes() == stats.trace_bytes()
        assert platform2.registry.live() == platform.registry.live()
        assert (platform2.registry.info(platform2.registry.live()).digest
                == platform.registry.info(platform.registry.live()).digest)

    def test_trace_replay_reproduces_retrain_swaps(self, recovery):
        config, platform, stats, root = recovery
        replay = TraceReplay.from_log(root / "loop.jsonl")
        assert replay.swaps, "log must carry hot-swap breadcrumbs"
        assert replay.config == config.with_overrides(
            registry_root=replay.config.registry_root)
        stats2 = replay.replay()
        assert replay.verify(stats2) == []
        assert stats2.trace_bytes() == stats.trace_bytes()

    def test_canary_rejection_protects_a_healthy_deploy(self, tmp_path):
        config = _loop_config(
            train_epochs=120,
            retrain=RetrainConfig(
                trigger="periodic", period_windows=5, min_labels=24,
                min_cluster_labels=4, sample_size=128, epochs=8,
                steps_per_window=64, canary_min_holdout=4, guard_windows=3,
                cooldown_windows=6))
        platform, stats = _run_loop(config, tmp_path / "reg", horizon=6.0)
        kinds = [e["kind"] for e in platform.controller.events]
        assert "rejected" in kinds
        assert "promoted" not in kinds
        assert stats.swaps == 0
        assert platform.registry.live() == "v0001"
        rejected = [e["version"] for e in platform.controller.events
                    if e["kind"] == "rejected"]
        for version in rejected:
            assert platform.registry.info(version).meta["tag"] == "canary-rejected"
