"""Tests for the MatchingProblem container and γ selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.matching import (
    ExponentialDecaySpeedup,
    IdentitySpeedup,
    MatchingProblem,
    feasible_gamma,
)

from tests.conftest import random_problem


def _mats(rng, m=3, n=5):
    return rng.uniform(0.2, 3.0, (m, n)), rng.uniform(0.6, 0.99, (m, n))


class TestConstruction:
    def test_shapes_and_accessors(self, rng):
        T, A = _mats(rng)
        p = MatchingProblem(T=T, A=A, gamma=0.2)
        assert (p.M, p.N) == (3, 5)
        assert not p.is_parallel

    def test_matrices_read_only(self, rng):
        T, A = _mats(rng)
        p = MatchingProblem(T=T, A=A, gamma=0.2)
        with pytest.raises(ValueError):
            p.T[0, 0] = 1.0

    @pytest.mark.parametrize(
        "kw",
        [
            dict(beta=0.0),
            dict(lam=-1.0),
            dict(entropy=-0.1),
            dict(cost="quadratic"),
            dict(penalty="none"),
        ],
    )
    def test_hyperparameter_validation(self, rng, kw):
        T, A = _mats(rng)
        with pytest.raises(ValueError):
            MatchingProblem(T=T, A=A, gamma=0.2, **kw)

    def test_rejects_bad_matrices(self, rng):
        T, A = _mats(rng)
        with pytest.raises(ValueError):
            MatchingProblem(T=-T, A=A, gamma=0.2)
        with pytest.raises(ValueError):
            MatchingProblem(T=T, A=A * 2, gamma=0.2)
        with pytest.raises(ValueError):
            MatchingProblem(T=T, A=A[:, :3], gamma=0.2)

    def test_speedup_broadcast(self, rng):
        T, A = _mats(rng)
        p = MatchingProblem(T=T, A=A, gamma=0.2, speedup=(ExponentialDecaySpeedup(),))
        assert len(p.speedup) == 3
        assert p.is_parallel

    def test_identity_speedup_not_parallel(self, rng):
        T, A = _mats(rng)
        p = MatchingProblem(T=T, A=A, gamma=0.2, speedup=(IdentitySpeedup(),))
        assert not p.is_parallel

    def test_speedup_count_validation(self, rng):
        T, A = _mats(rng)
        with pytest.raises(ValueError):
            MatchingProblem(T=T, A=A, gamma=0.2,
                            speedup=(ExponentialDecaySpeedup(),) * 2)


class TestFeasibility:
    def test_uniform_assignment_columns(self, rng):
        p = random_problem(rng)
        X = p.uniform_assignment()
        np.testing.assert_allclose(X.sum(axis=0), np.ones(p.N))

    def test_feasible_start_is_strictly_feasible(self, rng):
        for q in (0.0, 0.3, 0.6, 0.9):
            p = random_problem(rng, gamma_quantile=q)
            X = p.feasible_start()
            assert p.reliability_slack(X) > 0
            np.testing.assert_allclose(X.sum(axis=0), np.ones(p.N))
            assert np.all(X > 0)

    def test_feasible_start_raises_when_unattainable(self, rng):
        T, A = _mats(rng)
        p = MatchingProblem(T=T, A=A, gamma=1.0)  # impossible threshold
        with pytest.raises(ValueError):
            p.feasible_start()

    def test_feasible_gamma_interpolates(self, rng):
        T, A = _mats(rng)
        lo = feasible_gamma(T, A, quantile=0.0)
        hi = feasible_gamma(T, A, quantile=1.0)
        mid = feasible_gamma(T, A, quantile=0.5)
        assert lo <= mid <= hi
        # feasible_gamma backs off by 1e-6 so thresholds stay attainable.
        assert lo == pytest.approx(A.mean() / 3 - 1e-6, abs=1e-9)
        assert hi == pytest.approx(A.max(axis=0).mean() / 3 - 1e-6, abs=1e-9)

    def test_feasible_gamma_validates(self, rng):
        T, A = _mats(rng)
        with pytest.raises(ValueError):
            feasible_gamma(T, A, quantile=1.5)


class TestWithPredictions:
    def test_sanitizes_inputs(self, rng):
        p = random_problem(rng)
        T_hat = np.full((3, 5), -1.0)  # invalid raw predictions
        A_hat = np.full((3, 5), 1.7)
        q = p.with_predictions(T_hat, A_hat)
        assert np.all(q.T > 0)
        assert np.all(q.A <= 1.0)

    def test_gamma_clamped_to_attainable(self, rng):
        p = random_problem(rng, gamma_quantile=0.9)
        # Predictions that underestimate reliability across the board.
        A_hat = np.full((3, 5), 0.3)
        q = p.with_predictions(np.array(p.T), A_hat)
        X = q.feasible_start()  # must not raise
        assert q.reliability_slack(X) > 0
        assert q.gamma < p.gamma

    def test_gamma_untouched_when_attainable(self, rng):
        p = random_problem(rng, gamma_quantile=0.2)
        q = p.with_predictions(np.array(p.T), np.array(p.A))
        assert q.gamma == pytest.approx(p.gamma)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (3, 4), elements=st.floats(0.1, 5.0)),
    arrays(np.float64, (3, 4), elements=st.floats(0.5, 1.0)),
    st.floats(0.0, 0.95),
)
def test_property_feasible_start_always_interior(T, A, q):
    gamma = feasible_gamma(T, A, quantile=q)
    p = MatchingProblem(T=T, A=A, gamma=gamma)
    X = p.feasible_start()
    assert p.reliability_slack(X) > 0
    assert np.all(X > 0) and np.all(X < 1)
    np.testing.assert_allclose(X.sum(axis=0), np.ones(4), atol=1e-9)
