"""Edge-case and regression tests for the autograd engine.

These cover the seams the main test files don't: reflected operators,
fancy indexing, deep graphs, graph reuse, and numerical extremes — the
places where hand-rolled autodiff implementations typically break.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MLP, Adam, Tensor, mse_loss, no_grad, ops
from repro.nn.functional import logsumexp, smooth_max, softmax


class TestReflectedOperators:
    def test_rsub(self):
        t = Tensor([2.0], requires_grad=True)
        (10.0 - t).backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [-1.0])

    def test_rtruediv(self):
        t = Tensor([2.0], requires_grad=True)
        (8.0 / t).backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [-2.0])  # -8/t²

    def test_rmatmul(self):
        A = np.array([[1.0, 2.0], [3.0, 4.0]])
        t = Tensor([1.0, 1.0], requires_grad=True)
        (A @ t).sum().backward()
        np.testing.assert_allclose(t.grad, A.sum(axis=0))

    def test_radd_with_array(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = np.array([1.0, 2.0, 3.0]) + t
        assert isinstance(out, Tensor)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(3))


class TestIndexingAndShapes:
    def test_fancy_index_duplicate_accumulates(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        idx = np.array([1, 1, 2])
        t[idx].sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 2.0, 1.0, 0.0])

    def test_boolean_mask(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        mask = np.array([True, False, True, False])
        t[mask].sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 0.0, 1.0, 0.0])

    def test_reshape_minus_one(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        t.reshape(-1).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_ravel(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        assert t.ravel().shape == (4,)


class TestGraphStructure:
    def test_diamond_graph_gradient(self):
        """x feeds two paths that merge: gradients must sum once, exactly."""
        x = Tensor([3.0], requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        (a * b).backward(np.array([1.0]))
        # d/dx [2x(x+1)] = 4x + 2 = 14
        np.testing.assert_allclose(x.grad, [14.0])

    def test_deep_chain_no_recursion_error(self):
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(3000):
            out = out * 1.0001
        out.backward(np.array([1.0]))
        assert t.grad is not None

    def test_detach_blocks_gradient(self):
        t = Tensor([2.0], requires_grad=True)
        out = t.detach() * 3.0
        assert not out.requires_grad

    def test_second_backward_accumulates(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).backward(np.array([1.0]))
        (t * 2).backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [4.0])

    def test_zero_grad_resets(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).backward(np.array([1.0]))
        t.zero_grad()
        assert t.grad is None


class TestNumericalExtremes:
    def test_softmax_with_huge_logits(self):
        out = softmax(Tensor(np.array([1e4, 0.0, -1e4])))
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data.sum(), 1.0)

    def test_logsumexp_negative_infinity_like(self):
        out = logsumexp(Tensor(np.array([-1e6, -1e6])))
        assert np.isfinite(out.item())

    def test_smooth_max_tiny_beta_approaches_mean_plus_log(self):
        v = np.array([1.0, 2.0, 3.0])
        out = smooth_max(Tensor(v), beta=1e-6).item()
        # (1/β) log Σ e^{βv} → log(M)/β + mean-ish; just check massive upper bound
        assert out > v.max()

    def test_exp_overflow_protected_in_predictor_path(self):
        from repro.predictors import TimePredictor

        tp = TimePredictor(4, (8,), rng=0)
        wild = np.full((2, 4), 1e6)
        out = tp.predict(wild)
        assert np.all(np.isfinite(out))


class TestTrainingLoopHygiene:
    def test_no_grad_inference_does_not_grow_tape(self):
        model = MLP(4, (8,), 1, rng=0)
        x = np.ones((2, 4))
        with no_grad():
            out = model(Tensor(x))
        assert out._parents == ()

    def test_optimizer_ignores_gradless_params(self):
        model = MLP(4, (8,), 1, rng=0)
        opt = Adam(model.parameters(), lr=1e-3)
        opt.step()  # no backward happened; must be a no-op, not a crash
        loss = mse_loss(model(Tensor(np.ones((2, 4)))), np.zeros((2, 1)))
        loss.backward()
        opt.step()

    def test_params_update_only_after_step(self):
        model = MLP(4, (8,), 1, rng=0)
        before = model.state_dict()
        loss = mse_loss(model(Tensor(np.ones((2, 4)))), np.zeros((2, 1)))
        loss.backward()
        for name, arr in model.state_dict().items():
            np.testing.assert_allclose(arr, before[name])
