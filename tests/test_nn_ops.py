"""Finite-difference and property tests for elementwise ops and functional
composites (softmax, log-sum-exp, barriers)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, ops
from repro.nn.functional import (
    log_barrier,
    log_softmax,
    logsumexp,
    logsumexp_np,
    smooth_max,
    softmax,
    softmax_np,
)


def numeric_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    for k in range(x.size):
        xp, xm = x.copy().ravel(), x.copy().ravel()
        xp[k] += eps
        xm[k] -= eps
        g.ravel()[k] = (f(xp.reshape(x.shape)) - f(xm.reshape(x.shape))) / (2 * eps)
    return g


def check_grad(fn, x, rtol=1e-5, atol=1e-7):
    t = Tensor(x, requires_grad=True)
    fn(t).backward()
    num = numeric_grad(lambda v: fn(Tensor(v)).item(), x)
    np.testing.assert_allclose(t.grad, num, rtol=rtol, atol=atol)


RNG = np.random.default_rng(7)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "op,domain",
        [
            (ops.exp, (-2, 2)),
            (ops.log, (0.5, 5)),
            (ops.sqrt, (0.5, 5)),
            (ops.tanh, (-3, 3)),
            (ops.sigmoid, (-5, 5)),
            (ops.softplus, (-5, 5)),
        ],
    )
    def test_grad_matches_fd(self, op, domain):
        x = RNG.uniform(*domain, size=(4, 3))
        check_grad(lambda t: op(t).sum(), x)

    def test_relu_grad_away_from_kink(self):
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        check_grad(lambda t: ops.relu(t).sum(), x)

    def test_leaky_relu_values(self):
        out = ops.leaky_relu(Tensor([-1.0, 2.0]), 0.1)
        np.testing.assert_allclose(out.data, [-0.1, 2.0])

    def test_abs_grad(self):
        x = np.array([-2.0, 3.0, -0.5])
        check_grad(lambda t: ops.abs_(t).sum(), x)

    def test_clip_grad_mask(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        ops.clip(t, 0.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_maximum_minimum(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])
        out = ops.minimum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_where_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        ops.where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_sigmoid_extreme_stability(self):
        out = ops.sigmoid(Tensor([-800.0, 800.0]))
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_softplus_extreme_stability(self):
        out = ops.softplus(Tensor([-800.0, 800.0]))
        assert np.all(np.isfinite(out.data))
        assert out.data[1] == pytest.approx(800.0)


class TestFunctional:
    def test_softmax_normalizes(self):
        x = RNG.normal(size=(3, 4))
        s = softmax(Tensor(x), axis=0)
        np.testing.assert_allclose(s.data.sum(axis=0), np.ones(4))

    def test_softmax_grad(self):
        x = RNG.normal(size=(3, 4))
        w = RNG.normal(size=(3, 4))
        check_grad(lambda t: (softmax(t, axis=0) * w).sum(), x)

    def test_log_softmax_consistency(self):
        x = RNG.normal(size=(2, 5))
        ls = log_softmax(Tensor(x), axis=1).data
        np.testing.assert_allclose(np.exp(ls).sum(axis=1), np.ones(2))

    def test_logsumexp_grad(self):
        x = RNG.normal(size=6)
        check_grad(lambda t: logsumexp(t), x)

    def test_logsumexp_shift_stability(self):
        x = np.array([1000.0, 1000.0])
        out = logsumexp(Tensor(x))
        assert out.item() == pytest.approx(1000.0 + np.log(2))

    def test_smooth_max_bounds(self):
        x = RNG.uniform(0, 5, size=7)
        for beta in (1.0, 5.0, 50.0):
            sm = smooth_max(Tensor(x), beta).item()
            assert x.max() <= sm <= x.max() + np.log(len(x)) / beta + 1e-12

    def test_smooth_max_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            smooth_max(Tensor([1.0]), 0.0)

    def test_log_barrier_grad(self):
        x = RNG.uniform(0.5, 2.0, size=4)
        check_grad(lambda t: log_barrier(t, 0.1).sum(), x)

    def test_log_barrier_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_barrier(Tensor([0.0]), 0.1)
        with pytest.raises(ValueError):
            log_barrier(Tensor([1.0]), -1.0)

    def test_numpy_twins_match_tensor_versions(self):
        x = RNG.normal(size=(3, 5))
        np.testing.assert_allclose(softmax_np(x, axis=0), softmax(Tensor(x), axis=0).data)
        np.testing.assert_allclose(
            logsumexp_np(x, axis=1), logsumexp(Tensor(x), axis=1).data
        )


@settings(max_examples=25, deadline=None)
@given(
    arrays(np.float64, st.integers(2, 8), elements=st.floats(-20, 20, allow_nan=False)),
    st.floats(0.5, 50.0),
)
def test_property_smooth_max_theorem1(v, beta):
    """Property: max(v) <= smooth_max(v, β) <= max(v) + log(M)/β."""
    sm = smooth_max(Tensor(v), beta).item()
    assert v.max() - 1e-9 <= sm <= v.max() + np.log(len(v)) / beta + 1e-9


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, (3, 4), elements=st.floats(-30, 30, allow_nan=False)))
def test_property_softmax_simplex(x):
    s = softmax_np(x, axis=0)
    assert np.all(s >= 0)
    np.testing.assert_allclose(s.sum(axis=0), np.ones(4), atol=1e-12)
