"""Finite-difference verification of every matching objective/gradient,
covering all cost/penalty/speedup/entropy variants."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.matching import (
    ExponentialDecaySpeedup,
    barrier_gradient,
    barrier_second_derivatives,
    barrier_value,
    cluster_loads,
    linear_cost,
    makespan,
    reliability_value,
    smooth_makespan,
)
from repro.matching.objectives import decision_cost, penalty_value, smooth_cost

from tests.conftest import random_problem


def interior_point(problem, rng):
    X = problem.feasible_start() + 0.02 * rng.random((problem.M, problem.N))
    return X / X.sum(axis=0, keepdims=True)


def fd_gradient(problem, X, eps=1e-7):
    g = np.zeros_like(X)
    for i in range(problem.M):
        for j in range(problem.N):
            Xp, Xm = X.copy(), X.copy()
            Xp[i, j] += eps
            Xm[i, j] -= eps
            g[i, j] = (barrier_value(Xp, problem) - barrier_value(Xm, problem)) / (2 * eps)
    return g


class TestValues:
    def test_makespan_is_max_load(self, rng):
        p = random_problem(rng)
        X = p.uniform_assignment()
        np.testing.assert_allclose(makespan(X, p), cluster_loads(X, p).max())

    def test_linear_cost_is_sum(self, rng):
        p = random_problem(rng)
        X = p.uniform_assignment()
        np.testing.assert_allclose(linear_cost(X, p), cluster_loads(X, p).sum())

    def test_smooth_makespan_bounds(self, rng):
        p = random_problem(rng)
        X = interior_point(p, rng)
        hard, smooth = makespan(X, p), smooth_makespan(X, p)
        assert hard <= smooth <= hard + np.log(p.M) / p.beta + 1e-12

    def test_smooth_makespan_converges_in_beta(self, rng):
        p = random_problem(rng)
        X = interior_point(p, rng)
        gaps = [
            smooth_makespan(X, replace(p, beta=b)) - makespan(X, p) for b in (1, 10, 100)
        ]
        assert gaps[0] > gaps[1] > gaps[2] >= 0

    def test_barrier_value_infinite_when_infeasible(self, rng):
        p = random_problem(rng, gamma_quantile=0.9)
        X = p.uniform_assignment()  # typically infeasible at q=0.9
        if p.reliability_slack(X) <= 0:
            assert barrier_value(X, p) == np.inf

    def test_hinge_penalty_finite_when_infeasible(self, rng):
        p = replace(random_problem(rng, gamma_quantile=0.9), penalty="hinge")
        X = p.uniform_assignment()
        assert np.isfinite(barrier_value(X, p))
        assert penalty_value(X, p) >= 0

    def test_decision_cost_dispatch(self, rng):
        p = random_problem(rng)
        X = p.uniform_assignment()
        assert decision_cost(X, p) == makespan(X, p)
        assert decision_cost(X, replace(p, cost="linear")) == linear_cost(X, p)

    def test_parallel_loads_shrink_with_zeta(self, rng):
        p = random_problem(rng)
        pz = replace(p, speedup=(ExponentialDecaySpeedup(floor=0.6),))
        X = np.zeros((p.M, p.N))
        X[0] = 1.0  # all tasks on cluster 0: k=N > 1 → ζ < 1
        assert makespan(X, pz) < makespan(X, p)


@pytest.mark.parametrize("cost", ["makespan", "linear"])
@pytest.mark.parametrize("penalty", ["log_barrier", "hinge"])
@pytest.mark.parametrize("entropy", [0.0, 0.05])
class TestGradientAllVariants:
    def test_gradient_matches_fd(self, rng, cost, penalty, entropy):
        p = replace(random_problem(rng), cost=cost, penalty=penalty, entropy=entropy)
        X = interior_point(p, rng)
        np.testing.assert_allclose(
            barrier_gradient(X, p), fd_gradient(p, X), rtol=1e-4, atol=1e-6
        )


class TestGradientSpecialCases:
    def test_parallel_gradient_matches_fd(self, rng):
        p = replace(
            random_problem(rng), speedup=(ExponentialDecaySpeedup(),), entropy=0.01
        )
        X = interior_point(p, rng)
        np.testing.assert_allclose(
            barrier_gradient(X, p), fd_gradient(p, X), rtol=1e-4, atol=1e-6
        )

    def test_gradient_raises_outside_barrier_domain(self, rng):
        p = random_problem(rng, gamma_quantile=0.9)
        X = p.uniform_assignment()
        if p.reliability_slack(X) <= 0:
            with pytest.raises(ValueError):
                barrier_gradient(X, p)

    def test_hinge_gradient_zero_when_satisfied(self, rng):
        """The vanishing-gradient pathology Table 1 probes: when the hinge
        constraint is satisfied, ∇F carries no reliability information."""
        p = replace(random_problem(rng, gamma_quantile=0.0), penalty="hinge")
        X = p.feasible_start()
        g = barrier_gradient(X, p)
        g_time_only = barrier_gradient(X, replace(p, lam=1e-12))
        np.testing.assert_allclose(g, g_time_only, atol=1e-9)


class TestSecondDerivatives:
    def fd_second(self, p, X, wrt, eps=1e-6):
        P = p.M * p.N
        out = np.zeros((P, P))
        base = np.array(p.T if wrt == "T" else p.A)
        for k in range(P):
            up, dn = base.ravel().copy(), base.ravel().copy()
            up[k] += eps
            dn[k] -= eps
            if wrt == "T":
                p1 = replace(p, T=up.reshape(p.M, p.N))
                p2 = replace(p, T=dn.reshape(p.M, p.N))
            else:
                p1 = replace(p, A=up.reshape(p.M, p.N))
                p2 = replace(p, A=dn.reshape(p.M, p.N))
            out[:, k] = (barrier_gradient(X, p1) - barrier_gradient(X, p2)).ravel() / (2 * eps)
        return out

    def fd_hessian(self, p, X, eps=1e-6):
        P = p.M * p.N
        out = np.zeros((P, P))
        for k in range(P):
            Xp, Xm = X.ravel().copy(), X.ravel().copy()
            Xp[k] += eps
            Xm[k] -= eps
            out[:, k] = (
                barrier_gradient(Xp.reshape(p.M, p.N), p)
                - barrier_gradient(Xm.reshape(p.M, p.N), p)
            ).ravel() / (2 * eps)
        return out

    @pytest.mark.parametrize("cost", ["makespan", "linear"])
    def test_blocks_match_fd(self, rng, cost):
        p = replace(random_problem(rng, n=4), cost=cost, entropy=0.05)
        X = interior_point(p, rng)
        d = barrier_second_derivatives(X, p)
        np.testing.assert_allclose(d.H, self.fd_hessian(p, X), rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(d.C_T, self.fd_second(p, X, "T"), rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(d.C_A, self.fd_second(p, X, "A"), rtol=1e-4, atol=1e-5)

    def test_hessian_psd_on_simplex_tangent(self, rng):
        """H restricted to the feasible directions must be PSD (convexity)."""
        p = replace(random_problem(rng, n=4), entropy=0.05)
        X = interior_point(p, rng)
        H = barrier_second_derivatives(X, p).H
        # Random directions with zero column sums (tangent to constraints).
        for _ in range(20):
            D = rng.normal(size=(p.M, p.N))
            D -= D.mean(axis=0, keepdims=True)
            v = D.ravel()
            assert v @ H @ v >= -1e-8

    def test_parallel_rejected(self, rng):
        p = replace(random_problem(rng), speedup=(ExponentialDecaySpeedup(),))
        with pytest.raises(ValueError):
            barrier_second_derivatives(p.uniform_assignment(), p)
