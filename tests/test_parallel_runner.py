"""Tests for the multiprocessing experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.parallel import KNOWN_METHODS, MethodSpec, run_experiment_parallel
from repro.matching.zeroth_order import ZeroOrderConfig
from repro.methods import MFCPConfig
from repro.predictors.training import TrainConfig

TINY = ExperimentConfig(
    pool_size=24,
    eval_rounds=2,
    seeds=(0, 1),
    mfcp=MFCPConfig(epochs=2, pretrain=TrainConfig(epochs=20),
                    zero_order=ZeroOrderConfig(samples=2, delta=0.05, warm_start_iters=15)),
    supervised=TrainConfig(epochs=20),
)


class TestMethodSpec:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            MethodSpec("gradient_boosting")

    def test_build_instantiates_each_known_method(self):
        for name in ("tam", "oracle"):
            m = MethodSpec(name).build()
            assert hasattr(m, "fit") and hasattr(m, "decide")

    def test_mfcp_variants_get_gradient_mode(self):
        assert MethodSpec("mfcp_ad", {"config": TINY.mfcp}).build().name == "MFCP-AD"
        assert MethodSpec("mfcp_fg", {"config": TINY.mfcp}).build().name == "MFCP-FG"

    def test_kwargs_forwarded(self):
        m = MethodSpec("ucb", {"kappa": 2.5, "ensemble_size": 2}).build()
        assert m.kappa == 2.5

    def test_registry_names_resolve(self):
        for name in KNOWN_METHODS:
            kwargs = {"config": TINY.mfcp} if name.startswith(("mfcp", "spo", "dbb", "dpo")) else {}
            MethodSpec(name, kwargs).build()


class TestParallelExecution:
    def test_matches_sequential(self):
        specs = [MethodSpec("tam"), MethodSpec("tsm", {"train_config": TINY.supervised})]
        seq = run_experiment_parallel("A", specs, TINY, workers=1)
        par = run_experiment_parallel("A", specs, TINY, workers=2)
        for name in ("TAM", "TSM"):
            assert par[name].regret[0] == pytest.approx(seq[name].regret[0], abs=1e-12)
            assert par[name].utilization[0] == pytest.approx(
                seq[name].utilization[0], abs=1e-12
            )

    def test_sample_counts(self):
        specs = [MethodSpec("tam")]
        reports = run_experiment_parallel("B", specs, TINY, workers=2)
        assert len(reports["TAM"].samples) == len(TINY.seeds) * TINY.eval_rounds

    def test_validation(self):
        with pytest.raises(ValueError):
            run_experiment_parallel("A", [], TINY)
        with pytest.raises(ValueError):
            run_experiment_parallel("A", [MethodSpec("tam")], TINY, workers=0)
