"""Tests for the workload substrate: specs, graphs, embeddings, pools."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    DEFAULT_FEATURE_DIM,
    FAMILY_LIST,
    Family,
    GraphEmbedder,
    ModelSpec,
    TaskPool,
    build_graph,
    graph_summary,
    sample_spec,
    sample_specs,
)
from repro.workloads.graphs import OP_TYPES, node_feature_matrix


def spec_strategy():
    return st.builds(
        ModelSpec,
        family=st.sampled_from(list(FAMILY_LIST)),
        depth=st.integers(1, 40),
        width=st.integers(16, 512),
        batch_size=st.integers(8, 256),
        dataset_samples=st.integers(1000, 200_000),
        seq_length=st.integers(1, 256),
        train_epochs=st.integers(10, 300),
    )


class TestModelSpec:
    def test_derived_attributes_positive(self):
        s = ModelSpec(Family.CONV, depth=10, width=64, batch_size=64,
                      dataset_samples=50_000, seq_length=32)
        assert s.flops_per_sample > 0
        assert s.params > 0
        assert s.memory_gb > 0
        assert s.total_flops == pytest.approx(s.epoch_flops * s.train_epochs)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelSpec(Family.MLP, depth=0, width=10, batch_size=1, dataset_samples=10)
        with pytest.raises(ValueError):
            ModelSpec(Family.MLP, depth=1, width=10, batch_size=1,
                      dataset_samples=10, train_epochs=0)

    def test_flops_monotone_in_width(self):
        base = dict(family=Family.TRANSFORMER, depth=4, batch_size=32,
                    dataset_samples=10_000, seq_length=64)
        narrow = ModelSpec(width=128, **base)
        wide = ModelSpec(width=512, **base)
        assert wide.flops_per_sample > narrow.flops_per_sample

    def test_describe_mentions_family(self):
        s = sample_spec(0)
        assert s.family.value in s.describe()

    @settings(max_examples=40, deadline=None)
    @given(spec_strategy())
    def test_property_attributes_finite_positive(self, spec):
        assert np.isfinite(spec.flops_per_sample) and spec.flops_per_sample > 0
        assert np.isfinite(spec.params) and spec.params > 0
        assert spec.arithmetic_intensity > 0
        assert spec.steps_per_epoch >= 1


class TestSampling:
    def test_sample_specs_count_and_balance(self):
        specs = sample_specs(8, rng=1, families=FAMILY_LIST)
        assert len(specs) == 8
        families = {s.family for s in specs}
        assert families == set(FAMILY_LIST)

    def test_sample_specs_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sample_specs(0, rng=1)

    def test_deterministic_given_seed(self):
        a = sample_specs(5, rng=42)
        b = sample_specs(5, rng=42)
        assert a == b

    def test_ranges_respected(self):
        for s in sample_specs(40, rng=3):
            assert s.depth >= 1 and s.width >= 16
            assert 100 <= s.train_epochs <= 400


class TestGraphs:
    @pytest.mark.parametrize("family", list(FAMILY_LIST))
    def test_graph_is_dag_with_io(self, family):
        spec = sample_spec(5, family=family)
        g = build_graph(spec)
        assert nx.is_directed_acyclic_graph(g)
        ops = [d["op"] for _, d in g.nodes(data=True)]
        assert ops.count("input") == 1
        assert ops.count("output") == 1
        assert nx.is_weakly_connected(g)

    @pytest.mark.parametrize("family", list(FAMILY_LIST))
    def test_graph_flops_consistent_with_spec(self, family):
        spec = sample_spec(7, family=family)
        summary = graph_summary(build_graph(spec))
        # Node FLOPs should be the same order as the spec's per-sample FLOPs.
        assert summary["flops"] == pytest.approx(spec.flops_per_sample, rel=0.35)

    def test_node_feature_matrix_shape(self):
        g = build_graph(sample_spec(2))
        feats = node_feature_matrix(g)
        assert feats.shape == (g.number_of_nodes(), len(OP_TYPES) + 3)
        # one-hot block: exactly one 1 per row
        np.testing.assert_allclose(feats[:, : len(OP_TYPES)].sum(axis=1), 1.0)

    def test_conv_has_residual_adds(self):
        spec = ModelSpec(Family.CONV, depth=8, width=32, batch_size=32,
                         dataset_samples=1000, seq_length=32)
        g = build_graph(spec)
        assert any(d["op"] == "add" for _, d in g.nodes(data=True))


class TestEmbedding:
    def test_dimension_and_determinism(self):
        emb = GraphEmbedder()
        spec = sample_spec(9)
        z1, z2 = emb.embed_spec(spec), emb.embed_spec(spec)
        assert z1.shape == (DEFAULT_FEATURE_DIM,)
        np.testing.assert_allclose(z1, z2)

    def test_same_seed_same_embedder(self):
        spec = sample_spec(9)
        np.testing.assert_allclose(
            GraphEmbedder(seed=7).embed_spec(spec), GraphEmbedder(seed=7).embed_spec(spec)
        )

    def test_different_specs_different_embeddings(self):
        emb = GraphEmbedder()
        specs = sample_specs(6, rng=10)
        Z = emb.embed_specs(specs)
        dists = [np.linalg.norm(Z[i] - Z[j]) for i in range(6) for j in range(i + 1, 6)]
        assert min(dists) > 1e-6

    def test_embedding_informative_about_scale(self):
        """Bigger workloads must map to measurably different features."""
        emb = GraphEmbedder()
        small = ModelSpec(Family.MLP, depth=4, width=128, batch_size=64,
                          dataset_samples=10_000)
        big = ModelSpec(Family.MLP, depth=12, width=2048, batch_size=64,
                        dataset_samples=2_000_000)
        assert np.linalg.norm(emb.embed_spec(big) - emb.embed_spec(small)) > 0.1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GraphEmbedder().embed_specs([])
        with pytest.raises(ValueError):
            GraphEmbedder(hidden_dim=0)


class TestTaskPool:
    def test_pool_basics(self, task_pool):
        assert len(task_pool) == 24
        assert task_pool.features().shape == (24, task_pool.feature_dim)
        assert task_pool[0].task_id == 0

    def test_split_partition(self, task_pool):
        train, test = task_pool.split(0.75, rng=0)
        assert len(train) + len(test) == len(task_pool)
        ids = {t.task_id for t in train} | {t.task_id for t in test}
        assert ids == set(range(len(task_pool)))

    def test_split_validates(self, task_pool):
        with pytest.raises(ValueError):
            task_pool.split(1.5)

    def test_sample_round(self, task_pool):
        tasks = task_pool.sample_round(5, rng=1)
        assert len(tasks) == 5
        assert len({t.task_id for t in tasks}) == 5  # no replacement

    def test_sample_round_validates(self, task_pool):
        with pytest.raises(ValueError):
            task_pool.sample_round(0)
        with pytest.raises(ValueError):
            task_pool.sample_round(1000)

    def test_pool_determinism(self):
        p1, p2 = TaskPool(8, rng=5), TaskPool(8, rng=5)
        np.testing.assert_allclose(p1.features(), p2.features())
