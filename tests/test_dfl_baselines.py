"""Tests for the DFL-literature baselines (SPO+, DBB, DPO)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clusters import make_setting
from repro.matching.zeroth_order import ZeroOrderConfig
from repro.methods import (
    BlackboxDiff,
    FitContext,
    MatchSpec,
    MFCPConfig,
    PerturbedOpt,
    SPOPlus,
    make_dfl_methods,
)
from repro.predictors.training import TrainConfig
from repro.workloads import TaskPool

FAST = MFCPConfig(
    epochs=6, pretrain=TrainConfig(epochs=40),
    zero_order=ZeroOrderConfig(samples=4, delta=0.05, warm_start_iters=30),
)


@pytest.fixture(scope="module")
def ctx():
    pool = TaskPool(30, rng=41)
    clusters = make_setting("A")
    train, _ = pool.split(0.7, rng=1)
    return FitContext.build(clusters, train, MatchSpec(), rng=2)


@pytest.fixture(scope="module")
def eval_round(ctx):
    pool = TaskPool(30, rng=41)
    _, test = pool.split(0.7, rng=1)
    tasks = test[:5]
    T = np.stack([c.true_times(tasks) for c in ctx.clusters])
    A = np.stack([c.true_reliabilities(tasks) for c in ctx.clusters])
    return tasks, ctx.spec.build_problem(T, A)


@pytest.mark.parametrize("cls,name", [
    (SPOPlus, "SPO+"),
    (BlackboxDiff, "DBB"),
    (PerturbedOpt, "DPO"),
])
class TestDFLBaselines:
    def test_fit_and_decide(self, ctx, eval_round, cls, name):
        tasks, problem = eval_round
        m = cls(FAST).fit(ctx)
        assert m.name == name
        X = m.decide(problem, tasks)
        assert set(np.unique(X)) <= {0.0, 1.0}
        np.testing.assert_allclose(X.sum(axis=0), np.ones(5))

    def test_loss_history_finite(self, ctx, eval_round, cls, name):
        m = cls(FAST).fit(ctx)
        assert len(m.loss_history) > 0
        assert all(np.isfinite(v) for v in m.loss_history)

    def test_predictions_stay_sane(self, ctx, eval_round, cls, name):
        tasks, problem = eval_round
        m = cls(FAST).fit(ctx)
        T_hat, A_hat = m.predict(tasks)
        assert np.all(T_hat > 0)
        assert np.all((A_hat >= 0) & (A_hat <= 1))
        ratio = T_hat / np.array(problem.T)
        assert np.all(ratio > 0.02) and np.all(ratio < 50.0)


class TestConstruction:
    def test_lineup(self):
        names = [m.name for m in make_dfl_methods(FAST)]
        assert names == ["SPO+", "DBB", "DPO", "MFCP-AD", "MFCP-FG"]

    def test_validation(self):
        with pytest.raises(ValueError):
            BlackboxDiff(FAST, interpolation=0.0)
        with pytest.raises(ValueError):
            PerturbedOpt(FAST, sigma=0.0)
        with pytest.raises(ValueError):
            PerturbedOpt(FAST, samples=1)
