"""Tests for the five methods and the Table 1 ablation variants.

Uses one module-scoped fitted context so the (deliberately small) training
runs happen once; individual tests probe interface contracts, prediction
sanity, and decision quality.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.clusters import make_setting
from repro.matching import makespan, reliability_value
from repro.matching.speedup import ExponentialDecaySpeedup
from repro.matching.zeroth_order import ZeroOrderConfig
from repro.methods import (
    MFCP,
    MFCPConfig,
    MFCPHardPenalty,
    MFCPLinearLoss,
    MatchSpec,
    FitContext,
    TAM,
    TSM,
    UCB,
    make_table1_methods,
)
from repro.predictors.training import TrainConfig
from repro.workloads import TaskPool

FAST_TRAIN = TrainConfig(epochs=60)
FAST_MFCP = MFCPConfig(
    epochs=10, pretrain=TrainConfig(epochs=60),
    zero_order=ZeroOrderConfig(samples=4, delta=0.05, warm_start_iters=40),
)


@pytest.fixture(scope="module")
def ctx():
    pool = TaskPool(40, rng=21)
    clusters = make_setting("A")
    train, _ = pool.split(0.7, rng=1)
    return FitContext.build(clusters, train, MatchSpec(), rng=2)


@pytest.fixture(scope="module")
def eval_round(ctx):
    pool = TaskPool(40, rng=21)
    _, test = pool.split(0.7, rng=1)
    tasks = test[:5]
    T = np.stack([c.true_times(tasks) for c in ctx.clusters])
    A = np.stack([c.true_reliabilities(tasks) for c in ctx.clusters])
    return tasks, ctx.spec.build_problem(T, A)


def fitted(method, ctx):
    return method.fit(ctx)


class TestInterfaceContracts:
    def test_decide_before_fit_raises(self, eval_round):
        tasks, problem = eval_round
        with pytest.raises(RuntimeError):
            TAM().decide(problem, tasks)

    @pytest.mark.parametrize("method_factory", [
        TAM,
        lambda: TSM(train_config=FAST_TRAIN),
        lambda: MFCP("analytic", FAST_MFCP),
    ])
    def test_predict_shapes_and_ranges(self, ctx, eval_round, method_factory):
        tasks, _ = eval_round
        m = fitted(method_factory(), ctx)
        T_hat, A_hat = m.predict(tasks)
        assert T_hat.shape == A_hat.shape == (3, 5)
        assert np.all(T_hat > 0)
        assert np.all((A_hat >= 0) & (A_hat <= 1))

    def test_decide_returns_valid_matching(self, ctx, eval_round):
        tasks, problem = eval_round
        m = fitted(TSM(train_config=FAST_TRAIN), ctx)
        X = m.decide(problem, tasks)
        assert set(np.unique(X)) <= {0.0, 1.0}
        np.testing.assert_allclose(X.sum(axis=0), np.ones(5))


class TestTAM:
    def test_constant_rows(self, ctx, eval_round):
        tasks, _ = eval_round
        m = fitted(TAM(), ctx)
        T_hat, A_hat = m.predict(tasks)
        assert np.all(T_hat == T_hat[:, :1])
        assert np.all(A_hat == A_hat[:, :1])

    def test_deterministic_decisions(self, ctx, eval_round):
        """Table 2 shows ±0.000 std for TAM: repeated decides are identical."""
        tasks, problem = eval_round
        m = fitted(TAM(), ctx)
        X1, X2 = m.decide(problem, tasks), m.decide(problem, tasks)
        np.testing.assert_array_equal(X1, X2)


class TestTSM:
    def test_better_than_tam_predictions(self, ctx, eval_round):
        """TSM models task variation; its time predictions must correlate
        with the true per-task times far better than TAM's constants."""
        tasks, problem = eval_round
        tsm = fitted(TSM(train_config=FAST_TRAIN), ctx)
        T_hat, _ = tsm.predict(tasks)
        T_true = np.array(problem.T)
        corr = np.corrcoef(np.log(T_hat.ravel()), np.log(T_true.ravel()))[0, 1]
        assert corr > 0.5

    def test_pairs_exposed(self, ctx):
        tsm = fitted(TSM(train_config=FAST_TRAIN), ctx)
        assert len(tsm.pairs) == 3


class TestUCB:
    def test_pessimism_direction(self, ctx, eval_round):
        """UCB predicts inflated times and deflated reliabilities versus a
        zero-kappa twin sharing the same ensembles."""
        tasks, _ = eval_round
        ucb = fitted(UCB(kappa=1.0, ensemble_size=2,
                         train_config=TrainConfig(epochs=40)), ctx)
        T1, A1 = ucb.predict(tasks)
        ucb.kappa = 0.0
        T0, A0 = ucb.predict(tasks)
        assert np.all(T1 >= T0 - 1e-12)
        assert np.all(A1 <= A0 + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            UCB(kappa=-1)
        with pytest.raises(ValueError):
            UCB(ensemble_size=1)


class TestMFCP:
    def test_rejects_unknown_gradient(self):
        with pytest.raises(ValueError):
            MFCP("secant")

    def test_names(self):
        assert MFCP("analytic").name == "MFCP-AD"
        assert MFCP("forward").name == "MFCP-FG"

    def test_ad_rejects_parallel_spec(self, ctx):
        spec = replace(ctx.spec, speedup=(ExponentialDecaySpeedup(),))
        pctx = replace(ctx, spec=spec)
        with pytest.raises(ValueError):
            MFCP("analytic", FAST_MFCP).fit(pctx)

    def test_fg_trains_on_parallel_spec(self, ctx, eval_round):
        tasks, problem = eval_round
        spec = replace(ctx.spec, speedup=(ExponentialDecaySpeedup(),))
        pctx = replace(ctx, spec=spec)
        m = MFCP("forward", FAST_MFCP).fit(pctx)
        pproblem = replace(problem, speedup=(ExponentialDecaySpeedup(),))
        X = m.decide(pproblem, tasks)
        np.testing.assert_allclose(X.sum(axis=0), np.ones(5))

    def test_loss_history_recorded(self, ctx):
        m = MFCP("analytic", FAST_MFCP).fit(ctx)
        assert len(m.loss_history) > 0
        assert all(np.isfinite(v) for v in m.loss_history)

    def test_regret_training_does_not_destroy_predictions(self, ctx, eval_round):
        """After regret training, predictions must remain same-order-of-
        magnitude correct (MFCP trades MSE for decisions, not for garbage)."""
        tasks, problem = eval_round
        m = MFCP("analytic", FAST_MFCP).fit(ctx)
        T_hat, _ = m.predict(tasks)
        ratio = T_hat / np.array(problem.T)
        assert np.all(ratio > 0.05) and np.all(ratio < 20.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MFCPConfig(epochs=0)
        with pytest.raises(ValueError):
            MFCPConfig(lr=-1)
        with pytest.raises(ValueError):
            MFCPConfig(slack_floor=0)


class TestAblations:
    def test_table1_lineup(self):
        methods = make_table1_methods(FAST_MFCP)
        names = [m.name for m in methods]
        assert names == [
            "MFCP (linear loss)", "MFCP (hard penalty)", "MFCP-FG", "MFCP-AD",
        ]

    def test_linear_loss_decision_problem(self, ctx, eval_round):
        tasks, problem = eval_round
        m = MFCPLinearLoss("analytic", FAST_MFCP).fit(ctx)
        dp = m._decision_problem(problem)
        assert dp.cost == "linear"

    def test_hard_penalty_decision_problem(self, ctx, eval_round):
        tasks, problem = eval_round
        m = MFCPHardPenalty("analytic", FAST_MFCP).fit(ctx)
        dp = m._decision_problem(problem)
        assert dp.penalty == "hinge"
        assert dp.lam > problem.lam

    def test_linear_loss_concentrates_load(self, ctx, eval_round):
        """The linear cost ignores balance: it must put (weakly) more tasks
        on the per-task-fastest clusters than the makespan objective does."""
        from repro.metrics import cluster_utilization

        tasks, problem = eval_round
        lin = MFCPLinearLoss("analytic", FAST_MFCP).fit(ctx)
        full = MFCP("analytic", FAST_MFCP).fit(ctx)
        u_lin = cluster_utilization(lin.decide(problem, tasks), problem)
        u_full = cluster_utilization(full.decide(problem, tasks), problem)
        assert u_lin <= u_full + 0.15
