"""Tests for the trainable GNN layers (graph.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, Tensor, mse_loss, ops
from repro.nn.graph import GNNEncoder, GNNTimePredictor, GraphConv, graph_inputs
from repro.workloads import Family, ModelSpec, sample_specs


@pytest.fixture(scope="module")
def specs():
    return sample_specs(6, rng=13)


@pytest.fixture(scope="module")
def graphs(specs):
    return GNNTimePredictor.prepare(specs)


class TestGraphInputs:
    def test_normalized_adjacency_symmetric(self, specs):
        adj, feats = graph_inputs(specs[0])
        assert adj.shape[0] == adj.shape[1] == feats.shape[0]
        np.testing.assert_allclose(adj, adj.T, atol=1e-12)
        # Self-loops present: diagonal strictly positive.
        assert np.all(np.diag(adj) > 0)

    def test_spectral_radius_bounded(self, specs):
        adj, _ = graph_inputs(specs[1])
        eigs = np.linalg.eigvalsh(adj)
        assert eigs.max() <= 1.0 + 1e-9  # GCN normalization property


class TestGraphConv:
    def test_forward_shape(self, graphs):
        adj, feats = graphs[0]
        layer = GraphConv(feats.shape[1], 8, rng=0)
        out = layer((adj, Tensor(feats)))
        assert out.shape == (feats.shape[0], 8)

    def test_gradients_flow_to_weights(self, graphs):
        adj, feats = graphs[0]
        layer = GraphConv(feats.shape[1], 4, rng=0)
        out = layer((adj, Tensor(feats)))
        out.sum().backward()
        assert layer.linear.weight.grad is not None
        assert np.any(layer.linear.weight.grad != 0)

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            GraphConv(4, 4, activation="swish")


class TestGNNEncoder:
    def test_embedding_dim_and_range(self, graphs):
        adj, feats = graphs[0]
        enc = GNNEncoder(feats.shape[1], (16,), out_dim=8, rng=0)
        z = enc.encode(adj, feats)
        assert z.shape == (8,)
        assert np.all(np.abs(z.data) <= 1.0)  # tanh readout

    def test_batch_encoding(self, graphs):
        in_dim = graphs[0][1].shape[1]
        enc = GNNEncoder(in_dim, (16,), out_dim=8, rng=0)
        Z = enc.encode_batch(graphs)
        assert Z.shape == (len(graphs), 8)

    def test_distinct_graphs_distinct_embeddings(self, graphs):
        in_dim = graphs[0][1].shape[1]
        enc = GNNEncoder(in_dim, (16,), out_dim=8, rng=0)
        Z = enc.encode_batch(graphs).data
        dists = [np.linalg.norm(Z[i] - Z[j])
                 for i in range(len(Z)) for j in range(i + 1, len(Z))]
        assert min(dists) > 1e-8

    def test_empty_batch_rejected(self, graphs):
        in_dim = graphs[0][1].shape[1]
        enc = GNNEncoder(in_dim, (8,), out_dim=4, rng=0)
        with pytest.raises(ValueError):
            enc.encode_batch([])

    def test_validation(self):
        with pytest.raises(ValueError):
            GNNEncoder(4, (8,), out_dim=0)


class TestGNNTimePredictor:
    def test_positive_predictions(self, graphs):
        in_dim = graphs[0][1].shape[1]
        model = GNNTimePredictor(in_dim, (16,), 8, (16,), rng=0)
        out = model.predict(graphs)
        assert out.shape == (len(graphs),)
        assert np.all(out > 0)

    def test_end_to_end_training_reduces_loss(self, specs, graphs):
        """The headline property: gradients reach the graph encoder and the
        model fits measured times through the full graph pipeline."""
        in_dim = graphs[0][1].shape[1]
        model = GNNTimePredictor(in_dim, (16,), 8, (16,), rng=0)
        # Synthetic target correlated with graph size (learnable signal).
        target = np.array([0.1 * g[1].shape[0] for g in graphs])
        opt = Adam(model.parameters(), lr=5e-3)
        losses = []
        for _ in range(150):
            opt.zero_grad()
            pred = ops.log(model(graphs))
            loss = mse_loss(pred, np.log(target))
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.3 * losses[0]
        # Encoder weights actually moved (not just the head).
        grads = [p.grad for p in model.encoder.parameters()]
        assert any(g is not None and np.any(g != 0) for g in grads)

    def test_prepare_helper(self, specs):
        graphs = GNNTimePredictor.prepare(specs[:2])
        assert len(graphs) == 2
        assert graphs[0][0].shape[0] == graphs[0][1].shape[0]
