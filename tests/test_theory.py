"""Tests for the Theorem 1–5 numerical-verification modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.theory import (
    convex_convergence_study,
    feasibility_study,
    gradient_error_study,
    smooth_max_gap,
    sweep_beta,
    theorem1_bound,
    verify_theorem1,
    nonconvex_convergence_study,
)


class TestTheorem1:
    def test_gap_nonnegative_and_bounded(self, rng):
        v = rng.uniform(0, 5, size=6)
        for beta in (0.5, 5.0, 50.0):
            gap = smooth_max_gap(v, beta)
            assert 0 <= gap <= theorem1_bound(6, beta) + 1e-12

    def test_verify_helper(self, rng):
        assert verify_theorem1(rng.uniform(0, 3, 4), beta=2.0)

    def test_sweep_converges(self):
        sweep = sweep_beta([1.0, 5.0, 25.0, 125.0], m=3, instances=20, rng=0)
        assert sweep.holds()
        assert np.all(np.diff(sweep.empirical_gap) <= 1e-12)  # shrinking in β

    def test_input_validation(self):
        with pytest.raises(ValueError):
            smooth_max_gap(np.ones(3), 0.0)
        with pytest.raises(ValueError):
            theorem1_bound(0, 1.0)
        with pytest.raises(ValueError):
            sweep_beta([-1.0])


class TestTheorem2:
    def test_relaxed_solutions_feasible(self):
        stats = feasibility_study([0.01], instances=10, rng=0)
        assert stats[0].relaxed_violation_rate == 0.0  # barrier keeps interior

    def test_violations_controlled_across_lam(self):
        stats = feasibility_study([0.001, 0.1], instances=10, rng=1)
        for s in stats:
            assert s.rounded_worst_violation < 0.05  # rounding repair works

    def test_lam_validation(self):
        with pytest.raises(ValueError):
            feasibility_study([0.0], instances=2)


class TestTheorem3:
    def test_error_shrinks_with_samples(self):
        pts = gradient_error_study([0.05], [2, 32], repeats=3, rng=0)
        by_s = {p.samples: p.mse for p in pts}
        assert by_s[32] <= by_s[2] * 1.5  # variance reduction (noise headroom)

    def test_direction_agreement(self):
        pts = gradient_error_study([0.03], [16], repeats=3, rng=1)
        assert pts[0].cosine > 0.5


class TestTheorems4And5:
    def test_convex_linear_convergence(self):
        res = convex_convergence_study(rng=0, iters=200)
        assert res.is_linear()
        # Gap must drop by orders of magnitude over the run.
        assert res.gaps[-1] < res.gaps[0] * 1e-2

    def test_nonconvex_stationarity_decreases(self):
        res = nonconvex_convergence_study(rng=0, checkpoints=[10, 50, 200])
        assert res.is_decreasing()
        assert res.grad_norms[-1] < res.grad_norms[0]
