"""Tests for the ζ speedup functions (paper §3.4 / §4.5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.speedup import (
    ExponentialDecaySpeedup,
    IdentitySpeedup,
    PowerLawSpeedup,
    SpeedupFunction,
)


def fd(fn, k, eps=1e-6):
    return (fn.value(np.array(k + eps)) - fn.value(np.array(k - eps))) / (2 * eps)


class TestIdentity:
    def test_constant_one(self):
        z = IdentitySpeedup()
        k = np.array([0.0, 1.0, 5.0])
        np.testing.assert_allclose(z.value(k), 1.0)
        np.testing.assert_allclose(z.derivative(k), 0.0)

    def test_satisfies_protocol(self):
        assert isinstance(IdentitySpeedup(), SpeedupFunction)
        assert isinstance(ExponentialDecaySpeedup(), SpeedupFunction)


class TestExponentialDecay:
    def test_paper_shape_one_to_floor(self):
        """§4.5: 'an exponential decay curve from 1 to 0.6'."""
        z = ExponentialDecaySpeedup(floor=0.6, rate=0.5)
        assert z.value(np.array(1.0)) == pytest.approx(1.0, abs=0.05)
        assert z.value(np.array(50.0)) == pytest.approx(0.6, abs=0.01)

    def test_monotone_decreasing(self):
        z = ExponentialDecaySpeedup()
        ks = np.linspace(1.0, 20.0, 50)
        vals = z.value(ks)
        assert np.all(np.diff(vals) <= 1e-12)

    def test_derivative_matches_fd(self):
        z = ExponentialDecaySpeedup()
        for k in (0.5, 1.0, 2.0, 7.3):
            assert z.derivative(np.array(k)) == pytest.approx(fd(z, k), abs=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecaySpeedup(floor=0.0)
        with pytest.raises(ValueError):
            ExponentialDecaySpeedup(rate=-1.0)
        with pytest.raises(ValueError):
            ExponentialDecaySpeedup(smoothing=0.0)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.0, 100.0))
    def test_property_range(self, k):
        z = ExponentialDecaySpeedup(floor=0.6)
        v = float(z.value(np.array(k)))
        assert 0.6 - 1e-9 <= v <= 1.0 + 1e-9


class TestPowerLaw:
    def test_floor_respected(self):
        z = PowerLawSpeedup(exponent=0.5, floor=0.5)
        assert float(z.value(np.array(100.0))) == pytest.approx(0.5)

    def test_no_speedup_below_one_task(self):
        z = PowerLawSpeedup()
        assert float(z.value(np.array(0.3))) == pytest.approx(1.0)

    def test_derivative_zero_at_floor(self):
        z = PowerLawSpeedup(exponent=0.5, floor=0.5)
        assert float(z.derivative(np.array(100.0))) == 0.0

    def test_derivative_matches_fd_in_active_region(self):
        z = PowerLawSpeedup(exponent=0.3, floor=0.1)
        for k in (2.0, 5.0):
            assert float(z.derivative(np.array(k))) == pytest.approx(fd(z, k), abs=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerLawSpeedup(exponent=0.0)
        with pytest.raises(ValueError):
            PowerLawSpeedup(floor=1.5)
