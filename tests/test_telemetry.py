"""Tests for the telemetry layer (spans, metrics, recorder, JSONL logs)."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.matching import MatchingProblem, SolverConfig, feasible_gamma, solve_relaxed
from repro.telemetry import (
    ITER_BUCKETS,
    MODES,
    NULL,
    NULL_SPAN,
    Counter,
    Gauge,
    Histogram,
    Recorder,
    aggregate_events,
    current_path,
    get_recorder,
    load_run,
    meta_of,
    quantile,
    recording,
    run_metadata,
)
from repro import telemetry


# --------------------------------------------------------------------- #
# Spans.
# --------------------------------------------------------------------- #


class TestSpans:
    def test_nesting_builds_paths(self):
        rec = Recorder("summary", run="t")
        with rec.activate():
            assert current_path() == ""
            with rec.span("train"):
                assert current_path() == "train"
                with rec.span("epoch"):
                    assert current_path() == "train/epoch"
                    with rec.span("solve"):
                        assert current_path() == "train/epoch/solve"
                assert current_path() == "train"
            assert current_path() == ""
        agg = rec.aggregate()["spans"]
        assert set(agg) == {"train", "train/epoch", "train/epoch/solve"}
        assert agg["train/epoch/solve"]["calls"] == 1

    def test_exception_safety(self):
        rec = Recorder("summary", run="t")
        with rec.activate():
            with pytest.raises(RuntimeError, match="boom"):
                with rec.span("outer"):
                    with rec.span("inner"):
                        raise RuntimeError("boom")
            # the path contextvar is restored even through the raise
            assert current_path() == ""
        agg = rec.aggregate()["spans"]
        assert agg["outer"]["errors"] == 1
        assert agg["outer/inner"]["errors"] == 1

    def test_span_records_elapsed_and_ok(self):
        rec = Recorder("summary", run="t")
        with rec.activate():
            with rec.span("s") as s:
                pass
        assert s.ok and s.elapsed >= 0.0 and s.path == "s"

    def test_invalid_span_names_rejected(self):
        rec = Recorder("summary", run="t")
        for bad in ("", "/lead", "trail/"):
            with pytest.raises(ValueError):
                rec.span(bad)

    def test_module_level_span_without_recorder_is_null(self):
        assert telemetry.span("anything") is NULL_SPAN
        with telemetry.span("x") as s:
            assert current_path() == ""  # no contextvar writes
        assert s.elapsed == 0.0


# --------------------------------------------------------------------- #
# Metric instruments.
# --------------------------------------------------------------------- #


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("n")
        c.add()
        c.add(2.5)
        assert c.value == 3.5 and c.calls == 2
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_last_value(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(-4)
        assert g.value == -4.0 and g.calls == 2

    def test_histogram_le_boundary_semantics(self):
        h = Histogram("h", bounds=(1.0, 5.0, 10.0))
        # Prometheus le semantics: v == boundary lands in that bucket.
        h.observe(1.0)
        h.observe(5.0)
        h.observe(0.0)
        assert h.counts == [2, 1, 0, 0]
        h.observe(10.0)
        h.observe(10.000001)  # overflow bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.vmin == 0.0 and h.vmax == pytest.approx(10.000001)

    def test_histogram_bulk_observe(self):
        h = Histogram("h", bounds=(2.0, 4.0))
        h.observe(3.0, n=7)
        h.observe(3.0, n=0)  # no-op
        h.observe(3.0, n=-2)  # no-op
        assert h.counts == [0, 7, 0]
        assert h.count == 7 and h.total == pytest.approx(21.0)
        assert h.mean == pytest.approx(3.0)
        assert h.calls == 1

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_recorder_keeps_first_bounds(self):
        rec = Recorder("summary", run="t")
        rec.observe("x", 1.0, bounds=(1.0, 2.0))
        rec.observe("x", 100.0, bounds=(50.0,))  # later bounds ignored
        assert rec.aggregate()["histograms"]["x"]["bounds"] == [1.0, 2.0]


class TestQuantile:
    """The public histogram quantile (shared by summaries, bench, monitor)."""

    def test_quantile_on_live_histogram_and_state_dict(self):
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 9.0):
            h.observe(v)
        # Bucket upper bounds, not exact order statistics.
        assert quantile(h, 0.25) == 1.0
        assert quantile(h, 0.5) == 2.0
        assert quantile(h, 0.875) == 4.0
        assert quantile(h, 1.0) == pytest.approx(9.0)  # overflow -> max
        assert quantile(h.state(), 0.5) == quantile(h, 0.5)

    def test_quantile_empty_and_validation(self):
        h = Histogram("h", bounds=(1.0,))
        assert quantile(h, 0.5) == 0.0
        with pytest.raises(ValueError, match="quantile"):
            quantile(h, 1.5)
        with pytest.raises(ValueError, match="quantile"):
            quantile(h, -0.1)


# --------------------------------------------------------------------- #
# Recorder lifecycle and off mode.
# --------------------------------------------------------------------- #


class TestRecorder:
    def test_mode_and_run_validation(self):
        assert MODES == ("off", "summary", "jsonl")
        with pytest.raises(ValueError):
            Recorder("verbose", run="t")
        with pytest.raises(ValueError):
            Recorder("summary", run="a/b")

    def test_off_mode_records_nothing(self, tmp_path, capsys):
        with recording(mode="off", run="t", out_dir=tmp_path) as rec:
            assert rec is NULL
            assert get_recorder() is NULL
            telemetry.counter_add("c")
            telemetry.gauge_set("g", 1.0)
            telemetry.observe("h", 1.0)
            telemetry.event("e")
            with telemetry.span("s"):
                pass
        assert NULL.events_recorded == 0
        assert list(tmp_path.iterdir()) == []
        assert capsys.readouterr().out == ""

    def test_activation_is_scoped(self):
        rec = Recorder("summary", run="t")
        assert get_recorder() is NULL
        with rec.activate():
            assert get_recorder() is rec
        assert get_recorder() is NULL

    def test_summary_mode_writes_no_file(self, tmp_path):
        import io

        sink = io.StringIO()
        with recording(mode="summary", run="t", out_dir=tmp_path, stream=sink):
            telemetry.counter_add("c")
        assert list(tmp_path.iterdir()) == []
        assert "telemetry summary" in sink.getvalue()

    def test_close_idempotent(self, tmp_path):
        import io

        rec = Recorder("jsonl", run="t", out_dir=tmp_path, stream=io.StringIO())
        rec.counter_add("c")
        p1 = rec.close()
        p2 = rec.close()
        assert p1 == p2 and p1.exists()
        # the second close must not duplicate flushed metric lines
        kinds = [e["type"] for e in load_run(p1)]
        assert kinds.count("metric") == 1

    def test_summary_table_renders(self):
        rec = Recorder("summary", run="t")
        with rec.activate():
            with rec.span("fit"):
                pass
        rec.counter_add("solve/calls", 3)
        rec.gauge_set("lr", 0.1)
        rec.observe("iters", 12.0, bounds=ITER_BUCKETS)
        out = rec.summary_table()
        for needle in ("fit", "solve/calls", "lr", "iters"):
            assert needle in out


# --------------------------------------------------------------------- #
# JSONL round trip.
# --------------------------------------------------------------------- #


def _record_workload(rec: Recorder) -> None:
    with rec.activate():
        with rec.span("train"):
            for k in range(3):
                with rec.span("epoch"):
                    rec.counter_add("solve/calls")
                    rec.observe("solve/iterations", 5.0 + k, bounds=ITER_BUCKETS)
        rec.gauge_set("final_loss", 0.25)
        rec.event("milestone", label="done")


class TestJsonlRoundTrip:
    def test_aggregate_round_trip(self, tmp_path):
        import io

        rec = Recorder("jsonl", run="rt", out_dir=tmp_path, stream=io.StringIO())
        _record_workload(rec)
        path = rec.close()
        events = load_run(path)
        assert aggregate_events(events) == rec.aggregate()

    def test_meta_header_first_with_schema(self, tmp_path):
        import io

        meta = run_metadata(config="cfg", seeds=(0, 1), note="x")
        rec = Recorder("jsonl", run="rt", out_dir=tmp_path, meta=meta,
                       stream=io.StringIO())
        _record_workload(rec)
        events = load_run(rec.close())
        head = meta_of(events)
        assert head["type"] == "meta" and head["schema"] == 1
        assert head["run"] == "rt"
        assert head["seeds"] == [0, 1]
        assert head["note"] == "x"
        assert isinstance(head["git_sha"], str) and head["git_sha"]

    def test_rejects_bad_logs(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"type": "span"}\n')
        with pytest.raises(ValueError, match="meta header"):
            load_run(p)
        p.write_text('{"type": "meta", "schema": 99}\n')
        with pytest.raises(ValueError, match="schema"):
            load_run(p)
        # Corruption *before* the tail is an error, not truncation.
        p.write_text('{"schema": 1, "type": "meta"}\nnot json\n{"type": "event"}\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_run(p)

    def test_empty_log_raises_clear_error(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(ValueError, match="empty run log"):
            load_run(p)
        p.write_text("\n   \n")
        with pytest.raises(ValueError, match="empty run log"):
            load_run(p)
        # A log that is *only* a partial line is empty after tolerance.
        p.write_text('{"schema": 1, "type": "me')
        with pytest.raises(ValueError, match="empty run log"):
            load_run(p)

    def test_trailing_partial_line_tolerated(self, tmp_path):
        """A run killed mid-write leaves a partial last line; the rest of
        the log must stay loadable."""
        rec = Recorder("jsonl", run="crash", out_dir=tmp_path,
                       stream=io.StringIO())
        with rec.activate():
            rec.event("alert", kind="drift", window=3)
        path = rec.close()
        whole = load_run(path)
        with open(path, "a") as fh:
            fh.write('{"type": "event", "name": "alert", "trunc')
        assert load_run(path) == whole

    def test_seq_monotone_and_sorted_keys(self, tmp_path):
        import io

        rec = Recorder("jsonl", run="rt", out_dir=tmp_path, stream=io.StringIO())
        _record_workload(rec)
        path = rec.close()
        raw = path.read_text().splitlines()
        for line in raw:
            parsed = json.loads(line)
            assert line == json.dumps(parsed, sort_keys=True)
        seqs = [e["seq"] for e in load_run(path)[1:]]
        assert seqs == sorted(seqs) == list(range(len(seqs)))

    def test_deterministic_structure_across_runs(self, tmp_path):
        """Two identical seeded runs produce structurally identical logs
        (same lines once the wall-clock fields are masked)."""
        import io

        def one_run(name: str):
            rng = np.random.default_rng(0)
            T = rng.uniform(0.2, 3.0, (3, 8))
            A = rng.uniform(0.6, 0.99, (3, 8))
            p = MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.4),
                                entropy=0.05)
            rec = Recorder("jsonl", run=name, out_dir=tmp_path,
                           stream=io.StringIO())
            with rec.activate():
                with rec.span("solve"):
                    solve_relaxed(p, SolverConfig(max_iters=200))
            return rec.close()

        def masked(path):
            out = []
            for ev in load_run(path):
                ev = dict(ev)
                ev.pop("run", None)  # the only intentional difference
                if ev.get("type") in ("span", "span_summary"):
                    ev.pop("dur_s", None)
                    ev.pop("total_s", None)
                if ev.get("name", "").endswith("_s"):  # wall-clock histograms
                    for k in ("sum", "min", "max", "counts"):
                        ev.pop(k, None)
                out.append(json.dumps(ev, sort_keys=True))
            return out

        assert masked(one_run("a")) == masked(one_run("b"))


# --------------------------------------------------------------------- #
# Integration with the instrumented solver / metadata.
# --------------------------------------------------------------------- #


class TestIntegration:
    def test_solver_emits_convergence_metrics(self):
        rng = np.random.default_rng(1)
        T = rng.uniform(0.2, 3.0, (3, 8))
        A = rng.uniform(0.6, 0.99, (3, 8))
        p = MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.4),
                            entropy=0.05)
        rec = Recorder("summary", run="t")
        with rec.activate():
            solve_relaxed(p, SolverConfig(max_iters=200))
        agg = rec.aggregate()
        assert agg["counters"]["solve/calls"]["value"] == 1
        hist = agg["histograms"]["solve/iterations"]
        assert hist["count"] == 1 and hist["sum"] >= 1

    def test_run_metadata_fields(self):
        meta = run_metadata(config={"a": 1}, seeds=np.array([3, 4]))
        assert meta["seeds"] == [3, 4]
        assert meta["config"] == repr({"a": 1})
        assert meta["python"].count(".") == 2
        assert isinstance(meta["argv"], list)

    def test_recording_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            with recording(mode="nope"):
                pass
