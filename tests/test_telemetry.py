"""Tests for the telemetry layer (spans, metrics, recorder, JSONL logs)."""

from __future__ import annotations

import io
import json
import time

import numpy as np
import pytest

from repro.matching import MatchingProblem, SolverConfig, feasible_gamma, solve_relaxed
from repro.telemetry import (
    ITER_BUCKETS,
    MODES,
    NULL,
    NULL_PROFILER,
    NULL_SPAN,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Recorder,
    StageProfiler,
    aggregate_events,
    aggregate_runs,
    current_path,
    get_recorder,
    load_run,
    merge_aggregates,
    meta_of,
    quantile,
    recording,
    run_metadata,
    series_key,
    split_series_key,
)
from repro import telemetry


# --------------------------------------------------------------------- #
# Spans.
# --------------------------------------------------------------------- #


class TestSpans:
    def test_nesting_builds_paths(self):
        rec = Recorder("summary", run="t")
        with rec.activate():
            assert current_path() == ""
            with rec.span("train"):
                assert current_path() == "train"
                with rec.span("epoch"):
                    assert current_path() == "train/epoch"
                    with rec.span("solve"):
                        assert current_path() == "train/epoch/solve"
                assert current_path() == "train"
            assert current_path() == ""
        agg = rec.aggregate()["spans"]
        assert set(agg) == {"train", "train/epoch", "train/epoch/solve"}
        assert agg["train/epoch/solve"]["calls"] == 1

    def test_exception_safety(self):
        rec = Recorder("summary", run="t")
        with rec.activate():
            with pytest.raises(RuntimeError, match="boom"):
                with rec.span("outer"):
                    with rec.span("inner"):
                        raise RuntimeError("boom")
            # the path contextvar is restored even through the raise
            assert current_path() == ""
        agg = rec.aggregate()["spans"]
        assert agg["outer"]["errors"] == 1
        assert agg["outer/inner"]["errors"] == 1

    def test_span_records_elapsed_and_ok(self):
        rec = Recorder("summary", run="t")
        with rec.activate():
            with rec.span("s") as s:
                pass
        assert s.ok and s.elapsed >= 0.0 and s.path == "s"

    def test_invalid_span_names_rejected(self):
        rec = Recorder("summary", run="t")
        for bad in ("", "/lead", "trail/"):
            with pytest.raises(ValueError):
                rec.span(bad)

    def test_module_level_span_without_recorder_is_null(self):
        assert telemetry.span("anything") is NULL_SPAN
        with telemetry.span("x") as s:
            assert current_path() == ""  # no contextvar writes
        assert s.elapsed == 0.0


# --------------------------------------------------------------------- #
# Metric instruments.
# --------------------------------------------------------------------- #


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("n")
        c.add()
        c.add(2.5)
        assert c.value == 3.5 and c.calls == 2
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_last_value(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(-4)
        assert g.value == -4.0 and g.calls == 2

    def test_histogram_le_boundary_semantics(self):
        h = Histogram("h", bounds=(1.0, 5.0, 10.0))
        # Prometheus le semantics: v == boundary lands in that bucket.
        h.observe(1.0)
        h.observe(5.0)
        h.observe(0.0)
        assert h.counts == [2, 1, 0, 0]
        h.observe(10.0)
        h.observe(10.000001)  # overflow bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.vmin == 0.0 and h.vmax == pytest.approx(10.000001)

    def test_histogram_bulk_observe(self):
        h = Histogram("h", bounds=(2.0, 4.0))
        h.observe(3.0, n=7)
        h.observe(3.0, n=0)  # no-op
        h.observe(3.0, n=-2)  # no-op
        assert h.counts == [0, 7, 0]
        assert h.count == 7 and h.total == pytest.approx(21.0)
        assert h.mean == pytest.approx(3.0)
        assert h.calls == 1

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_recorder_keeps_first_bounds(self):
        rec = Recorder("summary", run="t")
        rec.observe("x", 1.0, bounds=(1.0, 2.0))
        rec.observe("x", 100.0, bounds=(50.0,))  # later bounds ignored
        assert rec.aggregate()["histograms"]["x"]["bounds"] == [1.0, 2.0]


class TestQuantile:
    """The public histogram quantile (shared by summaries, bench, monitor)."""

    def test_quantile_on_live_histogram_and_state_dict(self):
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 9.0):
            h.observe(v)
        # Bucket upper bounds, not exact order statistics.
        assert quantile(h, 0.25) == 1.0
        assert quantile(h, 0.5) == 2.0
        assert quantile(h, 0.875) == 4.0
        assert quantile(h, 1.0) == pytest.approx(9.0)  # overflow -> max
        assert quantile(h.state(), 0.5) == quantile(h, 0.5)

    def test_quantile_empty_and_validation(self):
        h = Histogram("h", bounds=(1.0,))
        assert quantile(h, 0.5) == 0.0
        with pytest.raises(ValueError, match="quantile"):
            quantile(h, 1.5)
        with pytest.raises(ValueError, match="quantile"):
            quantile(h, -0.1)


# --------------------------------------------------------------------- #
# Recorder lifecycle and off mode.
# --------------------------------------------------------------------- #


class TestRecorder:
    def test_mode_and_run_validation(self):
        assert MODES == ("off", "summary", "jsonl")
        with pytest.raises(ValueError):
            Recorder("verbose", run="t")
        with pytest.raises(ValueError):
            Recorder("summary", run="a/b")

    def test_off_mode_records_nothing(self, tmp_path, capsys):
        with recording(mode="off", run="t", out_dir=tmp_path) as rec:
            assert rec is NULL
            assert get_recorder() is NULL
            telemetry.counter_add("c")
            telemetry.gauge_set("g", 1.0)
            telemetry.observe("h", 1.0)
            telemetry.event("e")
            with telemetry.span("s"):
                pass
        assert NULL.events_recorded == 0
        assert list(tmp_path.iterdir()) == []
        assert capsys.readouterr().out == ""

    def test_activation_is_scoped(self):
        rec = Recorder("summary", run="t")
        assert get_recorder() is NULL
        with rec.activate():
            assert get_recorder() is rec
        assert get_recorder() is NULL

    def test_summary_mode_writes_no_file(self, tmp_path):
        import io

        sink = io.StringIO()
        with recording(mode="summary", run="t", out_dir=tmp_path, stream=sink):
            telemetry.counter_add("c")
        assert list(tmp_path.iterdir()) == []
        assert "telemetry summary" in sink.getvalue()

    def test_close_idempotent(self, tmp_path):
        import io

        rec = Recorder("jsonl", run="t", out_dir=tmp_path, stream=io.StringIO())
        rec.counter_add("c")
        p1 = rec.close()
        p2 = rec.close()
        assert p1 == p2 and p1.exists()
        # the second close must not duplicate flushed metric lines
        kinds = [e["type"] for e in load_run(p1)]
        assert kinds.count("metric") == 1

    def test_summary_table_renders(self):
        rec = Recorder("summary", run="t")
        with rec.activate():
            with rec.span("fit"):
                pass
        rec.counter_add("solve/calls", 3)
        rec.gauge_set("lr", 0.1)
        rec.observe("iters", 12.0, bounds=ITER_BUCKETS)
        out = rec.summary_table()
        for needle in ("fit", "solve/calls", "lr", "iters"):
            assert needle in out


# --------------------------------------------------------------------- #
# JSONL round trip.
# --------------------------------------------------------------------- #


def _record_workload(rec: Recorder) -> None:
    with rec.activate():
        with rec.span("train"):
            for k in range(3):
                with rec.span("epoch"):
                    rec.counter_add("solve/calls")
                    rec.observe("solve/iterations", 5.0 + k, bounds=ITER_BUCKETS)
        rec.gauge_set("final_loss", 0.25)
        rec.event("milestone", label="done")


class TestJsonlRoundTrip:
    def test_aggregate_round_trip(self, tmp_path):
        import io

        rec = Recorder("jsonl", run="rt", out_dir=tmp_path, stream=io.StringIO())
        _record_workload(rec)
        path = rec.close()
        events = load_run(path)
        assert aggregate_events(events) == rec.aggregate()

    def test_meta_header_first_with_schema(self, tmp_path):
        import io

        meta = run_metadata(config="cfg", seeds=(0, 1), note="x")
        rec = Recorder("jsonl", run="rt", out_dir=tmp_path, meta=meta,
                       stream=io.StringIO())
        _record_workload(rec)
        events = load_run(rec.close())
        head = meta_of(events)
        assert head["type"] == "meta" and head["schema"] == 3
        assert head["run"] == "rt"
        assert head["seeds"] == [0, 1]
        assert head["note"] == "x"
        assert isinstance(head["git_sha"], str) and head["git_sha"]

    def test_rejects_bad_logs(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"type": "span"}\n')
        with pytest.raises(ValueError, match="meta header"):
            load_run(p)
        p.write_text('{"type": "meta", "schema": 99}\n')
        with pytest.raises(ValueError, match="schema"):
            load_run(p)
        # Corruption *before* the tail is an error, not truncation.
        p.write_text('{"schema": 1, "type": "meta"}\nnot json\n{"type": "event"}\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_run(p)

    def test_empty_log_raises_clear_error(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(ValueError, match="empty run log"):
            load_run(p)
        p.write_text("\n   \n")
        with pytest.raises(ValueError, match="empty run log"):
            load_run(p)
        # A log that is *only* a partial line is empty after tolerance.
        p.write_text('{"schema": 1, "type": "me')
        with pytest.raises(ValueError, match="empty run log"):
            load_run(p)

    def test_trailing_partial_line_tolerated(self, tmp_path):
        """A run killed mid-write leaves a partial last line; the rest of
        the log must stay loadable."""
        rec = Recorder("jsonl", run="crash", out_dir=tmp_path,
                       stream=io.StringIO())
        with rec.activate():
            rec.event("alert", kind="drift", window=3)
        path = rec.close()
        whole = load_run(path)
        with open(path, "a") as fh:
            fh.write('{"type": "event", "name": "alert", "trunc')
        assert load_run(path) == whole

    def test_seq_monotone_and_sorted_keys(self, tmp_path):
        import io

        rec = Recorder("jsonl", run="rt", out_dir=tmp_path, stream=io.StringIO())
        _record_workload(rec)
        path = rec.close()
        raw = path.read_text().splitlines()
        for line in raw:
            parsed = json.loads(line)
            assert line == json.dumps(parsed, sort_keys=True)
        seqs = [e["seq"] for e in load_run(path)[1:]]
        assert seqs == sorted(seqs) == list(range(len(seqs)))

    def test_deterministic_structure_across_runs(self, tmp_path):
        """Two identical seeded runs produce structurally identical logs
        (same lines once the wall-clock fields are masked)."""
        import io

        def one_run(name: str):
            rng = np.random.default_rng(0)
            T = rng.uniform(0.2, 3.0, (3, 8))
            A = rng.uniform(0.6, 0.99, (3, 8))
            p = MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.4),
                                entropy=0.05)
            rec = Recorder("jsonl", run=name, out_dir=tmp_path,
                           stream=io.StringIO())
            with rec.activate():
                with rec.span("solve"):
                    solve_relaxed(p, SolverConfig(max_iters=200))
            return rec.close()

        def masked(path):
            out = []
            for ev in load_run(path):
                ev = dict(ev)
                ev.pop("run", None)  # the only intentional difference
                if ev.get("type") in ("span", "span_summary"):
                    ev.pop("dur_s", None)
                    ev.pop("total_s", None)
                if ev.get("name", "").endswith("_s"):  # wall-clock histograms
                    for k in ("sum", "min", "max", "counts"):
                        ev.pop(k, None)
                out.append(json.dumps(ev, sort_keys=True))
            return out

        assert masked(one_run("a")) == masked(one_run("b"))


# --------------------------------------------------------------------- #
# Integration with the instrumented solver / metadata.
# --------------------------------------------------------------------- #


class TestIntegration:
    def test_solver_emits_convergence_metrics(self):
        rng = np.random.default_rng(1)
        T = rng.uniform(0.2, 3.0, (3, 8))
        A = rng.uniform(0.6, 0.99, (3, 8))
        p = MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.4),
                            entropy=0.05)
        rec = Recorder("summary", run="t")
        with rec.activate():
            solve_relaxed(p, SolverConfig(max_iters=200))
        agg = rec.aggregate()
        assert agg["counters"]["solve/calls"]["value"] == 1
        hist = agg["histograms"]["solve/iterations"]
        assert hist["count"] == 1 and hist["sum"] >= 1

    def test_run_metadata_fields(self):
        meta = run_metadata(config={"a": 1}, seeds=np.array([3, 4]))
        assert meta["seeds"] == [3, 4]
        assert meta["config"] == repr({"a": 1})
        assert meta["python"].count(".") == 2
        assert isinstance(meta["argv"], list)

    def test_recording_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            with recording(mode="nope"):
                pass


# --------------------------------------------------------------------- #
# Labeled series and the metric registry (schema 2).
# --------------------------------------------------------------------- #


class TestSeriesKeys:
    def test_unlabeled_key_is_the_bare_name(self):
        assert series_key("serve/windows") == "serve/windows"
        assert series_key("serve/windows", {}) == "serve/windows"

    def test_labels_sorted_and_escaped(self):
        key = series_key("m", {"b": "2", "a": "1"})
        assert key == 'm{a="1",b="2"}'
        # Insertion order never changes the canonical key.
        assert key == series_key("m", {"a": "1", "b": "2"})
        assert series_key("m", {"x": 'say "hi"\n'}) == 'm{x="say \\"hi\\"\\n"}'

    def test_split_round_trip(self):
        assert split_series_key("plain") == ("plain", "")
        name, suffix = split_series_key('m{a="1",b="2"}')
        assert name == "m" and suffix == '{a="1",b="2"}'

    def test_invalid_label_names_rejected(self):
        reg = MetricRegistry()
        for bad in ("", "0lead", "has-dash", "has space"):
            with pytest.raises(ValueError, match="label name"):
                reg.counter_add("m", labels={bad: "v"})
        with pytest.raises(ValueError, match="label name"):
            MetricRegistry(base_labels={"bad-name": "v"})


class TestMetricRegistry:
    def test_base_labels_stamp_every_series(self):
        reg = MetricRegistry(base_labels={"shard": "3"})
        reg.counter_add("serve/windows")
        reg.gauge_set("depth", 7.0)
        reg.observe("lat", 0.5, bounds=(1.0,))
        snap = reg.snapshot()
        assert set(snap["counters"]) == {'serve/windows{shard="3"}'}
        assert set(snap["gauges"]) == {'depth{shard="3"}'}
        assert set(snap["histograms"]) == {'lat{shard="3"}'}
        for section in ("counters", "gauges", "histograms"):
            (state,) = snap[section].values()
            assert state["labels"] == {"shard": "3"}

    def test_call_labels_merge_over_base(self):
        reg = MetricRegistry(base_labels={"shard": "0"})
        reg.counter_add("serve/windows", labels={"predictor_version": "v3"})
        (key,) = reg.snapshot()["counters"]
        assert key == 'serve/windows{predictor_version="v3",shard="0"}'

    def test_unlabeled_state_has_no_labels_field(self):
        """Schema-1 compatibility: an unlabeled registry serializes
        byte-identically to the old bare instruments."""
        reg = MetricRegistry()
        reg.counter_add("n", 2.0)
        state = reg.snapshot()["counters"]["n"]
        assert state == {"value": 2.0, "calls": 1}

    def test_same_name_different_labels_are_distinct_series(self):
        reg = MetricRegistry()
        reg.counter_add("serve/windows", labels={"shard": "0"})
        reg.counter_add("serve/windows", 2.0, labels={"shard": "1"})
        reg.counter_add("serve/windows", 4.0, labels={"shard": "0"})
        snap = reg.snapshot()["counters"]
        assert snap['serve/windows{shard="0"}']["value"] == 5.0
        assert snap['serve/windows{shard="1"}']["value"] == 2.0

    def test_recorder_delegates_labels(self):
        rec = Recorder("summary", run="t", labels={"shard": "0"})
        with rec.activate():
            telemetry.counter_add("serve/windows")
            telemetry.observe("lat", 0.5, bounds=(1.0,))
        agg = rec.aggregate()
        assert 'serve/windows{shard="0"}' in agg["counters"]
        assert 'lat{shard="0"}' in agg["histograms"]


class TestFleetAggregation:
    def _record(self, tmp_path, shard, windows, lat):
        with recording(mode="jsonl", run=f"shard{shard}", out_dir=tmp_path,
                       labels={"shard": shard}) as rec:
            telemetry.counter_add("serve/windows", windows)
            telemetry.gauge_set("serve/queue_depth_last", 3.0 + windows)
            for v in lat:
                telemetry.observe("serve/lat", v, bounds=(0.5, 1.0))
            rec.event("serve/arrival", t=0.1, task_id=0)
        return tmp_path / f"shard{shard}.jsonl", rec.aggregate()

    def test_two_recorder_merge_is_lossless(self, tmp_path):
        """The acceptance gate: series recorded under distinct shard
        labels survive a fleet merge byte-for-byte — nothing sums across
        shards, nothing is dropped."""
        path0, agg0 = self._record(tmp_path, "0", windows=3, lat=[0.2, 0.7])
        path1, agg1 = self._record(tmp_path, "1", windows=5, lat=[1.4])
        fleet = aggregate_runs([path0, path1])
        for agg in (agg0, agg1):
            for section in ("counters", "gauges", "histograms"):
                for key, state in agg[section].items():
                    assert fleet[section][key] == state
        assert set(fleet["counters"]) == {
            'serve/windows{shard="0"}', 'serve/windows{shard="1"}'}

    def test_identical_keys_accumulate(self):
        h = {"bounds": [1.0], "counts": [2, 1], "count": 3, "sum": 2.5,
             "min": 0.1, "max": 3.0, "calls": 3}
        h2 = {"bounds": [1.0], "counts": [0, 4], "count": 4, "sum": 9.0,
              "min": 2.0, "max": 4.0, "calls": 4}
        merged = merge_aggregates([
            {"counters": {"n": {"value": 1.0, "calls": 1}},
             "gauges": {"g": {"value": 5.0, "calls": 1}},
             "histograms": {"h": h},
             "spans": {"fit": {"total_s": 1.0, "calls": 2, "errors": 0}}},
            {"counters": {"n": {"value": 2.0, "calls": 3}},
             "gauges": {"g": {"value": 9.0, "calls": 2}},
             "histograms": {"h": h2},
             "spans": {"fit": {"total_s": 0.5, "calls": 1, "errors": 1}}},
        ])
        assert merged["counters"]["n"] == {"value": 3.0, "calls": 4}
        assert merged["gauges"]["g"]["value"] == 9.0  # last writer wins
        assert merged["gauges"]["g"]["calls"] == 3
        hm = merged["histograms"]["h"]
        assert hm["counts"] == [2, 5] and hm["count"] == 7
        assert hm["min"] == 0.1 and hm["max"] == 4.0
        assert merged["spans"]["fit"] == {
            "total_s": 1.5, "calls": 3, "errors": 1}

    def test_histogram_bounds_mismatch_raises(self):
        a = {"histograms": {"h": {"bounds": [1.0], "counts": [1, 0],
                                  "count": 1, "sum": 0.5, "calls": 1}}}
        b = {"histograms": {"h": {"bounds": [2.0], "counts": [1, 0],
                                  "count": 1, "sum": 0.5, "calls": 1}}}
        with pytest.raises(ValueError, match="mismatched bucket bounds"):
            merge_aggregates([a, b])

    def test_quantile_of_merged_overflow_histogram(self):
        """Merged states lose per-value detail but never surface +inf:
        all-overflow mass falls back to the max sidecar."""
        h = {"bounds": [1.0], "counts": [0, 3], "count": 3, "sum": 9.0,
             "min": 2.0, "max": 4.0, "calls": 3}
        merged = merge_aggregates([{"histograms": {"h": h}}])
        assert quantile(merged["histograms"]["h"], 0.5) == 4.0


class TestQuantileHardening:
    """The documented finite-sentinel contract for degenerate states."""

    def test_empty_states_return_zero(self):
        assert quantile({"bounds": [1.0], "counts": [], "count": 0}, 0.9) == 0.0
        assert quantile({"bounds": [1.0], "counts": [0, 0], "count": 0}, 0.5) == 0.0
        assert quantile({"bounds": [1.0]}, 0.5) == 0.0

    def test_all_mass_in_overflow_uses_max_sidecar(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        h.observe(50.0, n=4)
        assert quantile(h, 0.5) == 50.0
        assert quantile(h, 1.0) == 50.0

    def test_overflow_without_finite_max_falls_back_to_last_bound(self):
        state = {"bounds": [1.0, 2.0], "counts": [0, 0, 5], "count": 5}
        assert quantile(state, 0.5) == 2.0  # max sidecar missing
        state["max"] = None
        assert quantile(state, 0.5) == 2.0
        state["max"] = float("inf")
        assert quantile(state, 0.5) == 2.0  # non-finite sidecar ignored
        state["max"] = 7.5
        assert quantile(state, 0.5) == 7.5


# --------------------------------------------------------------------- #
# Stage profiler (unit level; serving integration in test_serve.py).
# --------------------------------------------------------------------- #


class TestStageProfiler:
    def test_null_profiler_is_inert(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.stage("anything"):
            pass
        NULL_PROFILER.begin_window()
        NULL_PROFILER.end_window()
        NULL_PROFILER.observe_sim("wait", 1.0)
        assert NULL_PROFILER.events_recorded == 0

    def test_empty_budget(self):
        budget = StageProfiler().budget()
        assert budget["windows"] == 0
        assert budget["stages"] == {} and budget["sim_stages"] == {}
        assert budget["coverage_p95"] == 0.0

    def test_nested_stages_build_paths_and_self_time(self):
        prof = StageProfiler()
        prof.begin_window()
        with prof.stage("solve"):
            with prof.stage("relaxed"):
                pass
            with prof.stage("rounding"):
                pass
        prof.end_window()
        budget = prof.budget()
        assert set(budget["stages"]) == {
            "solve", "solve;relaxed", "solve;rounding"}
        solve = budget["stages"]["solve"]
        children = (budget["stages"]["solve;relaxed"]["total_s"]
                    + budget["stages"]["solve;rounding"]["total_s"])
        assert solve["self_s"] == pytest.approx(solve["total_s"] - children)
        assert budget["windows"] == 1
        # Only depth-1 time counts toward attribution (children are
        # already inside their parent's duration).
        assert budget["e2e"]["total_s"] >= solve["total_s"] > 0.0
        assert 0.0 < budget["coverage_p95"] <= 1.0

    def test_sim_stages_are_separate_from_wall_clock(self):
        prof = StageProfiler()
        prof.begin_window()
        with prof.stage("form"):
            pass
        prof.observe_sim("admission_wait", 0.25, n=3)
        prof.observe_sim("batch_wait", 0.1)
        prof.end_window()
        budget = prof.budget()
        sim = budget["sim_stages"]
        assert sim["admission_wait"]["calls"] == 3
        assert sim["admission_wait"]["total_hours"] == pytest.approx(0.75)
        assert sim["batch_wait"]["p50"] == pytest.approx(0.1)
        # Simulated hours never pollute the wall-clock coverage.
        assert budget["e2e"]["total_s"] < 0.25

    def test_collapsed_stacks_include_residual_root(self, tmp_path):
        prof = StageProfiler()
        prof.begin_window()
        with prof.stage("form"):
            pass
        deadline = time.perf_counter() + 0.002
        while time.perf_counter() < deadline:
            pass  # unattributed work between stages
        prof.end_window()
        lines = prof.collapsed_stacks()
        assert any(ln.startswith("window ") for ln in lines)  # residual
        out = prof.write_flamegraph(tmp_path / "flame.txt")
        assert out.read_text().strip().splitlines() == lines
