"""Tests for extension experiments (E7 cluster scaling, diagnostics) and
the DES scheduler orderings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clusters import make_setting
from repro.experiments import ExperimentConfig
from repro.experiments.cluster_scaling import run_cluster_scaling
from repro.experiments.diagnostics import run_diagnostics
from repro.matching.rounding import assignment_from_labels
from repro.matching.zeroth_order import ZeroOrderConfig
from repro.methods import MFCPConfig
from repro.predictors.training import TrainConfig
from repro.sim import ExecutionConfig, simulate_matching
from repro.workloads import TaskPool

TINY = ExperimentConfig(
    pool_size=30,
    eval_rounds=2,
    seeds=(0,),
    mfcp=MFCPConfig(epochs=3, pretrain=TrainConfig(epochs=30),
                    zero_order=ZeroOrderConfig(samples=2, delta=0.05, warm_start_iters=20)),
    supervised=TrainConfig(epochs=30),
)


class TestClusterScaling:
    def test_sweep_structure(self):
        results = run_cluster_scaling(TINY, cluster_counts=(2, 4))
        assert set(results) == {2, 4}
        for m, reports in results.items():
            assert set(reports) == {"TSM", "MFCP-AD"}
            for r in reports.values():
                assert np.isfinite(r.regret[0])
                assert 0 < r.utilization[0] <= 1.0

    def test_more_clusters_do_not_reduce_round_size(self):
        """Round size scales with M (TASKS_PER_CLUSTER · M) — utilization
        stays meaningful rather than collapsing to 1/M."""
        results = run_cluster_scaling(TINY, cluster_counts=(2, 6))
        u2 = results[2]["TSM"].utilization[0]
        u6 = results[6]["TSM"].utilization[0]
        assert u2 > 0.3 and u6 > 0.2


class TestDiagnostics:
    def test_rows_complete(self):
        rows = run_diagnostics(TINY, seed=0)
        assert set(rows) == {"TSM", "MFCP-AD"}
        for r in rows.values():
            for key in ("median_rel_err", "p90_rel_err", "spearman",
                        "rank_accuracy", "brier", "ece", "mean_regret"):
                assert key in r and np.isfinite(r[key])
            assert 0.0 <= r["rank_accuracy"] <= 1.0
            assert 0.0 <= r["brier"] <= 1.0


class TestSchedulerOrderings:
    @pytest.fixture()
    def scenario(self, task_pool, setting_a):
        tasks = task_pool.tasks[:10]
        X = assignment_from_labels(np.zeros(10, dtype=int), 3)  # all on cluster 0
        return setting_a, tasks, X

    def _mean_completion(self, result):
        return float(np.mean([r.end for r in result.records]))

    def test_makespan_order_invariant(self, scenario):
        clusters, tasks, X = scenario
        spans = {
            order: simulate_matching(clusters, tasks, X,
                                     ExecutionConfig(order=order)).makespan
            for order in ("fifo", "sjf", "ljf")
        }
        assert spans["fifo"] == pytest.approx(spans["sjf"])
        assert spans["fifo"] == pytest.approx(spans["ljf"])

    def test_sjf_minimizes_mean_completion(self, scenario):
        clusters, tasks, X = scenario
        mean_ct = {
            order: self._mean_completion(
                simulate_matching(clusters, tasks, X, ExecutionConfig(order=order))
            )
            for order in ("fifo", "sjf", "ljf")
        }
        assert mean_ct["sjf"] <= mean_ct["fifo"] <= mean_ct["ljf"]
        assert mean_ct["sjf"] < mean_ct["ljf"]  # strict on heterogeneous tasks

    def test_order_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(order="random")


class TestOracleMethod:
    def test_oracle_near_zero_regret(self, task_pool, setting_a):
        from repro.matching import makespan
        from repro.methods import FitContext, MatchSpec, Oracle

        spec = MatchSpec()
        ctx = FitContext.build(setting_a, task_pool.tasks[:12], spec, rng=0)
        oracle = Oracle().fit(ctx)
        tasks = task_pool.tasks[12:17]
        T = np.stack([c.true_times(tasks) for c in setting_a])
        A = np.stack([c.true_reliabilities(tasks) for c in setting_a])
        problem = spec.build_problem(T, A)
        T_hat, A_hat = oracle.predict(tasks)
        np.testing.assert_allclose(T_hat, T)
        X = oracle.decide(problem, tasks)
        np.testing.assert_allclose(X.sum(axis=0), np.ones(5))

    def test_oracle_requires_fit(self, task_pool, setting_a):
        from repro.methods import MatchSpec, Oracle

        with pytest.raises(RuntimeError):
            Oracle().predict(task_pool.tasks[:3])


class TestCsvExport:
    def test_reports_csv(self, tmp_path):
        from repro.metrics import MetricSample, aggregate
        from repro.utils import write_reports_csv

        reports = {"TSM": aggregate("TSM", [MetricSample(0.1, 0.9, 0.5)])}
        path = tmp_path / "out.csv"
        write_reports_csv(reports, path, extra={"setting": "A"})
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("setting,method,regret_mean")
        assert lines[1].startswith("A,TSM,0.1")

    def test_series_csv(self, tmp_path):
        from repro.metrics import MetricSample, aggregate
        from repro.utils import write_series_csv

        results = {5: {"TSM": aggregate("TSM", [MetricSample(0.1, 0.9, 0.5)])},
                   10: {"TSM": aggregate("TSM", [MetricSample(0.2, 0.8, 0.6)])}}
        path = tmp_path / "series.csv"
        write_series_csv("N", results, path, metric="utilization")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        assert "utilization_mean" in lines[0]

    def test_series_csv_validates_metric(self, tmp_path):
        from repro.utils import write_series_csv

        with pytest.raises(ValueError):
            write_series_csv("N", {}, tmp_path / "x.csv", metric="speed")


class TestFig2:
    def test_matching_focused_fixes_crossing_task(self):
        from repro.experiments.fig2 import run_fig2

        results = run_fig2(rng=0)
        mse = results["MSE (predict-then-match)"]
        mf = results["matching-focused"]
        assert mf.correct.sum() >= mse.correct.sum()
        assert mf.all_correct
        # The matching-focused fit trades raw MSE for decisions.
        assert mf.mse >= mse.mse

    def test_deterministic(self):
        from repro.experiments.fig2 import run_fig2

        a = run_fig2(rng=3)
        b = run_fig2(rng=3)
        np.testing.assert_allclose(
            a["matching-focused"].predicted_a, b["matching-focused"].predicted_a
        )


class TestMFCPModelSelection:
    def test_snapshot_restore_roundtrip(self, task_pool, setting_a):
        from repro.matching.zeroth_order import ZeroOrderConfig
        from repro.methods import FitContext, MatchSpec, MFCP, MFCPConfig
        from repro.predictors.training import TrainConfig

        cfg = MFCPConfig(epochs=2, pretrain=TrainConfig(epochs=20),
                         validation_rounds=0,
                         zero_order=ZeroOrderConfig(samples=2, delta=0.05,
                                                    warm_start_iters=15))
        ctx = FitContext.build(setting_a, task_pool.tasks[:12], MatchSpec(), rng=0)
        m = MFCP("analytic", cfg).fit(ctx)
        Z = np.stack([t.features for t in task_pool.tasks[12:15]])
        before = m._pairs[0].time.predict(Z)
        state = m._snapshot()
        # Perturb weights, then restore.
        for p in m._pairs[0].time.parameters():
            p.data += 1.0
        assert not np.allclose(m._pairs[0].time.predict(Z), before)
        m._restore(state)
        np.testing.assert_allclose(m._pairs[0].time.predict(Z), before)

    def test_validation_config_validated(self):
        from repro.methods import MFCPConfig

        with pytest.raises(ValueError):
            MFCPConfig(validation_rounds=-1)
        with pytest.raises(ValueError):
            MFCPConfig(validate_every=0)
