"""Tests for the online quality monitor (repro.monitor).

Covers the full observability stack:

- drift detectors (quiet on stationary streams, fire on shifts, re-arm);
- SLO burn-rate rules (cold-start gate, rising-edge alerting);
- regret attribution (decomposition identity, exact lower bound,
  deterministic sampling);
- the QualityMonitor ServeCallback (pure observer, synthetic
  degradation fires ``retrain_suggested``, conservation check, alert
  telemetry events);
- Prometheus text export;
- JSONL trace replay (byte-identical re-drive, logged-counter
  verification, CLI round-trip through ``main()``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.monitor import (
    Cusum,
    DriftBank,
    MonitorConfig,
    PageHinkley,
    QualityMonitor,
    QuantileWindow,
    RegretAttributor,
    SLOMonitor,
    SLORule,
    TraceReplay,
    prometheus_text,
    render_top,
    sanitize_name,
    serve_snapshot,
    top,
)
from repro.serve import (
    Dispatcher,
    PoissonLoad,
    ServeConfig,
    ServeStats,
    build_stack,
)
from repro.serve.dispatcher import WindowSnapshot
from repro.telemetry import load_run, recording
from repro.utils.rng import as_generator


def _events(pool, rate=40.0, horizon=3.0, seed=3):
    return PoissonLoad(pool, rate).draw(horizon, as_generator(seed))


# --------------------------------------------------------------------- #
# Drift detectors.
# --------------------------------------------------------------------- #


class TestDriftDetectors:
    def test_page_hinkley_quiet_then_fires_on_shift(self):
        rng = np.random.default_rng(0)
        ph = PageHinkley(delta=0.05, threshold=5.0, min_samples=40)
        quiet = [float(x) for x in np.abs(rng.normal(0.1, 0.05, 300))]
        assert not any(ph.update(x) for x in quiet)
        shifted = [float(x) for x in np.abs(rng.normal(1.0, 0.2, 200))]
        fired_at = [i for i, x in enumerate(shifted) if ph.update(x)]
        assert fired_at, "Page-Hinkley never fired on a 10x mean shift"
        assert fired_at[0] < 50  # reacts within a few dozen samples

    def test_cusum_two_sided(self):
        down = Cusum(drift=0.02, threshold=1.0, warmup=30)
        xs = [0.5] * 30 + [-0.5] * 50  # downward shift after warmup
        assert any(down.update(x) for x in xs)
        up = Cusum(drift=0.02, threshold=1.0, warmup=30)
        xs = [0.0] * 30 + [1.0] * 50
        assert any(up.update(x) for x in xs)

    def test_quantile_window_catches_tail_blowup(self):
        rng = np.random.default_rng(1)
        qw = QuantileWindow(q=0.9, window=50, factor=2.5)
        base = [float(x) for x in np.abs(rng.normal(0.1, 0.02, 300))]
        assert not any(qw.update(x) for x in base)
        # Mean barely moves, tail explodes: every 10th sample is huge.
        tail = [2.0 if i % 10 == 0 else 0.1 for i in range(200)]
        assert any(qw.update(x) for x in tail)

    def test_reset_rearms(self):
        ph = PageHinkley(min_samples=5, threshold=0.5, delta=0.0)
        [ph.update(1.0 + i) for i in range(20)]
        ph.reset()
        assert ph.n == 0 and ph.stat == 0.0
        qw = QuantileWindow(window=4)
        [qw.update(1.0) for _ in range(10)]
        qw.reset()
        assert qw.stat == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            Cusum(warmup=0)
        with pytest.raises(ValueError):
            QuantileWindow(q=1.0)
        with pytest.raises(ValueError):
            QuantileWindow(factor=1.0)

    def test_bank_fires_once_per_shift_and_rearms(self):
        bank = DriftBank("sig", {
            "ph": PageHinkley(delta=0.0, threshold=1.0, min_samples=5),
        })
        hits = [bank.update(x) for x in [0.0] * 10 + [2.0] * 100]
        fired = [i for i, h in enumerate(hits) if h]
        # The post-fire reset re-arms against the shifted regime, so a
        # sustained shift cannot alert on every subsequent sample.
        assert fired
        assert len(fired) < 10
        assert bank.state()["samples"] == 110
        with pytest.raises(ValueError):
            DriftBank("sig", {})


# --------------------------------------------------------------------- #
# SLO burn-rate rules.
# --------------------------------------------------------------------- #


class TestSLO:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLORule(name="x", objective=0.0)
        with pytest.raises(ValueError):
            SLORule(name="x", objective=0.1, fast_windows=10, slow_windows=5)
        with pytest.raises(ValueError, match="duplicate"):
            SLOMonitor([SLORule(name="a", objective=0.1),
                        SLORule(name="a", objective=0.2)])

    def test_cold_start_gate_holds_alerts(self):
        mon = SLOMonitor([SLORule(name="r", objective=0.05,
                                  fast_windows=4, slow_windows=8)])
        # All-bad windows, but fewer than fast_windows seen: no alert yet.
        assert not mon.observe("r", 1, 1)
        assert not mon.observe("r", 1, 1)
        assert not mon.observe("r", 1, 1)
        assert mon.observe("r", 1, 1)  # 4th window: warmed and burning

    def test_rising_edge_only(self):
        mon = SLOMonitor([SLORule(name="r", objective=0.1,
                                  fast_windows=2, slow_windows=4,
                                  burn_threshold=2.0)])
        for _ in range(6):
            mon.observe("r", 0, 10)  # healthy history
        assert mon.observe("r", 10, 10)  # breach edge
        assert not mon.observe("r", 10, 10)  # still breaching: latched
        for _ in range(4):
            mon.observe("r", 0, 10)  # recover
        assert not mon.status["r"].breaching
        assert mon.observe("r", 10, 10)  # second edge alerts again
        assert mon.status["r"].alerts == 2

    def test_counts_validated(self):
        mon = SLOMonitor([SLORule(name="r", objective=0.1)])
        with pytest.raises(ValueError):
            mon.observe("r", 3, 2)


# --------------------------------------------------------------------- #
# Regret attribution.
# --------------------------------------------------------------------- #


def _snapshot(window, T, A, T_hat, A_hat, X, *, realized=None, success=None,
              time=1.0, gamma=0.2):
    m, k = T.shape
    realized = np.asarray(realized if realized is not None
                          else T[np.argmax(X, axis=0), np.arange(k)])
    success = np.asarray(success if success is not None else [True] * k)
    slack = float((X * A).sum() / (m * k) - gamma)
    return WindowSnapshot(
        window=window, time=time, cluster_ids=tuple(range(m)),
        task_ids=tuple(range(k)), T=T, A=A, T_hat=T_hat, A_hat=A_hat, X=X,
        gamma=gamma, reliability_slack=slack,
        arrival=np.full(k, max(time - 0.1, 0.0)), start=np.full(k, time),
        end=np.full(k, time) + realized, realized_hours=realized,
        success=success, requeues=np.zeros(k, dtype=int), queue_depth=0,
        arrived_total=(window + 1) * k, shed_total=0,
    )


def _toy_matrices(rng, m=3, k=4, err=0.0):
    T = rng.uniform(1.0, 4.0, size=(m, k))
    A = rng.uniform(0.7, 0.99, size=(m, k))
    T_hat = T * (1.0 + err * rng.standard_normal((m, k)))
    return T, np.clip(A, 0.0, 1.0), np.abs(T_hat) + 1e-3, A


class TestAttribution:
    def test_decomposition_identity_and_exact_bound(self):
        rng = np.random.default_rng(0)
        T, A, T_hat, A_hat = _toy_matrices(rng, err=0.5)
        # A deliberately bad executed assignment: everything on cluster 0.
        X = np.zeros_like(T)
        X[0, :] = 1.0
        attributor = RegretAttributor(sample_every=1, exact_max_tasks=6)
        out = attributor.attribute(_snapshot(0, T, A, T_hat, A_hat, X))
        assert out is not None
        assert out.total_gap == pytest.approx(
            out.prediction_gap + out.rounding_slack)
        assert out.total_gap == pytest.approx(
            (out.cost_executed - out.cost_fractional) / out.n_tasks)
        # Piling every task on one cluster must cost real makespan.
        assert out.prediction_gap > 0.0
        # The exact optimum lower-bounds the rounded oracle.
        assert out.cost_exact is not None
        assert out.cost_exact <= out.cost_oracle + 1e-9
        assert out.exact_slack >= -1e-9

    def test_sampling_is_deterministic_end_of_block(self):
        attributor = RegretAttributor(sample_every=5)
        assert [w for w in range(20) if attributor.wants(w)] == [4, 9, 14, 19]
        every = RegretAttributor(sample_every=1)
        assert all(every.wants(w) for w in range(5))

    def test_unsampled_window_returns_none(self):
        rng = np.random.default_rng(1)
        T, A, T_hat, A_hat = _toy_matrices(rng)
        X = np.eye(3, 4)
        attributor = RegretAttributor(sample_every=10)
        assert attributor.attribute(_snapshot(0, T, A, T_hat, A_hat, X)) is None
        assert attributor.summary() == {"sampled": 0}

    def test_validation(self):
        with pytest.raises(ValueError):
            RegretAttributor(sample_every=0)
        with pytest.raises(ValueError):
            RegretAttributor(exact_max_tasks=-1)


# --------------------------------------------------------------------- #
# QualityMonitor.
# --------------------------------------------------------------------- #


def _feed(monitor, *, n_windows, err, rng, success_rate=1.0):
    """Drive a monitor with synthetic snapshots at a given error level."""
    for w in range(monitor.windows_seen, monitor.windows_seen + n_windows):
        T, A, T_hat, A_hat = _toy_matrices(rng, err=err)
        X = np.zeros_like(T)
        X[np.argmin(T_hat, axis=0), np.arange(T.shape[1])] = 1.0
        success = rng.random(T.shape[1]) < success_rate
        monitor.on_window(_snapshot(w, T, A, T_hat, A_hat, X,
                                    success=success, time=0.1 * (w + 1)))


class TestQualityMonitor:
    def test_stationary_run_raises_no_drift_alerts(self):
        monitor = QualityMonitor()
        _feed(monitor, n_windows=80, err=0.02, rng=np.random.default_rng(0))
        kinds = {a.kind for a in monitor.alerts}
        assert "drift" not in kinds
        assert "retrain_suggested" not in kinds
        assert monitor.summary()["windows_seen"] == 80

    def test_synthetic_degradation_fires_retrain_suggested(self):
        monitor = QualityMonitor()
        rng = np.random.default_rng(0)
        _feed(monitor, n_windows=40, err=0.02, rng=rng)
        assert not monitor.retrain_suggested_at
        _feed(monitor, n_windows=40, err=1.5, rng=rng)
        assert monitor.retrain_suggested_at, "degradation never suggested retrain"
        assert any(a.kind == "drift" for a in monitor.alerts)

    def test_retrain_cooldown_suppresses_duplicates(self):
        monitor = QualityMonitor(MonitorConfig(cooldown_windows=1000))
        rng = np.random.default_rng(0)
        _feed(monitor, n_windows=40, err=0.02, rng=rng)
        _feed(monitor, n_windows=60, err=2.0, rng=rng)
        # Several detectors fire during sustained degradation, but the
        # cooldown admits a single retrain suggestion.
        assert len(monitor.retrain_suggested_at) == 1

    def test_identical_feeds_give_identical_alert_sequences(self):
        logs = []
        for _ in range(2):
            monitor = QualityMonitor()
            rng = np.random.default_rng(7)
            _feed(monitor, n_windows=30, err=0.02, rng=rng)
            _feed(monitor, n_windows=30, err=1.0, rng=rng)
            logs.append(monitor.alert_log())
        assert logs[0] == logs[1]

    def test_conservation_violation_alerts_on_finish(self):
        monitor = QualityMonitor()
        stats = ServeStats(arrived=10, completed=4, failed=1, shed=2, unserved=1)
        monitor.on_finish(stats)  # 2 tasks unaccounted for
        assert [a.kind for a in monitor.alerts] == ["conservation"]
        assert monitor.alerts[0].value == 2.0

    def test_alerts_become_telemetry_events(self, tmp_path):
        import io

        with recording(mode="jsonl", run="monitor-events", out_dir=tmp_path,
                       stream=io.StringIO()):
            monitor = QualityMonitor()
            rng = np.random.default_rng(0)
            _feed(monitor, n_windows=40, err=0.02, rng=rng)
            _feed(monitor, n_windows=40, err=1.5, rng=rng)
            monitor.on_finish(ServeStats())
        events = load_run(tmp_path / "monitor-events.jsonl")
        alert_events = [e for e in events
                        if e.get("type") == "event" and e.get("name") == "alert"]
        assert len(alert_events) == len(monitor.alerts)
        assert {e["kind"] for e in alert_events} >= {"drift", "retrain_suggested"}


# --------------------------------------------------------------------- #
# Prometheus export.
# --------------------------------------------------------------------- #


class TestPrometheusExport:
    def test_sanitize_name(self):
        assert sanitize_name("serve/solve_iterations") == \
            "repro_serve_solve_iterations"
        assert sanitize_name("a b//c", prefix="") == "a_b_c"
        assert sanitize_name("9lives", prefix="").startswith("_9")
        with pytest.raises(ValueError):
            sanitize_name("///")

    def test_histogram_renders_cumulative_le_series(self):
        agg = {
            "counters": {"serve/shed": {"value": 3, "calls": 3}},
            "gauges": {"monitor/windows_seen": {"value": 7.0, "calls": 1}},
            "histograms": {"serve/batch_size": {
                "bounds": [1.0, 2.0], "counts": [1, 2, 1], "count": 4,
                "sum": 8.0, "min": 1.0, "max": 5.0, "calls": 4}},
            "spans": {"solve": {"total_s": 0.5, "calls": 2, "errors": 1}},
        }
        text = prometheus_text(agg)
        assert 'repro_serve_batch_size_bucket{le="1"} 1' in text
        assert 'repro_serve_batch_size_bucket{le="2"} 3' in text
        assert 'repro_serve_batch_size_bucket{le="+Inf"} 4' in text
        assert "repro_serve_batch_size_sum 8" in text
        assert "repro_serve_batch_size_count 4" in text
        assert "repro_serve_shed_total 3" in text
        assert "repro_monitor_windows_seen 7" in text
        assert "repro_solve_seconds_total 0.5" in text
        assert "repro_solve_errors_total 1" in text
        assert text == prometheus_text(agg)  # deterministic

    def test_empty_aggregate_renders_empty(self):
        assert prometheus_text({}) == ""


# --------------------------------------------------------------------- #
# Trace replay (dispatcher integration + CLI round trip).
# --------------------------------------------------------------------- #


REPLAY_CONFIG = ServeConfig(pool_size=20, seed=0, train_epochs=5,
                            solver_tol=1e-4, solver_max_iters=300,
                            max_batch=12)
REPLAY_PARAMS = REPLAY_CONFIG.to_params()


@pytest.fixture(scope="module")
def replay_stack():
    """One trained stack reused across every replay of the same params."""
    return build_stack(REPLAY_CONFIG)


@pytest.fixture(scope="module")
def run_log(tmp_path_factory, replay_stack):
    """A real monitored serve run recorded to JSONL, ready to replay."""
    import io

    out_dir = tmp_path_factory.mktemp("telemetry")
    pool, clusters, method, spec, cfg = replay_stack
    events = _events(pool, rate=30.0, horizon=2.0, seed=3)
    with recording(mode="jsonl", run="serve-run", out_dir=out_dir,
                   meta={"serve": REPLAY_PARAMS}, stream=io.StringIO()):
        dispatcher = Dispatcher(clusters, method, spec, cfg)
        stats = dispatcher.run(events, rng=REPLAY_PARAMS["seed"] + 4)
    return out_dir / "serve-run.jsonl", stats


class TestTraceReplay:
    def test_replay_reproduces_run_exactly(self, run_log, replay_stack):
        path, original = run_log
        replay = TraceReplay.from_log(path)
        stats = replay.replay(stack=replay_stack)
        assert replay.verify(stats) == []
        assert stats.trace_bytes() == original.trace_bytes()
        assert stats.conserved

    def test_replay_twice_is_byte_identical_with_same_alerts(
            self, run_log, replay_stack):
        path, _ = run_log
        replay = TraceReplay.from_log(path)
        traces, alert_logs = [], []
        for _ in range(2):
            monitor = QualityMonitor(MonitorConfig(sample_every=2))
            stats = replay.replay(callbacks=[monitor], stack=replay_stack)
            traces.append(stats.trace_bytes())
            alert_logs.append(monitor.alert_log())
        assert traces[0] == traces[1]
        assert alert_logs[0] == alert_logs[1]

    def test_monitoring_does_not_change_the_trace(self, run_log, replay_stack):
        path, original = run_log
        replay = TraceReplay.from_log(path)
        monitored = replay.replay(callbacks=[QualityMonitor()],
                                  stack=replay_stack)
        assert monitored.trace_bytes() == original.trace_bytes()
        assert monitored.callback_seconds > 0.0
        assert original.callback_seconds == 0.0

    def test_verify_catches_tampered_counters(self, run_log, replay_stack):
        path, _ = run_log
        replay = TraceReplay.from_log(path)
        stats = replay.replay(stack=replay_stack)
        replay.run_stats["completed"] += 1
        problems = replay.verify(stats)
        assert any("completed" in p for p in problems)

    def test_from_log_rejects_non_serve_logs(self, tmp_path):
        import io

        with recording(mode="jsonl", run="not-serve", out_dir=tmp_path,
                       stream=io.StringIO()) as rec:
            rec.event("something", x=1)
        with pytest.raises(ValueError, match="serve"):
            TraceReplay.from_log(tmp_path / "not-serve.jsonl")

    def test_from_log_rejects_empty_arrivals(self, tmp_path):
        import io

        with recording(mode="jsonl", run="no-arrivals", out_dir=tmp_path,
                       meta={"serve": REPLAY_PARAMS}, stream=io.StringIO()):
            pass
        with pytest.raises(ValueError, match="nothing to replay"):
            TraceReplay.from_log(tmp_path / "no-arrivals.jsonl")

    def test_cli_round_trip(self, tmp_path, monkeypatch, capsys):
        """serve run --telemetry jsonl, then replay + monitor via main()."""
        monkeypatch.chdir(tmp_path)
        rc = main(["serve", "run", "--pool-size", "16", "--rate", "25",
                   "--horizon", "1.5", "--train-epochs", "4",
                   "--telemetry", "jsonl"])
        assert rc == 0
        log = tmp_path / "results" / "telemetry" / "serve-run.jsonl"
        assert log.exists()
        alerts_out = tmp_path / "alerts.jsonl"
        rc = main(["replay", "--log", str(log),
                   "--alerts-out", str(alerts_out)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replay verified" in out
        assert alerts_out.exists()
        for line in alerts_out.read_text().splitlines():
            json.loads(line)
        rc = main(["monitor", "--log", str(log),
                   "--prometheus", str(tmp_path / "metrics.prom")])
        assert rc == 0
        prom = (tmp_path / "metrics.prom").read_text()
        assert "repro_serve_arrived_total" in prom


# --------------------------------------------------------------------- #
# Replaying schedule-driven hot-swaps against the original registry.
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def swap_run_log(tmp_path_factory, replay_stack):
    """A run whose hot-swap came from an external swap_schedule (no
    retrain section in the log), recorded with its checkpoint registry."""
    import io

    from repro.serve import ModelRegistry

    base = tmp_path_factory.mktemp("swap-replay")
    pool, clusters, method, spec, cfg = replay_stack
    registry = ModelRegistry(base / "registry")
    registry.save(method, tag="deploy")
    events = _events(pool, rate=30.0, horizon=2.0, seed=3)
    with recording(mode="jsonl", run="swap-run", out_dir=base,
                   meta={"serve": REPLAY_PARAMS}, stream=io.StringIO()):
        dispatcher = Dispatcher(clusters, method, spec, cfg,
                                registry=registry,
                                swap_schedule={1: "v0001"})
        stats = dispatcher.run(events, rng=REPLAY_PARAMS["seed"] + 4)
    assert stats.swaps == 1
    return base / "swap-run.jsonl", base / "registry", stats


class TestScheduleSwapReplay:
    def test_without_registry_root_is_rejected(self, swap_run_log,
                                               replay_stack):
        path, _, _ = swap_run_log
        replay = TraceReplay.from_log(path)
        assert replay.swaps and replay.config.retrain is None
        with pytest.raises(ValueError, match="registry_root"):
            replay.replay(stack=replay_stack)

    def test_registry_root_reapplies_the_logged_swaps(self, swap_run_log,
                                                      replay_stack):
        path, registry_root, original = swap_run_log
        replay = TraceReplay.from_log(path)
        stats = replay.replay(stack=replay_stack,
                              registry_root=str(registry_root))
        assert replay.verify(stats) == []
        assert stats.trace_bytes() == original.trace_bytes()
        assert stats.swaps == 1

    def test_unknown_version_fails_fast(self, swap_run_log, replay_stack,
                                        tmp_path):
        path, _, _ = swap_run_log
        replay = TraceReplay.from_log(path)
        with pytest.raises(ValueError, match="not present"):
            replay.replay(stack=replay_stack, registry_root=str(tmp_path))

    def test_retrained_checkpoint_fails_digest_check(self, swap_run_log,
                                                     replay_stack, tmp_path):
        from repro.serve import ModelRegistry

        path, _, _ = swap_run_log
        # A registry whose v0001 holds *different* weights than the run's.
        config = REPLAY_CONFIG.with_overrides(seed=7)
        _, _, other_method, _, _ = build_stack(config)
        imposter = ModelRegistry(tmp_path / "imposter")
        imposter.save(other_method, tag="retrained-since")
        replay = TraceReplay.from_log(path)
        with pytest.raises(ValueError, match="digest"):
            replay.replay(stack=replay_stack,
                          registry_root=str(tmp_path / "imposter"))


# --------------------------------------------------------------------- #
# Prometheus exposition edge cases (labeled registry, weird values).
# --------------------------------------------------------------------- #


class TestPrometheusEdgeCases:
    def test_distinct_names_colliding_after_sanitize_raise(self):
        agg = {"counters": {
            "serve/shed": {"value": 1, "calls": 1},
            "serve_shed": {"value": 2, "calls": 1},  # same sanitized name
        }}
        with pytest.raises(ValueError, match="collision"):
            prometheus_text(agg)

    def test_same_name_different_labels_share_one_family(self):
        agg = {"counters": {
            'serve/windows{shard="0"}': {"value": 3, "calls": 3,
                                         "labels": {"shard": "0"}},
            'serve/windows{shard="1"}': {"value": 5, "calls": 5,
                                         "labels": {"shard": "1"}},
        }}
        text = prometheus_text(agg)
        assert text.count("# TYPE repro_serve_windows_total counter") == 1
        assert 'repro_serve_windows_total{shard="0"} 3' in text
        assert 'repro_serve_windows_total{shard="1"} 5' in text

    def test_nan_and_inf_render_prometheus_spellings(self):
        agg = {"gauges": {
            "g/nan": {"value": float("nan"), "calls": 1},
            "g/pos": {"value": float("inf"), "calls": 1},
            "g/neg": {"value": float("-inf"), "calls": 1},
        }}
        lines = prometheus_text(agg).splitlines()
        assert "repro_g_nan NaN" in lines
        assert "repro_g_pos +Inf" in lines
        assert "repro_g_neg -Inf" in lines

    def test_labeled_histogram_merges_le_into_suffix(self):
        agg = {"histograms": {'lat{shard="2"}': {
            "bounds": [1.0], "counts": [2, 1], "count": 3, "sum": 2.5,
            "min": 0.5, "max": 4.0, "calls": 3, "labels": {"shard": "2"},
        }}}
        text = prometheus_text(agg)
        assert 'repro_lat_bucket{shard="2",le="1"} 2' in text
        assert 'repro_lat_bucket{shard="2",le="+Inf"} 3' in text
        assert 'repro_lat_sum{shard="2"} 2.5' in text
        assert 'repro_lat_count{shard="2"} 3' in text

    def test_ordering_is_input_order_independent(self):
        a = {"counters": {
            'm{shard="1"}': {"value": 1, "calls": 1, "labels": {"shard": "1"}},
            'm{shard="0"}': {"value": 2, "calls": 2, "labels": {"shard": "0"}},
        }}
        b = {"counters": dict(reversed(list(a["counters"].items())))}
        text = prometheus_text(a)
        assert text == prometheus_text(b)
        assert text.index('shard="0"') < text.index('shard="1"')


# --------------------------------------------------------------------- #
# Live metrics plane (/metrics endpoint + serve top).
# --------------------------------------------------------------------- #


class TestLivePlane:
    def _snapshot(self):
        from repro.telemetry import Recorder, StageProfiler
        import io as _io

        rec = Recorder("summary", run="live", stream=_io.StringIO(),
                       labels={"shard": "0"})
        prof = StageProfiler()
        with rec.activate():
            from repro import telemetry

            telemetry.counter_add("serve/windows", 4)
            telemetry.counter_add("serve/arrived", 9)
            telemetry.counter_add("serve/seed_cache", 3)
            telemetry.counter_add("serve/seed_cold", 1)
            telemetry.observe("serve/queue_depth", 5.0, bounds=(2.0, 8.0))
            prof.begin_window()
            with prof.stage("solve"):
                pass
            prof.observe_sim("batch_wait", 0.05)
            prof.end_window()
            return serve_snapshot(rec, profiler=prof, extra={"run": "live"})

    def test_serve_snapshot_summarizes_labeled_run(self):
        snap = self._snapshot()
        status = snap["status"]
        # Label-suffixed series still feed the status rollup.
        assert status["seed_sources"] == {"cache": 3.0, "cold": 1.0}
        assert status["queue_depth_p95"] == 8.0
        assert snap["profile"]["windows"] == 1
        assert 'serve/windows{shard="0"}' in snap["aggregate"]["counters"]

    def test_render_top_is_pure_and_complete(self):
        snap = self._snapshot()
        text = render_top(snap)
        assert "repro serve top — live" in text
        assert "windows      4" in text
        assert "cache" in text and "cold" in text
        assert "latency budget over 1 windows" in text
        assert "solve" in text and "(unattr)" in text
        assert "batch_wait" in text
        # Pure: same snapshot, same text.
        assert render_top(snap) == text

    def test_metrics_server_serves_scrape_and_snapshot(self):
        import urllib.error
        import urllib.request

        from repro.monitor import MetricsServer

        snap = self._snapshot()
        with MetricsServer(lambda: snap) as server:
            with urllib.request.urlopen(f"{server.url}/metrics") as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4")
                body = resp.read().decode()
            assert 'repro_serve_windows_total{shard="0"} 4' in body
            # Mid-run scrape folds the live stage budget into gauges.
            assert 'repro_serve_stage_total_s{stage="solve"}' in body
            assert "repro_serve_profile_coverage_p95" in body
            with urllib.request.urlopen(f"{server.url}/snapshot") as resp:
                parsed = json.loads(resp.read().decode())
            assert parsed["status"]["seed_sources"] == {"cache": 3, "cold": 1}
            with urllib.request.urlopen(f"{server.url}/healthz") as resp:
                assert resp.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/nope")
            assert err.value.code == 404
            url = server.url
        with pytest.raises(OSError):  # context exit stopped the server
            urllib.request.urlopen(f"{url}/healthz", timeout=0.5)

    def test_top_once_renders_and_exits_clean(self):
        import io as _io

        from repro.monitor import MetricsServer, top

        snap = self._snapshot()
        out = _io.StringIO()
        with MetricsServer(lambda: snap) as server:
            assert top(server.url, iterations=1, stream=out) == 0
        text = out.getvalue()
        assert "repro serve top — live" in text
        assert "\x1b[2J" not in text  # no ANSI clear on a non-tty stream

    def test_top_unreachable_endpoint_fails_gracefully(self):
        import io as _io

        out = _io.StringIO()
        assert top("127.0.0.1:9", iterations=1, stream=out) == 1
        assert "cannot reach" in out.getvalue()

    def test_scrape_skips_fold_when_drained_gauges_present(self):
        from repro.monitor.live import _scrape_aggregate

        snap = {
            "aggregate": {"gauges": {
                'serve/stage_total_s{stage="solve"}': {
                    "value": 1.0, "calls": 1, "labels": {"stage": "solve"}},
            }},
            "profile": {"windows": 3, "stages": {"solve": {
                "total_s": 1.0, "calls": 3, "self_s": 1.0,
                "p50": 0.3, "p95": 0.4, "p99": 0.4}},
                "unattributed": {"total_s": 0.0}, "coverage_p95": 1.0},
        }
        agg = _scrape_aggregate(snap)
        # End-of-run gauges already present: the fold must not duplicate.
        assert list(agg["gauges"]) == ['serve/stage_total_s{stage="solve"}']
