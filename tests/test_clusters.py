"""Tests for the cluster substrate: hardware, performance, reliability."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clusters import (
    ARCHETYPES,
    SETTINGS,
    Cluster,
    HardwareProfile,
    PerfModel,
    ReliabilityModel,
    ResponseShape,
    archetype_names,
    make_cluster,
    make_pool,
    make_setting,
)
from repro.workloads import Family, ModelSpec, sample_spec, sample_specs


def _hw(**kw):
    defaults = dict(name="test", peak_tflops=100.0, mem_bandwidth_gbs=1000.0,
                    memory_gb=32.0)
    defaults.update(kw)
    return HardwareProfile(**defaults)


class TestHardwareProfile:
    def test_affinity_default_one(self):
        hw = _hw(family_affinity={Family.CONV: 1.5})
        assert hw.affinity(Family.CONV) == 1.5
        assert hw.affinity(Family.MLP) == 1.0

    @pytest.mark.parametrize(
        "bad",
        [
            dict(peak_tflops=0),
            dict(mem_bandwidth_gbs=-1),
            dict(memory_gb=0),
            dict(base_reliability=0.0),
            dict(base_reliability=1.5),
            dict(hazard_per_hour=-0.1),
            dict(family_affinity={Family.CONV: 0.0}),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            _hw(**bad)


class TestPerfModel:
    def test_time_positive_for_all_archetypes(self):
        specs = sample_specs(10, rng=0)
        for name in archetype_names():
            cluster = make_cluster(name, 0)
            times = cluster.perf.execution_times(specs)
            assert np.all(times > 0)
            assert np.all(np.isfinite(times))

    def test_more_work_takes_longer_linear(self):
        pm = PerfModel(hardware=_hw(), shape=ResponseShape.LINEAR)
        small = ModelSpec(Family.MLP, depth=4, width=256, batch_size=64,
                          dataset_samples=100_000)
        big = ModelSpec(Family.MLP, depth=4, width=256, batch_size=64,
                        dataset_samples=100_000, train_epochs=400)
        assert pm.execution_time(big) > pm.execution_time(small)

    def test_affinity_speeds_up(self):
        fast = PerfModel(hardware=_hw(family_affinity={Family.CONV: 2.0}))
        slow = PerfModel(hardware=_hw())
        spec = sample_spec(1, family=Family.CONV)
        assert fast.execution_time(spec) < slow.execution_time(spec)

    def test_memory_exp_penalizes_pressure(self):
        hw_small = _hw(memory_gb=8.0)
        linear = PerfModel(hardware=hw_small, shape=ResponseShape.LINEAR)
        memexp = PerfModel(hardware=hw_small, shape=ResponseShape.MEMORY_EXP)
        # A memory-hungry conv workload.
        spec = ModelSpec(Family.CONV, depth=24, width=128, batch_size=256,
                         dataset_samples=30_000, seq_length=48)
        assert spec.memory_gb > 0.5 * hw_small.memory_gb
        assert memexp.execution_time(spec) > linear.execution_time(spec)

    def test_saturating_is_sublinear_congested_superlinear(self):
        hw = _hw(memory_gb=500.0)
        base = dict(family=Family.MLP, depth=8, width=1024, batch_size=256,
                    dataset_samples=2_000_000)
        small, big = ModelSpec(**base, train_epochs=100), ModelSpec(**base, train_epochs=400)
        for shape, compare in [
            (ResponseShape.SATURATING, np.less),
            (ResponseShape.CONGESTED, np.greater),
        ]:
            pm = PerfModel(hardware=hw, shape=shape)
            ratio = pm.execution_time(big) / pm.execution_time(small)
            lin = PerfModel(hardware=hw, shape=ResponseShape.LINEAR)
            lin_ratio = lin.execution_time(big) / lin.execution_time(small)
            assert compare(ratio, lin_ratio)

    def test_utilization_bounded(self):
        pm = PerfModel(hardware=_hw())
        for spec in sample_specs(10, rng=4):
            assert 0 < pm.utilization(spec) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PerfModel(hardware=_hw(), base_utilization=0.0)
        with pytest.raises(ValueError):
            PerfModel(hardware=_hw(), batch_half_point=-1)


class TestReliabilityModel:
    def test_bounds_and_monotonicity_in_time(self):
        rm = ReliabilityModel(hardware=_hw(hazard_per_hour=0.2))
        spec = sample_spec(2)
        r_short = rm.reliability(spec, 0.1)
        r_long = rm.reliability(spec, 10.0)
        assert 0.05 <= r_long < r_short <= 0.999

    def test_memory_pressure_reduces_reliability(self):
        hw = _hw(memory_gb=4.0)
        rm = ReliabilityModel(hardware=hw)
        light = ModelSpec(Family.MLP, depth=4, width=128, batch_size=16,
                          dataset_samples=10_000)
        heavy = ModelSpec(Family.CONV, depth=24, width=160, batch_size=256,
                          dataset_samples=30_000, seq_length=48)
        assert rm.reliability(heavy, 1.0) < rm.reliability(light, 1.0)

    def test_negative_time_rejected(self):
        rm = ReliabilityModel(hardware=_hw())
        with pytest.raises(ValueError):
            rm.reliability(sample_spec(0), -1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.0, 50.0))
    def test_property_reliability_in_range(self, hours):
        rm = ReliabilityModel(hardware=_hw())
        r = rm.reliability(sample_spec(3), hours)
        assert 0.05 <= r <= 0.999


class TestClusterAndRegistry:
    def test_measure_noisy_but_close(self, setting_a, task_pool):
        cluster = setting_a[0]
        task = task_pool[0]
        rng = np.random.default_rng(0)
        ms = [cluster.measure(task, rng) for _ in range(200)]
        times = np.array([m.time_hours for m in ms])
        t_true = cluster.true_time(task)
        assert abs(np.median(times) - t_true) / t_true < 0.1
        rels = np.array([m.reliability for m in ms])
        assert abs(rels.mean() - cluster.true_reliability(task)) < 0.1

    def test_cluster_requires_shared_hardware(self):
        hw1, hw2 = _hw(name="a"), _hw(name="b")
        with pytest.raises(ValueError):
            Cluster(0, PerfModel(hardware=hw1), ReliabilityModel(hardware=hw2))

    def test_settings_exist_and_build(self):
        for name in SETTINGS:
            clusters = make_setting(name)
            assert len(clusters) == 3
            assert [c.cluster_id for c in clusters] == [0, 1, 2]

    def test_unknown_setting_and_archetype(self):
        with pytest.raises(KeyError):
            make_setting("Z")
        with pytest.raises(KeyError):
            make_cluster("bogus", 0)

    def test_make_pool_sizes(self):
        pool = make_pool(10, rng=0)
        assert len(pool) == 10
        with pytest.raises(ValueError):
            make_pool(0)

    def test_archetypes_have_distinct_profiles(self):
        names = archetype_names()
        assert len(names) == len(set(names)) >= 5
        shapes = {ARCHETYPES[n][1] for n in names}
        assert len(shapes) >= 3  # response-shape diversity (Fig. 2 motif)

    def test_heterogeneity_produces_crossings(self, task_pool):
        """At least two clusters must each be the fastest for some task —
        the precondition for prediction-sensitive matching (Fig. 2)."""
        clusters = make_setting("A")
        T = np.stack([c.true_times(task_pool.tasks) for c in clusters])
        winners = set(T.argmin(axis=0).tolist())
        assert len(winners) >= 2
