"""Hypothesis property tests on end-to-end pipeline invariants.

These run the actual deployment pipeline (relax → round → repair) against
randomly generated instances and assert the contracts the experiment
harness relies on — the closest thing to fuzzing the optimization stack.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import (
    MatchingProblem,
    feasible_gamma,
    makespan,
    reliability_value,
    solve_branch_and_bound,
    solve_relaxed,
    round_assignment,
)
from repro.metrics import cluster_utilization, mean_assigned_reliability
from repro.metrics.regret import deployment_matching


def instance(seed: int, m: int = 3, n: int = 5, q: float = 0.4) -> MatchingProblem:
    rng = np.random.default_rng(seed)
    T = rng.uniform(0.1, 4.0, (m, n))
    A = rng.uniform(0.55, 0.999, (m, n))
    return MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=q))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_deployment_produces_valid_feasible_matching(seed):
    p = instance(seed)
    X = deployment_matching(p)
    assert set(np.unique(X)) <= {0.0, 1.0}
    np.testing.assert_allclose(X.sum(axis=0), np.ones(p.N))
    # The greedy repair guarantees feasibility whenever any feasible binary
    # matching exists — which holds by construction of feasible_gamma.
    assert reliability_value(X, p) >= -1e-9


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_exact_oracle_lower_bounds_deployment(seed):
    p = instance(seed)
    X = deployment_matching(p)
    exact = solve_branch_and_bound(p)
    assert exact.feasible
    assert makespan(X, p) >= exact.objective - 1e-9


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_metrics_in_range_for_any_deployment(seed):
    p = instance(seed)
    X = deployment_matching(p)
    u = cluster_utilization(X, p)
    r = mean_assigned_reliability(X, p.A)
    assert 1.0 / p.M - 1e-9 <= u <= 1.0 + 1e-9
    assert 0.0 <= r <= 1.0


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000), st.floats(0.0, 0.8))
def test_gamma_monotonicity_of_assigned_reliability(seed, q_hi):
    """Raising γ cannot decrease the relaxed solution's constraint value."""
    p_lo = instance(seed, q=0.0)
    p_hi = instance(seed, q=q_hi)  # same matrices (same seed), higher γ
    X_lo = solve_relaxed(p_lo).X
    X_hi = solve_relaxed(p_hi).X
    val_lo = float(np.sum(X_lo * p_lo.A))
    val_hi = float(np.sum(X_hi * p_hi.A))
    assert val_hi >= val_lo - 5e-2  # soft monotonicity (barrier weighting)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_deployment_deterministic(seed):
    p = instance(seed)
    X1 = deployment_matching(p)
    X2 = deployment_matching(p)
    np.testing.assert_array_equal(X1, X2)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000), st.floats(1.1, 5.0))
def test_uniform_time_scaling_invariance(seed, scale):
    """Scaling all times by a constant scales the makespan and preserves
    the (rounded) decision up to ties — a core sanity of the pipeline."""
    p = instance(seed)
    X1 = deployment_matching(p)
    p2 = MatchingProblem(T=np.array(p.T) * scale, A=np.array(p.A),
                         gamma=p.gamma, beta=p.beta / scale, lam=p.lam * scale)
    X2 = deployment_matching(p2)
    # Costs scale even if tie-broken assignments differ.
    assert makespan(X2, p2) == pytest.approx(scale * makespan(X1, p), rel=0.25)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_rounding_never_leaves_simplex(seed):
    p = instance(seed)
    sol = solve_relaxed(p)
    for repair in (False, True):
        for ls in (False, True):
            X = round_assignment(sol.X, p, repair=repair, local_search=ls)
            np.testing.assert_allclose(X.sum(axis=0), np.ones(p.N))
