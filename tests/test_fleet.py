"""Tests for the sharded multi-dispatcher platform (repro.fleet).

Covers the routing layer (consistent-hash stability, load-aware
leveling, full-shard outage detection), the fleet controller's core
invariants (exact stream partition, per-shard conservation, 1-shard
trace equality with the plain dispatcher, byte-reproducible reruns),
the merged observability plane (shard-labeled logs summing losslessly,
snapshot merging), fleet replay, and the fleet-wide hot-swap protocol
(same epoch + same digest on every shard, any-shard-degraded rollback).
"""

from __future__ import annotations

import copy
import glob
import io

import numpy as np
import pytest

from repro.clusters import make_specialist_pool, shard_pool
from repro.fleet import (
    FleetConfig,
    FleetController,
    FleetReplay,
    FleetRetrainController,
    HashRing,
    HashRouter,
    LoadAwareRouter,
    full_down_intervals,
    make_router,
)
from repro.nn.layers import Linear
from repro.retrain.loop import RetrainConfig, _pairs_of_method
from repro.serve import Dispatcher, Outage, ServeConfig, build_stack
from repro.serve.loadgen import make_load
from repro.utils.rng import as_generator
from repro.workloads.specs import Family

#: Small-but-real serving knobs shared by every fleet test: enough
#: arrivals for multi-window shards, fast to train.
SERVE = ServeConfig(pool_size=40, train_epochs=12, max_wait_hours=0.25,
                    solver_max_iters=300)


@pytest.fixture(scope="module")
def stack():
    """One trained replicate-partition stack shared by all fleet tests."""
    return build_stack(SERVE)


def fleet_events(pool, *, rate=40.0, horizon=6.0, seed=SERVE.seed):
    return make_load("poisson", pool, rate).draw(horizon,
                                                 as_generator(seed + 3))


# --------------------------------------------------------------------- #
# Routing layer.
# --------------------------------------------------------------------- #


def test_hash_ring_uniformity_and_determinism():
    ring = HashRing(4)
    owners = [ring.owner(str(k)) for k in range(2000)]
    assert owners == [ring.owner(str(k)) for k in range(2000)]
    counts = np.bincount(owners, minlength=4)
    # Virtual nodes keep the split near-uniform (each shard within a
    # factor ~2 of fair share at 64 replicas).
    assert counts.min() > 2000 / 4 / 2
    assert counts.max() < 2000 / 4 * 2


def test_hash_ring_stability_under_resharding():
    """Growing n -> n+1 shards remaps only ~1/(n+1) of the keys."""
    keys = [str(k) for k in range(3000)]
    for n in (2, 4, 8):
        before = HashRing(n)
        after = HashRing(n + 1)
        moved = sum(before.owner(k) != after.owner(k) for k in keys)
        fair = len(keys) / (n + 1)
        assert moved < 2.0 * fair, (
            f"{moved} keys moved going {n}->{n + 1} shards; "
            f"consistent hashing should move ~{fair:.0f}")
        # Every moved key must have moved TO the new shard.
        for k in keys:
            if before.owner(k) != after.owner(k):
                assert after.owner(k) == n


def test_hash_ring_preference_order():
    ring = HashRing(4)
    for k in ("a", "b", "task-17"):
        pref = ring.preference(k)
        assert sorted(pref) == [0, 1, 2, 3]
        assert pref[0] == ring.owner(k)


def test_hash_router_failover_deterministic():
    router = HashRouter(3)
    pref = router.ring.preference("7")
    all_up = {0, 1, 2}
    assert router.route(7, 0.0, all_up) == pref[0]
    assert router.rerouted == 0
    # Home down: next shard in ring order, counted as a re-route.
    assert router.route(7, 1.0, all_up - {pref[0]}) == pref[1]
    assert router.rerouted == 1
    # Everything down: home anyway (the dispatcher queues; never drop).
    assert router.route(7, 2.0, set()) == pref[0]


def test_load_aware_router_levels_bursts():
    router = LoadAwareRouter(2, window_hours=1.0)
    up = {0, 1}
    # Adversarial burst: every task's hash home is shard 0, so a pure
    # hash router would send all 40 to one shard.
    hot = [k for k in range(400) if router.ring.owner(str(k)) == 0][:40]
    assert len(hot) == 40
    routed = [router.route(tid, 0.1 * i, up) for i, tid in enumerate(hot)]
    counts = np.bincount(routed, minlength=2)
    # Least-loaded routing strictly alternates, splitting the burst.
    assert abs(int(counts[0]) - int(counts[1])) <= 1
    assert router.rerouted == counts[1]
    # The depth window forgets old arrivals: after a long quiet gap the
    # next task goes to its hash home again.
    tid = 1234
    home = router.ring.preference(str(tid))[0]
    assert router.route(tid, 100.0, up) == home


def test_make_router_validates():
    assert make_router("hash", 2).policy == "hash"
    assert make_router("load", 2).policy == "load"
    with pytest.raises(ValueError, match="routing policy"):
        make_router("random", 2)


def test_full_down_intervals():
    # One of two clusters down: shard still up.
    assert full_down_intervals([Outage(0, 1.0, 2.0)], 2) == []
    # Both down with overlap: only the intersection counts.
    got = full_down_intervals(
        [Outage(0, 1.0, 3.0), Outage(1, 2.0, 4.0)], 2)
    assert got == [(2.0, 3.0)]
    # Touching half-open intervals of one cluster merge; disjoint
    # full-down stretches stay separate.
    got = full_down_intervals(
        [Outage(0, 1.0, 2.0), Outage(0, 2.0, 5.0), Outage(1, 1.5, 2.5),
         Outage(1, 4.0, 6.0)], 2)
    assert got == [(1.5, 2.5), (4.0, 5.0)]


# --------------------------------------------------------------------- #
# Cluster-pool sharding.
# --------------------------------------------------------------------- #


def test_shard_pool_exact_partition():
    clusters = make_specialist_pool(8)
    shards = shard_pool(clusters, 4)
    assert [len(s) for s in shards] == [2, 2, 2, 2]
    flat = sorted(c.cluster_id for s in shards for c in s)
    assert flat == [c.cluster_id for c in clusters]


def test_shard_pool_family_coherent():
    # One specialist per family x 2: family shards pair same-family
    # clusters (the specialist pool cycles families round-robin).
    clusters = make_specialist_pool(len(Family))
    shards = shard_pool(clusters, len(Family))
    for shard in shards:
        fams = {max(c.hardware.family_affinity,
                    key=c.hardware.family_affinity.get) for c in shard}
        assert len(fams) == 1


def test_shard_pool_validation():
    clusters = make_specialist_pool(4)
    with pytest.raises(ValueError, match="n_shards"):
        shard_pool(clusters, 0)
    with pytest.raises(ValueError, match="exceeds pool size"):
        shard_pool(clusters, 5)


# --------------------------------------------------------------------- #
# FleetConfig.
# --------------------------------------------------------------------- #


def test_fleet_config_roundtrip_and_validation():
    cfg = FleetConfig(n_shards=3, routing="load", serve=SERVE)
    again = FleetConfig.from_params(cfg.to_params())
    assert again == cfg
    # Per-shard stamped params round-trip back to the shard-agnostic
    # fleet config (the stamp is stripped).
    params = cfg.to_params()
    params["serve"]["shard"] = "2"
    assert FleetConfig.from_params(params) == cfg
    with pytest.raises(ValueError, match="n_shards"):
        FleetConfig(n_shards=0)
    with pytest.raises(ValueError, match="routing"):
        FleetConfig(routing="rr")
    with pytest.raises(ValueError, match="partition"):
        FleetConfig(partition="hashmod")
    with pytest.raises(ValueError, match="pool_m"):
        FleetConfig(partition="family", n_shards=9, pool_m=8)
    with pytest.raises(ValueError, match="serve.shard"):
        FleetConfig(serve=SERVE.with_overrides(shard="0"))
    with pytest.raises(ValueError, match="serve.retrain"):
        FleetConfig(serve=SERVE.with_overrides(
            retrain=RetrainConfig(trigger="manual")))


def test_shard_config_stamps_identity():
    cfg = FleetConfig(n_shards=2, serve=SERVE)
    assert cfg.shard_config(1).shard == "1"
    assert cfg.shard_config(1).identity_labels() == {"shard": "1"}
    with pytest.raises(ValueError, match="shard must be in"):
        cfg.shard_config(2)


def test_serve_config_identity_roundtrip():
    cfg = SERVE.with_overrides(shard=0, instance="replica-a")
    assert cfg.shard == "0"  # normalized to str
    again = ServeConfig.from_params(cfg.to_params())
    assert again.shard == "0" and again.instance == "replica-a"
    assert again.identity_labels() == {"shard": "0", "instance": "replica-a"}


# --------------------------------------------------------------------- #
# FleetController: partition + conservation invariants.
# --------------------------------------------------------------------- #


def test_routes_exactly_partition_stream(stack):
    cfg = FleetConfig(n_shards=4, serve=SERVE)
    controller = FleetController(cfg, stack=stack)
    events = fleet_events(controller.pool)
    per_shard, routes, rerouted = controller.route(events)
    assert rerouted == 0  # no outages -> everyone at their hash home
    merged = sorted((t, task.task_id)
                    for shard in per_shard for t, task in shard)
    assert merged == sorted((t, task.task_id) for t, task in events)
    # Routing is a pure function of the stream: identical on re-route.
    per_shard2, routes2, _ = controller.route(events)
    assert routes2 == routes


def test_fleet_conserves_and_sums(stack):
    cfg = FleetConfig(n_shards=2, serve=SERVE)
    controller = FleetController(cfg, stack=stack)
    events = fleet_events(controller.pool)
    stats = controller.run(events)
    assert stats.conserved
    assert stats.arrived == len(events)
    for s in stats.per_shard:
        assert s.conserved
        assert s.matched == s.completed + s.failed + s.requeued
    assert stats.arrived == sum(s.arrived for s in stats.per_shard)
    assert stats.completed + stats.failed + stats.shed + stats.unserved \
        == stats.arrived
    # Equal-seed rerun: byte-identical fleet trace.
    again = FleetController(cfg, stack=stack).run(events)
    assert again.trace_bytes() == stats.trace_bytes()


def test_one_shard_fleet_equals_plain_dispatcher(stack):
    """The fleet layer at n=1 is the unsharded platform, byte for byte."""
    cfg = FleetConfig(n_shards=1, serve=SERVE)
    controller = FleetController(cfg, stack=stack)
    events = fleet_events(controller.pool)
    fleet_stats = controller.run(events)
    pool, clusters, method, spec, dcfg = stack
    plain = Dispatcher(clusters, method, spec, dcfg).run(
        events, rng=SERVE.seed + 4)
    assert fleet_stats.trace_bytes() == plain.trace_bytes()
    assert fleet_stats.windows == plain.windows


def test_family_partition_trains_per_shard():
    cfg = FleetConfig(n_shards=2, partition="family", pool_m=4,
                      serve=SERVE.with_overrides(train_epochs=4))
    controller = FleetController(cfg)
    assert len(controller.shard_clusters) == 2
    ids = sorted(c.cluster_id for s in controller.shard_clusters for c in s)
    assert ids == list(range(4))
    assert controller.shard_methods[0] is not controller.shard_methods[1]
    events = fleet_events(controller.pool, rate=20.0, horizon=3.0)
    stats = controller.run(events)
    assert stats.conserved
    with pytest.raises(ValueError, match="replicate"):
        FleetController(cfg, stack=build_stack(cfg.serve))


def test_outage_conservation_no_task_lost(stack):
    """A full-shard outage re-routes; no arrival is dropped or doubled."""
    cfg = FleetConfig(n_shards=2, serve=SERVE)
    controller = FleetController(cfg, stack=stack)
    events = fleet_events(controller.pool)
    # Every cluster down for a mid-run stretch: both shards (replicate
    # partition) are fully down in [2, 3) -> router falls back to home.
    outages = [Outage(c.cluster_id, 2.0, 3.0)
               for c in controller.shard_clusters[0]]
    per_shard, routes, rerouted = controller.route(events, outages)
    merged = sorted((t, task.task_id)
                    for shard in per_shard for t, task in shard)
    assert merged == sorted((t, task.task_id) for t, task in events)
    stats = controller.run(events, outages=outages)
    assert stats.conserved
    assert stats.arrived == len(events)


def test_partial_outage_reroutes_to_up_shard():
    """With family shards, a fully-down shard's tasks go elsewhere."""
    cfg = FleetConfig(n_shards=2, partition="family", pool_m=4,
                      serve=SERVE.with_overrides(train_epochs=4))
    controller = FleetController(cfg)
    events = fleet_events(controller.pool, rate=30.0, horizon=4.0)
    # Shard 0 fully down over [1, 3); shard 1 untouched.
    outages = [Outage(c.cluster_id, 1.0, 3.0)
               for c in controller.shard_clusters[0]]
    per_shard, routes, rerouted = controller.route(events, outages)
    assert rerouted > 0
    for t, task in per_shard[0]:
        assert not (1.0 <= t < 3.0), "task routed into a dead shard"
    merged = sorted((t, task.task_id)
                    for shard in per_shard for t, task in shard)
    assert merged == sorted((t, task.task_id) for t, task in events)


# --------------------------------------------------------------------- #
# Merged observability.
# --------------------------------------------------------------------- #


def test_shard_logs_merge_losslessly(stack, tmp_path):
    """Fleet totals from merged per-shard logs == sum of shard totals."""
    from repro.telemetry import aggregate_runs

    cfg = FleetConfig(n_shards=2, serve=SERVE)
    controller = FleetController(cfg, stack=stack)
    events = fleet_events(controller.pool)
    stats = controller.run(events, telemetry="jsonl", out_dir=tmp_path,
                           run_prefix="fleet-test")
    logs = sorted(glob.glob(str(tmp_path / "fleet-test-s*.jsonl")))
    assert len(logs) == 2
    agg = aggregate_runs(logs)
    for name, want in (("serve/arrived", stats.arrived),
                       ("serve/windows", stats.windows),
                       ("serve/completed", stats.completed)):
        got = sum(state["value"] for key, state in agg["counters"].items()
                  if key.split("{", 1)[0] == name)
        assert got == want, f"{name}: merged {got} != fleet {want}"
    # Shard labels survive the merge (lossless, per-shard drill-down).
    shards = {state.get("labels", {}).get("shard")
              for key, state in agg["counters"].items()
              if key.split("{", 1)[0] == "serve/arrived"}
    assert shards == {"0", "1"}


def test_merge_snapshots_and_render(stack, tmp_path):
    from repro.monitor import merge_snapshots, render_top, snapshot_from_logs

    cfg = FleetConfig(n_shards=2, serve=SERVE)
    controller = FleetController(cfg, stack=stack)
    events = fleet_events(controller.pool)
    stats = controller.run(events, telemetry="jsonl", out_dir=tmp_path,
                           run_prefix="fleet-snap")
    logs = sorted(glob.glob(str(tmp_path / "fleet-snap-s*.jsonl")))
    snaps = [snapshot_from_logs([p]) for p in logs]
    merged = merge_snapshots(snaps)
    assert merged["merged_from"] == 2
    arrived = sum(
        state["value"]
        for key, state in merged["aggregate"]["counters"].items()
        if key.split("{", 1)[0] == "serve/arrived")
    assert arrived == stats.arrived
    text = render_top(merged)
    assert "shards (2)" in text
    assert f"arrived {stats.arrived:>6.0f}" in text
    # Offline log merge renders the same totals in one step.
    text2 = render_top(snapshot_from_logs(logs))
    assert "shards (2)" in text2


def test_fleet_flamegraph_prefixes_shards(stack, tmp_path):
    cfg = FleetConfig(n_shards=2, serve=SERVE.with_overrides(profile=True))
    controller = FleetController(cfg, stack=stack)
    events = fleet_events(controller.pool, rate=20.0, horizon=2.0)
    controller.run(events)
    out = controller.write_flamegraph(tmp_path / "fleet_flame.txt")
    lines = out.read_text().splitlines()
    roots = {ln.split(";", 1)[0] for ln in lines}
    assert roots == {"shard0", "shard1"}
    assert all(ln.rsplit(" ", 1)[1].isdigit() for ln in lines)


# --------------------------------------------------------------------- #
# Fleet replay.
# --------------------------------------------------------------------- #


def test_fleet_replay_verifies(stack, tmp_path):
    cfg = FleetConfig(n_shards=2, serve=SERVE)
    controller = FleetController(cfg, stack=stack)
    events = fleet_events(controller.pool)
    outages = [Outage(0, 1.0, 2.0)]
    stats = controller.run(events, outages=outages, telemetry="jsonl",
                           out_dir=tmp_path, run_prefix="fleet-replay")
    logs = sorted(glob.glob(str(tmp_path / "fleet-replay-s*.jsonl")))
    replay = FleetReplay.from_logs(logs)
    assert replay.config == cfg
    assert replay.merged_arrivals() == sorted(
        (t, task.task_id) for t, task in events)
    assert replay.merged_outages() == outages
    re_stats = replay.replay(stack=stack)
    assert replay.verify(re_stats) == []
    assert re_stats.trace_sha256() == stats.trace_sha256()


def test_fleet_replay_rejects_mixed_logs(stack, tmp_path):
    cfg = FleetConfig(n_shards=2, serve=SERVE)
    controller = FleetController(cfg, stack=stack)
    events = fleet_events(controller.pool, rate=20.0, horizon=2.0)
    controller.run(events, telemetry="jsonl", out_dir=tmp_path / "a",
                   run_prefix="run")
    other = FleetConfig(n_shards=2, routing="load", serve=SERVE)
    FleetController(other, stack=stack).run(
        events, telemetry="jsonl", out_dir=tmp_path / "b", run_prefix="run")
    with pytest.raises(ValueError, match="fleet params differ"):
        FleetReplay.from_logs([tmp_path / "a" / "run-s0.jsonl",
                               tmp_path / "b" / "run-s1.jsonl"])
    with pytest.raises(ValueError, match="needs logs for shards"):
        FleetReplay.from_logs([tmp_path / "a" / "run-s0.jsonl"])


# --------------------------------------------------------------------- #
# Fleet-wide retraining: same-epoch hot-swap + global rollback.
# --------------------------------------------------------------------- #


def _corrupted_version(frc):
    """Register a noise-corrupted copy of the live pairs (canary bypass)."""
    pairs = copy.deepcopy(_pairs_of_method(frc._base_method))
    rng = np.random.default_rng(0)
    for p in pairs:
        for m in p.time.net.net:
            if isinstance(m, Linear):
                m.weight.data += rng.normal(0.0, 5.0, m.weight.data.shape)
    return frc.registry.save(pairs, tag="corrupted",
                             parent=frc.registry.live())


def test_fleet_swap_same_epoch_same_digest(stack, tmp_path):
    cfg = FleetConfig(n_shards=2, serve=SERVE)
    frc = FleetRetrainController(cfg, RetrainConfig(trigger="manual"),
                                 registry_root=tmp_path / "registry")
    frc.fleet = FleetController(cfg, stack=stack)  # reuse trained stack
    frc._base_method = frc.fleet.shard_methods[0]
    events = fleet_events(frc.fleet.pool)
    info = frc.registry.save(_pairs_of_method(frc._base_method),
                             tag="candidate", parent=frc.registry.live())
    stats = frc.fleet.run(events, registry=frc.registry,
                          swap_schedule={3: info.version})
    swaps = stats.fleet_swaps()  # raises on any cross-shard divergence
    assert len(swaps) == 1
    assert swaps[0]["window"] == 3
    assert swaps[0]["version"] == info.version
    assert swaps[0]["digest"] == info.digest
    for shard_stats in stats.per_shard:
        assert shard_stats.swaps == 1
        assert shard_stats.swap_events[0]["digest"] == info.digest


def test_fleet_guard_rolls_back_all_shards(stack, tmp_path):
    """One degraded shard rolls the whole fleet back at one epoch."""
    cfg = FleetConfig(n_shards=2, serve=SERVE)
    retrain = RetrainConfig(trigger="manual", guard_windows=3)
    frc = FleetRetrainController(cfg, retrain,
                                 registry_root=tmp_path / "registry")
    frc.fleet = FleetController(cfg, stack=stack)
    frc._base_method = frc.fleet.shard_methods[0]
    events = fleet_events(frc.fleet.pool)
    bad = _corrupted_version(frc)
    final, guards, rolled_back, rollback_version = frc.swap_and_guard(
        events, bad.version, 4)
    assert any(g["degraded"] for g in guards)
    assert rolled_back
    assert rollback_version == "v0001"  # the bootstrap checkpoint
    swaps = final.fleet_swaps()
    assert [s["version"] for s in swaps] == [bad.version, "v0001"]
    assert swaps[0]["window"] == 4
    assert swaps[1]["window"] == 4 + retrain.guard_windows
    assert final.conserved


def test_fleet_retrain_cycle_runs(stack, tmp_path):
    """The full observe -> refit -> panel cycle reaches a verdict and,
    on promotion, lands the swap on every shard at one epoch."""
    cfg = FleetConfig(n_shards=2, serve=SERVE)
    frc = FleetRetrainController(
        cfg, RetrainConfig(trigger="manual", min_labels=16, sample_size=64,
                           epochs=8, canary_min_holdout=4, canary_windows=4,
                           guard_windows=3, min_cluster_labels=4),
        registry_root=tmp_path / "registry")
    frc.fleet = FleetController(cfg, stack=stack)
    frc._base_method = frc.fleet.shard_methods[0]
    outcome = frc.run(fleet_events(frc.fleet.pool))
    assert outcome.verdict in ("promoted", "rejected")
    assert outcome.observe.conserved
    assert outcome.refit is not None and outcome.refit["steps"] > 0
    assert [v["shard"] for v in outcome.canary] == [0, 1]
    if outcome.verdict == "promoted":
        assert outcome.digest is not None
        swaps = outcome.final.fleet_swaps()
        assert swaps[0]["version"] == outcome.version
        assert swaps[0]["digest"] == outcome.digest
    else:
        assert outcome.version in frc.registry
        assert frc.registry.live() == "v0001"  # live pointer never moved


def test_fleet_retrain_requires_replicate():
    with pytest.raises(ValueError, match="replicate"):
        FleetRetrainController(
            FleetConfig(partition="family", n_shards=2, pool_m=4,
                        serve=SERVE),
            registry_root="unused")
