"""Tests for the online serving layer (repro.serve).

Covers the four serving components end to end:

- load generation (determinism, validation, factory);
- the warm-start solver cache and prediction memo;
- the versioned checkpoint registry (round-trip, hot-swap, mismatch);
- the micro-batching dispatcher (byte-identical soak replay, bounded
  queue + shedding, dropout re-queue zero-loss, warm≈cold equivalence).
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.clusters import make_setting
from repro.matching.relaxed import SolverConfig, solve_relaxed
from repro.methods import TSM, Decision, FitContext, MatchSpec
from repro.methods.base import BaseMethod
from repro.predictors.models import PredictorPair
from repro.predictors.training import TrainConfig
from repro.serve import (
    BurstyLoad,
    DiurnalLoad,
    Dispatcher,
    DispatcherConfig,
    ModelRegistry,
    Outage,
    PoissonLoad,
    PredictionMemo,
    WarmStartCache,
    batch_size_bucket,
    make_cache_key,
    make_load,
)
from repro.sim import ArrivalStream
from repro.telemetry import recording
from repro.utils.rng import as_generator
from repro.workloads import TaskPool

#: Serving-grade solver: looser tol than the offline experiments so the
#: tests run in seconds (see run_serve_benchmark's docstring).
SOLVER = SolverConfig(tol=1e-4, max_iters=300)


@pytest.fixture(scope="module")
def stack():
    """A small trained serving stack shared by the dispatcher tests."""
    pool = TaskPool(24, rng=0)
    clusters = make_setting("A")
    train, _ = pool.split(0.6, rng=1)
    spec = MatchSpec(solver=SOLVER)
    ctx = FitContext.build(clusters, train, spec, rng=2)
    method = TSM(train_config=TrainConfig(epochs=8)).fit(ctx)
    return pool, clusters, spec, method


def _events(pool, rate=40.0, horizon=3.0, seed=3):
    return PoissonLoad(pool, rate).draw(horizon, as_generator(seed))


# --------------------------------------------------------------------- #
# Load generation.
# --------------------------------------------------------------------- #


class TestLoadgen:
    def test_poisson_deterministic(self):
        pool = TaskPool(8, rng=0)
        load = PoissonLoad(pool, 30.0)
        a = load.draw(2.0, as_generator(7))
        b = load.draw(2.0, as_generator(7))
        assert [(t, task.task_id) for t, task in a] == [
            (t, task.task_id) for t, task in b
        ]

    @pytest.mark.parametrize("pattern", ["poisson", "bursty", "diurnal"])
    def test_make_load_draws_sorted_within_horizon(self, pattern):
        pool = TaskPool(8, rng=0)
        load = make_load(pattern, pool, 40.0)
        assert isinstance(load, ArrivalStream)
        events = load.draw(4.0, as_generator(1))
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert all(0.0 < t < 4.0 for t in times)
        assert len(events) > 0

    def test_make_load_unknown_pattern(self):
        with pytest.raises(ValueError, match="unknown load pattern"):
            make_load("square-wave", TaskPool(4, rng=0), 10.0)

    def test_validation(self):
        pool = TaskPool(4, rng=0)
        with pytest.raises(ValueError):
            PoissonLoad(pool, 0.0)
        with pytest.raises(ValueError, match="burst_rate must exceed"):
            BurstyLoad(pool, base_rate=10.0, burst_rate=5.0)
        with pytest.raises(ValueError):
            DiurnalLoad(pool, peak_rate=5.0, trough_rate=5.0)
        with pytest.raises(ValueError, match="horizon"):
            PoissonLoad(pool, 10.0).draw(0.0, as_generator(0))

    def test_diurnal_rate_profile_bounds(self):
        load = DiurnalLoad(TaskPool(4, rng=0), peak_rate=10.0, trough_rate=2.0)
        rates = [load.rate_at(t) for t in np.linspace(0, 48, 97)]
        assert min(rates) >= 2.0 - 1e-12
        assert max(rates) <= 10.0 + 1e-12


# --------------------------------------------------------------------- #
# Warm-start cache + prediction memo.
# --------------------------------------------------------------------- #


class TestWarmStartCache:
    def test_bucketing(self):
        assert batch_size_bucket(1) == 0
        assert batch_size_bucket(2) == 1
        assert batch_size_bucket(3) == batch_size_bucket(4) == 2
        assert batch_size_bucket(5) == batch_size_bucket(8) == 3
        with pytest.raises(ValueError):
            batch_size_bucket(0)

    def test_key_is_order_insensitive(self):
        assert make_cache_key([3, 1, 2], 8) == make_cache_key([1, 2, 3], 8)

    def test_empty_cache_misses(self):
        pool = TaskPool(6, rng=0)
        cache = WarmStartCache()
        key = make_cache_key([0, 1, 2], 4)
        assert cache.seed(key, pool.tasks[:4], 3) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_store_then_seed_roundtrip(self):
        pool = TaskPool(6, rng=0)
        tasks = pool.tasks[:4]
        key = make_cache_key([0, 1, 2], len(tasks))
        X = np.random.default_rng(0).dirichlet(np.ones(3), size=len(tasks)).T
        sol = _fake_solution(X)
        cache = WarmStartCache()
        cache.store(key, tasks, sol)
        X0 = cache.seed(key, tasks, 3)
        assert X0 is not None
        np.testing.assert_allclose(X0.sum(axis=0), 1.0)
        np.testing.assert_allclose(X0, X, atol=1e-5)
        assert cache.hit_rate == 1.0

    def test_mostly_unseen_batch_declares_miss(self):
        pool = TaskPool(10, rng=0)
        key = make_cache_key([0, 1, 2], 4)
        cache = WarmStartCache()
        X = np.full((3, 4), 1 / 3)
        cache.store(key, pool.tasks[:4], _fake_solution(X))
        # 1 of 4 tasks known -> below the half-known threshold.
        assert cache.seed(key, [pool.tasks[3]] + pool.tasks[6:9], 3) is None
        # 2 of 4 known -> seeded.
        assert cache.seed(key, pool.tasks[2:6], 3) is not None

    def test_bucket_fallback_for_off_bucket_batch(self):
        pool = TaskPool(10, rng=0)
        cache = WarmStartCache()
        tasks = pool.tasks[:8]  # bucket 3
        X = np.full((3, 8), 1 / 3)
        cache.store(make_cache_key([0, 1, 2], 8), tasks, _fake_solution(X))
        # A 3-task flush window (bucket 2) still finds the columns.
        assert cache.seed(make_cache_key([0, 1, 2], 3), tasks[:3], 3) is not None
        # A different cluster signature does not.
        assert cache.seed(make_cache_key([0, 1, 7], 3), tasks[:3], 3) is None

    def test_lru_eviction(self):
        pool = TaskPool(6, rng=0)
        cache = WarmStartCache(max_entries=2)
        X = np.full((3, 2), 1 / 3)
        for sig in ([0, 1], [0, 2], [0, 3]):
            cache.store(make_cache_key(sig, 2), pool.tasks[:2], _fake_solution(X))
        assert len(cache) == 2
        assert cache.seed(make_cache_key([0, 1], 2), pool.tasks[:2], 3) is None

    def test_step_memory_scales_lr(self):
        pool = TaskPool(4, rng=0)
        key = make_cache_key([0, 1, 2], 2)
        cache = WarmStartCache()
        X = np.full((3, 2), 1 / 3)
        cache.store(key, pool.tasks[:2], _fake_solution(X, halvings=3))
        base = SolverConfig(lr=0.8)
        assert cache.solver_config(key, base).lr == pytest.approx(0.8 / 4.0)
        # halvings <= 1 and unknown keys leave the config untouched.
        cache.store(key, pool.tasks[:2], _fake_solution(X, halvings=1))
        assert cache.solver_config(key, base) is base
        assert cache.solver_config(make_cache_key([9], 2), base) is base


def _fake_solution(X, halvings=0):
    from repro.matching.relaxed import RelaxedSolution

    return RelaxedSolution(
        X=X, objective=0.0, iterations=1, converged=True,
        history=np.zeros(2), halvings=halvings,
    )


class TestPredictionMemo:
    def test_matches_direct_predict(self, stack):
        pool, clusters, spec, method = stack
        tasks = pool.tasks[:6]
        memo = PredictionMemo()
        T1, A1 = memo.predict(method, tasks)
        T2, A2 = method.predict(list(tasks))
        np.testing.assert_allclose(T1, T2)
        np.testing.assert_allclose(A1, A2)

    def test_hits_and_bump(self, stack):
        pool, clusters, spec, method = stack
        tasks = pool.tasks[:5]
        memo = PredictionMemo()
        memo.predict(method, tasks)
        assert memo.misses == 5 and memo.hits == 0
        memo.predict(method, tasks)
        assert memo.hits == 5
        memo.bump()
        assert len(memo) == 0 and memo.version == 1
        memo.predict(method, tasks)
        assert memo.misses == 10

    def test_capacity_bound(self, stack):
        pool, clusters, spec, method = stack
        memo = PredictionMemo(capacity=3)
        memo.predict(method, pool.tasks[:8])
        assert len(memo) == 3


# --------------------------------------------------------------------- #
# Checkpoint registry.
# --------------------------------------------------------------------- #


class TestModelRegistry:
    def test_save_load_roundtrip(self, stack, tmp_path):
        pool, clusters, spec, method = stack
        reg = ModelRegistry(tmp_path / "reg")
        info = reg.save(method, config=TrainConfig(epochs=8),
                        metrics={"loss": 0.5}, tag="fit")
        assert info.version == "v0001"
        assert info.meta["n_clusters"] == len(clusters)
        assert info.meta["metrics"] == {"loss": 0.5}
        assert "git_sha" in info.meta

        # A freshly initialized (untrained) stack predicts differently;
        # loading the checkpoint restores the trained outputs exactly.
        tasks = pool.tasks[:5]
        want_T, want_A = method.predict(tasks)
        other = TSM(train_config=TrainConfig(epochs=1))
        other.fit(FitContext.build(clusters, pool.tasks[:8], spec, rng=99))
        assert not np.allclose(other.predict(tasks)[0], want_T)
        reg.load_into(other)
        got_T, got_A = other.predict(tasks)
        np.testing.assert_allclose(got_T, want_T)
        np.testing.assert_allclose(got_A, want_A)

    def test_versioning_and_latest(self, stack, tmp_path):
        _, _, _, method = stack
        reg = ModelRegistry(tmp_path / "reg")
        assert reg.latest() is None and len(reg) == 0
        reg.save(method)
        reg.save(method, tag="second")
        assert reg.versions() == ["v0001", "v0002"]
        assert reg.latest() == "v0002"
        assert "v0001" in reg
        assert reg.info("v0002").meta["tag"] == "second"
        with pytest.raises(KeyError):
            reg.info("v9999")

    def test_cluster_count_mismatch_raises(self, stack, tmp_path):
        _, _, _, method = stack
        reg = ModelRegistry(tmp_path / "reg")
        in_features = method.pairs[0].time.standardizer.mean.size
        reg.save([PredictorPair(in_features, rng=0)])
        with pytest.raises(ValueError, match="cluster pairs"):
            reg.load_into(method, "v0001")

    def test_empty_registry_load_raises(self, stack, tmp_path):
        _, _, _, method = stack
        with pytest.raises(KeyError, match="no checkpoints"):
            ModelRegistry(tmp_path / "reg").load_into(method)


# --------------------------------------------------------------------- #
# decide_full / solver warm-start semantics.
# --------------------------------------------------------------------- #


class TestDecideFull:
    def test_returns_decision_matching_decide(self, stack):
        pool, clusters, spec, method = stack
        tasks = pool.tasks[:6]
        T = np.stack([c.true_times(tasks) for c in clusters])
        A = np.stack([c.true_reliabilities(tasks) for c in clusters])
        problem = spec.build_problem(T, A)
        decision = method.decide_full(problem, tasks)
        assert isinstance(decision, Decision)
        np.testing.assert_allclose(decision.X, method.decide(problem, tasks))
        assert decision.relaxed.iterations > 0
        assert hasattr(decision.relaxed, "halvings")

    def test_warm_start_cuts_iterations_and_preserves_objective(self, stack):
        pool, clusters, spec, method = stack
        tasks = pool.tasks[:8]
        T = np.stack([c.true_times(tasks) for c in clusters])
        A = np.stack([c.true_reliabilities(tasks) for c in clusters])
        problem = spec.build_problem(T, A).with_predictions(
            *method.predict(list(tasks))
        )
        cold = solve_relaxed(problem, SOLVER)
        cache = WarmStartCache()
        key = make_cache_key([c.cluster_id for c in clusters], len(tasks))
        cache.store(key, tasks, cold)
        x0 = cache.seed(key, tasks, len(clusters))
        warm = solve_relaxed(problem, SOLVER, x0=x0)
        assert warm.iterations < cold.iterations
        assert warm.objective == pytest.approx(cold.objective, rel=1e-3)


# --------------------------------------------------------------------- #
# Dispatcher.
# --------------------------------------------------------------------- #


def _run(stack, events, *, cfg=None, rng=4, outages=None, **dispatcher_kw):
    pool, clusters, spec, method = stack
    with recording(mode="summary", stream=io.StringIO()):
        d = Dispatcher(clusters, method, spec, cfg, **dispatcher_kw)
        return d.run(events, rng=rng, outages=outages)


def _assert_causal(stats):
    """Every record respects simulated-time causality."""
    for r in stats.records:
        assert r.arrival <= r.dispatched + 1e-9
        assert r.dispatched <= r.start + 1e-9
        assert r.start <= r.end + 1e-9


class _FirstCluster(BaseMethod):
    """Custom decide() override: everything goes to the first up cluster."""

    name = "first"

    def _fit(self, ctx):
        pass

    def predict(self, tasks):  # pragma: no cover - not used
        raise AssertionError("custom decide should not predict")

    def decide(self, problem, tasks):
        X = np.zeros((problem.M, problem.N))
        X[0, :] = 1.0
        return X


class TestDispatcher:
    def test_soak_replay_is_byte_identical(self, stack):
        pool = stack[0]
        events = _events(pool)
        cfg = DispatcherConfig(max_batch=8, max_wait_hours=0.2,
                               jitter_std=0.05)
        a = _run(stack, events, cfg=cfg)
        b = _run(stack, events, cfg=cfg)
        assert a.conserved and b.conserved
        _assert_causal(a)
        assert a.trace_bytes() == b.trace_bytes()
        assert len(a.trace_bytes()) > 0

    def test_size_trigger_never_dispatches_before_arrivals(self, stack):
        pool = stack[0]
        # A burst at t=1.0 fills the queue to max_batch while busy_until
        # is still 0: the window must dispatch at the burst time, never
        # earlier (dispatched < arrival would poison the wait stats).
        events = [(1.0, task) for task in pool.tasks[:10]]
        stats = _run(stack, events, cfg=DispatcherConfig(max_batch=4))
        assert stats.conserved
        _assert_causal(stats)
        assert all(r.dispatched >= 1.0 - 1e-9 for r in stats.records)

    def test_no_dispatch_during_full_outage(self, stack):
        pool, clusters, spec, method = stack
        # Arrivals at t=0.1 ripen mid-outage (0.05-2.0 covers the whole
        # fleet); dispatch must wait for the rejoin, not happen at the
        # ripen time with no cluster up.
        events = [(0.1, t) for t in pool.tasks[:4]] + [(2.5, pool.tasks[4])]
        outages = [Outage(c.cluster_id, start=0.05, end=2.0) for c in clusters]
        stats = _run(stack, events, cfg=DispatcherConfig(max_batch=8,
                                                         failures=False),
                     outages=outages)
        assert stats.conserved and stats.unserved == 0
        _assert_causal(stats)
        assert all(r.dispatched >= 2.0 - 1e-9 for r in stats.records)

    def test_size_and_time_triggers(self, stack):
        pool = stack[0]
        events = _events(pool)
        stats = _run(stack, events, cfg=DispatcherConfig(max_batch=8))
        assert stats.windows >= 2
        assert max(stats.batch_sizes) <= 8
        assert stats.arrived == len(events)
        assert stats.shed == 0 and stats.conserved

    @pytest.mark.parametrize("policy", ["reject", "drop_oldest"])
    def test_overload_sheds_and_bounds_queue(self, stack, policy):
        pool = stack[0]
        events = _events(pool, rate=80.0, horizon=2.0)
        cfg = DispatcherConfig(
            max_batch=4, max_wait_hours=0.1, queue_capacity=6,
            shed_policy=policy, dispatch_overhead_hours=0.3,
        )
        stats = _run(stack, events, cfg=cfg)
        assert stats.shed > 0
        assert stats.max_queue_depth <= cfg.queue_capacity
        assert stats.conserved

    def test_shedding_is_deterministic(self, stack):
        pool = stack[0]
        events = _events(pool, rate=80.0, horizon=2.0)
        cfg = DispatcherConfig(max_batch=4, max_wait_hours=0.1,
                               queue_capacity=6, dispatch_overhead_hours=0.3)
        a = _run(stack, events, cfg=cfg)
        b = _run(stack, events, cfg=cfg)
        assert a.shed == b.shed > 0
        assert a.trace_bytes() == b.trace_bytes()

    def test_outage_requeues_without_losing_tasks(self, stack):
        pool, clusters, spec, method = stack
        events = _events(pool, rate=40.0, horizon=2.0)
        cfg = DispatcherConfig(max_batch=8, failures=False)
        base = _run(stack, events, cfg=cfg)
        # Pick a cluster with work dispatched before t=0.6 but still
        # executing then — exactly the jobs a dropout orphans.
        victims = [r.cluster_id for r in base.records
                   if r.dispatched < 0.6 < r.end]
        assert victims, "fixture run must have work in flight at t=0.6"
        outage = Outage(victims[0], start=0.6, end=1.4)
        stats = _run(stack, events, cfg=cfg, outages=[outage])
        assert stats.requeued > 0
        assert stats.conserved
        assert stats.unserved == 0
        assert stats.shed == 0
        # Every arrival completed (failures off): zero tasks lost.
        assert stats.completed == stats.arrived
        _assert_causal(stats)
        # Nothing runs on the victim during the outage window.
        for r in stats.records:
            if r.cluster_id == outage.cluster_id:
                assert r.end <= outage.start + 1e-9 or r.start >= outage.end - 1e-9

    def test_rejoined_cluster_starts_clean(self, stack):
        pool, clusters, spec, _ = stack
        first = _FirstCluster()
        first._fitted = True
        a, b = pool.tasks[0], pool.tasks[1]
        d0 = clusters[0].true_time(a)
        t_a = 0.1
        # Outage orphans A mid-execution; B arrives after the rejoin but
        # before A's now-phantom end time t_a + d0 on the dead cluster.
        t_down, t_up = t_a + 0.5 * d0, t_a + 0.75 * d0
        t_b = t_a + 0.8 * d0
        cfg = DispatcherConfig(max_batch=1, failures=False)
        d = Dispatcher(clusters, first, spec, cfg)
        stats = d.run(
            [(t_a, a), (t_b, b)], rng=0,
            outages=[Outage(clusters[0].cluster_id, start=t_down, end=t_up)],
        )
        assert stats.conserved and stats.requeued == 1
        _assert_causal(stats)
        rec_a = next(r for r in stats.records if r.task_id == a.task_id)
        assert rec_a.requeues == 1
        assert rec_a.cluster_id != clusters[0].cluster_id
        # B lands on the rejoined cluster and starts at its own dispatch:
        # the orphan's end time must not linger in the cluster's free_at.
        rec_b = next(r for r in stats.records if r.task_id == b.task_id)
        assert rec_b.cluster_id == clusters[0].cluster_id
        assert rec_b.dispatched == pytest.approx(t_b)
        assert rec_b.start == pytest.approx(rec_b.dispatched)

    def test_requeued_tasks_survive_drop_oldest_overload(self, stack):
        pool = stack[0]
        events = _events(pool, rate=80.0, horizon=2.0)
        cfg = DispatcherConfig(
            max_batch=4, max_wait_hours=0.1, queue_capacity=4,
            shed_policy="drop_oldest", dispatch_overhead_hours=0.25,
            failures=False,
        )
        base = _run(stack, events, cfg=cfg)
        victims = [r.cluster_id for r in base.records
                   if r.dispatched < 0.5 < r.end]
        assert victims
        stats = _run(stack, events, cfg=cfg,
                     outages=[Outage(victims[0], start=0.5, end=1.5)])
        assert stats.conserved
        # Requeued orphans are shed-exempt: arrived == served + shed holds
        # and nothing vanished even with both pressures active.
        assert stats.requeued > 0 and stats.shed > 0

    def test_warm_start_helps_and_matches_cold_service(self, stack):
        pool = stack[0]
        events = _events(pool, rate=40.0, horizon=4.0)
        runs = {}
        for warm in (False, True):
            cfg = DispatcherConfig(max_batch=8, warm_start=warm,
                                   memoize_predictions=warm)
            runs[warm] = _run(stack, events, cfg=cfg)
        cold, warm = runs[False], runs[True]
        assert cold.conserved and warm.conserved
        assert warm.cache["hits"] > 0
        # Same arrivals served either way; the cache only changes solver
        # effort, never admission/shedding behaviour.
        assert (cold.arrived, cold.shed, cold.windows) == (
            warm.arrived, warm.shed, warm.windows
        )
        assert sum(warm.solver_iterations) < sum(cold.solver_iterations)

    def test_hot_swap_mid_run(self, stack, tmp_path):
        pool, clusters, spec, method = stack
        reg = ModelRegistry(tmp_path / "reg")
        reg.save(method, tag="fit")
        events = _events(pool, rate=40.0, horizon=2.0)
        memo = PredictionMemo()
        cleared = []

        class SpyCache(WarmStartCache):
            def clear(self):
                cleared.append(len(self))
                super().clear()

        cache = SpyCache()
        cfg = DispatcherConfig(max_batch=8)
        stats = _run(stack, events, cfg=cfg, memo=memo, cache=cache,
                     registry=reg, swap_schedule={1: "v0001"})
        assert stats.swaps == 1
        assert memo.version == 1
        # The warm-start cache is dropped with the memo at the swap so
        # post-swap windows never seed from the old model's solutions.
        assert len(cleared) == 1 and cleared[0] > 0
        assert stats.conserved

    def test_swap_schedule_requires_registry(self, stack):
        pool, clusters, spec, method = stack
        with pytest.raises(ValueError, match="registry"):
            Dispatcher(clusters, method, spec, swap_schedule={0: "v0001"})

    def test_custom_decide_method_skips_cache(self, stack):
        pool, clusters, spec, method = stack
        first = _FirstCluster()
        first._fitted = True
        d = Dispatcher(clusters, first, spec, DispatcherConfig(max_batch=4))
        stats = d.run(_events(pool, rate=20.0, horizon=1.0), rng=0)
        assert stats.conserved
        assert stats.solver_iterations == []
        assert all(r.cluster_id == clusters[0].cluster_id for r in stats.records)


# --------------------------------------------------------------------- #
# Block-decomposed serving + learned warm starts (ServeConfig knobs).
# --------------------------------------------------------------------- #


class TestBlocksServing:
    def test_blocks_mode_preserves_default_trace(self, stack):
        """On the generalist setting-A fleet the viability graph is one
        component, so solve_mode="blocks" must reproduce the scalar
        dispatch trace byte for byte (the soak-SHA compatibility gate)."""
        pool = stack[0]
        events = _events(pool, rate=40.0, horizon=3.0)
        runs = {}
        for mode in ("scalar", "blocks"):
            cfg = DispatcherConfig(max_batch=8, solve_mode=mode)
            runs[mode] = _run(stack, events, cfg=cfg)
        assert runs["scalar"].conserved and runs["blocks"].conserved
        assert runs["blocks"].trace_bytes() == runs["scalar"].trace_bytes()

    def test_seed_sources_are_accounted(self, stack):
        pool = stack[0]
        events = _events(pool, rate=40.0, horizon=3.0)
        cfg = DispatcherConfig(max_batch=8, warm_start=True,
                               memoize_predictions=True)
        stats = _run(stack, events, cfg=cfg)
        # Every window's opening point is attributed to exactly one source.
        assert sum(stats.seed_sources.values()) == stats.windows
        assert stats.seed_sources.get("cache", 0) > 0
        assert stats.seed_sources.get("cold", 0) > 0

    def test_learned_mode_end_to_end(self):
        """warm_start="learned": the trainer harvests relaxed solutions,
        refits mid-run, installs the head on the dispatcher — and the
        dispatch trace still matches the default cache-mode run."""
        from repro.serve import ServeConfig, build_platform

        # Pool must exceed the trainer's min_labels=32: labels dedup by
        # task_id, so a 20-task pool can never accumulate enough.
        base = ServeConfig(pool_size=40, seed=0, train_epochs=4,
                           solver_tol=1e-4, solver_max_iters=300, max_batch=8)
        traces = {}
        for ws in ("cache", "learned"):
            config = base.with_overrides(warm_start=ws)
            platform = build_platform(config)
            events = platform.load("poisson", 40.0).draw(
                4.0, as_generator(config.seed + 3))
            with recording(mode="summary", stream=io.StringIO()):
                stats = platform.run(events)
            traces[ws] = stats.trace_bytes()
            assert stats.conserved
            if ws == "learned":
                assert platform.trainer is not None
                assert platform.trainer.fits > 0
                assert platform.dispatcher.warm_model is platform.trainer.head
        assert traces["learned"] == traces["cache"]


# --------------------------------------------------------------------- #
# Stage profiler integration (latency budget).
# --------------------------------------------------------------------- #


class TestProfiledServing:
    def test_profiled_trace_is_byte_identical(self, stack):
        """The profiler is a pure observer: wall-clock only, no RNG, so
        the dispatch trace matches the unprofiled run byte for byte (the
        profiler-off case is the soak-SHA acceptance gate; on is
        stronger and holds too)."""
        from repro.telemetry.profiler import StageProfiler

        pool = stack[0]
        events = _events(pool)
        base = _run(stack, list(events))
        prof = StageProfiler()
        profiled = _run(stack, list(events), profiler=prof)
        assert profiled.trace_bytes() == base.trace_bytes()
        assert base.profile == {}  # profiler off: stats carry no budget

    def test_budget_decomposes_window_latency(self, stack):
        from repro.telemetry.profiler import StageProfiler

        pool = stack[0]
        events = _events(pool)
        prof = StageProfiler()
        stats = _run(stack, list(events), profiler=prof)
        budget = stats.profile
        assert budget["windows"] == stats.windows
        # The dispatcher's named depth-1 stages, all called once/window.
        for name in ("form", "predict", "seed", "solve", "commit", "schedule"):
            assert budget["stages"][name]["calls"] == stats.windows
        # The method layer nests its phases under the solve stage.
        assert "solve;relaxed" in budget["stages"]
        assert "solve;rounding" in budget["stages"]
        # Children never exceed their parent; self-time is the difference.
        solve = budget["stages"]["solve"]
        child_total = sum(
            s["total_s"] for path, s in budget["stages"].items()
            if path.startswith("solve;"))
        assert child_total <= solve["total_s"] + 1e-9
        assert solve["self_s"] == pytest.approx(solve["total_s"] - child_total)
        # Attribution: the named stages explain the e2e window latency.
        assert budget["coverage_p95"] >= 0.95
        assert budget["unattributed"]["frac"] < 0.05
        # Simulated-time stages are separate (they are not wall-clock):
        # one batch-formation wait per window, one admission wait per
        # dispatched task.
        assert budget["sim_stages"]["batch_wait"]["calls"] == stats.windows
        assert budget["sim_stages"]["admission_wait"]["calls"] >= stats.windows

    def test_profiled_run_records_stage_gauges(self, stack):
        from repro.telemetry import Recorder
        from repro.telemetry.profiler import StageProfiler

        pool, clusters, spec, method = stack
        events = _events(pool)
        rec = Recorder(mode="summary", run="prof", stream=io.StringIO())
        with rec.activate():
            d = Dispatcher(clusters, method, spec, None, profiler=StageProfiler())
            d.run(list(events), rng=4)
            gauges = rec.aggregate()["gauges"]
        keys = {k.split("{", 1)[0] for k in gauges}
        assert "serve/stage_total_s" in keys
        assert "serve/profile_coverage_p95" in keys
        stage_labels = {
            g["labels"]["stage"] for k, g in gauges.items()
            if k.split("{", 1)[0] == "serve/stage_total_s"}
        assert "solve" in stage_labels and "unattributed" in stage_labels

    def test_collapsed_stacks_and_flamegraph_file(self, stack, tmp_path):
        from repro.telemetry.profiler import StageProfiler

        pool = stack[0]
        prof = StageProfiler()
        _run(stack, _events(pool), profiler=prof)
        lines = prof.collapsed_stacks()
        assert lines
        for line in lines:
            frames, count = line.rsplit(" ", 1)
            assert frames.startswith("window")
            assert int(count) > 0
        # Nested frames keep their full path under the root.
        assert any(ln.startswith("window;solve;relaxed ") for ln in lines)
        out = prof.write_flamegraph(tmp_path / "flame" / "serve.txt")
        assert out.read_text().splitlines() == lines

    def test_serve_config_profile_round_trip(self):
        from repro.serve import ServeConfig, build_platform

        config = ServeConfig(pool_size=16, train_epochs=2, profile=True)
        assert ServeConfig.from_params(config.to_params()).profile is True
        assert ServeConfig.from_params({
            k: v for k, v in config.to_params().items() if k != "profile"
        }).profile is False  # older param dicts: profiling defaults off
        platform = build_platform(config)
        assert platform.profiler is not None
        assert platform.dispatcher.profiler is platform.profiler
        off = build_platform(config.with_overrides(profile=False))
        assert off.profiler is None


class TestWarmStartRegistry:
    def _trained_head(self):
        from repro.serve import WarmStartHead

        rng = np.random.default_rng(0)
        d = TaskPool(1, rng=0).tasks[0].features.shape[0]
        Z = rng.normal(size=(48, d))
        C = rng.dirichlet(np.ones(3) * 0.2, size=48)
        return WarmStartHead(d, [0, 1, 2]).fit(Z, C)

    def test_checkpoint_bundles_head_with_digest(self, stack, tmp_path):
        _, _, _, method = stack
        head = self._trained_head()
        reg = ModelRegistry(tmp_path / "reg")
        info = reg.save(method, warm_start=head)
        assert info.meta["warm_start_digest"] == head.digest()
        loaded = reg.load_warm_start(info.version)
        assert loaded is not None and loaded.digest() == head.digest()
        # latest-resolution works too
        assert reg.load_warm_start().digest() == head.digest()

    def test_checkpoint_without_head_loads_none(self, stack, tmp_path):
        _, _, _, method = stack
        reg = ModelRegistry(tmp_path / "reg")
        info = reg.save(method)
        assert info.meta["warm_start_digest"] is None
        assert reg.load_warm_start(info.version) is None

    def test_tampered_head_fails_digest_check(self, stack, tmp_path):
        _, _, _, method = stack
        head = self._trained_head()
        reg = ModelRegistry(tmp_path / "reg")
        info = reg.save(method, warm_start=head)
        # Overwrite the stored npz with a differently-fit head.
        other = self._trained_head()
        other.W = other.W + 0.5
        other.save(info.path / "warm_start.npz")
        with pytest.raises(ValueError, match="digest"):
            reg.load_warm_start(info.version)
