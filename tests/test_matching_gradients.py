"""Tests for the two argmin-differentiation routes: KKT (Eq. 15) and
zeroth-order (Algorithm 2), including their mutual agreement — the code
path underlying the paper's MFCP-AD ≈ MFCP-FG claim."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.matching import (
    ExponentialDecaySpeedup,
    SolverConfig,
    ZeroOrderConfig,
    kkt_jacobians,
    kkt_vjp,
    optimal_perturbation,
    solve_relaxed,
    zo_vjp,
)

from tests.conftest import random_problem

TIGHT = SolverConfig(max_iters=4000, tol=1e-14, patience=50, lr=0.3)


@pytest.fixture()
def solved(rng):
    p = replace(random_problem(rng, n=4), entropy=0.05)
    sol = solve_relaxed(p, TIGHT)
    return p, sol


class TestKKT:
    def test_vjp_consistent_with_full_jacobian(self, solved, rng):
        p, sol = solved
        gX = rng.normal(size=(p.M, p.N))
        kg = kkt_vjp(sol.X, p, gX)
        Jt, Ja = kkt_jacobians(sol.X, p)
        np.testing.assert_allclose(kg.dT, (Jt.T @ gX.ravel()).reshape(p.M, p.N), atol=1e-10)
        np.testing.assert_allclose(kg.dA, (Ja.T @ gX.ravel()).reshape(p.M, p.N), atol=1e-10)

    def test_jacobian_matches_finite_differences(self, solved):
        p, sol = solved
        Jt, Ja = kkt_jacobians(sol.X, p)
        h = 1e-4

        def resolve(T, A):
            return solve_relaxed(p.with_predictions(T, A), TIGHT, x0=sol.X).X

        T, A = np.array(p.T), np.array(p.A)
        for idx in [(0, 0), (2, 3)]:
            k = idx[0] * p.N + idx[1]
            Tp, Tm = T.copy(), T.copy()
            Tp[idx] += h
            Tm[idx] -= h
            num = (resolve(Tp, A) - resolve(Tm, A)) / (2 * h)
            ana = Jt[:, k].reshape(p.M, p.N)
            scale = max(np.abs(ana).max(), 1e-3)
            assert np.abs(num - ana).max() / scale < 0.05

    def test_jacobian_rows_sum_to_zero(self, solved):
        """Column-simplex constraint: perturbing any input cannot change a
        task's total assignment mass — each task's Jacobian block sums to 0."""
        p, sol = solved
        Jt, Ja = kkt_jacobians(sol.X, p)
        for J in (Jt, Ja):
            blocks = J.reshape(p.M, p.N, -1)
            np.testing.assert_allclose(blocks.sum(axis=0), 0.0, atol=1e-6)

    def test_shape_validation(self, solved, rng):
        p, sol = solved
        with pytest.raises(ValueError):
            kkt_vjp(sol.X[:, :2], p, rng.normal(size=(p.M, p.N)))

    def test_time_gradient_sign_sanity(self, rng):
        """Making a cluster's predicted time for a task larger must not
        *increase* that task's assignment to the cluster."""
        p = replace(random_problem(rng, n=4), entropy=0.05)
        sol = solve_relaxed(p, TIGHT)
        Jt, _ = kkt_jacobians(sol.X, p)
        for i in range(p.M):
            for j in range(p.N):
                k = i * p.N + j
                assert Jt[k, k] <= 1e-8  # d x_ij / d t_ij <= 0


class TestZeroOrder:
    def test_matches_analytic_direction(self, solved, rng):
        p, sol = solved
        gX = rng.normal(size=(p.M, p.N))
        kg = kkt_vjp(sol.X, p, gX)
        zg = zo_vjp(p, sol, 0, gX,
                    ZeroOrderConfig(samples=48, delta=0.02, warm_start_iters=400),
                    solver_config=TIGHT, rng=1)
        ref = np.concatenate([kg.dT[0], kg.dA[0]])
        est = np.concatenate([zg.dt, zg.da])
        cos = est @ ref / (np.linalg.norm(est) * np.linalg.norm(ref))
        assert cos > 0.7

    def test_antithetic_estimates_stay_bounded(self, solved, rng):
        """Antithetic pairing is a variance-reduction heuristic, not a
        guarantee on tiny sample counts — assert both modes produce finite,
        same-scale estimates rather than a strict ordering."""
        p, sol = solved
        gX = rng.normal(size=(p.M, p.N))

        def spread(antithetic: bool) -> float:
            outs = [
                zo_vjp(p, sol, 0, gX,
                       ZeroOrderConfig(samples=8, delta=0.05, antithetic=antithetic),
                       rng=seed).dt
                for seed in range(6)
            ]
            return float(np.mean(np.var(np.stack(outs), axis=0)))

        s_anti, s_plain = spread(True), spread(False)
        assert np.isfinite(s_anti) and np.isfinite(s_plain)
        assert s_anti <= s_plain * 5.0

    def test_works_on_nonconvex_parallel(self, rng):
        p = replace(random_problem(rng, n=4),
                    speedup=(ExponentialDecaySpeedup(),), entropy=0.02)
        sol = solve_relaxed(p, TIGHT)
        gX = rng.normal(size=(p.M, p.N))
        zg = zo_vjp(p, sol, 1, gX, ZeroOrderConfig(samples=8, delta=0.05), rng=0)
        assert np.all(np.isfinite(zg.dt)) and np.all(np.isfinite(zg.da))
        assert zg.solves > 0

    def test_validation(self, solved, rng):
        p, sol = solved
        gX = rng.normal(size=(p.M, p.N))
        with pytest.raises(ValueError):
            zo_vjp(p, sol, 99, gX)
        with pytest.raises(ValueError):
            zo_vjp(p, sol, 0, gX[:, :1])
        with pytest.raises(ValueError):
            ZeroOrderConfig(samples=0)
        with pytest.raises(ValueError):
            ZeroOrderConfig(delta=-1)

    def test_optimal_perturbation_formula(self):
        # Δ* = (2σ²/(β²S))^{1/4}, increasing in σ, decreasing in S and β.
        base = optimal_perturbation(1.0, 5.0, 8)
        assert optimal_perturbation(2.0, 5.0, 8) > base
        assert optimal_perturbation(1.0, 5.0, 32) < base
        assert optimal_perturbation(1.0, 10.0, 8) < base
        with pytest.raises(ValueError):
            optimal_perturbation(0.0, 5.0, 8)

    def test_deterministic_given_rng(self, solved, rng):
        p, sol = solved
        gX = rng.normal(size=(p.M, p.N))
        z1 = zo_vjp(p, sol, 0, gX, ZeroOrderConfig(samples=4, delta=0.05), rng=7)
        z2 = zo_vjp(p, sol, 0, gX, ZeroOrderConfig(samples=4, delta=0.05), rng=7)
        np.testing.assert_allclose(z1.dt, z2.dt)
        np.testing.assert_allclose(z1.da, z2.da)
