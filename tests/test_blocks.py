"""Block-decomposed window solves and learned warm starts.

Covers the decomposition invariants the serving hot path relies on:

- the structure analyzer partitions tasks/clusters into genuine
  connected components (specialist fleets split by family, dense
  instances stay whole);
- the batched block solve matches the dense solve on single-block
  instances and stays within a measured gap — conservation-exact and
  strictly feasible — on decomposable ones, singleton and degenerate
  blocks included;
- a bad warm seed can never open the solve worse than cold (the batch
  hedge), matching the scalar solver's contract;
- the learned warm-start head trains, gates low-confidence seeds,
  round-trips through npz + digest, and its seeds also fall back to
  cold harmlessly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clusters import make_specialist_pool
from repro.matching import (
    BlockConfig,
    MatchingProblem,
    SolverConfig,
    analyze_blocks,
    barrier_value,
    feasible_gamma,
    solve_relaxed,
    solve_relaxed_blocks,
    viability_mask,
)
from repro.matching.blocks import _block_gammas
from repro.serve.dispatcher import WindowSnapshot
from repro.serve.warmstart import WarmStartHead
from repro.retrain.warmstart import (
    WarmStartTrainer,
    WarmStartTrainerConfig,
    fit_warm_start_head,
)
from repro.workloads import TaskPool


def _dense_problem(seed: int, M: int = 4, N: int = 10) -> MatchingProblem:
    """A connected instance: time spread < dominance, so one block."""
    rng = np.random.default_rng(seed)
    T = rng.uniform(1.0, 2.2, (M, N))
    A = rng.uniform(0.55, 0.99, (M, N))
    return MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.35))


def _specialist_problem(n_tasks: int = 48, m_clusters: int = 12,
                        seed: int = 0) -> MatchingProblem:
    """A family-sharded instance whose viability graph splits 4 ways."""
    pool = TaskPool(n_tasks, rng=seed)
    clusters = make_specialist_pool(m_clusters)
    T = np.stack([c.true_times(pool.tasks) for c in clusters])
    A = np.stack([c.true_reliabilities(pool.tasks) for c in clusters])
    return MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.5))


class TestStructureAnalyzer:
    def test_viability_mask_keeps_min_viable_fastest(self):
        T = np.array([[1.0, 9.0], [2.0, 1.0], [50.0, 50.0]])
        mask = viability_mask(T, time_dominance=3.0, min_viable=2)
        # Every task keeps at least its two fastest clusters.
        assert mask.sum(axis=0).min() >= 2
        # The uniformly dominated cluster is nowhere viable.
        assert not mask[2].any()
        # min_viable beyond M clamps instead of raising.
        assert viability_mask(T, min_viable=10).all()

    def test_dense_instance_is_one_block(self):
        problem = _dense_problem(0)
        structure = analyze_blocks(problem)
        assert structure.n_blocks == 1
        assert structure.shapes == ((problem.M, problem.N),)
        assert structure.idle_clusters.size == 0

    def test_specialist_instance_splits_by_family(self):
        problem = _specialist_problem()
        structure = analyze_blocks(problem)
        assert structure.n_blocks == 4  # one block per workload family
        # Blocks partition the tasks and the used clusters exactly.
        tasks = np.concatenate([b.task_idx for b in structure.blocks])
        assert sorted(tasks.tolist()) == list(range(problem.N))
        clusters = np.concatenate([b.cluster_idx for b in structure.blocks])
        assert len(set(clusters.tolist())) == len(clusters)
        assert set(clusters.tolist()) | set(
            structure.idle_clusters.tolist()) == set(range(problem.M))

    def test_block_gammas_are_attainable_and_account_for_gamma(self):
        problem = _specialist_problem()
        structure = analyze_blocks(problem)
        gammas = _block_gammas(problem, structure)
        best = np.where(structure.viable, problem.A, 0.0).max(axis=0)
        total = 0.0
        for blk, g in zip(structure.blocks, gammas):
            m_b, k_b = blk.shape
            # Strictly below the block's attainable mean reliability.
            assert g * m_b * k_b < best[blk.task_idx].sum()
            total += g * m_b * k_b
        # The split conserves the global reliability requirement.
        assert total == pytest.approx(problem.gamma * problem.M * problem.N)


class TestBlockSolveEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_single_block_matches_dense_solve(self, seed):
        problem = _dense_problem(seed)
        cfg = SolverConfig(lr=0.5, max_iters=600, tol=1e-7, patience=5)
        dense = solve_relaxed(problem, cfg)
        blocks = solve_relaxed_blocks(
            problem, cfg, block_config=BlockConfig(dtype="float64"))
        assert blocks.n_blocks == 1
        assert not blocks.scalar_fallback
        assert blocks.objective == pytest.approx(dense.objective, abs=1e-3)
        # The assembled iterate is a genuine iterate of the dense program.
        assert barrier_value(blocks.X, problem) == pytest.approx(
            blocks.objective, abs=1e-9)

    def test_specialist_instance_fewer_iterations_small_gap(self):
        problem = _specialist_problem()
        cfg = SolverConfig(max_iters=3000, tol=1e-4)
        dense = solve_relaxed(problem, cfg)
        blocks = solve_relaxed_blocks(problem, cfg)
        assert blocks.n_blocks == 4
        assert blocks.converged
        # The perf contract: a decomposed cold solve needs at most half
        # the dense iterations (measured ~5.6x at this size).
        assert blocks.iterations * 2 <= dense.iterations
        # Restriction gap within 5% of the dense barrier value (in
        # practice the per-block step scale lands *below* it).
        gap = (blocks.objective - dense.objective) / abs(dense.objective)
        assert gap < 0.05

    def test_conservation_and_feasibility(self):
        problem = _specialist_problem()
        sol = solve_relaxed_blocks(problem, SolverConfig(max_iters=800, tol=1e-4))
        np.testing.assert_allclose(sol.X.sum(axis=0), 1.0, atol=1e-5)
        assert (sol.X >= 0).all()
        assert problem.is_strictly_feasible(sol.X)

    def test_singleton_and_degenerate_blocks(self):
        # Cluster 0 alone serves tasks 0-2 (singleton-cluster block),
        # clusters 1+2 serve task 3 (single-task block), cluster 3 is
        # uniformly dominated (idle).
        T = np.full((4, 4), 100.0)
        T[0, :3] = 1.0
        T[1:3, 3] = 1.0
        A = np.full((4, 4), 0.9)
        problem = MatchingProblem(T=T, A=A,
                                  gamma=feasible_gamma(T, A, quantile=0.2))
        bcfg = BlockConfig(time_dominance=4.0, min_viable=1)
        structure = analyze_blocks(problem, bcfg)
        assert structure.shapes in (((1, 3), (2, 1)), ((2, 1), (1, 3)))
        assert structure.idle_clusters.tolist() == [3]
        sol = solve_relaxed_blocks(problem, SolverConfig(max_iters=400),
                                   block_config=bcfg, structure=structure)
        np.testing.assert_allclose(sol.X.sum(axis=0), 1.0, atol=1e-5)
        # Singleton block: its tasks land entirely on the lone cluster.
        np.testing.assert_allclose(sol.X[0, :3], 1.0, atol=1e-5)
        # Idle cluster receives zero load.
        np.testing.assert_allclose(sol.X[3], 0.0, atol=1e-12)
        assert problem.is_strictly_feasible(sol.X)

    def test_scalar_fallback_for_ablation_objectives(self):
        problem = _dense_problem(3)
        ablation = MatchingProblem(T=problem.T, A=problem.A,
                                   gamma=problem.gamma, cost="linear")
        cfg = SolverConfig(max_iters=300, tol=1e-6)
        sol = solve_relaxed_blocks(ablation, cfg)
        assert sol.scalar_fallback
        assert sol.objective == pytest.approx(
            solve_relaxed(ablation, cfg).objective, abs=1e-9)


class TestSeedHedge:
    def test_bad_seed_never_worse_than_cold(self):
        problem = _specialist_problem(32, 8)
        cfg = SolverConfig(max_iters=600, tol=1e-4)
        cold = solve_relaxed_blocks(problem, cfg)
        # Adversarial seed: all mass on each task's *slowest* cluster.
        bad = np.zeros((problem.M, problem.N))
        bad[problem.T.argmax(axis=0), np.arange(problem.N)] = 1.0
        seeded = solve_relaxed_blocks(problem, cfg, x0=bad)
        # The hedge swaps the bad seed for the interior cold start, so
        # the descent is bit-identical to the cold run.
        np.testing.assert_array_equal(seeded.X, cold.X)
        assert seeded.iterations == cold.iterations

    def test_good_seed_cuts_iterations(self):
        problem = _specialist_problem(32, 8)
        cfg = SolverConfig(max_iters=600, tol=1e-4)
        cold = solve_relaxed_blocks(problem, cfg)
        seeded = solve_relaxed_blocks(problem, cfg, x0=cold.X)
        assert seeded.iterations <= cold.iterations
        assert seeded.objective <= cold.objective + 1e-6


#: Width of Task.features — what the dispatcher hands the head in serving.
TASK_FEATURE_DIM = TaskPool(1, rng=0).tasks[0].features.shape[0]


def _fleet_and_labels(n: int = 64, m: int = 6, d: int = 5, seed: int = 0):
    """Synthetic learnable mapping: feature argmax decides the cluster."""
    rng = np.random.default_rng(seed)
    Z = rng.normal(size=(n, d))
    target = Z[:, :m].argmax(axis=1) if d >= m else Z.argmax(axis=1) % m
    C = np.full((n, m), 0.02 / (m - 1))
    C[np.arange(n), target] = 0.98
    return Z, C, target


class TestWarmStartHead:
    def test_untrained_head_declines(self):
        head = WarmStartHead(5, [0, 1, 2])
        pool = TaskPool(4, rng=0)
        assert head.seed(pool.tasks, [0, 1, 2]) is None

    def test_fit_predicts_the_planted_mapping(self):
        Z, C, target = _fleet_and_labels()
        head = WarmStartHead(5, list(range(6))).fit(Z, C)
        P = head.predict_columns(Z)
        np.testing.assert_allclose(P.sum(axis=1), 1.0, atol=1e-9)
        assert (P.argmax(axis=1) == target).mean() > 0.9

    def test_seed_is_column_stochastic_and_gated(self):
        Z, C, _ = _fleet_and_labels(d=TASK_FEATURE_DIM)
        head = WarmStartHead(TASK_FEATURE_DIM, list(range(6))).fit(Z, C)
        pool = TaskPool(8, rng=1)
        X0 = head.seed(pool.tasks, list(range(6)))
        assert X0 is not None and X0.shape == (6, 8)
        np.testing.assert_allclose(X0.sum(axis=0), 1.0, atol=1e-9)
        assert (X0 > 0).all()
        # Unknown cluster in the window -> decline.
        assert head.seed(pool.tasks, [0, 1, 99]) is None
        # A head fit on uniform columns is too diffuse to beat the gate.
        uniform = WarmStartHead(TASK_FEATURE_DIM, list(range(6))).fit(
            Z, np.full((len(Z), 6), 1.0 / 6.0))
        assert uniform.seed(pool.tasks, list(range(6))) is None

    def test_save_load_round_trip_and_digest(self, tmp_path):
        Z, C, _ = _fleet_and_labels()
        head = WarmStartHead(5, list(range(6)), l2=1e-2).fit(Z, C)
        path = tmp_path / "head.npz"
        head.save(path)
        clone = WarmStartHead.load(path)
        assert clone.trained and clone.l2 == head.l2
        assert clone.digest() == head.digest()
        np.testing.assert_array_equal(clone.predict_columns(Z),
                                      head.predict_columns(Z))
        # Refitting on the same labels is deterministic: same digest.
        assert WarmStartHead(5, list(range(6)), l2=1e-2).fit(Z, C).digest() \
            == head.digest()

    def test_learned_seed_falls_back_to_cold_in_scalar_solver(self):
        # An arbitrary (mis)trained head's seed must never leave the
        # solve worse than cold: solve_relaxed hedges the opening point.
        problem = _dense_problem(5)
        rng = np.random.default_rng(0)
        head = WarmStartHead(TASK_FEATURE_DIM, list(range(problem.M))).fit(
            rng.normal(size=(32, TASK_FEATURE_DIM)),
            rng.dirichlet(np.ones(problem.M), size=32))
        pool = TaskPool(problem.N, rng=2)
        X0 = head.seed(pool.tasks, list(range(problem.M)))
        cfg = SolverConfig(max_iters=400, tol=1e-6)
        cold = solve_relaxed(problem, cfg)
        seeded = solve_relaxed(problem, cfg,
                               x0=X0 if X0 is not None else None)
        assert seeded.objective <= cold.objective + 1e-4


def _snapshot(window: int, cluster_ids, task_ids, features, X_relaxed):
    k = len(task_ids)
    m = len(cluster_ids)
    z = np.zeros(k)
    return WindowSnapshot(
        window=window, time=float(window), cluster_ids=tuple(cluster_ids),
        task_ids=tuple(task_ids), T=np.ones((m, k)), A=np.ones((m, k)),
        T_hat=None, A_hat=None, X=np.zeros((m, k)), gamma=0.5,
        reliability_slack=0.1, arrival=z, start=z, end=z, realized_hours=z,
        success=np.ones(k, dtype=bool), requeues=np.zeros(k, dtype=int),
        queue_depth=0, arrived_total=k, shed_total=0, features=features,
        X_relaxed=X_relaxed,
    )


class _FakeCluster:
    def __init__(self, cid: int) -> None:
        self.cluster_id = cid


class _FakeDispatcher:
    def __init__(self, m: int) -> None:
        self.clusters = [_FakeCluster(i) for i in range(m)]
        self.swap_epoch = 0
        self.warm_model = None


class TestWarmStartTrainer:
    def _snapshots(self, n_windows: int, m: int = 4, k: int = 4, d: int = 5):
        rng = np.random.default_rng(0)
        snaps = []
        for w in range(n_windows):
            features = rng.normal(size=(k, d))
            cols = rng.dirichlet(np.ones(m), size=k).T  # (m, k)
            snaps.append(_snapshot(
                w, range(m), range(w * k, (w + 1) * k), features, cols))
        return snaps

    def test_fits_after_min_labels_and_installs_head(self):
        cfg = WarmStartTrainerConfig(min_labels=8, refit_every=2)
        dispatcher = _FakeDispatcher(4)
        trainer = WarmStartTrainer(cfg).bind(dispatcher)
        for snap in self._snapshots(4):
            trainer.on_window(snap)
        assert trainer.fits >= 1
        assert dispatcher.warm_model is trainer.head
        assert trainer.head is not None and trainer.head.trained

    def test_degraded_fleet_windows_are_skipped(self):
        dispatcher = _FakeDispatcher(4)
        trainer = WarmStartTrainer().bind(dispatcher)
        snap = self._snapshots(1, m=3)[0]  # only 3 of 4 clusters up
        trainer.on_window(snap)
        assert trainer.harvested == 0

    def test_swap_invalidates_buffer(self):
        cfg = WarmStartTrainerConfig(min_labels=8, refit_every=100)
        dispatcher = _FakeDispatcher(4)
        trainer = WarmStartTrainer(cfg).bind(dispatcher)
        snaps = self._snapshots(3)
        trainer.on_window(snaps[0])
        trainer.on_window(snaps[1])
        assert trainer.harvested == 8
        dispatcher.swap_epoch += 1  # a hot-swap applied
        trainer.on_window(snaps[2])
        assert trainer.invalidated == 1
        assert len(trainer._labels) == 4  # only the post-swap window

    def test_offline_fit_helper(self):
        snaps = self._snapshots(6)
        head = fit_warm_start_head(snaps, list(range(4)))
        assert head.trained
        with pytest.raises(ValueError):
            fit_warm_start_head([], list(range(4)))
