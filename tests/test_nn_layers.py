"""Tests for Module/Linear/MLP, losses, optimizers, init, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    CosineLR,
    Dropout,
    Linear,
    Module,
    Parameter,
    Sequential,
    SGD,
    StepLR,
    Tensor,
    bce_loss,
    clip_grad_norm,
    huber_loss,
    load_module,
    mae_loss,
    mse_loss,
    save_module,
)
from repro.nn import init as initializers


class TestLinearAndMLP:
    def test_linear_shapes(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_linear_validates(self):
        with pytest.raises(ValueError):
            Linear(0, 3)
        with pytest.raises(ValueError):
            Linear(3, 3, init="nonexistent")

    def test_mlp_output_heads(self):
        x = np.random.default_rng(0).normal(size=(10, 6))
        sig = MLP(6, (8,), 1, output="sigmoid", rng=1).predict(x)
        assert np.all((sig > 0) & (sig < 1))
        pos = MLP(6, (8,), 1, output="softplus", rng=1).predict(x)
        assert np.all(pos > 0)

    def test_mlp_rejects_unknown_options(self):
        with pytest.raises(ValueError):
            MLP(4, activation="swish")
        with pytest.raises(ValueError):
            MLP(4, output="tanh")

    def test_mlp_learns_linear_function(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(128, 4))
        y = (X @ np.array([1.0, -2.0, 0.5, 3.0]))[:, None]
        model = MLP(4, (16,), 1, rng=0)
        opt = Adam(model.parameters(), lr=1e-2)
        for _ in range(600):
            opt.zero_grad()
            loss = mse_loss(model(Tensor(X)), y)
            loss.backward()
            opt.step()
        assert loss.item() < 5e-2  # y has variance ~14; this is R² > 0.996

    def test_parameter_registration(self):
        m = MLP(4, (8, 8), 1, rng=0)
        names = [n for n, _ in m.named_parameters()]
        assert len(names) == 6  # 3 Linear layers × (weight, bias)
        assert len(set(names)) == 6
        assert m.num_parameters() == 4 * 8 + 8 + 8 * 8 + 8 + 8 * 1 + 1

    def test_sequential_iteration(self):
        s = Sequential(Linear(2, 2, rng=0), Linear(2, 2, rng=1))
        assert len(s) == 2
        assert len(list(s)) == 2

    def test_state_dict_roundtrip(self, tmp_path):
        m1 = MLP(4, (8,), 1, rng=0)
        m2 = MLP(4, (8,), 1, rng=99)
        x = np.ones((3, 4))
        assert not np.allclose(m1.predict(x), m2.predict(x))
        path = tmp_path / "model.npz"
        save_module(m1, path)
        load_module(m2, path)
        np.testing.assert_allclose(m1.predict(x), m2.predict(x))

    def test_load_state_dict_validates(self):
        m = MLP(4, (8,), 1, rng=0)
        with pytest.raises(KeyError):
            m.load_state_dict({"bogus": np.zeros(3)})

    def test_train_eval_modes_propagate(self):
        m = Sequential(Linear(2, 2, rng=0), Dropout(0.5, rng=1))
        m.eval()
        assert all(not mod.training for mod in m)
        m.train()
        assert all(mod.training for mod in m)

    def test_dropout_inactive_in_eval(self):
        d = Dropout(0.9, rng=0)
        d.eval()
        x = Tensor(np.ones(100))
        np.testing.assert_allclose(d(x).data, np.ones(100))

    def test_dropout_validates(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLosses:
    def test_mse_zero_at_target(self):
        p = Tensor([1.0, 2.0])
        assert mse_loss(p, np.array([1.0, 2.0])).item() == 0.0

    def test_mae_matches_manual(self):
        p = Tensor([1.0, 3.0])
        assert mae_loss(p, np.array([2.0, 1.0])).item() == pytest.approx(1.5)

    def test_huber_quadratic_then_linear(self):
        small = huber_loss(Tensor([0.5]), np.array([0.0]), delta=1.0).item()
        assert small == pytest.approx(0.125)
        large = huber_loss(Tensor([3.0]), np.array([0.0]), delta=1.0).item()
        assert large == pytest.approx(2.5)

    def test_huber_validates_delta(self):
        with pytest.raises(ValueError):
            huber_loss(Tensor([1.0]), np.array([0.0]), delta=0.0)

    def test_bce_bounds_and_direction(self):
        good = bce_loss(Tensor([0.9]), np.array([1.0])).item()
        bad = bce_loss(Tensor([0.1]), np.array([1.0])).item()
        assert 0 < good < bad

    def test_losses_backprop(self):
        for loss_fn in (mse_loss, mae_loss, huber_loss):
            t = Tensor([0.3, 0.7], requires_grad=True)
            loss_fn(t, np.array([1.0, 0.0])).backward()
            assert t.grad is not None
        t = Tensor([0.3, 0.7], requires_grad=True)
        bce_loss(t, np.array([1.0, 0.0])).backward()
        assert t.grad is not None


class TestOptimizers:
    def quad_problem(self):
        p = Parameter(np.array([5.0, -3.0]))
        return p

    def run(self, opt_factory, steps=200):
        p = self.quad_problem()
        opt = opt_factory([p])
        for _ in range(steps):
            opt.zero_grad()
            loss = (Tensor(p.data) * 0).sum()  # placeholder; grad set manually
            p.grad = 2.0 * p.data  # ∇ of ||p||²
            opt.step()
        return p.data

    def test_sgd_converges(self):
        final = self.run(lambda ps: SGD(ps, lr=0.1))
        np.testing.assert_allclose(final, 0.0, atol=1e-6)

    def test_sgd_momentum_converges(self):
        final = self.run(lambda ps: SGD(ps, lr=0.01, momentum=0.9), steps=400)
        np.testing.assert_allclose(final, 0.0, atol=1e-6)

    def test_adam_converges(self):
        final = self.run(lambda ps: Adam(ps, lr=0.1), steps=400)
        np.testing.assert_allclose(final, 0.0, atol=1e-4)

    def test_optimizer_validations(self):
        p = [Parameter(np.zeros(2))]
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD(p, lr=-1)
        with pytest.raises(ValueError):
            SGD(p, lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD(p, lr=0.1, nesterov=True)
        with pytest.raises(ValueError):
            Adam(p, betas=(1.0, 0.9))

    def test_step_lr_halves(self):
        p = [Parameter(np.zeros(2))]
        opt = SGD(p, lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5

    def test_cosine_lr_reaches_min(self):
        p = [Parameter(np.zeros(2))]
        opt = SGD(p, lr=1.0)
        sched = CosineLR(opt, t_max=10, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([3.0, 4.0, 0.0])  # norm 5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_grad_norm_noop_below(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])


class TestInitializers:
    @pytest.mark.parametrize("name", ["xavier_uniform", "xavier_normal", "he_uniform", "he_normal"])
    def test_shapes_and_scale(self, name):
        fn = getattr(initializers, name)
        w = fn((100, 50), rng=0)
        assert w.shape == (100, 50)
        assert 0 < np.abs(w).mean() < 1.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            initializers.he_uniform((3,), rng=0)  # type: ignore[arg-type]

    def test_zeros(self):
        np.testing.assert_allclose(initializers.zeros((3, 2)), np.zeros((3, 2)))

    def test_deterministic_given_seed(self):
        a = initializers.he_normal((4, 4), rng=42)
        b = initializers.he_normal((4, 4), rng=42)
        np.testing.assert_allclose(a, b)
