"""Fresh-process import tests: catch package-level import cycles.

Cycles can hide under pytest (earlier imports break the cycle) and only
explode in fresh interpreters — exactly how a `python -m repro...` run
fails while the test suite stays green.  Each subpackage is imported in
its own subprocess with no prior state.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

MODULES = [
    "repro",
    "repro.utils",
    "repro.nn",
    "repro.nn.graph",
    "repro.workloads",
    "repro.clusters",
    "repro.sim",
    "repro.matching",
    "repro.predictors",
    "repro.methods",
    "repro.metrics",
    "repro.telemetry",
    "repro.serve",
    "repro.monitor",
    "repro.theory",
    "repro.experiments",
    "repro.experiments.fig2",
    "repro.experiments.table1",
    "repro.experiments.fig4",
    "repro.experiments.fig5",
    "repro.experiments.table2",
    "repro.experiments.dfl_landscape",
    "repro.experiments.parallel",
    "repro.cli",
]


@pytest.mark.parametrize("module", MODULES)
def test_fresh_process_import(module):
    proc = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, f"importing {module} failed:\n{proc.stderr}"
