"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clusters import make_setting
from repro.matching import MatchingProblem, feasible_gamma
from repro.workloads import TaskPool


@pytest.fixture(scope="session")
def task_pool() -> TaskPool:
    """A small shared task pool (session-scoped: embedding is the slow part)."""
    return TaskPool(24, rng=123)


@pytest.fixture(scope="session")
def setting_a():
    return make_setting("A")


@pytest.fixture(scope="session")
def setting_b():
    return make_setting("B")


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(99)


def random_problem(
    rng: np.random.Generator,
    m: int = 3,
    n: int = 5,
    *,
    gamma_quantile: float = 0.4,
    **kwargs,
) -> MatchingProblem:
    """A random well-posed matching instance (helper, not a fixture)."""
    T = rng.uniform(0.2, 3.0, size=(m, n))
    A = rng.uniform(0.6, 0.995, size=(m, n))
    return MatchingProblem(
        T=T, A=A, gamma=feasible_gamma(T, A, quantile=gamma_quantile), **kwargs
    )


@pytest.fixture()
def small_problem(rng: np.random.Generator) -> MatchingProblem:
    return random_problem(rng)


@pytest.fixture(scope="session")
def setting_a_problem(task_pool, setting_a) -> MatchingProblem:
    """A ground-truth problem built from the cluster substrate."""
    tasks = task_pool.tasks[:6]
    T = np.stack([c.true_times(tasks) for c in setting_a])
    A = np.stack([c.true_reliabilities(tasks) for c in setting_a])
    return MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.5))
