"""Tests for per-task distributed tracing (repro.telemetry.journey).

Covers the tracing layer end to end:

- deterministic trace IDs and pure hash-fraction sampling (no RNG);
- the JourneyRecorder (contiguous flush, sampling, forced keep of
  shed/requeued/unserved/long-wait journeys, end-of-run residue);
- the causality auditor (state machine, monotone time, identity,
  cross-shard consistency, conservation against run counters);
- byte-identity: journeys on vs. off never perturbs the trace;
- stitched fleet journeys (every journey opens with its routing
  decision) and the replay-side audits (TraceReplay / FleetReplay);
- wait-bucket exemplars in /snapshot payloads and ``repro serve top``;
- the ``repro trace`` CLI (show / top / grep);
- truncated shard logs: loaders tolerate a trailing partial line,
  reject mid-file corruption, and a zero-counter (truncated) shard
  still gets a dashboard row;
- shard/instance identity labels on quality-monitor alert events.
"""

from __future__ import annotations

import glob
import io
from dataclasses import replace

import pytest

from repro.cli import main
from repro.fleet import FleetConfig, FleetController, FleetReplay
from repro.monitor import (
    QualityMonitor,
    TraceReplay,
    render_top,
    serve_snapshot,
    snapshot_from_logs,
)
from repro.serve import (
    Dispatcher,
    Outage,
    ServeConfig,
    ServeStats,
    build_stack,
)
from repro.serve.loadgen import make_load
from repro.telemetry import load_run, recording
from repro.telemetry.journey import (
    EXEMPLAR_EVENT,
    JOURNEY_EVENT,
    STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    JourneyRecorder,
    audit_journeys,
    journey_sampled,
    journeys_from_events,
    merge_exemplar_payloads,
    render_waterfall,
    stitch_journeys,
    trace_id,
)
from repro.utils.rng import as_generator

#: Small-but-real serving knobs shared by the integration tests.
SERVE = ServeConfig(pool_size=40, train_epochs=12, max_wait_hours=0.25,
                    solver_max_iters=300)
JOURNEY_SERVE = SERVE.with_overrides(journey_sample=1.0)

EXPECT_FIELDS = ("arrived", "matched", "completed", "failed", "shed",
                 "requeued", "unserved")


@pytest.fixture(scope="module")
def stack():
    """One trained stack shared by every journey integration test."""
    return build_stack(SERVE)


def _events(pool, *, rate=40.0, horizon=4.0, seed=SERVE.seed):
    return make_load("poisson", pool, rate).draw(horizon,
                                                 as_generator(seed + 3))


def _expect(stats: ServeStats) -> dict:
    return {name: getattr(stats, name) for name in EXPECT_FIELDS}


@pytest.fixture(scope="module")
def journey_run(tmp_path_factory, stack):
    """A journey-traced run (sample 1.0, mid-run outage) logged to JSONL."""
    out_dir = tmp_path_factory.mktemp("journeys")
    pool, clusters, method, spec, dcfg = stack
    events = _events(pool)
    outages = [Outage(0, 1.0, 2.0)]
    with recording(mode="jsonl", run="journey-run", out_dir=out_dir,
                   meta={"serve": JOURNEY_SERVE.to_params()},
                   stream=io.StringIO()):
        dispatcher = Dispatcher(clusters, method, spec,
                                replace(dcfg, journey_sample=1.0))
        stats = dispatcher.run(events, rng=SERVE.seed + 4, outages=outages)
    return out_dir / "journey-run.jsonl", stats


# --------------------------------------------------------------------- #
# Trace identity and sampling.
# --------------------------------------------------------------------- #


def test_trace_id_deterministic_and_distinct():
    assert trace_id(7, 0.25) == trace_id(7, 0.25)
    assert len(trace_id(7, 0.25)) == 16
    assert trace_id(7, 0.25) != trace_id(8, 0.25)
    assert trace_id(7, 0.25) != trace_id(7, 0.250001)
    # Keyed on the exact float repr: replays regenerate identical IDs.
    assert trace_id(7, 1 / 3) == trace_id(7, float(repr(1 / 3)))


def test_sampling_is_a_pure_hash_fraction():
    traces = [trace_id(i, 0.1 * i) for i in range(2000)]
    assert all(journey_sampled(t, 1.0) for t in traces)
    assert not any(journey_sampled(t, 0.0) for t in traces)
    kept = sum(journey_sampled(t, 0.3) for t in traces)
    assert 0.2 < kept / len(traces) < 0.4
    # Deterministic, and a kept-at-0.1 trace is also kept at 0.3.
    assert [journey_sampled(t, 0.3) for t in traces] \
        == [journey_sampled(t, 0.3) for t in traces]
    for t in traces:
        if journey_sampled(t, 0.1):
            assert journey_sampled(t, 0.3)


def test_recorder_validation():
    with pytest.raises(ValueError, match="sample"):
        JourneyRecorder(1.5)
    with pytest.raises(ValueError, match="slo_wait_hours"):
        JourneyRecorder(0.5, slo_wait_hours=0.0)
    with pytest.raises(ValueError, match="journey_sample"):
        ServeConfig(journey_sample=-0.1)


# --------------------------------------------------------------------- #
# JourneyRecorder mechanics.
# --------------------------------------------------------------------- #


def _complete(rec, tid, arrival, *, wait=0.01):
    rec.record(tid, arrival, "admitted", arrival, queue_depth=1)
    rec.record(tid, arrival, "dispatched", arrival + wait, window=0,
               wait_hours=wait)
    rec.record(tid, arrival, "scheduled", arrival + wait, window=0,
               cluster_id=0, start=arrival + wait, end=arrival + wait + 0.1)
    rec.record(tid, arrival, "completed", arrival + wait + 0.1, window=0,
               cluster_id=0, requeues=0)


def test_recorder_samples_out_uneventful_but_forces_shed():
    rec = JourneyRecorder(0.0, keep=True)
    _complete(rec, 1, 0.25)
    assert rec.journeys_sampled_out == 1 and not rec.kept
    rec.record(2, 0.5, "shed", 0.5, reason="reject")
    assert rec.journeys_forced == 1
    assert list(rec.kept) == [trace_id(2, 0.5)]


def test_recorder_forces_long_wait_journeys():
    rec = JourneyRecorder(0.0, slo_wait_hours=1.0, keep=True)
    _complete(rec, 3, 0.0, wait=2.0)  # waits past the SLO bound
    assert rec.journeys_forced == 1
    assert trace_id(3, 0.0) in rec.kept


def test_recorder_flushes_contiguous_blocks_to_the_log(tmp_path):
    with recording(mode="jsonl", run="contig", out_dir=tmp_path,
                   stream=io.StringIO()):
        rec = JourneyRecorder(1.0)
        # Interleave two journeys; each must land contiguously at flush.
        rec.record(1, 0.1, "admitted", 0.1)
        rec.record(2, 0.2, "admitted", 0.2)
        rec.record(1, 0.1, "dispatched", 0.3, wait_hours=0.2)
        rec.record(2, 0.2, "dispatched", 0.3, wait_hours=0.1)
        rec.record(1, 0.1, "scheduled", 0.3, end=0.4)
        rec.record(2, 0.2, "scheduled", 0.3, end=0.5)
        rec.record(1, 0.1, "completed", 0.4)
        rec.record(2, 0.2, "completed", 0.5)
        rec.finish()
    events = load_run(tmp_path / "contig.jsonl")
    journey_lines = [e for e in events if e.get("name") == JOURNEY_EVENT]
    traces = [e["trace"] for e in journey_lines]
    # 4 events of journey 1, then 4 of journey 2 — no interleaving.
    assert traces == [trace_id(1, 0.1)] * 4 + [trace_id(2, 0.2)] * 4
    assert audit_journeys(journeys_from_events(events)) == []
    exemplar = [e for e in events if e.get("name") == EXEMPLAR_EVENT]
    assert len(exemplar) == 1 and exemplar[0]["emitted"] == 2


def test_finish_force_flushes_residue_for_the_auditor():
    rec = JourneyRecorder(0.0, keep=True)
    rec.record(9, 1.0, "admitted", 1.0)  # never reaches a terminal state
    assert not rec.kept
    rec.finish()
    assert rec.journeys_forced == 1
    problems = audit_journeys(rec.kept)
    assert any("no terminal state" in p for p in problems)


# --------------------------------------------------------------------- #
# Causality audit on hand-built journeys.
# --------------------------------------------------------------------- #


def _journey(tid, arrival, steps):
    tr = trace_id(tid, arrival)
    return tr, [{"trace": tr, "task_id": tid, "arrival": arrival,
                 "state": s, "t": t} for s, t in steps]


GOOD = [("admitted", 0.1), ("dispatched", 0.3), ("scheduled", 0.3),
        ("completed", 0.5)]


def test_audit_accepts_a_valid_journey():
    tr, evs = _journey(1, 0.1, GOOD)
    assert audit_journeys({tr: evs}) == []


@pytest.mark.parametrize("mutate, expect", [
    (lambda evs: evs[1].update(state="scheduled"), "invalid transition"),
    (lambda evs: evs[2].update(t=0.2), "time went backwards"),
    (lambda evs: evs.append(dict(evs[0], state="admitted", t=0.6)),
     "event after terminal"),
    (lambda evs: evs.pop(), "no terminal state"),
    (lambda evs: evs[1].update(task_id=99), "identity drifted"),
    (lambda evs: evs[1].update(state="exploded"), "unknown state"),
])
def test_audit_flags_corrupted_journeys(mutate, expect):
    tr, evs = _journey(1, 0.1, GOOD)
    mutate(evs)
    problems = audit_journeys({tr: evs})
    assert any(expect in p for p in problems), problems


def test_audit_flags_wrong_trace_id_and_shard_spans():
    _, evs = _journey(1, 0.1, GOOD)
    problems = audit_journeys({trace_id(2, 0.1): evs})
    assert any("does not hash" in p for p in problems)
    tr, evs = _journey(1, 0.1, GOOD)
    evs[0]["shard"] = "0"
    evs[1]["shard"] = "1"
    problems = audit_journeys({tr: evs})
    assert any("span shards" in p for p in problems)
    # An int router pick and a str stitcher stamp of the SAME shard are
    # one shard, not a double delivery.
    tr, evs = _journey(2, 0.2, GOOD)
    evs[0]["shard"] = 1
    evs[1]["shard"] = "1"
    assert audit_journeys({tr: evs}) == []


def test_audit_conservation_against_run_counters():
    journeys = dict(
        [_journey(1, 0.1, GOOD),
         _journey(2, 0.2, [("shed", 0.2)])])
    expect = {"arrived": 2, "matched": 1, "completed": 1, "failed": 0,
              "shed": 1, "requeued": 0, "unserved": 0}
    assert audit_journeys(journeys, expect=expect) == []
    # A lost task: counters say 3 arrivals, only 2 journeys exist.
    problems = audit_journeys(journeys, expect=dict(expect, arrived=3))
    assert any("conservation" in p for p in problems)
    # Partial sampling skips the census (subset is not a census).
    assert audit_journeys(journeys, expect=dict(expect, arrived=3),
                          sample=0.5) == []


# --------------------------------------------------------------------- #
# Dispatcher integration: audits, forced shed, byte-identity.
# --------------------------------------------------------------------- #


def test_run_journeys_pass_the_full_audit(journey_run):
    path, stats = journey_run
    journeys = journeys_from_events(load_run(path))
    assert stats.requeued > 0, "outage produced no requeues"
    assert audit_journeys(journeys, expect=_expect(stats)) == []
    # The outage run force-keeps its requeued journeys.
    requeued = [t for t, evs in journeys.items()
                if any(e["state"] == "requeued" for e in evs)]
    assert len(requeued) > 0


def test_journeys_never_perturb_the_trace(stack):
    pool, clusters, method, spec, dcfg = stack
    events = _events(pool, horizon=2.0)
    baseline = Dispatcher(clusters, method, spec, dcfg).run(
        events, rng=SERVE.seed + 4)
    traced = Dispatcher(
        clusters, method, spec, replace(dcfg, journey_sample=1.0)).run(
        events, rng=SERVE.seed + 4)
    assert traced.trace_bytes() == baseline.trace_bytes()


@pytest.mark.parametrize("policy", ["reject", "drop_oldest"])
def test_shed_journeys_survive_aggressive_sampling(stack, tmp_path, policy):
    pool, clusters, method, spec, dcfg = stack
    # queue_capacity < max_batch keeps the size trigger from draining
    # the queue before admission control ever binds.
    cfg = replace(dcfg, queue_capacity=3, max_batch=8, shed_policy=policy,
                  journey_sample=0.01)
    events = _events(pool, rate=80.0, horizon=2.0)
    with recording(mode="jsonl", run=f"shed-{policy}", out_dir=tmp_path,
                   stream=io.StringIO()):
        stats = Dispatcher(clusters, method, spec, cfg).run(
            events, rng=SERVE.seed + 4)
    assert stats.shed > 0, "overload never shed"
    journeys = journeys_from_events(load_run(tmp_path / f"shed-{policy}.jsonl"))
    shed = [t for t, evs in journeys.items() if evs[-1]["state"] == "shed"]
    # Every shed task has a journey despite the 1% sampling fraction.
    assert len(shed) == stats.shed
    assert audit_journeys(journeys, sample=cfg.journey_sample) == []


def test_trace_replay_verify_includes_the_journey_audit(journey_run, stack):
    path, original = journey_run
    rep = TraceReplay.from_log(path)
    assert rep.journey_sample == 1.0
    stats = rep.replay(stack=stack)
    assert rep.verify(stats) == []
    assert stats.trace_bytes() == original.trace_bytes()
    # Corrupt one logged journey event: verify must now fail.
    for ev in rep._journey_events:
        if ev["state"] == "completed":
            ev["state"] = "dispatched"
            break
    assert any("invalid transition" in p for p in rep.verify(stats))


# --------------------------------------------------------------------- #
# Fleet: stitched journeys and the cross-shard audit.
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def fleet_run(tmp_path_factory, stack):
    out_dir = tmp_path_factory.mktemp("fleet-journeys")
    cfg = FleetConfig(n_shards=2, serve=JOURNEY_SERVE)
    controller = FleetController(cfg, stack=stack)
    events = _events(controller.pool)
    stats = controller.run(events, telemetry="jsonl", out_dir=out_dir,
                           run_prefix="fleet-j")
    logs = sorted(glob.glob(str(out_dir / "fleet-j-s*.jsonl")))
    assert len(logs) == 2
    return logs, stats


def test_fleet_journeys_open_with_routing_and_stitch_cleanly(fleet_run):
    logs, stats = fleet_run
    journeys = stitch_journeys(logs)
    assert len(journeys) == stats.arrived
    for evs in journeys.values():
        assert evs[0]["state"] == "routed"
        assert "home" in evs[0] and "reason" in evs[0]
    assert audit_journeys(journeys, expect=_expect(stats)) == []


def test_fleet_replay_verify_includes_the_journey_audit(fleet_run, stack):
    logs, _ = fleet_run
    replay = FleetReplay.from_logs(logs)
    assert replay.audit_journeys() == []
    stats = replay.replay(stack=stack)
    assert replay.verify(stats) == []


# --------------------------------------------------------------------- #
# Exemplars: /snapshot payload and the serve-top dashboard.
# --------------------------------------------------------------------- #


def test_serve_snapshot_carries_the_exemplar_payload():
    rec = JourneyRecorder(1.0)
    _complete(rec, 1, 0.0, wait=0.3)
    _complete(rec, 2, 0.1, wait=0.02)
    snap = serve_snapshot(journeys=rec)
    payload = snap["journeys"]
    assert payload["emitted"] == 2
    bounds = {b["le"] for b in payload["buckets"]}
    assert 0.5 in bounds and 0.05 in bounds
    # Every exemplar resolves to an emitted journey's trace ID.
    assert {b["trace"] for b in payload["buckets"]} \
        <= {trace_id(1, 0.0), trace_id(2, 0.1)}


def test_exemplars_merge_and_render_in_top(journey_run):
    path, _ = journey_run
    snap = snapshot_from_logs([path])
    assert snap["journeys"]["emitted"] > 0
    text = render_top(snap)
    assert "wait exemplars" in text
    # Exemplar traces shown in the dashboard exist in the log.
    journeys = journeys_from_events(load_run(path))
    for b in snap["journeys"]["buckets"]:
        assert b["trace"] in journeys


def test_merge_exemplar_payloads_sums_counts_and_keeps_worst():
    a = {"sample": 0.1, "emitted": 3, "sampled_out": 1, "forced": 1,
         "buckets": [{"le": 0.5, "count": 2, "trace": "aa", "task_id": 1,
                      "wait_hours": 0.4}]}
    b = {"sample": 1.0, "emitted": 5, "sampled_out": 0, "forced": 2,
         "buckets": [{"le": 0.5, "count": 3, "trace": "bb", "task_id": 2,
                      "wait_hours": 0.45},
                     {"le": "+Inf", "count": 1, "trace": "cc", "task_id": 3,
                      "wait_hours": 9.0}]}
    merged = merge_exemplar_payloads([a, b])
    assert merged["emitted"] == 8 and merged["forced"] == 3
    assert merged["sample"] == 1.0
    half, inf = merged["buckets"]
    assert half["count"] == 5 and half["trace"] == "bb"  # worst wait wins
    assert inf["le"] == "+Inf" and inf["trace"] == "cc"
    assert merge_exemplar_payloads([]) is None
    # The overflow bucket renders without crashing the dashboard.
    text = render_top({"run": "x", "aggregate": {}, "journeys": merged})
    assert "+inf" in text


def test_render_waterfall_draws_execution_bars():
    tr, evs = _journey(5, 0.25, GOOD)
    evs[2]["end"] = 0.5
    out = render_waterfall(tr, evs)
    assert tr in out and "task 5" in out
    for state in ("admitted", "dispatched", "scheduled", "completed"):
        assert state in out
    sched = next(ln for ln in out.splitlines() if "scheduled" in ln)
    assert "#" in sched  # the execution span renders as a bar
    assert render_waterfall("dead", []).endswith("(no events)")


# --------------------------------------------------------------------- #
# The repro trace CLI.
# --------------------------------------------------------------------- #


class TestTraceCLI:
    def test_top_ranks_by_wait(self, journey_run, capsys):
        path, _ = journey_run
        assert main(["trace", "top", "--log", str(path),
                     "--slowest", "3"]) == 0
        out = capsys.readouterr().out
        assert "slowest 3 of" in out
        waits = [float(ln.split("wait")[1].split("h")[0])
                 for ln in out.splitlines()[1:]]
        assert waits == sorted(waits, reverse=True)

    def test_show_renders_a_waterfall_by_task_and_prefix(self, journey_run,
                                                         capsys):
        path, _ = journey_run
        journeys = journeys_from_events(load_run(path))
        trace = sorted(journeys)[0]
        tid = journeys[trace][0]["task_id"]
        assert main(["trace", "show", "--log", str(path), str(tid)]) == 0
        out = capsys.readouterr().out
        assert f"task {tid}" in out
        assert main(["trace", "show", "--log", str(path), trace[:8]]) == 0
        assert trace in capsys.readouterr().out
        assert main(["trace", "show", "--log", str(path), "zzzz"]) == 1

    def test_grep_filters_by_state(self, journey_run, capsys):
        path, stats = journey_run
        assert main(["trace", "grep", "--log", str(path),
                     "--state", "requeued"]) == 0
        out = capsys.readouterr().out
        assert f"{stats.requeued} of {stats.arrived} journeys" in out
        assert main(["trace", "grep", "--log", str(path),
                     "--state", "bogus"]) == 2

    def test_journey_free_log_exits_cleanly(self, tmp_path, capsys):
        with recording(mode="jsonl", run="plain", out_dir=tmp_path,
                       stream=io.StringIO()) as rec:
            rec.event("serve/arrival", t=0.0, task_id=1)
        rc = main(["trace", "top", "--log", str(tmp_path / "plain.jsonl")])
        assert rc == 2
        assert "no journeys" in capsys.readouterr().err

    def test_serve_run_flag_round_trip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        rc = main(["serve", "run", "--pool-size", "16", "--rate", "25",
                   "--horizon", "1.5", "--train-epochs", "4",
                   "--telemetry", "jsonl", "--journeys", "1.0"])
        assert rc == 0
        log = tmp_path / "results" / "telemetry" / "serve-run.jsonl"
        rep = TraceReplay.from_log(log)
        assert rep.journey_sample == 1.0
        assert rep.audit_journeys() == []
        assert main(["trace", "top", "--log", str(log)]) == 0
        assert "slowest" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# Truncated / corrupted shard logs (crash-tolerant loaders).
# --------------------------------------------------------------------- #


def _synthetic_shard_log(tmp_path, sid, n=30):
    """A labeled shard log with live span + journey lines and counters."""
    with recording(mode="jsonl", run=f"shard-{sid}", out_dir=tmp_path,
                   meta={"serve": {"shard": sid}}, labels={"shard": sid},
                   stream=io.StringIO()) as rec:
        jt = JourneyRecorder(1.0)
        base = 1000 * int(sid)  # disjoint task identities per shard
        for i in range(n):
            rec.counter_add("serve/arrived")
            with rec.span("serve/solve"):
                pass
            _complete(jt, base + i, 0.1 * i, wait=0.02 * (i % 5))
        jt.finish()
    return tmp_path / f"shard-{sid}.jsonl"


def _truncate_tail(path, frac=0.6):
    """Chop the log mid-line, as a crash mid-write would."""
    data = path.read_bytes()
    cut = int(len(data) * frac)
    if data[cut - 1:cut] == b"\n":
        cut += 10
    path.write_bytes(data[:cut])
    assert not path.read_bytes().endswith(b"\n")


class TestTruncatedLogs:
    def test_trailing_partial_line_is_tolerated(self, tmp_path):
        from repro.telemetry import aggregate_runs

        intact = _synthetic_shard_log(tmp_path, "0")
        broken = _synthetic_shard_log(tmp_path, "1")
        _truncate_tail(broken)
        agg = aggregate_runs([intact, broken])
        # Counters flush at close, i.e. last in the file: the truncated
        # shard contributes none, the intact shard's survive untouched.
        arrived = sum(s["value"] for k, s in agg["counters"].items()
                      if k.split("{", 1)[0] == "serve/arrived")
        assert arrived == 30
        # Live-recorded spans from BOTH shards survive and merge.
        assert agg["spans"]["serve/solve"]["calls"] > 30
        # Journey lines before the cut still stitch and audit per-journey.
        journeys = stitch_journeys([intact, broken])
        complete = {t: evs for t, evs in journeys.items()
                    if evs[-1]["state"] in TERMINAL_STATES}
        assert len(complete) > 30
        assert audit_journeys(complete) == []

    def test_truncated_shard_still_gets_a_dashboard_row(self, tmp_path):
        intact = _synthetic_shard_log(tmp_path, "0")
        broken = _synthetic_shard_log(tmp_path, "1")
        _truncate_tail(broken, frac=0.2)  # metric lines all gone
        snap = snapshot_from_logs([intact, broken])
        assert snap["shards_seen"] == ["0", "1"]
        text = render_top(snap)
        assert "shards (2)" in text
        rows = [ln for ln in text.splitlines() if ln.startswith("  1 ")]
        assert rows, "truncated shard vanished from the shard table"

    def test_mid_file_corruption_is_rejected(self, tmp_path):
        from repro.telemetry import aggregate_runs

        log = _synthetic_shard_log(tmp_path, "0")
        lines = log.read_text().splitlines(keepends=True)
        lines[len(lines) // 2] = '{"type": "event", "name": truncated-mid\n'
        log.write_text("".join(lines))
        with pytest.raises(ValueError, match="invalid JSON line"):
            load_run(log)
        with pytest.raises(ValueError, match="invalid JSON line"):
            aggregate_runs([log])


# --------------------------------------------------------------------- #
# Alert events carry the shard/instance identity.
# --------------------------------------------------------------------- #


def test_alert_events_carry_identity_labels(tmp_path):
    with recording(mode="jsonl", run="alerts", out_dir=tmp_path,
                   labels={"shard": "3", "instance": "edge-a"},
                   stream=io.StringIO()):
        monitor = QualityMonitor()
        # Conservation violation on finish: 2 tasks unaccounted for.
        monitor.on_finish(ServeStats(arrived=10, completed=4, failed=1,
                                     shed=2, unserved=1))
    events = load_run(tmp_path / "alerts.jsonl")
    alerts = [e for e in events
              if e.get("type") == "event" and e.get("name") == "alert"]
    assert alerts, "no alert event recorded"
    for ev in alerts:
        assert ev["shard"] == "3"
        assert ev["instance"] == "edge-a"


def test_alert_events_stay_clean_without_identity(tmp_path):
    with recording(mode="jsonl", run="bare", out_dir=tmp_path,
                   stream=io.StringIO()):
        monitor = QualityMonitor()
        monitor.on_finish(ServeStats(arrived=5, completed=1))
    events = load_run(tmp_path / "bare.jsonl")
    alerts = [e for e in events if e.get("name") == "alert"]
    assert alerts and all("shard" not in e and "instance" not in e
                          for e in alerts)
