"""Properties of the fused batched training path.

Three layers are pinned down here:

1. :func:`solve_relaxed_batch` finds the same per-instance optima as the
   scalar :func:`solve_relaxed` under identical hyperparameters — also
   with entropy regularization, infeasible warm starts (repair), float32
   batches, and the adaptive trial policy.
2. :func:`batch_kkt_vjp` agrees with the scalar :func:`kkt_vjp` per
   instance (one stacked saddle solve vs B independent ones).
3. The MFCP fused round: the batched path trains to the same losses as
   the scalar (paper-literal) round within stochastic tolerance, honours
   the ``batched=False`` escape hatch, and automatically falls back to
   the scalar round for the non-convex parallel (ζ) objective where no
   batched convex solver applies.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.clusters import make_setting
from repro.matching import (
    MatchingProblem,
    SolverConfig,
    ZeroOrderConfig,
    feasible_gamma,
    kkt_vjp,
    solve_relaxed,
    zo_vjp_cross,
)
from repro.matching.batch import BatchProblem, solve_relaxed_batch
from repro.matching.batch_vjp import batch_kkt_vjp
from repro.matching.objectives import barrier_value
from repro.matching.speedup import ExponentialDecaySpeedup
from repro.methods import MFCP, MFCPConfig, MatchSpec, FitContext
from repro.predictors.training import TrainConfig
from repro.workloads import TaskPool


def _random_problems(seed: int, B: int = 5, M: int = 4, N: int = 9,
                     entropy: float = 0.0) -> list[MatchingProblem]:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(B):
        T = rng.uniform(0.2, 2.5, (M, N))
        A = rng.uniform(0.55, 0.99, (M, N))
        out.append(MatchingProblem(
            T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.35), entropy=entropy
        ))
    return out


def _as_batch(problems: list[MatchingProblem], **kwargs) -> BatchProblem:
    p0 = problems[0]
    return BatchProblem(
        T=np.stack([p.T for p in problems]),
        A=np.stack([p.A for p in problems]),
        gamma=np.array([p.gamma for p in problems]),
        beta=p0.beta, lam=p0.lam, entropy=p0.entropy, **kwargs,
    )


class TestBatchScalarEquivalence:
    """solve_relaxed_batch ≡ solve_relaxed, instance by instance."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("entropy", [0.0, 0.05])
    def test_matches_scalar_from_same_start(self, seed, entropy):
        problems = _random_problems(seed, entropy=entropy)
        bp = _as_batch(problems)
        x0 = np.stack([p.feasible_start() for p in problems])
        bs = solve_relaxed_batch(bp, lr=0.5, max_iters=250, x0=x0,
                                 tol=1e-7, patience=5)
        cfg = SolverConfig(lr=0.5, max_iters=250, tol=1e-7, patience=5)
        for b, p in enumerate(problems):
            sc = solve_relaxed(p, cfg, x0=x0[b])
            assert bs.objective[b] == pytest.approx(sc.objective, abs=1e-4)
            # The batch iterate is a genuine optimum of the same problem:
            # evaluating it with the scalar objective reproduces its value.
            assert barrier_value(bs.X[b], p) == pytest.approx(
                bs.objective[b], abs=1e-9
            )
            assert p.is_strictly_feasible(bs.X[b])
        np.testing.assert_allclose(bs.X.sum(axis=1), 1.0, atol=1e-9)

    def test_infeasible_warm_start_repaired(self):
        problems = _random_problems(7)
        bp = _as_batch(problems)
        # Concentrate every task on the least reliable cluster: infeasible
        # (negative slack) for these gammas, so the solver must swap in
        # its interior blend start instead of dividing by the bad slack.
        x0 = np.zeros(bp.T.shape)
        worst = np.stack([p.A for p in problems]).argmin(axis=1)
        x0[np.arange(bp.B)[:, None], worst, np.arange(bp.N)[None, :]] = 1.0
        bs = solve_relaxed_batch(bp, lr=0.5, max_iters=250, x0=x0,
                                 tol=1e-7, patience=5)
        cfg = SolverConfig(lr=0.5, max_iters=250, tol=1e-7, patience=5)
        for b, p in enumerate(problems):
            assert p.is_strictly_feasible(bs.X[b])
            sc = solve_relaxed(p, cfg)  # scalar cold start
            assert bs.objective[b] == pytest.approx(sc.objective, abs=1e-3)

    def test_float32_batch_matches_float64(self):
        problems = _random_problems(11)
        bp64 = _as_batch(problems)
        bp32 = _as_batch(problems, dtype=np.float32)
        bs64 = solve_relaxed_batch(bp64, lr=0.5, max_iters=200, tol=1e-7)
        bs32 = solve_relaxed_batch(bp32, lr=0.5, max_iters=200, tol=1e-7)
        assert bs32.X.dtype == np.float32
        np.testing.assert_allclose(bs32.objective, bs64.objective, atol=1e-3)

    def test_adaptive_trials_reach_same_optima(self):
        problems = _random_problems(13)
        bp = _as_batch(problems)
        base = solve_relaxed_batch(bp, lr=0.5, max_iters=250, tol=1e-7)
        adapt = solve_relaxed_batch(bp, lr=0.5, max_iters=250, tol=1e-7,
                                    adaptive_trials=True)
        np.testing.assert_allclose(adapt.objective, base.objective, atol=1e-4)


class TestBatchKKTAgreement:
    """One stacked saddle solve ≡ B scalar Eq. (15) solves."""

    def _solved_batch(self, entropy: float):
        problems = _random_problems(3, B=6, entropy=entropy)
        bp = _as_batch(problems)
        bs = solve_relaxed_batch(bp, lr=0.5, max_iters=400, tol=1e-9,
                                 patience=8)
        gX = np.random.default_rng(5).normal(size=bp.T.shape)
        return problems, bp, bs, gX

    @pytest.mark.parametrize("entropy", [0.0, 0.05])
    def test_matches_scalar_kkt_vjp(self, entropy):
        problems, bp, bs, gX = self._solved_batch(entropy)
        kg = batch_kkt_vjp(bs.X, bp, gX)
        for b, p in enumerate(problems):
            sg = kkt_vjp(bs.X[b], p, gX[b])
            # Near-degenerate optima (entropy=0 drives entries to 0) give
            # large but consistent adjoints — compare in relative terms.
            scale_t = max(float(np.abs(sg.dT).max()), 1e-12)
            scale_a = max(float(np.abs(sg.dA).max()), 1e-12)
            assert np.abs(kg.dT[b] - sg.dT).max() / scale_t < 1e-4
            assert np.abs(kg.dA[b] - sg.dA).max() / scale_a < 1e-4


class TestCrossZeroOrder:
    """The fused cross-cluster ZO estimator (one solve for all K·2S)."""

    def _setup(self):
        problems = _random_problems(17, B=4, M=4, N=8)
        bp = _as_batch(problems)
        bs = solve_relaxed_batch(bp, lr=0.5, max_iters=300, tol=1e-7)
        rng = np.random.default_rng(23)
        gX = rng.normal(size=bp.T.shape) / (bp.M * bp.N)
        clusters = np.arange(4) % bp.M
        return bp, bs.X, clusters, gX

    def test_deterministic_given_rng(self):
        bp, X, clusters, gX = self._setup()
        cfg = ZeroOrderConfig(samples=4, delta=0.05, warm_start_iters=40)
        g1 = zo_vjp_cross(bp, X, clusters, gX, cfg,
                          rng=np.random.default_rng(9))
        g2 = zo_vjp_cross(bp, X, clusters, gX, cfg,
                          rng=np.random.default_rng(9))
        np.testing.assert_array_equal(g1.dt, g2.dt)
        np.testing.assert_array_equal(g1.da, g2.da)

    def test_float32_stack_tracks_float64(self):
        bp, X, clusters, gX = self._setup()
        fast = ZeroOrderConfig(samples=4, delta=0.05, warm_start_iters=40)
        exact = replace(fast, cross_dtype=np.float64, inner_tol=0.0)
        g32 = zo_vjp_cross(bp, X, clusters, gX, fast,
                           rng=np.random.default_rng(9))
        g64 = zo_vjp_cross(bp, X, clusters, gX, exact,
                           rng=np.random.default_rng(9))
        for a, b in ((g32.dt, g64.dt), (g32.da, g64.da)):
            cos = float(np.sum(a * b)
                        / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-30))
            assert cos > 0.99
        assert g32.dt.dtype == np.float64  # contractions promote back


class TestMFCPBatchedRound:
    """End to end: the fused round is a drop-in for the scalar round."""

    CFG = MFCPConfig(
        epochs=4, pretrain=TrainConfig(epochs=30),
        zero_order=ZeroOrderConfig(samples=4, delta=0.05,
                                   warm_start_iters=40, vectorized=True),
        validation_rounds=0,
    )

    @staticmethod
    def _fresh_ctx():
        # A fit consumes ctx.rng (round sampling), so comparisons need one
        # identically-seeded context per fit, not a shared one.
        pool = TaskPool(40, rng=21)
        clusters = make_setting("A")
        train, _ = pool.split(0.7, rng=1)
        return FitContext.build(clusters, train, MatchSpec(), rng=2)

    @pytest.fixture()
    def ctx(self):
        return self._fresh_ctx()

    @pytest.mark.parametrize("gradient", ["analytic", "forward"])
    def test_batched_losses_track_scalar(self, gradient):
        mb = MFCP(gradient, self.CFG).fit(self._fresh_ctx())
        ms = MFCP(gradient, replace(self.CFG, batched=False)).fit(self._fresh_ctx())
        assert len(mb.loss_history) == len(ms.loss_history)
        assert all(np.isfinite(v) for v in mb.loss_history)
        # Same rounds, same pretrained starting point: the first-epoch
        # regret proxies are computed from the same optima (the fused
        # round only changes how they are obtained).
        assert mb.loss_history[0] == pytest.approx(
            ms.loss_history[0], abs=1e-4
        )

    def test_escape_hatch_disables_fused_round(self, ctx):
        m = MFCP("analytic", replace(self.CFG, batched=False))
        assert not m._can_batch(ctx.spec)
        m.fit(ctx)
        assert all(np.isfinite(v) for v in m.loss_history)

    def test_parallel_objective_falls_back_to_scalar_round(self, ctx):
        # ζ speedup ⇒ non-convex objective: no batched convex solver, so
        # the fused path must defer to the per-cluster scalar round (FG
        # only; AD rejects parallel specs outright).
        spec = replace(ctx.spec, speedup=(ExponentialDecaySpeedup(),))
        pctx = replace(ctx, spec=spec)
        m = MFCP("forward", self.CFG)
        assert m._can_batch(spec)  # the spec alone does not forbid it ...
        m.fit(pctx)  # ... the per-round is_parallel check does
        assert all(np.isfinite(v) for v in m.loss_history)

    def test_timing_counters_populated(self, ctx):
        m = MFCP("analytic", self.CFG).fit(ctx)
        assert {"pretrain", "solve", "vjp", "optimizer"} <= set(m.timings)
        assert all(v >= 0 for v in m.timings.values())
