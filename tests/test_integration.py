"""Cross-module integration tests.

These tie the layers together the way the paper's system does:
predictors → matching solver → rounding → metrics → simulator, plus the
bilevel gradient chain of Eq. (7) verified end-to-end by finite
differences through the *entire* prediction-to-regret pipeline.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.clusters import make_setting
from repro.matching import (
    MatchingProblem,
    SolverConfig,
    feasible_gamma,
    kkt_vjp,
    makespan,
    solve_relaxed,
)
from repro.matching.objectives import barrier_gradient, barrier_value
from repro.methods import FitContext, MFCP, MFCPConfig, MatchSpec, TSM
from repro.matching.zeroth_order import ZeroOrderConfig
from repro.metrics import cluster_utilization, mean_assigned_reliability
from repro.nn import Tensor
from repro.predictors.training import TrainConfig
from repro.sim import ExecutionConfig, simulate_matching
from repro.workloads import TaskPool

TIGHT = SolverConfig(max_iters=3000, tol=1e-14, patience=40, lr=0.3)


class TestBilevelGradientChain:
    """Verify Eq. (7): dL/dω = dL/dX* · dX*/dt̂ · dt̂/dω, end to end."""

    def test_full_chain_matches_finite_differences(self, rng):
        # One tiny predictor: t̂_0j = exp(w · z_j); ground truth fixed.
        m, n, d = 3, 4, 3
        Z = rng.normal(size=(n, d))
        T = rng.uniform(0.5, 2.0, size=(m, n))
        A = rng.uniform(0.7, 0.99, size=(m, n))
        true_problem = MatchingProblem(
            T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.3), entropy=0.08
        )
        w0 = rng.normal(scale=0.1, size=d)

        def forward_loss(w: np.ndarray) -> float:
            t_hat = np.exp(Z @ w)
            T_hat = T.copy()
            T_hat[0] = t_hat
            pred = true_problem.with_predictions(T_hat, A)
            sol = solve_relaxed(pred, TIGHT)
            return barrier_value(sol.X, true_problem) / n

        # Analytic chain.
        t_hat = np.exp(Z @ w0)
        T_hat = T.copy()
        T_hat[0] = t_hat
        pred = true_problem.with_predictions(T_hat, A)
        sol = solve_relaxed(pred, TIGHT)
        g_X = barrier_gradient(sol.X, true_problem) / n  # dL/dX*
        kg = kkt_vjp(sol.X, pred, g_X)  # dL/dt̂ for every row
        # dt̂/dw via the autograd tape: t̂ = exp(Z w).
        w_t = Tensor(w0, requires_grad=True)
        from repro.nn import ops

        t_tensor = ops.exp(Tensor(Z) @ w_t)
        t_tensor.backward(kg.dT[0])
        grad_analytic = w_t.grad

        # Finite differences through the whole pipeline.
        eps = 1e-5
        grad_fd = np.zeros(d)
        for k in range(d):
            wp, wm = w0.copy(), w0.copy()
            wp[k] += eps
            wm[k] -= eps
            grad_fd[k] = (forward_loss(wp) - forward_loss(wm)) / (2 * eps)

        cos = grad_analytic @ grad_fd / (
            np.linalg.norm(grad_analytic) * np.linalg.norm(grad_fd) + 1e-12
        )
        assert cos > 0.99
        np.testing.assert_allclose(grad_analytic, grad_fd, rtol=0.05, atol=1e-4)


class TestPipelineConsistency:
    @pytest.fixture(scope="class")
    def trained(self):
        pool = TaskPool(60, rng=31)
        clusters = make_setting("B")
        train, test = pool.split(0.7, rng=3)
        spec = MatchSpec()
        ctx = FitContext.build(clusters, train, spec, rng=4)
        cfg = MFCPConfig(
            epochs=40, pretrain=TrainConfig(epochs=100),
            zero_order=ZeroOrderConfig(samples=4, delta=0.05, warm_start_iters=40),
        )
        tsm = TSM(train_config=TrainConfig(epochs=80)).fit(ctx)
        mfcp = MFCP("analytic", cfg).fit(ctx)
        return clusters, test, spec, tsm, mfcp

    def _round(self, clusters, tasks, spec):
        T = np.stack([c.true_times(tasks) for c in clusters])
        A = np.stack([c.true_reliabilities(tasks) for c in clusters])
        return spec.build_problem(T, A)

    def test_decisions_execute_on_simulator(self, trained):
        """A method's matching must run to completion on the DES with the
        analytically-predicted makespan (deterministic mode)."""
        clusters, test, spec, tsm, _ = trained
        tasks = test[:6]
        problem = self._round(clusters, tasks, spec)
        X = tsm.decide(problem, tasks)
        res = simulate_matching(clusters, tasks, X)
        assert res.makespan == pytest.approx(makespan(X, problem))
        assert res.utilization == pytest.approx(cluster_utilization(X, problem))

    def test_simulated_reliability_tracks_metric(self, trained):
        clusters, test, spec, tsm, _ = trained
        tasks = test[:6]
        problem = self._round(clusters, tasks, spec)
        X = tsm.decide(problem, tasks)
        A = np.stack([c.true_reliabilities(tasks) for c in clusters])
        analytic = mean_assigned_reliability(X, A)
        rates = [
            simulate_matching(clusters, tasks, X, ExecutionConfig(failures=True),
                              rng=s).success_rate
            for s in range(60)
        ]
        assert float(np.mean(rates)) == pytest.approx(analytic, abs=0.08)

    def test_mfcp_decisions_competitive_with_tsm(self, trained):
        """The headline claim, in miniature: over several test rounds the
        regret-trained predictor's matchings are no worse on average than
        the MSE two-stage pipeline's (usually strictly better)."""
        clusters, test, spec, tsm, mfcp = trained
        rng = np.random.default_rng(11)
        diffs = []
        for _ in range(12):
            idx = rng.choice(len(test), size=5, replace=False)
            tasks = [test[int(i)] for i in idx]
            problem = self._round(clusters, tasks, spec)
            cost_tsm = makespan(tsm.decide(problem, tasks), problem)
            cost_mfcp = makespan(mfcp.decide(problem, tasks), problem)
            diffs.append(cost_tsm - cost_mfcp)
        assert float(np.mean(diffs)) > -0.02  # MFCP no worse (tolerance for noise)

    def test_all_methods_respect_predicted_constraint(self, trained):
        """Every decision must satisfy the reliability constraint under the
        method's own predictions (the contract of problem (2))."""
        clusters, test, spec, tsm, mfcp = trained
        tasks = test[:5]
        problem = self._round(clusters, tasks, spec)
        for method in (tsm, mfcp):
            T_hat, A_hat = method.predict(tasks)
            pred = problem.with_predictions(T_hat, A_hat)
            X = method.decide(problem, tasks)
            # Allow tiny numerical slack; rounding repairs to feasibility.
            assert pred.reliability_slack(X) >= -5e-3
