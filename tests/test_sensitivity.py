"""Smoke tests for the E6 sensitivity harness (miniature sizes)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.sensitivity import run_beta_sweep, run_gamma_sweep, run_lambda_sweep
from repro.matching.zeroth_order import ZeroOrderConfig
from repro.methods import MFCPConfig
from repro.predictors.training import TrainConfig

TINY = ExperimentConfig(
    pool_size=30,
    eval_rounds=2,
    seeds=(0,),
    mfcp=MFCPConfig(epochs=3, pretrain=TrainConfig(epochs=30),
                    zero_order=ZeroOrderConfig(samples=2, delta=0.05, warm_start_iters=20)),
    supervised=TrainConfig(epochs=30),
)


@pytest.mark.parametrize("runner,values", [
    (run_gamma_sweep, (0.2, 0.8)),
    (run_beta_sweep, (1.0, 20.0)),
    (run_lambda_sweep, (0.001, 0.1)),
])
def test_sweeps_produce_reports(runner, values):
    results = runner(TINY, values)
    assert set(results) == set(values)
    for reports in results.values():
        assert set(reports) == {"TSM", "MFCP-AD"}
        for report in reports.values():
            assert np.isfinite(report.regret[0])
            assert 0.0 <= report.reliability[0] <= 1.0


def test_gamma_changes_threshold_behaviour():
    results = run_gamma_sweep(TINY, (0.1, 0.9))
    # Tighter γ should not make assignments *less* reliable.
    lo = results[0.1]["MFCP-AD"].reliability[0]
    hi = results[0.9]["MFCP-AD"].reliability[0]
    assert hi >= lo - 0.05
