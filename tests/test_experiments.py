"""Integration tests for the experiment harnesses (small sizes).

These are the end-to-end paths behind Table 1, Fig. 4, Fig. 5 and Table 2;
run here at miniature scale so the suite stays fast while exercising every
stage: pool → measurement → fit → oracle → metrics → report.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.clusters import make_setting
from repro.experiments import (
    ExperimentConfig,
    default_config,
    evaluate_round,
    oracle_matching,
    run_experiment,
    run_seed,
)
from repro.experiments.fig4 import fig4_methods
from repro.experiments.fig5 import run_fig5, series
from repro.experiments.table2 import PARALLEL_ZETA, run_table2
from repro.matching import makespan, reliability_value, solve_bruteforce
from repro.matching.zeroth_order import ZeroOrderConfig
from repro.methods import MFCPConfig, TAM, TSM
from repro.predictors.training import TrainConfig
from repro.workloads import TaskPool

TINY = ExperimentConfig(
    pool_size=30,
    eval_rounds=2,
    seeds=(0,),
    mfcp=MFCPConfig(epochs=4, pretrain=TrainConfig(epochs=40),
                    zero_order=ZeroOrderConfig(samples=4, delta=0.05, warm_start_iters=30)),
    supervised=TrainConfig(epochs=40),
    ucb_ensemble=2,
)


class TestConfig:
    def test_profiles(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "fast")
        fast = default_config()
        monkeypatch.setenv("REPRO_PROFILE", "full")
        full = default_config()
        assert full.eval_rounds > fast.eval_rounds
        assert len(full.seeds) > len(fast.seeds)
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(ValueError):
            default_config()

    def test_overrides(self):
        cfg = default_config("fast", pool_size=42)
        assert cfg.pool_size == 42

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(pool_size=0)
        with pytest.raises(ValueError):
            ExperimentConfig(train_fraction=1.2)
        with pytest.raises(ValueError):
            ExperimentConfig(seeds=())


class TestOracle:
    def test_oracle_matches_bruteforce_small(self, rng):
        from tests.conftest import random_problem

        p = random_problem(rng, m=3, n=5)
        X = oracle_matching(p, TINY)
        bf = solve_bruteforce(p)
        assert makespan(X, p) == pytest.approx(bf.objective, abs=1e-9)

    def test_oracle_feasible(self, rng):
        from tests.conftest import random_problem

        p = random_problem(rng, gamma_quantile=0.7)
        X = oracle_matching(p, TINY)
        assert reliability_value(X, p) >= -1e-9

    def test_oracle_fallback_under_node_limit(self, rng):
        from tests.conftest import random_problem

        p = random_problem(rng, m=3, n=8)
        cfg = replace(TINY, oracle_node_limit=3)
        X = oracle_matching(p, cfg)  # must not raise
        np.testing.assert_allclose(X.sum(axis=0), np.ones(p.N))


class TestRunner:
    @pytest.fixture(scope="class")
    def seed_result(self):
        return run_seed(
            0,
            lambda: make_setting("A"),
            lambda: [TAM(), TSM(train_config=TINY.supervised)],
            TINY,
        )

    def test_run_seed_structure(self, seed_result):
        assert set(seed_result.samples) == {"TAM", "TSM"}
        for samples in seed_result.samples.values():
            assert len(samples) == TINY.eval_rounds
            for s in samples:
                assert np.isfinite(s.regret)
                assert 0 <= s.reliability <= 1
                assert 0 < s.utilization <= 1

    def test_run_experiment_aggregates(self):
        reports = run_experiment(
            lambda: make_setting("A"),
            lambda: [TAM()],
            replace(TINY, seeds=(0, 1)),
        )
        assert reports["TAM"].regret[0] is not None
        assert len(reports["TAM"].samples) == 2 * TINY.eval_rounds

    def test_evaluate_round_direct(self):
        pool = TaskPool(12, rng=0)
        clusters = make_setting("A")
        from repro.methods import FitContext

        ctx = FitContext.build(clusters, pool.tasks[:8], TINY.spec, rng=1)
        methods = [TAM().fit(ctx)]
        out = evaluate_round(methods, clusters, pool.tasks[8:12], TINY)
        assert "TAM" in out


class TestHarnesses:
    def test_fig5_series_extraction(self):
        results = run_fig5(replace(TINY, eval_rounds=1), task_counts=(4, 6))
        ns, regrets = series(results, "regret")
        assert ns == [4, 6]
        assert set(regrets) == {"TAM", "TSM", "UCB", "MFCP-AD", "MFCP-FG"}

    def test_table2_uses_parallel_spec(self):
        reports = run_table2(replace(TINY, eval_rounds=1))
        assert "MFCP-FG" in reports and "MFCP-AD" not in reports
        # TAM determinism: constant predictions ⇒ identical rounds on the
        # same instance set, i.e. finite (typically tiny) std.
        assert np.isfinite(reports["TAM"].regret[1])

    def test_parallel_zeta_matches_paper_spec(self):
        assert PARALLEL_ZETA.floor == 0.6
        assert float(PARALLEL_ZETA.value(np.array(40.0))) == pytest.approx(0.6, abs=1e-3)

    def test_fig4_method_lineup(self):
        methods = fig4_methods(TINY)()
        assert [m.name for m in methods] == ["TAM", "TSM", "UCB", "MFCP-AD", "MFCP-FG"]
