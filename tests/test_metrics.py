"""Tests for the §4.1.3 metrics and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matching import MatchingProblem, solve_branch_and_bound
from repro.matching.rounding import assignment_from_labels
from repro.metrics import (
    MethodReport,
    MetricSample,
    aggregate,
    cluster_utilization,
    comparison_table,
    constraint_satisfied,
    deployment_matching,
    load_imbalance,
    mean_assigned_reliability,
    regret,
    regret_breakdown,
)

from tests.conftest import random_problem


class TestRegret:
    def test_zero_for_perfect_predictions(self, rng):
        p = random_problem(rng)
        assert regret(p, np.array(p.T), np.array(p.A)) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_adversarial_predictions(self, rng):
        p = random_problem(rng)
        # Invert the time ordering: fastest clusters predicted slowest.
        T_hat = p.T.max() + p.T.min() - p.T
        r = regret(p, T_hat, np.array(p.A))
        assert r >= -1e-9

    def test_breakdown_consistency(self, rng):
        p = random_problem(rng)
        b = regret_breakdown(p, np.array(p.T) * 1.3, np.array(p.A))
        assert b.regret == pytest.approx((b.cost_predicted - b.cost_oracle) / p.N)
        np.testing.assert_allclose(b.X_predicted.sum(axis=0), np.ones(p.N))

    def test_precomputed_oracle_used(self, rng):
        p = random_problem(rng)
        X_true = deployment_matching(p)
        r1 = regret(p, np.array(p.T), np.array(p.A), X_true=X_true)
        r2 = regret(p, np.array(p.T), np.array(p.A))
        assert r1 == pytest.approx(r2, abs=1e-9)

    def test_scale_invariance_of_ranking(self, rng):
        """Scaling all predicted times by a constant cannot change the
        matching (argmin invariance), so regret must be unchanged."""
        p = random_problem(rng)
        T_hat = np.array(p.T) * 1.17
        r1 = regret(p, T_hat, np.array(p.A))
        r2 = regret(p, T_hat * 3.0, np.array(p.A))
        assert r1 == pytest.approx(r2, abs=1e-6)


class TestReliabilityMetric:
    def test_binary_matching_selects_entries(self, rng):
        p = random_problem(rng)
        labels = rng.integers(0, p.M, p.N)
        X = assignment_from_labels(labels, p.M)
        expected = p.A[labels, np.arange(p.N)].mean()
        assert mean_assigned_reliability(X, p.A) == pytest.approx(expected)

    def test_relaxed_matching_weighted(self, rng):
        p = random_problem(rng)
        X = p.uniform_assignment()
        assert mean_assigned_reliability(X, p.A) == pytest.approx(p.A.mean(axis=0).mean())

    def test_constraint_satisfied_consistent_with_slack(self, rng):
        p = random_problem(rng, gamma_quantile=0.3)
        X = assignment_from_labels(p.A.argmax(axis=0), p.M)
        assert constraint_satisfied(X, p.A, p.gamma) == (p.reliability_slack(X) >= 0)

    def test_shape_mismatch_rejected(self, rng):
        p = random_problem(rng)
        with pytest.raises(ValueError):
            mean_assigned_reliability(p.uniform_assignment()[:, :2], p.A)


class TestUtilization:
    def test_perfectly_balanced_is_one(self):
        T = np.ones((3, 6))
        A = np.full((3, 6), 0.9)
        p = MatchingProblem(T=T, A=A, gamma=0.1)
        X = assignment_from_labels(np.array([0, 0, 1, 1, 2, 2]), 3)
        assert cluster_utilization(X, p) == pytest.approx(1.0)
        assert load_imbalance(X, p) == pytest.approx(0.0)

    def test_single_cluster_is_one_over_m(self):
        T = np.ones((4, 5))
        A = np.full((4, 5), 0.9)
        p = MatchingProblem(T=T, A=A, gamma=0.1)
        X = np.zeros((4, 5))
        X[0] = 1.0
        assert cluster_utilization(X, p) == pytest.approx(0.25)

    def test_bounds(self, rng):
        p = random_problem(rng)
        for _ in range(10):
            X = assignment_from_labels(rng.integers(0, p.M, p.N), p.M)
            u = cluster_utilization(X, p)
            assert 1.0 / p.M - 1e-9 <= u <= 1.0 + 1e-9

    def test_oracle_utilization_high(self, rng):
        """Makespan-optimal matchings should balance load decently."""
        p = random_problem(rng, n=8)
        sol = solve_branch_and_bound(p)
        assert cluster_utilization(sol.X, p) > 0.5


class TestReporting:
    def samples(self):
        return [MetricSample(0.1, 0.9, 0.5), MetricSample(0.3, 0.8, 0.7)]

    def test_aggregate_stats(self):
        r = aggregate("TSM", self.samples())
        assert r.regret == (pytest.approx(0.2), pytest.approx(0.1))
        assert r.reliability[0] == pytest.approx(0.85)
        assert r.utilization[0] == pytest.approx(0.6)

    def test_empty_report_raises(self):
        with pytest.raises(ValueError):
            MethodReport("x").regret

    def test_comparison_table_renders(self):
        table = comparison_table({"TSM": aggregate("TSM", self.samples())}, title="T")
        text = table.render()
        assert "TSM" in text and "Regret" in text and "±" in text

    def test_as_row_format(self):
        row = aggregate("M", self.samples()).as_row(digits=2)
        assert row[0] == "M"
        assert "0.20 ± 0.10" == row[1]
