"""Unit and property tests for the autograd Tensor core."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, concatenate, no_grad, stack
from repro.nn.tensor import is_grad_enabled, unbroadcast


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar function of an array."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    for k in range(flat.size):
        xp, xm = x.copy().ravel(), x.copy().ravel()
        xp[k] += eps
        xm[k] -= eps
        g.ravel()[k] = (f(xp.reshape(x.shape)) - f(xm.reshape(x.shape))) / (2 * eps)
    return g


finite_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    elements=st.floats(-3, 3, allow_nan=False),
)


class TestBasics:
    def test_construction_and_shape(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4
        assert not t.requires_grad

    def test_item_and_len(self):
        assert Tensor(3.5).item() == 3.5
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_detach_shares_data(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_backward_requires_grad(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_nonscalar_needs_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_zeros_ones(self):
        assert np.all(Tensor.zeros(2, 3).data == 0)
        assert np.all(Tensor.ones(4).data == 1)


class TestArithmeticGradients:
    def check(self, fn, shape=(3, 2), seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=shape)

        def scalar(v):
            return fn(Tensor(v)).item()

        t = Tensor(x, requires_grad=True)
        out = fn(t)
        out.backward()
        num = numeric_grad(scalar, x)
        np.testing.assert_allclose(t.grad, num, rtol=1e-5, atol=1e-7)

    def test_add(self):
        self.check(lambda t: (t + 2.0).sum())

    def test_sub_rsub(self):
        self.check(lambda t: (5.0 - t).sum())

    def test_mul(self):
        self.check(lambda t: (t * t).sum())

    def test_div(self):
        self.check(lambda t: (1.0 / (t + 10.0)).sum())

    def test_pow(self):
        self.check(lambda t: ((t + 10.0) ** 2.5).sum())

    def test_neg(self):
        self.check(lambda t: (-t).sum())

    def test_chained(self):
        self.check(lambda t: ((t * 3 - 1) * (t + 2)).mean())

    def test_matmul_grads(self):
        rng = np.random.default_rng(1)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b_val.T)
        np.testing.assert_allclose(b.grad, a_val.T @ np.ones((3, 2)))

    def test_matvec_grad(self):
        rng = np.random.default_rng(2)
        a_val = rng.normal(size=(3, 4))
        v_val = rng.normal(size=4)
        v = Tensor(v_val, requires_grad=True)
        (Tensor(a_val) @ v).sum().backward()
        np.testing.assert_allclose(v.grad, a_val.sum(axis=0))

    def test_broadcast_add_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_grad_accumulates_on_reuse(self):
        t = Tensor([2.0], requires_grad=True)
        (t * t + t).backward()  # d/dt (t² + t) = 2t + 1 = 5
        np.testing.assert_allclose(t.grad, [5.0])


class TestReductionsAndShape:
    def test_sum_axis_grad(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t.sum(axis=0).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        t = Tensor(np.ones((2, 5)), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 5), 0.1))

    def test_max_grad_unique(self):
        t = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_max_grad_tie_splits(self):
        t = Tensor([5.0, 5.0, 3.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5, 0.0])

    def test_max_axis(self):
        t = Tensor(np.array([[1.0, 4.0], [3.0, 2.0]]), requires_grad=True)
        t.max(axis=0).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_reshape_transpose_grad(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (t.T.reshape(6) * np.arange(6.0)).sum().backward()
        expected = np.arange(6.0).reshape(3, 2).T
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_grad(self):
        t = Tensor(np.arange(5.0), requires_grad=True)
        t[1:3].sum().backward()
        np.testing.assert_allclose(t.grad, [0, 1, 1, 0, 0])

    def test_stack_and_concatenate_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        stack([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        a.zero_grad(), b.zero_grad()
        concatenate([a, b]).sum().backward()
        np.testing.assert_allclose(b.grad, [1, 1])


class TestNoGrad:
    def test_no_grad_blocks_tape(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2
        assert not out.requires_grad

    def test_no_grad_restores(self):
        with no_grad():
            pass
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_leading_axis(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_kept_axis(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (1, 3)), np.full((1, 3), 2.0))


@settings(max_examples=30, deadline=None)
@given(finite_arrays)
def test_property_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=30, deadline=None)
@given(finite_arrays)
def test_property_linear_gradient_matches_coefficient(x):
    t = Tensor(x, requires_grad=True)
    (t * 3.5).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, 3.5))


@settings(max_examples=20, deadline=None)
@given(finite_arrays)
def test_property_max_le_logsumexp(x):
    """Tape-level check that max(v) participates correctly in graphs."""
    t = Tensor(x, requires_grad=True)
    out = t.max()
    assert out.item() == pytest.approx(x.max())
