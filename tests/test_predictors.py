"""Tests for datasets, predictor heads, training loops, and ensembles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.predictors import (
    ClusterDataset,
    EnsembleReliabilityPredictor,
    EnsembleTimePredictor,
    PredictorPair,
    ReliabilityPredictor,
    Standardizer,
    TimePredictor,
    TrainConfig,
    build_datasets,
    train_reliability,
    train_time_mse,
)
from repro.nn import Tensor


@pytest.fixture(scope="module")
def measured(task_pool_module, setting_a_module):
    train = task_pool_module.tasks[:16]
    return build_datasets(setting_a_module, train, rng=0), train


@pytest.fixture(scope="module")
def task_pool_module():
    from repro.workloads import TaskPool

    return TaskPool(24, rng=123)


@pytest.fixture(scope="module")
def setting_a_module():
    from repro.clusters import make_setting

    return make_setting("A")


class TestStandardizer:
    def test_fit_transform_stats(self, rng):
        Z = rng.normal(3.0, 2.0, size=(100, 4))
        std = Standardizer.fit(Z)
        Zt = std.transform(Z)
        np.testing.assert_allclose(Zt.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Zt.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_divided_by_zero(self):
        Z = np.ones((10, 2))
        std = Standardizer.fit(Z)
        assert np.all(np.isfinite(std.transform(Z)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            Standardizer.fit(np.ones(5))


class TestClusterDataset:
    def test_build_datasets_shapes(self, measured):
        datasets, train = measured
        assert len(datasets) == 3
        for ds in datasets:
            assert len(ds) == len(train)
            assert np.all(ds.t > 0)
            assert np.all((ds.a >= 0) & (ds.a <= 1))

    def test_validation(self, rng):
        Z = rng.normal(size=(4, 3))
        with pytest.raises(ValueError):
            ClusterDataset(0, Z, np.ones(3), np.full(4, 0.5))
        with pytest.raises(ValueError):
            ClusterDataset(0, Z, -np.ones(4), np.full(4, 0.5))
        with pytest.raises(ValueError):
            ClusterDataset(0, Z, np.ones(4), np.full(4, 1.5))

    def test_build_datasets_validates_inputs(self, setting_a_module):
        with pytest.raises(ValueError):
            build_datasets([], [], rng=0)

    def test_measurement_noise_is_multiplicative(self, measured, setting_a_module):
        """Measured times should be within a small relative band of truth."""
        datasets, train = measured
        for cluster, ds in zip(setting_a_module, datasets):
            truth = cluster.true_times(train)
            rel = np.abs(ds.t - truth) / truth
            assert np.median(rel) < 0.3


class TestPredictorHeads:
    def test_time_predictor_positive(self, rng):
        tp = TimePredictor(6, (8,), rng=0)
        out = tp.predict(rng.normal(size=(5, 6)))
        assert out.shape == (5,)
        assert np.all(out > 0)

    def test_reliability_predictor_in_unit_interval(self, rng):
        rp = ReliabilityPredictor(6, (8,), rng=0)
        out = rp.predict(rng.normal(size=(5, 6)))
        assert np.all((out > 0) & (out < 1))

    def test_forward_returns_differentiable_tensor(self, rng):
        tp = TimePredictor(4, (8,), rng=0)
        out = tp.forward(rng.normal(size=(3, 4)))
        assert isinstance(out, Tensor)
        assert out.requires_grad
        out.backward(np.ones(3))
        assert any(p.grad is not None for p in tp.parameters())

    def test_forward_rejects_tensor_input(self, rng):
        tp = TimePredictor(4, rng=0)
        with pytest.raises(TypeError):
            tp.forward(Tensor(np.ones((2, 4))))

    def test_standardizer_applied(self, rng):
        Z = rng.normal(100.0, 50.0, size=(30, 4))  # wild scale
        std = Standardizer.fit(Z)
        tp = TimePredictor(4, standardizer=std, rng=0)
        out = tp.predict(Z)
        assert np.all(np.isfinite(out))
        assert out.max() < 1e4  # clip keeps untrained outputs sane

    def test_pair_predict_shapes(self, rng):
        pair = PredictorPair(5, (8,), rng=0)
        t, a = pair.predict(rng.normal(size=(7, 5)))
        assert t.shape == a.shape == (7,)


class TestTraining:
    def test_time_training_reduces_loss(self, measured):
        datasets, _ = measured
        ds = datasets[0]
        std = Standardizer.fit(ds.Z)
        tp = TimePredictor(ds.Z.shape[1], (16,), standardizer=std, rng=1)
        res = train_time_mse(tp, ds.Z, ds.t, TrainConfig(epochs=120), rng=2)
        assert res.history[-1] < res.history[0]
        assert res.final_loss < 0.5

    def test_reliability_training_both_losses(self, measured):
        datasets, _ = measured
        ds = datasets[1]
        std = Standardizer.fit(ds.Z)
        for loss in ("mse", "bce"):
            rp = ReliabilityPredictor(ds.Z.shape[1], (16,), standardizer=std, rng=1)
            res = train_reliability(rp, ds.Z, ds.a, TrainConfig(epochs=80), rng=2, loss=loss)
            assert res.history[-1] <= res.history[0]

    def test_unknown_loss_rejected(self, measured):
        datasets, _ = measured
        rp = ReliabilityPredictor(datasets[0].Z.shape[1], rng=0)
        with pytest.raises(ValueError):
            train_reliability(rp, datasets[0].Z, datasets[0].a, loss="hinge")

    def test_length_mismatch_rejected(self, rng):
        tp = TimePredictor(4, rng=0)
        with pytest.raises(ValueError):
            train_time_mse(tp, rng.normal(size=(5, 4)), np.ones(3))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(lr=-1)

    def test_training_deterministic_given_seeds(self, measured):
        datasets, _ = measured
        ds = datasets[0]

        def run():
            tp = TimePredictor(ds.Z.shape[1], (8,), rng=5)
            train_time_mse(tp, ds.Z, ds.t, TrainConfig(epochs=30), rng=6)
            return tp.predict(ds.Z)

        np.testing.assert_allclose(run(), run())


class TestEnsembles:
    def test_time_ensemble_mean_and_std(self, measured):
        datasets, _ = measured
        ds = datasets[0]
        ens = EnsembleTimePredictor.fit(
            ds.Z, ds.t, k=3, config=TrainConfig(epochs=40), rng=0
        )
        mean, std = ens.predict_with_std(ds.Z)
        assert mean.shape == std.shape == (len(ds),)
        assert np.all(mean > 0)
        assert np.all(std >= 0)
        assert std.max() > 0  # members must disagree somewhere

    def test_reliability_ensemble(self, measured):
        datasets, _ = measured
        ds = datasets[2]
        ens = EnsembleReliabilityPredictor.fit(
            ds.Z, ds.a, k=3, config=TrainConfig(epochs=40), rng=0
        )
        mean, std = ens.predict_with_std(ds.Z)
        assert np.all((mean > 0) & (mean < 1))

    def test_k_validation(self, measured):
        datasets, _ = measured
        ds = datasets[0]
        with pytest.raises(ValueError):
            EnsembleTimePredictor.fit(ds.Z, ds.t, k=0)
