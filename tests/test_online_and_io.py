"""Tests for the online platform loop, trace I/O, calibration metrics, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main as cli_main
from repro.clusters import make_setting
from repro.metrics import (
    per_task_rank_accuracy,
    reliability_calibration,
    time_accuracy,
)
from repro.methods import FitContext, MatchSpec, TAM
from repro.sim import OnlineConfig, OnlineStats, PoissonArrivals, simulate_online
from repro.workloads import TaskPool, export_trace, load_trace, trace_to_datasets


@pytest.fixture(scope="module")
def online_setup():
    pool = TaskPool(30, rng=51)
    clusters = make_setting("A")
    spec = MatchSpec()
    ctx = FitContext.build(clusters, pool.tasks[:20], spec, rng=1)
    method = TAM().fit(ctx)
    return pool, clusters, spec, method


class TestPoissonArrivals:
    def test_rate_validation(self, task_pool):
        with pytest.raises(ValueError):
            PoissonArrivals(task_pool, rate_per_hour=0)

    def test_draw_counts_scale_with_rate(self, task_pool, rng):
        lo = PoissonArrivals(task_pool, 2.0).draw(50.0, np.random.default_rng(0))
        hi = PoissonArrivals(task_pool, 8.0).draw(50.0, np.random.default_rng(0))
        assert len(hi) > len(lo)
        assert all(0 <= t < 50.0 for t, _ in lo)
        assert sorted(t for t, _ in lo) == [t for t, _ in lo]

    def test_horizon_validation(self, task_pool, rng):
        with pytest.raises(ValueError):
            PoissonArrivals(task_pool, 2.0).draw(0.0, rng)


class TestOnlineLoop:
    def test_stats_consistency(self, online_setup):
        pool, clusters, spec, method = online_setup
        stats = simulate_online(
            clusters, method, PoissonArrivals(pool, 5.0), spec,
            OnlineConfig(window_hours=0.5, horizon_hours=6.0), rng=3,
        )
        assert stats.jobs_finished == stats.jobs_arrived
        assert 0 < stats.success_rate <= 1.0
        assert stats.mean_flow_hours >= stats.mean_wait_hours >= 0
        assert 0 < stats.utilization <= 1.0

    def test_no_failures_mode(self, online_setup):
        pool, clusters, spec, method = online_setup
        stats = simulate_online(
            clusters, method, PoissonArrivals(pool, 4.0), spec,
            OnlineConfig(window_hours=1.0, horizon_hours=5.0, failures=False,
                         jitter_std=0.0), rng=4,
        )
        assert stats.success_rate == 1.0

    def test_higher_load_increases_waiting(self, online_setup):
        pool, clusters, spec, method = online_setup
        waits = []
        for rate in (2.0, 20.0):
            stats = simulate_online(
                clusters, method, PoissonArrivals(pool, rate), spec,
                OnlineConfig(window_hours=0.5, horizon_hours=8.0, failures=False,
                             jitter_std=0.0), rng=5,
            )
            waits.append(stats.mean_wait_hours)
        assert waits[1] > waits[0]

    def test_empty_stats_raise(self):
        s = OnlineStats()
        with pytest.raises(ValueError):
            s.success_rate
        with pytest.raises(ValueError):
            s.utilization

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OnlineConfig(window_hours=0)
        with pytest.raises(ValueError):
            OnlineConfig(jitter_std=-1)


class TestTraceIO:
    def test_roundtrip(self, tmp_path, task_pool, setting_a):
        path = tmp_path / "trace.json"
        trace = export_trace(setting_a, task_pool.tasks[:8], path, rng=0)
        loaded = load_trace(path)
        np.testing.assert_allclose(loaded.features, trace.features)
        assert loaded.task_ids == trace.task_ids
        assert loaded.cluster_names == trace.cluster_names

    def test_datasets_from_trace(self, tmp_path, task_pool, setting_a):
        path = tmp_path / "trace.json"
        trace = export_trace(setting_a, task_pool.tasks[:8], path, rng=0)
        datasets = trace_to_datasets(trace)
        assert len(datasets) == 3
        for ds in datasets:
            assert len(ds) == 8
            assert np.all(ds.t > 0)

    def test_format_tag_enforced(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_validation_of_bad_measurements(self, tmp_path, task_pool, setting_a):
        path = tmp_path / "trace.json"
        export_trace(setting_a, task_pool.tasks[:4], path, rng=0)
        doc = json.loads(path.read_text())
        doc["clusters"][0]["measurements"][0]["task_id"] = 999
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_partial_traces_supported(self, tmp_path, task_pool, setting_a):
        """Real traces are incomplete: clusters may measure different tasks."""
        path = tmp_path / "trace.json"
        export_trace(setting_a, task_pool.tasks[:6], path, rng=0)
        doc = json.loads(path.read_text())
        doc["clusters"][1]["measurements"] = doc["clusters"][1]["measurements"][:3]
        path.write_text(json.dumps(doc))
        datasets = trace_to_datasets(load_trace(path))
        assert len(datasets[1]) == 3
        assert len(datasets[0]) == 6


class TestCalibrationMetrics:
    def test_time_accuracy_perfect(self, rng):
        t = rng.uniform(0.5, 3.0, 40)
        acc = time_accuracy(t, t)
        assert acc.median_relative_error == 0.0
        assert acc.spearman == pytest.approx(1.0)

    def test_time_accuracy_detects_bias(self, rng):
        t = rng.uniform(0.5, 3.0, 40)
        acc = time_accuracy(2.0 * t, t)
        assert acc.median_relative_error == pytest.approx(1.0)
        assert acc.spearman == pytest.approx(1.0)  # ordering preserved

    def test_time_accuracy_validation(self, rng):
        with pytest.raises(ValueError):
            time_accuracy(np.array([1.0, -1.0]), np.array([1.0, 1.0]))

    def test_rank_accuracy(self):
        T_true = np.array([[1.0, 3.0], [2.0, 1.0]])
        T_good = np.array([[1.5, 4.0], [2.5, 2.0]])  # same argmins
        T_bad = T_true[::-1]
        assert per_task_rank_accuracy(T_good, T_true) == 1.0
        assert per_task_rank_accuracy(T_bad, T_true) == 0.0

    def test_calibration_perfectly_calibrated(self, rng):
        p = rng.uniform(0.1, 0.9, 5000)
        outcomes = (rng.random(5000) < p).astype(float)
        cal = reliability_calibration(p, outcomes, bins=10)
        assert cal.ece < 0.05
        assert cal.brier < 0.26

    def test_calibration_detects_overconfidence(self, rng):
        p = np.full(2000, 0.95)
        outcomes = (rng.random(2000) < 0.6).astype(float)
        cal = reliability_calibration(p, outcomes)
        assert cal.ece > 0.25

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            reliability_calibration(np.array([0.5]), np.array([0.3]))
        with pytest.raises(ValueError):
            reliability_calibration(np.array([1.5]), np.array([1.0]))
        with pytest.raises(ValueError):
            reliability_calibration(np.array([0.5]), np.array([1.0]), bins=1)


class TestCLI:
    def test_parser_covers_commands(self):
        parser = build_parser()
        for argv in (["clusters"], ["pool", "--size", "3"],
                     ["experiments", "table1"], ["demo"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_clusters_command_runs(self, capsys):
        assert cli_main(["clusters"]) == 0
        out = capsys.readouterr().out
        assert "a100-dgx" in out and "Settings" in out

    def test_pool_command_runs(self, capsys):
        assert cli_main(["pool", "--size", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Task pool" in out

    def test_trace_command_runs(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        assert cli_main(["trace", "export", str(path), "--tasks", "4"]) == 0
        assert path.exists()
        assert load_trace(path).n_tasks == 4
