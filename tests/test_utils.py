"""Tests for the shared utilities (RNG streams, validation, tables)."""

from __future__ import annotations

import io
import time

import numpy as np
import pytest

import repro.utils
from repro.telemetry import recording, span
from repro.utils import (
    Table,
    as_generator,
    check_array,
    check_assignment_matrix,
    check_in_range,
    check_matrix,
    check_positive,
    check_probability,
    format_mean_std,
    iter_seeds,
    render_series,
    spawn,
    spawn_many,
    stream_of,
)


class TestRng:
    def test_as_generator_idempotent(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_as_generator_from_int_deterministic(self):
        a = as_generator(5).random(3)
        b = as_generator(5).random(3)
        np.testing.assert_allclose(a, b)

    def test_spawn_children_independent(self):
        parent = as_generator(1)
        c1, c2 = spawn(parent), spawn(parent)
        assert not np.allclose(c1.random(5), c2.random(5))

    def test_spawn_many(self):
        children = spawn_many(as_generator(2), 4)
        assert len(children) == 4
        draws = [c.random() for c in children]
        assert len(set(draws)) == 4

    def test_spawn_many_validates(self):
        with pytest.raises(ValueError):
            spawn_many(as_generator(0), -1)

    def test_stream_of_deterministic_and_label_sensitive(self):
        a = stream_of(7, "failures").random(3)
        b = stream_of(7, "failures").random(3)
        c = stream_of(7, "workload").random(3)
        np.testing.assert_allclose(a, b)
        assert not np.allclose(a, c)

    def test_iter_seeds_deterministic(self):
        assert list(iter_seeds(3, 4)) == list(iter_seeds(3, 4))
        assert len(set(iter_seeds(3, 8))) == 8


class TestValidation:
    def test_check_array_rejects_nan(self):
        with pytest.raises(ValueError):
            check_array(np.array([1.0, np.nan]))

    def test_check_array_ndim(self):
        with pytest.raises(ValueError):
            check_array(np.ones((2, 2)), ndim=1)

    def test_check_array_empty(self):
        with pytest.raises(ValueError):
            check_array(np.array([]))
        assert check_array(np.array([]), allow_empty=True).size == 0

    def test_check_matrix_shape(self):
        with pytest.raises(ValueError):
            check_matrix(np.ones((2, 3)), shape=(3, 2))

    def test_check_positive(self):
        assert check_positive(1.5) == 1.5
        with pytest.raises(ValueError):
            check_positive(0.0)
        assert check_positive(0.0, strict=False) == 0.0

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.1)

    def test_check_in_range(self):
        assert check_in_range(2.0, 1.0, 3.0) == 2.0
        with pytest.raises(ValueError):
            check_in_range(1.0, 1.0, 3.0, inclusive=False)

    def test_check_assignment_matrix(self):
        X = np.array([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(check_assignment_matrix(X, binary=True), X)
        with pytest.raises(ValueError):
            check_assignment_matrix(np.array([[0.5, 0.5], [0.2, 0.5]]))
        with pytest.raises(ValueError):
            check_assignment_matrix(np.array([[0.7, 0.3], [0.3, 0.7]]), binary=True)


class TestTables:
    def test_format_mean_std(self):
        assert format_mean_std(1.23456, 0.0321) == "1.235 ± 0.032"

    def test_table_renders_aligned(self):
        t = Table(["Method", "Regret"], title="X")
        t.add_row(["TSM", "1.0"])
        t.add_row(["MFCP-with-long-name", "2.0"])
        lines = t.render().splitlines()
        assert len({len(line) for line in lines[2:]}) == 1  # aligned rows

    def test_table_rejects_bad_row(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(["only-one"])

    def test_render_series(self):
        out = render_series("N", [1, 2], {"m": [0.1, 0.2]}, title="S")
        assert "0.100" in out and "N" in out

    def test_render_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("N", [1, 2], {"m": [0.1]})


class TestTiming:
    """Wall-clock timing is the telemetry span primitive's job now."""

    def test_span_measures_elapsed(self):
        with recording(mode="summary", stream=io.StringIO()):
            with span("work") as s:
                time.sleep(0.002)
        assert s.elapsed >= 0.002
        assert s.ok

    def test_span_aggregates_sections(self):
        with recording(mode="summary", stream=io.StringIO()) as rec:
            for _ in range(3):
                with span("work"):
                    time.sleep(0.001)
            agg = rec.aggregate()["spans"]["work"]
        assert agg["calls"] == 3
        assert agg["errors"] == 0
        assert agg["total_s"] >= 0.003


class TestTimerRemoved:
    """The legacy timer shim completed its deprecation cycle and is gone."""

    def test_timer_module_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.utils.timer  # noqa: F401

    def test_not_exported_from_utils(self):
        assert "Timer" not in repro.utils.__all__
        assert "timed" not in repro.utils.__all__
        assert not hasattr(repro.utils, "Timer")
        assert not hasattr(repro.utils, "timed")
