"""Cross-validation of our solvers against scipy's LP machinery.

The linear-cost variant of the relaxed matching (cost="linear", tiny
barrier weight) is an LP over the product of per-task simplices; scipy's
``linprog`` solves it exactly.  Agreement here independently validates the
objective assembly, the mirror-descent solver, and the rounding pipeline
against a reference implementation we did not write.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.optimize
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.matching import (
    FrankWolfeConfig,
    MatchingProblem,
    SolverConfig,
    feasible_gamma,
    linear_cost,
    round_assignment,
    solve_frank_wolfe,
    solve_relaxed,
)


def _linprog_reference(problem: MatchingProblem) -> tuple[np.ndarray, float]:
    """Solve min Σ x∘T s.t. per-task simplex + reliability ≥ γ via scipy."""
    M, N = problem.M, problem.N
    c = problem.T.ravel()
    # Equality: each task's column sums to 1.
    A_eq = np.zeros((N, M * N))
    for i in range(M):
        A_eq[np.arange(N), i * N + np.arange(N)] = 1.0
    b_eq = np.ones(N)
    # Inequality: −Σ x·a / (MN) ≤ −γ.
    A_ub = -problem.A.ravel()[None, :] / (M * N)
    b_ub = np.array([-problem.gamma])
    res = scipy.optimize.linprog(
        c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq, bounds=(0.0, 1.0),
        method="highs",
    )
    assert res.success, res.message
    return res.x.reshape(M, N), float(res.fun)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_linear_cost_solver_matches_scipy_lp(seed):
    rng = np.random.default_rng(seed)
    T = rng.uniform(0.1, 4.0, (3, 5))
    A = rng.uniform(0.55, 0.999, (3, 5))
    problem = MatchingProblem(
        T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.3),
        cost="linear", lam=1e-6,  # barrier negligible: pure LP
    )
    X_lp, lp_value = _linprog_reference(problem)
    # Restrict to instances whose LP optimum leaves the reliability
    # constraint strictly inactive: on active-face optima a fixed-λ
    # interior method cannot (and should not) reach the exact LP value.
    lp_slack = float(np.sum(X_lp * problem.A) / (3 * 5) - problem.gamma)
    assume(lp_slack > 1e-3)
    # Frank-Wolfe carries a duality-gap certificate and its vertex oracle
    # is exact for linear objectives — the right solver to compare against
    # an LP reference.
    X_ours = solve_frank_wolfe(problem, FrankWolfeConfig(max_iters=2000, tol=1e-10)).X
    assert linear_cost(X_ours, problem) <= 1.02 * lp_value + 1e-6


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_rounded_linear_decision_matches_lp_vertex(seed):
    """With the linear cost the LP optimum is (generically) integral; our
    relax-and-round pipeline should land on a matching of equal cost."""
    rng = np.random.default_rng(seed)
    T = rng.uniform(0.1, 4.0, (3, 5))
    A = rng.uniform(0.55, 0.999, (3, 5))
    # γ below the worst possible assignment: the reliability constraint is
    # inactive, so the LP optimum is integral (per-task argmin of T).
    problem = MatchingProblem(
        T=T, A=A, gamma=float(A.min()) / 3.0 * 0.5,
        cost="linear", lam=1e-6,
    )
    X = round_assignment(solve_relaxed(problem, SolverConfig(max_iters=1500)).X, problem)
    _, lp_value = _linprog_reference(problem)
    assert linear_cost(X, problem) == pytest.approx(lp_value, rel=1e-6)
