"""Fig. 2 — the motivating example (MSE vs matching-focused regression).

Run: ``pytest benchmarks/bench_fig2.py --benchmark-only``
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig2 import run_fig2


def test_fig2_motivating_example(benchmark):
    # Aggregate over many noise draws: the matching-focused scheme must
    # allocate correctly at least as often as MSE, with MSE failing on the
    # crossing-region task a substantial fraction of the time.
    def study():
        mse_correct, mf_correct, mse_task2_fail = [], [], 0
        for seed in range(40):
            results = run_fig2(rng=seed)
            mse = results["MSE (predict-then-match)"]
            mf = results["matching-focused"]
            mse_correct.append(int(mse.correct.sum()))
            mf_correct.append(int(mf.correct.sum()))
            mse_task2_fail += int(not mse.correct[1])
        return np.mean(mse_correct), np.mean(mf_correct), mse_task2_fail

    mse_avg, mf_avg, task2_fails = benchmark.pedantic(study, rounds=1, iterations=1)
    print(f"\nFig. 2 over 40 noise draws: MSE allocates {mse_avg:.2f}/3 correctly, "
          f"matching-focused {mf_avg:.2f}/3; MSE misallocates the crossing task "
          f"in {task2_fails}/40 draws")
    assert mf_avg >= mse_avg
    assert task2_fails >= 5  # the pathology is common, not a fluke
