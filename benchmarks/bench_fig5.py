"""E3 — regenerate Fig. 5 (regret & utilization vs number of tasks).

Sweeps the round size on setting A with the five methods and prints the
two series tables behind the figure's panels.

Run: ``pytest benchmarks/bench_fig5.py --benchmark-only``
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import active_profile
from repro.experiments.fig5 import TASK_COUNTS, run_fig5, series
from repro.utils.tables import render_series


def test_fig5_scaling(benchmark, config):
    counts = TASK_COUNTS if active_profile() == "full" else (5, 10, 15)
    results = benchmark.pedantic(
        lambda: run_fig5(config, task_counts=counts), rounds=1, iterations=1
    )
    ns, regret = series(results, "regret")
    _, util = series(results, "utilization")
    print()
    print(render_series("N tasks", ns, regret,
                        title="Fig. 5a — Regret vs task count (reproduced)", digits=4))
    print()
    print(render_series("N tasks", ns, util,
                        title="Fig. 5b — Utilization vs task count (reproduced)"))

    # Shape: utilization increases with N for every method (paper §4.4).
    for name, ys in util.items():
        assert ys[-1] >= ys[0] - 0.05, f"{name} utilization should rise with N"
    # Shape: regrets stay bounded and MFCP-AD competitive at every scale.
    for n in ns:
        ad = results[n]["MFCP-AD"].regret[0]
        tam = results[n]["TAM"].regret[0]
        assert ad <= tam + 0.05
    assert all(np.isfinite(v) for ys in regret.values() for v in ys)
