"""A5 — solver ablation: mirror descent vs Frank–Wolfe vs Euclidean vs the
paper-literal softmax rule vs simulated annealing, on identical instances.

Reports, per engine, the mean relaxed objective, the mean *rounded* true
makespan (what deployment cares about), and wall time — quantifying the
DESIGN.md claim that mirror descent is the right default for Algorithm 1.

Run: ``pytest benchmarks/bench_solver_comparison.py --benchmark-only``
"""

from __future__ import annotations

import time

import numpy as np

from repro.matching import (
    AnnealingConfig,
    FrankWolfeConfig,
    MatchingProblem,
    SolverConfig,
    feasible_gamma,
    makespan,
    round_assignment,
    solve_annealing,
    solve_branch_and_bound,
    solve_frank_wolfe,
    solve_relaxed,
)
from repro.utils.tables import Table


def _instances(n_instances: int = 25, m: int = 3, n: int = 8):
    rng = np.random.default_rng(0)
    out = []
    for _ in range(n_instances):
        T = rng.uniform(0.1, 4.0, (m, n))
        A = rng.uniform(0.55, 0.999, (m, n))
        out.append(MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.4)))
    return out


def test_a5_solver_comparison(benchmark):
    problems = _instances()
    exact = [solve_branch_and_bound(p).objective for p in problems]

    engines = {
        "mirror": lambda p: round_assignment(
            solve_relaxed(p, SolverConfig(projection="mirror")).X, p),
        "euclidean": lambda p: round_assignment(
            solve_relaxed(p, SolverConfig(projection="euclidean")).X, p),
        "softmax (paper-literal)": lambda p: round_assignment(
            solve_relaxed(p, SolverConfig(projection="softmax")).X, p),
        "frank-wolfe": lambda p: round_assignment(
            solve_frank_wolfe(p, FrankWolfeConfig()).X, p),
        "annealing": lambda p: solve_annealing(
            p, AnnealingConfig(steps=2500), rng=0).X,
    }

    def study():
        rows = {}
        for name, engine in engines.items():
            t0 = time.perf_counter()
            gaps = []
            for p, opt in zip(problems, exact):
                X = engine(p)
                gaps.append(makespan(X, p) / opt - 1.0)
            rows[name] = (float(np.mean(gaps)), float(np.max(gaps)),
                          time.perf_counter() - t0)
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    table = Table(["Engine", "mean gap vs exact", "worst gap", "total time (s)"],
                  title="A5 — solver engines on 25 random instances (M=3, N=8)")
    for name, (mean_gap, worst, elapsed) in rows.items():
        table.add_row([name, f"{mean_gap:.4f}", f"{worst:.4f}", f"{elapsed:.2f}"])
    print()
    print(table.render())
    # Deployment-quality contract: every engine's rounded solutions stay
    # within 50% of exact on average; the default (mirror) within 10%.
    assert rows["mirror"][0] < 0.10
    for name, (mean_gap, _, _) in rows.items():
        assert mean_gap < 0.5, f"{name} mean gap {mean_gap}"
