"""A1–A4 — design-choice ablations backed by the theory modules.

- A1: smoothing β sweep (Theorem 1 bound vs empirical gap);
- A2: barrier λ sweep (Theorem 2 ε-feasibility);
- A3: zeroth-order (Δ, S) grid (Theorem 3 bias/variance);
- A4: solver convergence (Theorems 4 and 5).

Run: ``pytest benchmarks/bench_ablations.py --benchmark-only``
"""

from __future__ import annotations

import numpy as np

from repro.theory import (
    convex_convergence_study,
    feasibility_study,
    gradient_error_study,
    nonconvex_convergence_study,
    sweep_beta,
)
from repro.utils.tables import Table


def test_a1_beta_sweep(benchmark):
    betas = [0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0]
    sweep = benchmark.pedantic(
        lambda: sweep_beta(betas, m=3, instances=100, rng=0), rounds=1, iterations=1
    )
    table = Table(["beta", "empirical max gap", "log(M)/beta bound"],
                  title="A1 — Theorem 1: smoothing gap vs β")
    for b, gap, bound in zip(sweep.betas, sweep.empirical_gap, sweep.bound):
        table.add_row([f"{b:g}", f"{gap:.5f}", f"{bound:.5f}"])
    print()
    print(table.render())
    assert sweep.holds()
    assert sweep.empirical_gap[-1] < sweep.empirical_gap[0]


def test_a2_lambda_sweep(benchmark):
    lams = [0.001, 0.01, 0.1, 1.0]
    stats = benchmark.pedantic(
        lambda: feasibility_study(lams, instances=20, rng=0), rounds=1, iterations=1
    )
    table = Table(["lambda", "relaxed viol. rate", "rounded viol. rate",
                   "rounded worst viol."],
                  title="A2 — Theorem 2: constraint violations vs λ")
    for s in stats:
        table.add_row([f"{s.lam:g}", f"{s.relaxed_violation_rate:.2f}",
                       f"{s.rounded_violation_rate:.2f}",
                       f"{s.rounded_worst_violation:.4f}"])
    print()
    print(table.render())
    # The interior point keeps every relaxed solution feasible.
    assert all(s.relaxed_violation_rate == 0.0 for s in stats)


def test_a3_zeroth_order_grid(benchmark):
    points = benchmark.pedantic(
        lambda: gradient_error_study(
            deltas=[0.005, 0.02, 0.08, 0.3], sample_counts=[4, 16], repeats=4, rng=0
        ),
        rounds=1,
        iterations=1,
    )
    table = Table(["delta", "S", "MSE", "cosine"],
                  title="A3 — Theorem 3: ZO gradient error across (Δ, S)")
    for p in points:
        table.add_row([f"{p.delta:g}", p.samples, f"{p.mse:.4f}", f"{p.cosine:.3f}"])
    print()
    print(table.render())
    # More samples help at fixed Δ (variance term of Eq. 18).
    by_key = {(p.delta, p.samples): p.mse for p in points}
    helped = sum(by_key[(d, 16)] <= by_key[(d, 4)] * 1.25 for d in [0.005, 0.02, 0.08, 0.3])
    assert helped >= 3


def test_a4_convergence(benchmark):
    def study():
        return (
            convex_convergence_study(rng=0, iters=300),
            nonconvex_convergence_study(rng=0, checkpoints=[10, 50, 100, 300]),
        )

    convex, nonconvex = benchmark.pedantic(study, rounds=1, iterations=1)
    print(f"\nA4 — Theorem 4: convex contraction rate per iteration: {convex.rate:.4f}")
    print("A4 — Theorem 5: best-so-far ||∇F||² at checkpoints:",
          np.array2string(nonconvex.grad_norms, precision=3))
    assert convex.is_linear()
    assert nonconvex.is_decreasing()
