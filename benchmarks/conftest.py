"""Shared configuration for the benchmark suite.

Every paper artifact (Table 1, Fig. 4, Fig. 5, Table 2) has a bench that
regenerates it.  ``REPRO_PROFILE=fast`` (default) runs trimmed sizes so the
whole suite finishes in minutes; ``REPRO_PROFILE=full`` runs the
paper-faithful sizes used for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig, active_profile, default_config
from repro.matching.zeroth_order import ZeroOrderConfig
from repro.methods.mfcp import MFCPConfig
from repro.predictors.training import TrainConfig


def bench_config() -> ExperimentConfig:
    """The experiment configuration benches run under."""
    if active_profile() == "full":
        return default_config("full")
    # Trimmed fast profile: same code paths, smaller counts.
    return ExperimentConfig(
        pool_size=60,
        eval_rounds=6,
        seeds=(0, 1),
        mfcp=MFCPConfig(
            epochs=25,
            pretrain=TrainConfig(epochs=100),
            zero_order=ZeroOrderConfig(samples=6, delta=0.05, warm_start_iters=50,
                                       vectorized=True),
        ),
        supervised=TrainConfig(epochs=120),
        ucb_ensemble=3,
    )


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return bench_config()
