"""E2 — regenerate Fig. 4 (overall performance, settings A/B/C).

One benchmark per cluster setting; each prints the three-metric comparison
table for the five methods of §4.1.2.

Run: ``pytest benchmarks/bench_fig4.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.clusters.catalog import make_setting
from repro.experiments.fig4 import fig4_methods
from repro.experiments.runner import run_experiment
from repro.metrics.report import comparison_table


@pytest.mark.parametrize("setting", ["A", "B", "C"])
def test_fig4_setting(benchmark, config, setting):
    reports = benchmark.pedantic(
        lambda: run_experiment(
            lambda: make_setting(setting), fig4_methods(config), config
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(comparison_table(reports, title=f"Fig. 4 — Setting {setting} (reproduced)").render())

    assert set(reports) == {"TAM", "TSM", "UCB", "MFCP-AD", "MFCP-FG"}
    for report in reports.values():
        assert 0.0 < report.utilization[0] <= 1.0
    # Shape check (loose): the best MFCP variant is never beaten by TAM.
    best_mfcp = min(reports["MFCP-AD"].regret[0], reports["MFCP-FG"].regret[0])
    assert best_mfcp <= reports["TAM"].regret[0] + 0.02
