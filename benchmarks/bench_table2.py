"""E4 — regenerate Table 2 (parallel task execution, non-convex setting).

ζ is §4.5's exponential decay from 1 to 0.6 shared by all clusters;
methods are TAM / TSM / UCB / MFCP-FG (MFCP-AD is inapplicable).

Run: ``pytest benchmarks/bench_table2.py --benchmark-only``
"""

from __future__ import annotations

from repro.experiments.table2 import run_table2
from repro.metrics.report import comparison_table


def test_table2_parallel_execution(benchmark, config):
    reports = benchmark.pedantic(
        lambda: run_table2(config), rounds=1, iterations=1
    )
    print()
    print(comparison_table(
        reports, title="Table 2 — Parallel execution (reproduced)"
    ).render())

    assert set(reports) == {"TAM", "TSM", "UCB", "MFCP-FG"}
    # Shape: MFCP-FG leads utilization and is competitive on regret.
    util = {k: v.utilization[0] for k, v in reports.items()}
    assert util["MFCP-FG"] >= max(util.values()) - 0.08
    assert reports["MFCP-FG"].regret[0] <= reports["TAM"].regret[0] + 0.02
    if reports["TSM"].regret[0] > 0:
        reduction = 1 - reports["MFCP-FG"].regret[0] / reports["TSM"].regret[0]
        print(f"\nMFCP-FG regret reduction vs TSM: {100 * reduction:.1f}% (paper: 25.7%)")
