"""E7 — scaling in the number of clusters M (extension experiment).

Run: ``pytest benchmarks/bench_cluster_scaling.py --benchmark-only``
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.cluster_scaling import run_cluster_scaling
from repro.utils.tables import render_series


def test_e7_cluster_scaling(benchmark, config):
    counts = (2, 3, 4)
    small = replace(config, seeds=(0, 1), eval_rounds=6)
    results = benchmark.pedantic(
        lambda: run_cluster_scaling(small, cluster_counts=counts),
        rounds=1, iterations=1,
    )
    ms = sorted(results)
    methods = list(results[ms[0]].keys())
    regret = {n: [results[m][n].regret[0] for m in ms] for n in methods}
    util = {n: [results[m][n].utilization[0] for m in ms] for n in methods}
    print()
    print(render_series("M clusters", ms, regret,
                        title="E7a — Regret vs cluster count (reproduced)", digits=4))
    print()
    print(render_series("M clusters", ms, util,
                        title="E7b — Utilization vs cluster count (reproduced)"))
    for name in methods:
        assert all(np.isfinite(v) for v in regret[name])
