"""E6 — hyperparameter sensitivity sweeps (γ-quantile, β, λ).

Run: ``pytest benchmarks/bench_sensitivity.py --benchmark-only``
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.sensitivity import (
    run_beta_sweep,
    run_gamma_sweep,
    run_lambda_sweep,
)
from repro.utils.tables import Table


def _render(title, knob, results):
    table = Table([knob, "Method", "Regret", "Reliability", "Utilization"], title=title)
    for value, reports in results.items():
        for name, report in reports.items():
            table.add_row([f"{value:g}", name, f"{report.regret[0]:.4f}",
                           f"{report.reliability[0]:.3f}", f"{report.utilization[0]:.3f}"])
    return table.render()


def _small(config):
    return replace(config, seeds=(0, 1), eval_rounds=6)


def test_e6a_gamma_sweep(benchmark, config):
    results = benchmark.pedantic(
        lambda: run_gamma_sweep(_small(config)), rounds=1, iterations=1
    )
    print("\n" + _render("E6a — γ-quantile sweep (reproduced)", "γ-quantile", results))
    # Tighter thresholds force more reliable assignments.
    rel = {q: results[q]["MFCP-AD"].reliability[0] for q in results}
    qs = sorted(rel)
    assert rel[qs[-1]] >= rel[qs[0]] - 0.01


def test_e6b_beta_sweep(benchmark, config):
    results = benchmark.pedantic(
        lambda: run_beta_sweep(_small(config)), rounds=1, iterations=1
    )
    print("\n" + _render("E6b — β sweep (reproduced)", "β", results))
    for reports in results.values():
        assert np.isfinite(reports["MFCP-AD"].regret[0])


def test_e6c_lambda_sweep(benchmark, config):
    results = benchmark.pedantic(
        lambda: run_lambda_sweep(_small(config)), rounds=1, iterations=1
    )
    print("\n" + _render("E6c — λ sweep (reproduced)", "λ", results))
    for reports in results.values():
        assert 0 < reports["MFCP-AD"].utilization[0] <= 1.0
