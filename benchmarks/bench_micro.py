"""P1 — micro-benchmarks of the computational kernels.

These quantify the per-call cost of the pieces Eq. (21)'s complexity
analysis counts: prediction (MLP forward/backward), one Algorithm-1 solve
(K₁·MN), one KKT adjoint solve, one zeroth-order estimate (S·K₂·MN), plus
the substrate (embedding, DES round).

Run: ``pytest benchmarks/bench_micro.py --benchmark-only``
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.clusters import make_pool, make_setting
from repro.matching import (
    MatchingProblem,
    SolverConfig,
    ZeroOrderConfig,
    feasible_gamma,
    kkt_vjp,
    solve_branch_and_bound,
    solve_relaxed,
    zo_vjp,
)
from repro.matching.rounding import round_assignment
from repro.nn import MLP, Adam, Tensor, mse_loss
from repro.sim import simulate_matching
from repro.workloads import GraphEmbedder, TaskPool, sample_specs


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(0)
    T = rng.uniform(0.2, 3.0, (3, 10))
    A = rng.uniform(0.6, 0.99, (3, 10))
    p = MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.4), entropy=0.05)
    sol = solve_relaxed(p, SolverConfig(max_iters=400))
    return p, sol


def test_relaxed_solve(benchmark, instance):
    p, _ = instance
    cfg = SolverConfig(max_iters=300)
    result = benchmark(lambda: solve_relaxed(p, cfg))
    assert result.objective < np.inf


def test_rounding(benchmark, instance):
    p, sol = instance
    X = benchmark(lambda: round_assignment(sol.X, p))
    assert X.sum() == p.N


def test_branch_and_bound(benchmark, instance):
    p, _ = instance
    result = benchmark(lambda: solve_branch_and_bound(p))
    assert result.feasible


def test_kkt_vjp(benchmark, instance):
    p, sol = instance
    gX = np.random.default_rng(1).normal(size=(p.M, p.N))
    out = benchmark(lambda: kkt_vjp(sol.X, p, gX))
    assert np.all(np.isfinite(out.dT))


def test_zero_order_vjp(benchmark, instance):
    p, sol = instance
    gX = np.random.default_rng(1).normal(size=(p.M, p.N))
    cfg = ZeroOrderConfig(samples=8, delta=0.05, warm_start_iters=50)
    out = benchmark(lambda: zo_vjp(p, sol, 0, gX, cfg, rng=2))
    assert np.all(np.isfinite(out.dt))


def test_mlp_training_step(benchmark):
    rng = np.random.default_rng(3)
    X = rng.normal(size=(56, 16))
    y = rng.normal(size=(56, 1))
    model = MLP(16, (32, 32), 1, rng=0)
    opt = Adam(model.parameters(), lr=1e-3)

    def step():
        opt.zero_grad()
        loss = mse_loss(model(Tensor(X)), y)
        loss.backward()
        opt.step()
        return loss.item()

    assert np.isfinite(benchmark(step))


def test_graph_embedding(benchmark):
    specs = sample_specs(8, rng=5)
    embedder = GraphEmbedder()
    Z = benchmark(lambda: embedder.embed_specs(specs))
    assert Z.shape == (8, embedder.feature_dim)


def test_discrete_event_round(benchmark):
    pool = TaskPool(16, rng=6)
    clusters = make_setting("A")
    rng = np.random.default_rng(7)
    labels = rng.integers(0, 3, len(pool))
    from repro.matching.rounding import assignment_from_labels

    X = assignment_from_labels(labels, 3)
    result = benchmark(lambda: simulate_matching(clusters, pool.tasks, X))
    assert result.makespan > 0


# --------------------------------------------------------------------- #
# Fused training round: batched vs scalar MFCP epochs.
#
# Measures the regret-training core (solve + vjp + optimizer phases) of
# MFCP at M=8 clusters, N=20 tasks per round, for both gradient modes,
# with the fused cross-cluster batched round against the per-cluster
# scalar round.  MSE pretraining is identical code in both paths and is
# excluded.  ``python benchmarks/bench_micro.py`` records the numbers in
# BENCH_train_round.json at the repo root.
# --------------------------------------------------------------------- #

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_train_round.json"
_TR_M, _TR_N = 8, 20


def _train_round_case(
    gradient: str, batched: bool, *, epochs: int
) -> tuple[float, dict, list]:
    """Fit MFCP once; return (core seconds, per-phase timings, loss history)."""
    from repro.methods import MFCP, MFCPConfig, MatchSpec, FitContext
    from repro.predictors.training import TrainConfig

    pool = TaskPool(80, rng=21)
    clusters = make_pool(_TR_M, rng=3)
    train, _ = pool.split(0.7, rng=1)
    ctx = FitContext.build(clusters, train, MatchSpec(), rng=2)
    cfg = MFCPConfig(
        epochs=epochs,
        round_size=_TR_N,
        pretrain=TrainConfig(epochs=40),
        zero_order=ZeroOrderConfig(
            samples=8, delta=0.05, warm_start_iters=60, vectorized=True
        ),
        validation_rounds=0,
        batched=batched,
    )
    method = MFCP(gradient, cfg)
    t0 = time.perf_counter()
    method.fit(ctx)
    total = time.perf_counter() - t0
    timings = dict(method.timings)
    core = total - timings.get("pretrain", 0.0) - timings.get("validation", 0.0)
    return core, timings, method.loss_history


def measure_train_round(gradient: str, *, epochs: int = 5, repeats: int = 5) -> dict:
    """Best-of-``repeats`` (minimum, as for any wall-clock microbenchmark)
    training core time, scalar vs batched, plus the speedup ratio."""
    rec: dict = {}
    for batched in (False, True):
        runs = [
            _train_round_case(gradient, batched, epochs=epochs)
            for _ in range(repeats)
        ]
        core, timings, hist = min(runs, key=lambda r: r[0])
        rec["batched" if batched else "scalar"] = {
            "core_s": round(core, 4),
            "s_per_epoch": round(core / epochs, 4),
            "phases_s": {k: round(v, 4) for k, v in sorted(timings.items())},
            "loss_first_last": [float(hist[0]), float(hist[-1])],
        }
    rec["speedup"] = round(rec["scalar"]["core_s"] / rec["batched"]["core_s"], 2)
    return rec


# --------------------------------------------------------------------- #
# Telemetry overhead gate: with telemetry off (the default), the
# instrumented call sites must cost < 2% of a training epoch.  We bound
# the overhead from above: count the events an identical fit records when
# a recorder IS active, microbenchmark the cost of one disabled
# instrument call (one contextvar read + one branch — the hot solver
# loops hoist even that, so this overestimates), and compare the product
# against the off-mode core time.
# --------------------------------------------------------------------- #


def measure_telemetry_overhead(
    gradient: str = "analytic", *, epochs: int = 2, repeats: int = 3
) -> dict:
    from io import StringIO

    from repro import telemetry

    off_core = min(
        _train_round_case(gradient, True, epochs=epochs)[0] for _ in range(repeats)
    )

    sink = StringIO()
    with telemetry.recording(mode="summary", run="bench_overhead", stream=sink) as rec:
        _train_round_case(gradient, True, epochs=epochs)
        events = rec.events_recorded

    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        telemetry.counter_add("bench/noop")
    noop_s = (time.perf_counter() - t0) / n

    bound_s = events * noop_s
    return {
        "off_core_s": round(off_core, 4),
        "events_per_fit": int(events),
        "noop_call_ns": round(noop_s * 1e9, 1),
        "overhead_bound_s": round(bound_s, 6),
        "overhead_frac": round(bound_s / off_core, 6),
    }


def test_telemetry_off_overhead_smoke():
    """Gate (CI): disabled telemetry adds < 2% to a training epoch."""
    rec = measure_telemetry_overhead("analytic", epochs=2, repeats=2)
    assert rec["events_per_fit"] > 0, "instrumentation recorded nothing"
    assert rec["overhead_frac"] < 0.02, (
        f"telemetry off-mode overhead bound {100 * rec['overhead_frac']:.2f}% "
        f"exceeds 2% ({rec['events_per_fit']} events x {rec['noop_call_ns']} ns "
        f"vs {rec['off_core_s']} s core)"
    )


def test_train_round_fused_smoke():
    """Smoke check (CI): the fused batched round beats the scalar path for
    both gradient modes and its loss trajectory is finite."""
    for gradient in ("analytic", "forward"):
        rec = measure_train_round(gradient, epochs=2, repeats=1)
        assert rec["speedup"] > 1.2, f"{gradient}: only {rec['speedup']:.2f}x"
        for key in ("scalar", "batched"):
            assert all(np.isfinite(rec[key]["loss_first_last"]))


def main() -> None:
    results = {
        "benchmark": "MFCP training round, batched vs scalar",
        "m_clusters": _TR_M,
        "round_size": _TR_N,
        "epochs": 5,
        "repeats": 5,
        "metric": "min over repeats of (fit wall clock − pretrain − validation)",
        "gradients": {},
    }
    for gradient in ("analytic", "forward"):
        rec = measure_train_round(gradient, epochs=5, repeats=5)
        results["gradients"][gradient] = rec
        label = "MFCP-AD" if gradient == "analytic" else "MFCP-FG"
        print(
            f"{label}: scalar {rec['scalar']['s_per_epoch']*1e3:.1f} ms/epoch, "
            f"batched {rec['batched']['s_per_epoch']*1e3:.1f} ms/epoch "
            f"-> {rec['speedup']:.2f}x"
        )
    results["telemetry_overhead"] = measure_telemetry_overhead("analytic")
    frac = results["telemetry_overhead"]["overhead_frac"]
    print(f"telemetry off-mode overhead bound: {100 * frac:.3f}% of core time")
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")


if __name__ == "__main__":
    main()
