"""P1 — micro-benchmarks of the computational kernels.

These quantify the per-call cost of the pieces Eq. (21)'s complexity
analysis counts: prediction (MLP forward/backward), one Algorithm-1 solve
(K₁·MN), one KKT adjoint solve, one zeroth-order estimate (S·K₂·MN), plus
the substrate (embedding, DES round).

Run: ``pytest benchmarks/bench_micro.py --benchmark-only``
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clusters import make_setting
from repro.matching import (
    MatchingProblem,
    SolverConfig,
    ZeroOrderConfig,
    feasible_gamma,
    kkt_vjp,
    solve_branch_and_bound,
    solve_relaxed,
    zo_vjp,
)
from repro.matching.rounding import round_assignment
from repro.nn import MLP, Adam, Tensor, mse_loss
from repro.sim import simulate_matching
from repro.workloads import GraphEmbedder, TaskPool, sample_specs


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(0)
    T = rng.uniform(0.2, 3.0, (3, 10))
    A = rng.uniform(0.6, 0.99, (3, 10))
    p = MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.4), entropy=0.05)
    sol = solve_relaxed(p, SolverConfig(max_iters=400))
    return p, sol


def test_relaxed_solve(benchmark, instance):
    p, _ = instance
    cfg = SolverConfig(max_iters=300)
    result = benchmark(lambda: solve_relaxed(p, cfg))
    assert result.objective < np.inf


def test_rounding(benchmark, instance):
    p, sol = instance
    X = benchmark(lambda: round_assignment(sol.X, p))
    assert X.sum() == p.N


def test_branch_and_bound(benchmark, instance):
    p, _ = instance
    result = benchmark(lambda: solve_branch_and_bound(p))
    assert result.feasible


def test_kkt_vjp(benchmark, instance):
    p, sol = instance
    gX = np.random.default_rng(1).normal(size=(p.M, p.N))
    out = benchmark(lambda: kkt_vjp(sol.X, p, gX))
    assert np.all(np.isfinite(out.dT))


def test_zero_order_vjp(benchmark, instance):
    p, sol = instance
    gX = np.random.default_rng(1).normal(size=(p.M, p.N))
    cfg = ZeroOrderConfig(samples=8, delta=0.05, warm_start_iters=50)
    out = benchmark(lambda: zo_vjp(p, sol, 0, gX, cfg, rng=2))
    assert np.all(np.isfinite(out.dt))


def test_mlp_training_step(benchmark):
    rng = np.random.default_rng(3)
    X = rng.normal(size=(56, 16))
    y = rng.normal(size=(56, 1))
    model = MLP(16, (32, 32), 1, rng=0)
    opt = Adam(model.parameters(), lr=1e-3)

    def step():
        opt.zero_grad()
        loss = mse_loss(model(Tensor(X)), y)
        loss.backward()
        opt.step()
        return loss.item()

    assert np.isfinite(benchmark(step))


def test_graph_embedding(benchmark):
    specs = sample_specs(8, rng=5)
    embedder = GraphEmbedder()
    Z = benchmark(lambda: embedder.embed_specs(specs))
    assert Z.shape == (8, embedder.feature_dim)


def test_discrete_event_round(benchmark):
    pool = TaskPool(16, rng=6)
    clusters = make_setting("A")
    rng = np.random.default_rng(7)
    labels = rng.integers(0, 3, len(pool))
    from repro.matching.rounding import assignment_from_labels

    X = assignment_from_labels(labels, 3)
    result = benchmark(lambda: simulate_matching(clusters, pool.tasks, X))
    assert result.makespan > 0
