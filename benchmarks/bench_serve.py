"""Serving-layer soak benchmark: warm-start cache vs cold solves.

Replays one arrival stream through the micro-batching dispatcher three
times — warm-start cache off, on, and on with the quality monitor
attached — and reports sustained matching throughput, p50/p95/p99
assignment latency, and the warm/cold mean-solver-iteration ratio, all
read back through the telemetry histograms the dispatcher records in
production.  The monitored pass gates the observability contract: the
monitor must not change the dispatch trace and must cost < 5% of
dispatcher wall time.

Run: ``python benchmarks/bench_serve.py`` records the full-size numbers in
``BENCH_serve.json`` at the repo root (same convention as
``bench_micro.py`` → ``BENCH_train_round.json``).  The pytest entry points
are CI-sized smokes gating the serving invariants.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.serve import run_serve_benchmark

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def test_serve_bench_smoke(tmp_path):
    """Gate (CI): the soak benchmark runs end to end, conserves tasks, and
    the warm dispatcher never does more solver work than the cold one."""
    out = tmp_path / "BENCH_serve.json"
    report = run_serve_benchmark(smoke=True, out_path=out)
    assert out.exists()
    assert json.loads(out.read_text()) == report
    for mode in ("cold", "warm", "monitored"):
        m = report[mode]
        assert m["windows"] > 0
        assert m["solve_iterations_mean"] > 0
        # Same stream, same admission policy: service is identical.
        assert m["shed"] == report["cold"]["shed"]
        assert m["windows"] == report["cold"]["windows"]
    assert report["warm"]["solve_iterations_mean"] <= (
        report["cold"]["solve_iterations_mean"] * 1.05
    )
    # Observability contract: the monitor is a pure observer (identical
    # dispatch trace) and costs < 5% of dispatcher wall time.
    assert report["monitored"]["trace_sha256"] == report["warm"]["trace_sha256"]
    assert report["monitored"]["monitor_overhead_frac"] < 0.05


def main() -> None:
    report = run_serve_benchmark(out_path=BENCH_JSON)
    print(f"wrote {BENCH_JSON}")
    print(
        f"cold iters/window: {report['cold']['solve_iterations_mean']:.1f}  "
        f"warm: {report['warm']['solve_iterations_mean']:.1f}  "
        f"speedup: {report['warm_start_iters_speedup']}x"
    )


if __name__ == "__main__":
    main()
