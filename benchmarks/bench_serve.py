"""Serving-layer benchmarks: warm-start soak + window-solve scaling sweep.

Two suites, both recorded in ``BENCH_serve.json`` at the repo root (same
convention as ``bench_micro.py`` → ``BENCH_train_round.json``):

- **soak** (:func:`repro.serve.run_serve_benchmark`): replays one arrival
  stream through the micro-batching dispatcher five times — warm-start
  cache off, on, on with the quality monitor attached, on with the
  stage profiler attached, and on with full per-task journey tracing
  (causality-audited, trace-identity gated) — and reports sustained
  matching throughput,
  p50/p95/p99 assignment latency, the warm/cold mean-solver-iteration
  ratio, and the profiled run's latency budget, all read back through the
  telemetry the dispatcher records in production.  The monitored pass
  gates the observability contract: the monitor must not change the
  dispatch trace and must cost < 5% of dispatcher wall time.  The
  profiled pass gates the latency-budget contract: same trace identity,
  named stages explaining >= 95% of the p95 end-to-end window latency,
  and hook-call overhead bounds < 2% with the profiler off / < 5% on.
- **scaling** (:func:`repro.serve.run_scaling_benchmark`): cold
  scalar-vs-blocks window solves on specialist fleets at growing
  ``--tasks x --clusters`` sizes (default sweep up to 200x200) — the
  block-decomposition perf numbers (``"scaling"`` key of the report).
- **sharding** (:func:`repro.fleet.run_sharding_benchmark`): matching
  capacity across fleets of ``--shards`` dispatcher shards (default
  1,2,4,8) at saturating offered load (4x the soak rate — at the soak
  rate a single dispatcher idles, so sharding could only dilute its
  batches) — aggregate tasks/s against the slowest shard's decide time
  and p95 decide latency per shard count — plus a 1-shard *anchor* run
  on the exact warm soak workload whose trace must stay byte-identical
  to the unsharded warm soak (``"sharding"`` key of the report).

Run ``python benchmarks/bench_serve.py`` for the full-size numbers;
``--tasks/--clusters`` override the sweep sizes (comma lists, zipped
pairwise), ``--shards`` the fleet sweep, ``--smoke`` shrinks everything
to CI scale.  The pytest entry points are CI-sized smokes gating the
serving invariants.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.fleet import run_sharding_benchmark
from repro.serve import run_scaling_benchmark, run_serve_benchmark

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def test_serve_bench_smoke(tmp_path):
    """Gate (CI): the soak benchmark runs end to end, conserves tasks, and
    the warm dispatcher never does more solver work than the cold one."""
    out = tmp_path / "BENCH_serve.json"
    flame = tmp_path / "serve_flame.txt"
    report = run_serve_benchmark(smoke=True, out_path=out,
                                 flamegraph_path=flame)
    assert out.exists()
    assert json.loads(out.read_text()) == report
    for mode in ("cold", "warm", "monitored", "profiled", "journeys"):
        m = report[mode]
        assert m["windows"] > 0
        assert m["solve_iterations_mean"] > 0
        # Same stream, same admission policy: service is identical.
        assert m["shed"] == report["cold"]["shed"]
        assert m["windows"] == report["cold"]["windows"]
    assert report["warm"]["solve_iterations_mean"] <= (
        report["cold"]["solve_iterations_mean"] * 1.05
    )
    # Observability contract: the monitor is a pure observer (identical
    # dispatch trace) and costs < 5% of dispatcher wall time.
    assert report["monitored"]["trace_sha256"] == report["warm"]["trace_sha256"]
    assert report["monitored"]["monitor_overhead_frac"] < 0.05
    # Latency-budget contract: profiling is a pure observer too, the
    # named stages explain >= 95% of the p95 end-to-end window latency,
    # and the hook-call overhead bounds hold (< 2% off / < 5% on).
    prof = report["profiled"]
    assert prof["trace_sha256"] == report["warm"]["trace_sha256"]
    assert prof["profile"]["coverage_p95"] >= 0.95
    assert {"form", "predict", "solve", "schedule"} <= set(prof["profile"]["stages"])
    assert "solve;relaxed" in prof["profile"]["stages"]
    assert {"admission_wait", "batch_wait"} <= set(prof["profile"]["sim_stages"])
    assert prof["overhead"]["hook_calls"] > 0
    assert prof["overhead"]["off_frac_bound"] < 0.02
    assert prof["overhead"]["on_frac_bound"] < 0.05
    # Flamegraph artifact: collapsed-stack lines, "frame[;frame] count".
    lines = flame.read_text().splitlines()
    assert lines and all(
        ln.rsplit(" ", 1)[1].isdigit() and ln.startswith("window") for ln in lines
    )
    # Journey-tracing contract: tracing every task is still a pure
    # observer (identical dispatch trace), the causality audit passes
    # (valid transitions, monotone timestamps, exact conservation
    # against the run counters at sample=1.0), exemplars exist, and the
    # hook overhead bounds hold (< 2% off / < 5% on).
    j = report["journeys"]
    assert j["trace_sha256"] == report["warm"]["trace_sha256"]
    assert j["audit_pass"], j["audit_problems"]
    # Every task's journey is kept at sample=1.0, so the emitted count
    # covers at least every serviced-or-shed task (requeues fold into
    # one journey; unserved tasks are audited by audit_pass above).
    assert j["journeys_emitted"] >= j["completed"] + j["failed"] + j["shed"]
    assert j["exemplar_buckets"] > 0
    assert j["overhead"]["hook_calls"] > 0
    assert j["overhead"]["off_frac_bound"] < 0.02
    assert j["overhead"]["on_frac_bound"] < 0.05


def test_scaling_bench_smoke(tmp_path):
    """Gate (CI perf smoke): on block-structured instances the decomposed
    batched solve uses no more iterations than the dense scalar solve,
    actually decomposes, and stays conservation-exact (columns sum to 1 is
    asserted inside the solver; here we gate the reported numbers)."""
    out = tmp_path / "BENCH_scaling.json"
    report = run_scaling_benchmark(smoke=True, out_path=out)
    assert out.exists()
    assert json.loads(out.read_text()) == report
    assert report["entries"]
    for entry in report["entries"]:
        s, b = entry["scalar"], entry["blocks"]
        assert b["n_blocks"] > 1, "specialist instance failed to decompose"
        assert s["iterations"] > 0 and b["iterations"] > 0
        # The perf contract behind solve_mode="blocks": never more solver
        # work than the dense path on a cold window.
        assert b["iterations"] <= s["iterations"]
        # The decomposition is a restriction, but with per-block step
        # normalization it must land within a few percent of (in practice
        # below) the dense barrier value.
        assert entry["objective_gap_rel"] < 0.05
    assert report["min_iters_ratio"] >= 1.0


def test_sharding_bench_smoke(tmp_path):
    """Gate (CI): the sharding sweep conserves per shard, routes every
    arrival exactly once, saturates the 1-shard baseline, and
    multi-shard fleets beat its capacity and aggregate throughput."""
    out = tmp_path / "BENCH_sharding.json"
    report = run_sharding_benchmark(shard_counts=(1, 2, 4), smoke=True,
                                    out_path=out)
    assert out.exists()
    assert json.loads(out.read_text()) == report
    # Determinism anchor: the exact warm-soak workload through a 1-shard
    # fleet (its SHA is gated against the warm soak in main()).
    anchor = report["anchor"]
    assert anchor["shards"] == 1 and anchor["conserved"]
    assert len(anchor["trace_sha256"]) == 64
    base = report["entries"][0]
    assert base["shards"] == 1
    # The sweep must actually saturate the baseline, or "capacity" is
    # meaningless: under saturation the dispatcher is batch-bound (fires
    # a window as soon as max_batch tasks queue), so its mean batch must
    # sit near max_batch rather than at the timeout-fired trickle.
    assert base["matched"] / base["windows"] >= 0.8 * report["max_batch"], (
        "1-shard baseline not batch-bound — raise saturation")
    for entry in report["entries"]:
        assert entry["conserved"], "per-shard conservation violated"
        assert entry["matched_identity"], (
            "matched != completed + failed + requeued on some shard")
        # Exact stream partition: no arrival lost or double-routed.
        assert sum(entry["per_shard_matched"]) == entry["matched"]
        assert entry["arrived"] == base["arrived"]
        assert entry["completed"] + entry["failed"] + entry["shed"] \
            + entry["unserved"] == entry["arrived"]
        # Scale-out never loses work: every fleet serves the whole stream.
        assert entry["matched"] == base["matched"]
    # Capacity scales out: each added shard takes a slice of the
    # baseline's back-to-back full windows, so the critical path (the
    # slowest shard's decide time) shrinks and aggregate throughput
    # rises.  Smoke sizes are tiny, so gate monotone improvement here;
    # the full-size >= 3x at 4 shards is gated on the committed numbers.
    for entry in report["entries"][1:]:
        assert entry["max_shard_decide_s"] < base["max_shard_decide_s"]
        assert entry["throughput_tasks_per_s"] > base["throughput_tasks_per_s"]


def test_sharding_committed_numbers():
    """Gate (CI): the committed full-size BENCH_serve.json sharding sweep
    reaches >= 3x aggregate throughput at 4 shards, and its 1-shard
    anchor trace equals the unsharded warm soak's."""
    report = json.loads(BENCH_JSON.read_text())
    sharding = report["sharding"]
    assert sharding["anchor"]["trace_sha256"] == report["warm"]["trace_sha256"]
    assert sharding["speedup_vs_1shard"]["4"] >= 3.0


def _csv_ints(text: str) -> "list[int]":
    return [int(v) for v in text.split(",") if v.strip()]


def main(argv: "list[str] | None" = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", default=None, metavar="N0,N1,...",
                        help="scaling sweep window sizes (tasks per window)")
    parser.add_argument("--clusters", default=None, metavar="M0,M1,...",
                        help="scaling sweep fleet sizes (zipped with --tasks)")
    parser.add_argument("--shards", default="1,2,4,8", metavar="N0,N1,...",
                        help="sharding sweep shard counts")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (short soak, small sweep)")
    parser.add_argument("--output", default=str(BENCH_JSON), metavar="PATH",
                        help="combined report path (default: BENCH_serve.json)")
    parser.add_argument("--flamegraph", default=None, metavar="PATH",
                        help="write the profiled soak's collapsed-stack "
                             "profile here (speedscope / flamegraph.pl)")
    args = parser.parse_args(argv)

    sizes = None
    if (args.tasks is None) != (args.clusters is None):
        parser.error("--tasks and --clusters must be given together")
    if args.tasks is not None:
        tasks, clusters = _csv_ints(args.tasks), _csv_ints(args.clusters)
        if len(tasks) != len(clusters) or not tasks:
            parser.error("--tasks and --clusters need equal, non-zero lengths")
        sizes = tuple(zip(tasks, clusters))

    report = run_serve_benchmark(smoke=args.smoke,
                                 flamegraph_path=args.flamegraph)
    report["scaling"] = run_scaling_benchmark(sizes=sizes, smoke=args.smoke)
    report["sharding"] = run_sharding_benchmark(
        shard_counts=tuple(_csv_ints(args.shards)), smoke=args.smoke)
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    print(
        f"soak cold iters/window: {report['cold']['solve_iterations_mean']:.1f}  "
        f"warm: {report['warm']['solve_iterations_mean']:.1f}  "
        f"speedup: {report['warm_start_iters_speedup']}x"
    )
    prof = report["profiled"]
    print(
        f"latency budget coverage_p95: {prof['profile']['coverage_p95']}  "
        f"overhead bounds: off {prof['overhead']['off_frac_bound']} / "
        f"on {prof['overhead']['on_frac_bound']}"
    )
    j = report["journeys"]
    print(
        f"journeys: {j['journeys_emitted']} emitted, audit "
        f"{'PASS' if j['audit_pass'] else 'FAIL'}, trace == warm: "
        f"{j['trace_sha256'] == report['warm']['trace_sha256']}, "
        f"overhead bounds: off {j['overhead']['off_frac_bound']} / "
        f"on {j['overhead']['on_frac_bound']}"
    )
    assert j["audit_pass"], j["audit_problems"]
    assert j["trace_sha256"] == report["warm"]["trace_sha256"], (
        "journey tracing perturbed the dispatch trace")
    for entry in report["scaling"]["entries"]:
        print(
            f"scaling {entry['tasks']}x{entry['clusters']}: "
            f"scalar {entry['scalar']['iterations']} it "
            f"({entry['scalar']['wall_s']}s) vs blocks "
            f"{entry['blocks']['iterations']} it "
            f"({entry['blocks']['wall_s']}s, {entry['blocks']['n_blocks']} "
            f"blocks) -> {entry['iters_ratio']}x"
        )
    sharding = report["sharding"]
    anchor_match = (
        sharding["anchor"]["trace_sha256"] == report["warm"]["trace_sha256"])
    print(
        f"sharding anchor (1 shard @ {sharding['rate_per_hour']:.0f}/h): "
        f"trace == warm soak: {anchor_match}"
    )
    assert anchor_match, "1-shard fleet anchor diverged from the warm soak"
    for entry in sharding["entries"]:
        speedup = sharding["speedup_vs_1shard"][str(entry["shards"])]
        print(
            f"sharding {entry['shards']} shard(s) @ "
            f"{sharding['offered_rate_per_hour']:.0f}/h: "
            f"matched {entry['matched']}/{entry['arrived']} "
            f"({entry['throughput_tasks_per_s']:.0f} tasks/s, "
            f"p95 {entry['p95_decide_ms']}ms, speedup {speedup}x, "
            f"rerouted {entry['rerouted']})"
        )


if __name__ == "__main__":
    main()
