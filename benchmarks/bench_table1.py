"""E1 — regenerate Table 1 (ablation study of MFCP).

Rows, in paper order: (1) linear loss, (2) hard penalty, (3) zeroth-order
gradients, (4) full MFCP.  The bench prints the reproduced table and
records the end-to-end wall time of the whole ablation as the benchmark
value.

Run: ``pytest benchmarks/bench_table1.py --benchmark-only``
"""

from __future__ import annotations

from repro.experiments.table1 import run_table1
from repro.metrics.report import comparison_table


def test_table1_ablation(benchmark, config):
    reports = benchmark.pedantic(
        lambda: run_table1(config), rounds=1, iterations=1
    )
    print()
    print(comparison_table(reports, title="Table 1 (reproduced)").render())

    # Validity (not tightness): every row produced all three metrics.
    for name, report in reports.items():
        mean_r, _ = report.regret
        assert abs(mean_r) < 10.0
        assert 0.0 <= report.reliability[0] <= 1.0
        assert 0.0 < report.utilization[0] <= 1.0
    # The linear-loss ablation must not beat the full method on utilization
    # by a wide margin (the paper's headline for row 1 is *worse* balance).
    full = reports["MFCP-AD"].utilization[0]
    linear = reports["MFCP (linear loss)"].utilization[0]
    assert linear <= full + 0.1
