"""E5 — MFCP vs the DFL literature (SPO+, DBB, DPO).

Extension experiment (DESIGN.md): one representative per related-work
direction, run under the Fig. 4 protocol on setting B.

Run: ``pytest benchmarks/bench_dfl_landscape.py --benchmark-only``
"""

from __future__ import annotations

import numpy as np

from repro.experiments.dfl_landscape import run_dfl_landscape
from repro.metrics.report import comparison_table


def test_dfl_landscape(benchmark, config):
    reports = benchmark.pedantic(
        lambda: run_dfl_landscape(config), rounds=1, iterations=1
    )
    print()
    print(comparison_table(reports, title="E5 — DFL landscape (reproduced)").render())

    assert {"TSM", "SPO+", "DBB", "DPO", "MFCP-AD", "MFCP-FG"} <= set(reports)
    regrets = {k: v.regret[0] for k, v in reports.items()}
    assert all(np.isfinite(r) for r in regrets.values())
    # Shape: decision-focused training (any flavour) should not lose badly
    # to the pure two-stage pipeline.
    best_dfl = min(regrets[k] for k in ("SPO+", "DPO", "MFCP-AD", "MFCP-FG"))
    assert best_dfl <= regrets["TSM"] + 0.02
