"""repro.fleet — the sharded multi-dispatcher platform (DESIGN.md §15).

One :class:`FleetController` partitions the cluster pool, routes the
admission stream deterministically across N per-shard dispatchers
(consistent hashing or load-aware; automatic re-route around full-shard
outages), and drives every shard from one shared simulated clock so the
merged event trace reproduces byte-for-byte from a seed.
:class:`FleetRetrainController` closes the learning loop fleet-wide —
pooled labels, one candidate, a per-shard canary panel, same-epoch
hot-swap with one weights digest, and an any-shard-degraded rollback.
:class:`FleetReplay` rebuilds and verifies a whole fleet run from its
per-shard JSONL logs.
"""

from repro.fleet.config import PARTITIONS, FleetConfig
from repro.fleet.controller import (
    FleetController,
    FleetStats,
    run_sharding_benchmark,
)
from repro.fleet.replay import FleetReplay
from repro.fleet.retrain import FleetRetrainController, FleetRetrainOutcome
from repro.fleet.router import (
    ROUTING_POLICIES,
    HashRing,
    HashRouter,
    LoadAwareRouter,
    full_down_intervals,
    make_router,
)

__all__ = [
    "FleetConfig",
    "PARTITIONS",
    "FleetController",
    "FleetStats",
    "run_sharding_benchmark",
    "FleetReplay",
    "FleetRetrainController",
    "FleetRetrainOutcome",
    "HashRing",
    "HashRouter",
    "LoadAwareRouter",
    "ROUTING_POLICIES",
    "make_router",
    "full_down_intervals",
]
