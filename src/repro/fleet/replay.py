"""Fleet trace replay: rebuild a whole sharded run from per-shard logs.

A ``FleetController.run(..., telemetry="jsonl")`` leaves one JSONL log
per shard, each individually replayable (it is a plain serving log) and
each carrying the *fleet* configuration in its meta header.
:class:`FleetReplay` stitches them back together:

- the per-shard ``serve/arrival`` streams are merged (sorted by
  ``(hour, task_id)``) to recover the fleet's admission stream — the
  routing layer partitioned it, so the merge is exact;
- the :class:`~repro.fleet.FleetConfig` rebuilds from ``meta["fleet"]``
  and re-drives the *entire* fleet — router included — over the merged
  stream;
- :meth:`verify` then checks three layers: every shard's counters and
  swap breadcrumbs against its own log (via per-shard
  :class:`~repro.monitor.replay.TraceReplay`), **routing determinism**
  (the replayed router must send exactly the logged arrival sub-stream
  to every shard), and fleet-level conservation.

Schedule-driven fleet swaps replay like their single-dispatcher
counterpart: ``registry_root`` names the original checkpoint registry
and every logged swap's version and weights digest is checked against
it before anything runs.  Fleet *retraining* phases (the observe pass of
:class:`~repro.fleet.FleetRetrainController`) log no swaps and replay as
plain runs; the final audited pass is schedule-driven and replays here.
"""

from __future__ import annotations

from pathlib import Path

from repro.fleet.config import FleetConfig
from repro.fleet.controller import FleetController, FleetStats
from repro.monitor.replay import REQUIRED_PARAMS, RUN_STAT_FIELDS, TraceReplay
from repro.serve.dispatcher import Outage
from repro.telemetry.jsonl import load_run, meta_of

__all__ = ["FleetReplay"]


def _load_shard(path: "str | Path") -> "tuple[dict, TraceReplay]":
    """Parse one shard log into ``(fleet_params, TraceReplay)``.

    Unlike :meth:`TraceReplay.from_log` this tolerates a shard that
    routed zero arrivals — an empty sub-stream is a legitimate slice of
    a fleet run (the merged replay re-routes it to emptiness again).
    """
    events = load_run(path)
    meta = meta_of(events)
    serve = meta.get("serve")
    fleet = meta.get("fleet")
    if not isinstance(serve, dict):
        raise ValueError(f"{path}: meta header has no 'serve' parameter dict")
    if not isinstance(fleet, dict):
        raise ValueError(
            f"{path}: meta header has no 'fleet' parameter dict — was this "
            "log written by FleetController.run(telemetry=...)?")
    if serve.get("shard") is None:
        raise ValueError(f"{path}: serve params carry no shard identity")
    missing = [k for k in REQUIRED_PARAMS if k not in serve]
    if missing:
        raise ValueError(f"{path}: serve params missing {missing}")
    arrivals: "list[tuple[float, int]]" = []
    outages: "list[Outage]" = []
    run_stats = None
    swaps = []
    journey_events: "list[dict]" = []
    for ev in events:
        if ev.get("type") != "event":
            continue
        name = ev.get("name")
        if name == "serve/arrival":
            arrivals.append((float(ev["t"]), int(ev["task_id"])))
        elif name == "serve/outage":
            outages.append(Outage(cluster_id=int(ev["cluster_id"]),
                                  start=float(ev["start"]),
                                  end=float(ev["end"])))
        elif name == "serve/run_stats":
            run_stats = {k: ev[k] for k in RUN_STAT_FIELDS if k in ev}
        elif name == "serve/hot_swap":
            swaps.append(ev)
        elif name == "journey":
            journey_events.append(ev)
    replay = TraceReplay(serve, arrivals, outages, run_stats, meta)
    replay._swaps = swaps
    replay._journey_events = journey_events
    return fleet, replay


class FleetReplay:
    """Reconstruct and re-drive one fleet run from its per-shard logs."""

    def __init__(self, fleet_params: dict,
                 shards: "dict[int, TraceReplay]") -> None:
        self.fleet_params = dict(fleet_params)
        self.config = FleetConfig.from_params(self.fleet_params)
        self.shards = dict(shards)
        if set(self.shards) != set(range(self.config.n_shards)):
            raise ValueError(
                f"fleet of {self.config.n_shards} shards needs logs for "
                f"shards {sorted(range(self.config.n_shards))}, "
                f"got {sorted(self.shards)}")

    @classmethod
    def from_logs(cls, paths) -> "FleetReplay":
        """Assemble a fleet replay from one log per shard.

        Every log must carry the *same* fleet parameter dict (they all
        describe the one run) and together the shard identities must
        cover ``0..n_shards-1`` exactly.
        """
        if not paths:
            raise ValueError("no shard logs given")
        fleet_params = None
        shards: "dict[int, TraceReplay]" = {}
        for path in paths:
            fleet, replay = _load_shard(path)
            if fleet_params is None:
                fleet_params = fleet
            elif fleet != fleet_params:
                raise ValueError(
                    f"{path}: fleet params differ from the other shard logs "
                    "— these logs are not from one fleet run")
            shard = int(replay.params["shard"])
            if shard in shards:
                raise ValueError(f"{path}: duplicate log for shard {shard}")
            shards[shard] = replay
        return cls(fleet_params, shards)

    # ------------------------------------------------------------------ #

    def merged_arrivals(self) -> "list[tuple[float, int]]":
        """The fleet admission stream, recovered exactly from the shards."""
        merged = [pair for replay in self.shards.values()
                  for pair in replay.arrivals]
        merged.sort(key=lambda p: (p[0], p[1]))
        return merged

    def merged_outages(self) -> "list[Outage]":
        """The outage schedule, de-duplicated across shards.

        Replicated partitions deliver each outage to every shard, so the
        logs repeat them; identity is ``(cluster_id, start, end)``.
        """
        seen = set()
        merged: "list[Outage]" = []
        for replay in self.shards.values():
            for o in replay.outages:
                key = (o.cluster_id, o.start, o.end)
                if key not in seen:
                    seen.add(key)
                    merged.append(o)
        merged.sort(key=lambda o: (o.start, o.cluster_id, o.end))
        return merged

    def stitched_journeys(self) -> "dict[str, list[dict]]":
        """All task journeys reassembled across the shard logs.

        Events are stamped with the emitting shard; each journey must
        live in exactly one shard's log (:meth:`verify` flags traces
        the routing layer double-delivered).
        """
        merged: "dict[str, list[dict]]" = {}
        for sid in sorted(self.shards):
            replay = self.shards[sid]
            from repro.telemetry.journey import journeys_from_events

            for trace, evs in journeys_from_events(
                    replay._journey_events, shard=str(sid)).items():
                merged.setdefault(trace, []).extend(evs)
        return merged

    def audit_journeys(self) -> "list[str]":
        """Fleet-level causality audit over the stitched journeys.

        Per-shard conservation runs inside each shard's
        :meth:`TraceReplay.audit_journeys` (invoked from
        :meth:`verify`); this pass checks the cross-shard layer: every
        journey reassembles losslessly from exactly one shard log, and
        the stitched set passes the state-machine and monotonicity
        checks with the shard stamps attached.
        """
        from repro.telemetry.journey import audit_journeys

        return audit_journeys(self.stitched_journeys(), expect=None)

    def fleet_swaps(self) -> "list[dict]":
        """The common logged swap sequence, verified shard-consistent."""
        def essence(swaps):
            return [(int(ev["window"]), str(ev["version"]), ev.get("digest"))
                    for ev in swaps]

        reference = self.shards[0].swaps
        for sid in range(1, self.config.n_shards):
            if essence(self.shards[sid].swaps) != essence(reference):
                raise ValueError(
                    f"logged swap divergence between shard 0 and shard {sid} "
                    "— these logs do not describe one fleet-wide swap")
        return reference

    def replay(self, *, registry_root: "str | None" = None,
               stack=None) -> FleetStats:
        """Re-drive the whole fleet over the merged logged stream.

        Swapped runs need ``registry_root`` (the original registry);
        every logged swap's version must exist there with the logged
        weights digest — checked *before* the replay runs.  ``stack``
        accepts a prebuilt :func:`repro.serve.build_stack` result so
        tests replaying one fleet repeatedly train the predictor once.
        """
        swaps = self.fleet_swaps()
        registry = None
        swap_schedule = None
        if swaps:
            if registry_root is None:
                raise ValueError(
                    "logs contain fleet hot-swaps; replay needs the original "
                    "checkpoint registry — pass registry_root=...")
            from repro.serve.registry import ModelRegistry

            registry = ModelRegistry(registry_root)
            swap_schedule = {}
            for ev in swaps:
                version = str(ev["version"])
                if version not in registry:
                    raise ValueError(
                        f"logged swap @window {ev.get('window')} names "
                        f"version {version!r}, not in registry {registry_root}")
                logged = ev.get("digest")
                stored = registry.info(version).digest
                if logged is not None and stored != logged:
                    raise ValueError(
                        f"registry {registry_root} version {version} digest "
                        f"{stored!r} != logged {logged!r} — checkpoint "
                        "changed since the run")
                swap_schedule[int(ev["window"])] = version
        controller = FleetController(self.config, stack=stack)
        pool = controller.pool
        events = [(t, pool[tid]) for t, tid in self.merged_arrivals()]
        return controller.run(events, outages=self.merged_outages() or None,
                              swap_schedule=swap_schedule, registry=registry)

    def verify(self, stats: FleetStats) -> "list[str]":
        """Mismatches between a fleet replay and the logged run.

        Three layers: each shard's counters/swaps against its own log,
        routing determinism (replayed per-shard routes must equal the
        logged per-shard arrival streams — same tasks, same hours, same
        shard), and fleet-level conservation.  Empty list = exact
        reproduction.
        """
        problems: "list[str]" = []
        if stats.n_shards != self.config.n_shards:
            return [f"shard count: replay {stats.n_shards} != "
                    f"logged {self.config.n_shards}"]
        for sid in range(self.config.n_shards):
            for problem in self.shards[sid].verify(stats.per_shard[sid]):
                problems.append(f"shard {sid}: {problem}")
            if stats.routes[sid] != self.shards[sid].arrivals:
                problems.append(
                    f"shard {sid}: routing diverged — replay routed "
                    f"{len(stats.routes[sid])} arrivals, log shows "
                    f"{len(self.shards[sid].arrivals)} (or different tasks)")
        if not stats.conserved:
            problems.append("fleet conservation identity violated in replay")
        if any(replay._journey_events for replay in self.shards.values()):
            problems.extend(self.audit_journeys())
        return problems
