"""Typed configuration of a sharded fleet (nested :class:`ServeConfig`).

:class:`FleetConfig` is to :class:`repro.fleet.FleetController` what
:class:`repro.serve.ServeConfig` is to a single dispatcher: one frozen,
validated, JSON round-trippable description of the whole deployment.
The nested ``serve`` section describes every *per-shard* stack knob (the
serve-seed convention included); the fleet-level fields describe how the
admission stream and the cluster pool split across shards.

Partition modes
---------------
``"replicate"``
    Every shard serves the full cluster set of ``serve.setting`` with a
    copy of the same trained predictor stack — the admission stream is
    what gets sharded.  This is the throughput-scaling mode (per-shard
    windows shrink with 1/N) and the only mode supporting fleet-wide
    retraining, since a single candidate checkpoint must mean the same
    thing on every shard.
``"family"``
    The cluster pool is a :func:`repro.clusters.make_specialist_pool`
    fleet of ``pool_m`` clusters, partitioned family-coherently by
    :func:`repro.clusters.shard_pool`; each shard trains its own
    predictors for its own clusters.  This is the data-locality mode —
    a shard only ever matches onto hardware it models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.fleet.router import ROUTING_POLICIES
from repro.serve.config import ServeConfig

__all__ = ["FleetConfig", "PARTITIONS"]

PARTITIONS = ("replicate", "family")


@dataclass(frozen=True)
class FleetConfig:
    """Complete, validated description of one fleet run."""

    n_shards: int = 4
    #: ``"hash"`` = consistent hashing on task identity (cache-affine,
    #: stable under resharding); ``"load"`` = least-loaded with hash
    #: tie-break (levels bursts).  See :mod:`repro.fleet.router`.
    routing: str = "hash"
    partition: str = "replicate"
    #: Specialist-pool size for ``partition="family"`` (ignored for
    #: ``"replicate"``); must be at least ``n_shards``.
    pool_m: int = 8
    #: Virtual nodes per shard on the consistent-hash ring.
    replicas: int = 64
    #: The per-shard serving stack.  ``shard``/``instance`` must be
    #: unset (the controller stamps them per shard via
    #: :meth:`shard_config`) and ``retrain`` must be ``None`` — fleet
    #: retraining is orchestrated centrally by
    #: :class:`repro.fleet.FleetRetrainController`, never by N
    #: independent per-shard controllers racing one registry.
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        if self.n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {self.n_shards}")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"routing must be one of {ROUTING_POLICIES}, got {self.routing!r}")
        if self.partition not in PARTITIONS:
            raise ValueError(
                f"partition must be one of {PARTITIONS}, got {self.partition!r}")
        if self.replicas <= 0:
            raise ValueError(f"replicas must be positive, got {self.replicas}")
        if self.partition == "family" and self.pool_m < self.n_shards:
            raise ValueError(
                f"family partition needs pool_m >= n_shards "
                f"(got pool_m={self.pool_m}, n_shards={self.n_shards})")
        if self.serve.shard is not None:
            raise ValueError(
                "serve.shard must be unset in a FleetConfig — the fleet "
                "controller stamps the shard identity per shard")
        if self.serve.retrain is not None:
            raise ValueError(
                "serve.retrain must be None in a FleetConfig — use "
                "repro.fleet.FleetRetrainController for fleet-wide retraining")

    # ------------------------------------------------------------------ #
    # JSON round-trip (meta["fleet"] in per-shard run logs).
    # ------------------------------------------------------------------ #

    def to_params(self) -> dict:
        """The JSON-serializable dict stored in ``meta["fleet"]``."""
        return {
            "n_shards": self.n_shards,
            "routing": self.routing,
            "partition": self.partition,
            "pool_m": self.pool_m,
            "replicas": self.replicas,
            "serve": self.serve.to_params(),
        }

    @classmethod
    def from_params(cls, params: dict) -> "FleetConfig":
        serve = params.get("serve")
        if serve is not None and not isinstance(serve, ServeConfig):
            serve = dict(serve)
            # Per-shard logs stamp the shard into meta["serve"]; the
            # fleet-level config is shard-agnostic by construction.
            serve.pop("shard", None)
            serve.pop("instance", None)
            serve = ServeConfig.from_params(serve)
        return cls(
            n_shards=int(params["n_shards"]),
            routing=str(params["routing"]),
            partition=str(params["partition"]),
            pool_m=int(params.get("pool_m", 8)),
            replicas=int(params.get("replicas", 64)),
            serve=serve if serve is not None else ServeConfig(),
        )

    def with_overrides(self, **changes: Any) -> "FleetConfig":
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Derived per-shard configs.
    # ------------------------------------------------------------------ #

    def shard_config(self, shard: int) -> ServeConfig:
        """The nested serve config with shard identity stamped in.

        The stamp is a pure label (run-log meta + recorder base labels);
        it never changes the stack, so every shard's dispatcher remains
        an exact clone of the unsharded one — the property that makes
        the 1-shard fleet trace byte-identical to a plain serve run.
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard must be in [0, {self.n_shards}), got {shard}")
        return self.serve.with_overrides(shard=str(shard))

    def router_window_hours(self) -> float:
        """Trailing window of the load-aware depth proxy.

        A few dispatch windows' worth of arrivals: long enough to see
        sustained imbalance, short enough to track bursts.
        """
        return 4.0 * self.serve.max_wait_hours
