"""Fleet-wide retraining: one candidate, N canaries, one verdict.

A sharded platform cannot run N independent per-shard
:class:`~repro.retrain.RetrainController` loops against one registry —
they would race the live pointer and the shards would drift onto
different weights.  :class:`FleetRetrainController` centralizes the
loop instead:

1. **observe** — one fleet pass over the arrival stream with a
   :class:`_ShardHarvester` on every shard; all realized labels land in
   a *single* fleet :class:`~repro.retrain.buffer.ReplayBuffer`
   (routing partitions arrivals, so the ``(task_id, arrival)`` label
   keys never collide across shards), while each harvester privately
   caches its shard's recent decision windows and served-error series;
2. **refit** — one central :class:`~repro.retrain.policy.RefitJob`
   trains a single candidate on the pooled cross-shard labels;
3. **canary panel** — the candidate is shadow-scored per shard
   (each shard's own cached windows, the shared recent holdout) and the
   verdict is fleet-global and fail-closed: every shard with decision
   evidence must pass, and at least one must have evidence;
4. **fleet swap** — on promotion the candidate registers once (one
   version, one ``weights_digest``) and every shard receives the same
   ``{swap_window: version}`` schedule, so the hot-swap lands on every
   shard at the same epoch with the same digest — the property
   :meth:`repro.fleet.FleetStats.fleet_swaps` verifies;
5. **guard** — after the swapped pass, each shard's post-swap served
   error is compared to its own pre-swap baseline.  A *single* degraded
   shard rolls the whole fleet back: the registry live pointer reverts
   and the scenario re-runs with a rollback swap scheduled
   ``guard_windows`` after the promotion, producing the final audited
   run (both swap events, every shard identical).

Everything is keyed to simulated time and the retrain config seed, so
equal seeds reproduce the identical candidate, verdicts, and swap
schedule.  Requires ``partition="replicate"`` — a single checkpoint must
mean the same thing on every shard.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.config import FleetConfig
from repro.fleet.controller import FleetController, FleetStats
from repro.retrain.buffer import ReplayBuffer
from repro.retrain.canary import CanaryGate, CanaryWindow
from repro.retrain.loop import RetrainConfig, _pairs_of_method
from repro.retrain.policy import RefitJob
from repro.serve.dispatcher import ServeCallback, WindowSnapshot
from repro.serve.registry import ModelRegistry
from repro.utils.rng import as_generator

__all__ = ["FleetRetrainController", "FleetRetrainOutcome", "_ShardHarvester"]


class _ShardHarvester(ServeCallback):
    """Per-shard eyes of the fleet loop: labels, windows, served error.

    Harvests every window into the *shared* fleet buffer, and privately
    keeps what must stay per-shard: the recent
    :class:`~repro.retrain.canary.CanaryWindow` cache (each shard
    canaries on its own traffic) and the per-window served log-time MSE
    series (each shard guards against its own baseline).  The MSE
    formula is exactly :meth:`RetrainController._track_served_error`'s.
    """

    def __init__(self, buffer: ReplayBuffer, pair_index: "dict[int, int]",
                 *, canary_windows: int) -> None:
        self.buffer = buffer
        self.pair_index = pair_index
        self.windows: "deque[CanaryWindow]" = deque(maxlen=canary_windows)
        self.window_mse: "list[tuple[int, float]]" = []
        self.max_label_end = 0.0

    def on_requeue(self, task_id: int, arrival: float, t: float) -> None:
        self.buffer.discard(task_id, arrival)

    def on_window(self, snapshot: WindowSnapshot) -> None:
        self.buffer.harvest(snapshot)
        if snapshot.end.size:
            self.max_label_end = max(self.max_label_end,
                                     float(np.max(snapshot.end)))
        if snapshot.features is not None:
            self.windows.append(CanaryWindow(
                window=snapshot.window,
                pair_rows=tuple(self.pair_index[cid]
                                for cid in snapshot.cluster_ids),
                T=snapshot.T, A=snapshot.A, gamma=snapshot.gamma,
                Z=snapshot.features,
            ))
        if snapshot.T_hat is None:
            return
        rows = np.argmax(snapshot.X, axis=0)
        ok = snapshot.success & (snapshot.realized_hours > 0)
        if not ok.any():
            return
        t_hat = snapshot.T_hat[rows[ok], np.flatnonzero(ok)]
        err = (np.log(np.maximum(t_hat, 1e-12))
               - np.log(snapshot.realized_hours[ok]))
        self.window_mse.append((snapshot.window, float(np.mean(err ** 2))))


def _guard_verdict(window_mse: "list[tuple[int, float]]", swap_window: int,
                   config: RetrainConfig) -> dict:
    """One shard's post-swap guard: post error vs its pre-swap baseline.

    Baseline is the mean served MSE over the last ``guard_windows``
    windows *before* the swap epoch; post is the first ``guard_windows``
    windows served by the new weights.  A shard with no post-swap
    evidence abstains (cannot be degraded).
    """
    pre = [m for w, m in window_mse if w < swap_window][-config.guard_windows:]
    post = [m for w, m in window_mse if w >= swap_window][:config.guard_windows]
    baseline = float(np.mean(pre)) if pre else float("nan")
    post_mse = float(np.mean(post)) if post else float("nan")
    degraded = bool(
        np.isfinite(baseline) and baseline > 0 and np.isfinite(post_mse)
        and post_mse > config.guard_ratio * baseline)
    return {"baseline_mse": baseline, "post_mse": post_mse,
            "n_pre": len(pre), "n_post": len(post), "degraded": degraded}


@dataclass
class FleetRetrainOutcome:
    """Audit record of one fleet retraining cycle."""

    #: ``"promoted"`` | ``"rejected"`` | ``"insufficient-labels"``.
    verdict: str
    #: The fleet pass that produced the training labels.
    observe: FleetStats
    #: Per-shard canary verdicts (``shard``, ``passed``, ``abstained``,
    #: gate metrics); empty when the refit never armed.
    canary: "list[dict]" = field(default_factory=list)
    refit: "dict | None" = None
    version: "str | None" = None
    digest: "str | None" = None
    swap_window: "int | None" = None
    #: Per-shard post-swap guard verdicts (from the swapped pass).
    guards: "list[dict]" = field(default_factory=list)
    rolled_back: bool = False
    rollback_version: "str | None" = None
    #: The final audited fleet pass: the swapped run when the guard held
    #: everywhere, the swap+rollback run when any shard degraded, or
    #: ``None`` when nothing was promoted.
    final: "FleetStats | None" = None
    events: "list[dict]" = field(default_factory=list)


class FleetRetrainController:
    """Centralized observe → refit → canary panel → fleet swap → guard."""

    def __init__(
        self,
        config: FleetConfig,
        retrain: "RetrainConfig | None" = None,
        *,
        registry_root: str,
    ) -> None:
        if config.partition != "replicate":
            raise ValueError(
                "fleet retraining requires partition='replicate' — one "
                "checkpoint must mean the same thing on every shard")
        self.config = config
        self.retrain = retrain or RetrainConfig()
        self.fleet = FleetController(config)
        self.registry = ModelRegistry(registry_root)
        self._cluster_ids = [c.cluster_id
                             for c in self.fleet.shard_clusters[0]]
        self._pair_index = {cid: i for i, cid in enumerate(self._cluster_ids)}
        self._base_method = self.fleet.shard_methods[0]
        _pairs_of_method(self._base_method)  # fail fast on oracle methods
        if not self.registry.versions():
            info = self.registry.save(self._base_method, config=self.retrain,
                                      tag="bootstrap")
            self.registry.set_live(info.version)
        elif self.registry.live() is None:
            self.registry.set_live(self.registry.latest())

    # ------------------------------------------------------------------ #
    # Phases.
    # ------------------------------------------------------------------ #

    def _harvesters(self, buffer: ReplayBuffer) -> "list[_ShardHarvester]":
        return [
            _ShardHarvester(buffer, self._pair_index,
                            canary_windows=self.retrain.canary_windows)
            for _ in range(self.config.n_shards)
        ]

    def observe(self, events, *, outages=None):
        """Phase 1: one harvesting fleet pass.

        Returns ``(stats, harvesters, buffer)`` — the labels pooled
        across shards plus each shard's private canary/guard evidence.
        """
        buffer = ReplayBuffer(capacity=self.retrain.capacity)
        harvesters = self._harvesters(buffer)
        stats = self.fleet.run(events, outages=outages,
                               callbacks_factory=lambda sid: [harvesters[sid]])
        return stats, harvesters, buffer

    def refit(self, buffer: ReplayBuffer, now: float):
        """Phase 2: train one candidate on the pooled fleet labels.

        Blocking (the central trainer is off the serving path, unlike
        the cooperative per-shard loop).  Returns ``(job, holdout)`` or
        ``(None, [])`` when the evidence floor is not met.
        """
        cfg = self.retrain
        rng = as_generator(cfg.seed)
        ready = buffer.ready(now)
        if len(ready) < cfg.min_labels:
            return None, []
        sampled = buffer.sample(now, cfg.sample_size, rng,
                                half_life_hours=cfg.half_life_hours)
        train, holdout = buffer.split_holdout(sampled, cfg.holdout_fraction)
        try:
            job = RefitJob.build(
                _pairs_of_method(self._base_method), self._cluster_ids,
                ReplayBuffer.datasets(train), mode=cfg.mode,
                config=cfg.train_config(), rng=rng,
                min_cluster_labels=cfg.min_cluster_labels,
            )
        except ValueError:
            return None, []
        while not job.done:
            job.run_steps(cfg.steps_per_window)
        return job, holdout

    def canary_panel(self, job: RefitJob, holdout,
                     harvesters: "list[_ShardHarvester]"):
        """Phase 3: per-shard shadow scoring, fleet-global verdict.

        Fail-closed: the fleet promotes only if every shard with cached
        decision windows passes its gate *and* at least one shard had
        evidence.  Shards that routed no traffic abstain.
        """
        cfg = self.retrain
        gate = CanaryGate(
            min_holdout=cfg.canary_min_holdout,
            time_ratio_max=cfg.time_ratio_max,
            brier_ratio_max=cfg.brier_ratio_max,
            regret_ratio_max=cfg.regret_ratio_max,
            solver_config=self.config.serve.solver_config(),
        )
        live_pairs = _pairs_of_method(self._base_method)
        verdicts: "list[dict]" = []
        evaluated = False
        passed_all = True
        for sid, harvester in enumerate(harvesters):
            if not harvester.windows:
                verdicts.append({"shard": sid, "abstained": True,
                                 "passed": None})
                continue
            decision = gate.evaluate(job.pairs, live_pairs, self._pair_index,
                                     holdout, list(harvester.windows))
            evaluated = True
            passed_all = passed_all and decision.passed
            verdicts.append({"shard": sid, "abstained": False,
                             "passed": decision.passed,
                             "reasons": list(decision.reasons),
                             **decision.metrics()})
        return (evaluated and passed_all), verdicts

    def swap_and_guard(self, events, version: str, swap_window: int,
                       *, outages=None):
        """Phases 4-5: fleet-wide hot-swap, per-shard guard, rollback.

        Public so tests and operators can drive a swap of *any*
        registered version (e.g. a deliberately corrupted checkpoint
        that bypassed the canary) through the guard machinery.  Runs the
        stream with ``{swap_window: version}`` on every shard; if any
        shard's guard degrades, the registry rolls back and the scenario
        re-runs with the rollback swap scheduled ``guard_windows``
        later — the returned stats then carry *both* fleet-wide swap
        events.  Returns ``(final_stats, guards, rolled_back,
        rollback_version)``.
        """
        cfg = self.retrain
        buffer = ReplayBuffer(capacity=cfg.capacity)  # discarded; guard only
        harvesters = self._harvesters(buffer)
        stats = self.fleet.run(
            events, outages=outages, registry=self.registry,
            swap_schedule={swap_window: version},
            callbacks_factory=lambda sid: [harvesters[sid]])
        stats.fleet_swaps()  # raise early on any cross-shard divergence
        guards = [{"shard": sid,
                   **_guard_verdict(h.window_mse, swap_window, cfg)}
                  for sid, h in enumerate(harvesters)]
        if not any(g["degraded"] for g in guards):
            return stats, guards, False, None
        if self.registry.live() == version:
            info = self.registry.rollback()
        else:
            # The swapped version was never promoted (operator-driven
            # swap of e.g. a quarantined checkpoint); roll back to its
            # recorded parent without touching the live pointer.
            parent = self.registry.info(version).parent
            if parent is None:
                raise ValueError(
                    f"version {version} degraded but has no parent to "
                    "roll the fleet back to")
            info = self.registry.info(parent)
        rollback_window = swap_window + cfg.guard_windows
        final = self.fleet.run(
            events, outages=outages, registry=self.registry,
            swap_schedule={swap_window: version,
                           rollback_window: info.version})
        final.fleet_swaps()
        return final, guards, True, info.version

    # ------------------------------------------------------------------ #
    # The full cycle.
    # ------------------------------------------------------------------ #

    def run(self, events, *, outages=None) -> FleetRetrainOutcome:
        """One complete fleet retraining cycle over an arrival stream."""
        cfg = self.retrain
        observe_stats, harvesters, buffer = self.observe(events,
                                                         outages=outages)
        outcome = FleetRetrainOutcome(verdict="insufficient-labels",
                                      observe=observe_stats)
        now = max((h.max_label_end for h in harvesters), default=0.0)
        job, holdout = self.refit(buffer, now)
        if job is None:
            outcome.events.append({"kind": "skipped",
                                   "reason": "insufficient labels",
                                   "labels": len(buffer.ready(now))})
            return outcome
        outcome.refit = {"steps": job.steps_done, "labels": job.n_labels,
                         "mode": job.mode,
                         "trained_clusters": list(job.trained_clusters),
                         "skipped_clusters": list(job.skipped_clusters)}
        promoted, verdicts = self.canary_panel(job, holdout, harvesters)
        outcome.canary = verdicts
        live_version = self.registry.live()
        if not promoted:
            info = self.registry.save(job.pairs, config=cfg,
                                      tag="canary-rejected",
                                      parent=live_version)
            outcome.verdict = "rejected"
            outcome.version = info.version
            outcome.events.append({"kind": "rejected",
                                   "version": info.version})
            return outcome
        info = self.registry.save(job.pairs, config=cfg,
                                  tag=f"refit-{job.mode}",
                                  parent=live_version)
        self.registry.set_live(info.version)
        # The swap epoch: mid-run on the least-loaded shard's horizon so
        # every shard has both pre-swap baseline and post-swap evidence.
        min_windows = min((s.windows for s in observe_stats.per_shard
                           if s.windows), default=2)
        swap_window = max(1, min_windows // 2)
        outcome.verdict = "promoted"
        outcome.version = info.version
        outcome.digest = info.digest
        outcome.swap_window = swap_window
        outcome.events.append({"kind": "promoted", "version": info.version,
                               "parent": live_version,
                               "digest": info.digest,
                               "swap_window": swap_window})
        final, guards, rolled_back, rollback_version = self.swap_and_guard(
            events, info.version, swap_window, outages=outages)
        outcome.final = final
        outcome.guards = guards
        outcome.rolled_back = rolled_back
        outcome.rollback_version = rollback_version
        if rolled_back:
            outcome.events.append({"kind": "rollback",
                                   "from_version": info.version,
                                   "to_version": rollback_version})
        else:
            outcome.events.append({"kind": "guard_passed",
                                   "version": info.version})
        return outcome
