"""The fleet controller: N per-shard dispatchers behind one router.

:class:`FleetController` turns a :class:`~repro.fleet.config.FleetConfig`
into a running sharded platform:

1. **partition** — the cluster pool splits per the config
   (``"replicate"``: every shard serves the full setting with a copy of
   one trained stack; ``"family"``: a specialist pool splits
   family-coherently via :func:`repro.clusters.shard_pool`, one trained
   stack per shard);
2. **route** — every arrival is assigned a shard by a deterministic
   router (:mod:`repro.fleet.router`), with re-route around shards whose
   clusters are *all* down;
3. **dispatch** — each shard's :class:`repro.serve.Dispatcher` consumes
   its sub-stream against the one shared simulated clock (all shards see
   the same arrival hours; no shard-local time exists), seeded by the
   same serve-seed convention (``seed + 4``) as the unsharded platform.

Shards are simulated sequentially in-process but are *independent* by
construction — no state crosses a shard boundary during a run — so the
per-shard traces model N parallel dispatcher processes.  That is also
why :class:`FleetStats` reports aggregate throughput against the
*slowest shard's* decide time (the fleet's critical path), not the sum.

Determinism: routing is a pure function of (task id, arrival hour,
up-shard set), every shard runs ``rng = seed + 4``, and
:meth:`FleetStats.trace_bytes` concatenates the per-shard canonical
traces in shard order — one seed reproduces the merged event trace
byte-for-byte, and a 1-shard fleet reproduces the unsharded
dispatcher's trace exactly.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.fleet.config import FleetConfig
from repro.fleet.router import full_down_intervals, make_router
from repro.serve.config import build_stack
from repro.serve.dispatcher import Dispatcher, Outage, ServeStats
from repro.telemetry import recording
from repro.workloads.taskpool import Task

__all__ = ["FleetStats", "FleetController", "run_sharding_benchmark"]


@dataclass
class FleetStats:
    """Merged outcome of one fleet run (per-shard stats + routing)."""

    per_shard: "list[ServeStats]"
    #: Per-shard routed arrivals ``(hour, task_id)`` in admission order —
    #: the routing decision record replay verifies against logged
    #: ``serve/arrival`` streams.
    routes: "list[list[tuple[float, int]]]"
    #: Arrivals that missed their consistent-hash home (outage failover
    #: or load-aware spill).
    rerouted: int = 0
    #: Wall-clock seconds spent deciding, per shard.
    decide_total_s: "list[float]" = field(default_factory=list)

    # -------------------------- fleet totals -------------------------- #

    def _sum(self, name: str) -> int:
        return sum(getattr(s, name) for s in self.per_shard)

    @property
    def n_shards(self) -> int:
        return len(self.per_shard)

    @property
    def arrived(self) -> int:
        return self._sum("arrived")

    @property
    def matched(self) -> int:
        return self._sum("matched")

    @property
    def completed(self) -> int:
        return self._sum("completed")

    @property
    def failed(self) -> int:
        return self._sum("failed")

    @property
    def shed(self) -> int:
        return self._sum("shed")

    @property
    def requeued(self) -> int:
        return self._sum("requeued")

    @property
    def unserved(self) -> int:
        return self._sum("unserved")

    @property
    def windows(self) -> int:
        return self._sum("windows")

    @property
    def swaps(self) -> int:
        return self._sum("swaps")

    @property
    def conserved(self) -> bool:
        """Every shard conserves, and so (by summation) does the fleet."""
        return all(s.conserved for s in self.per_shard)

    @property
    def max_shard_decide_s(self) -> float:
        """The fleet's critical path: the slowest shard's decide time."""
        return max(self.decide_total_s, default=0.0)

    @property
    def sum_decide_s(self) -> float:
        return float(sum(self.decide_total_s))

    def throughput_tasks_per_s(self) -> float:
        """Aggregate matches per wall second with shards in parallel.

        Shards are simulated sequentially but share no state, so a real
        deployment runs them as N parallel processes; the honest
        aggregate rate divides total matches by the *slowest* shard's
        decide time (``sum_decide_s`` is also reported for the
        single-machine reading).
        """
        denom = self.max_shard_decide_s
        return self.matched / denom if denom else 0.0

    # ---------------------- determinism artifacts --------------------- #

    def trace_bytes(self) -> bytes:
        """Canonical fleet trace: per-shard traces joined in shard order.

        Each shard's block is its dispatcher's own canonical trace
        (simulated-time only); empty shards contribute nothing.  At
        ``n_shards == 1`` this is byte-identical to the unsharded
        :meth:`repro.serve.ServeStats.trace_bytes`.
        """
        blocks = [s.trace_bytes() for s in self.per_shard]
        return b"\n".join(b for b in blocks if b)

    def trace_sha256(self) -> str:
        return hashlib.sha256(self.trace_bytes()).hexdigest()

    def fleet_swaps(self) -> "list[dict]":
        """The fleet-wide hot-swap sequence, verified consistent.

        Every shard must have applied the *same* swaps — same window
        (epoch), same version, same weights digest, same reason — or a
        ``ValueError`` pinpoints the divergence.  Returns the common
        sequence (one dict per fleet-wide swap).
        """
        if not self.per_shard:
            return []
        reference = self.per_shard[0].swap_events
        for sid, stats in enumerate(self.per_shard[1:], start=1):
            if stats.swap_events != reference:
                raise ValueError(
                    f"fleet swap divergence: shard 0 applied {reference}, "
                    f"shard {sid} applied {stats.swap_events}")
        return [dict(ev) for ev in reference]

    def summary(self) -> str:
        lat = np.concatenate(
            [np.asarray(s.decide_seconds) for s in self.per_shard
             if s.decide_seconds] or [np.zeros(1)])
        return (
            f"shards={self.n_shards} windows={self.windows} "
            f"arrived={self.arrived} done={self.completed} "
            f"failed={self.failed} shed={self.shed} "
            f"requeued={self.requeued} unserved={self.unserved} "
            f"rerouted={self.rerouted} "
            f"p95_decide={float(np.percentile(lat, 95)) * 1e3:.1f}ms "
            f"agg_throughput={self.throughput_tasks_per_s():.0f} tasks/s"
        )


class FleetController:
    """Partition, route, and drive N per-shard dispatchers (module doc)."""

    def __init__(self, config: FleetConfig, *, stack=None) -> None:
        self.config = config
        serve = config.serve
        n = config.n_shards
        if config.partition == "replicate":
            self.stack = stack if stack is not None else build_stack(serve)
            pool, clusters, method, spec, _ = self.stack
            self.pool = pool
            self.spec = spec
            # Always derive the dispatcher config from ``serve``, not the
            # (possibly differently-configured) prebuilt stack: the shard
            # logs record ``serve``'s params as replay truth, so the run
            # must follow them (journey_sample in particular).
            self.dcfg = serve.dispatcher_config()
            self.shard_clusters = [list(clusters) for _ in range(n)]
            self.shard_methods = [method] * n  # copied per run when mutated
        else:  # family
            from repro.clusters import make_specialist_pool, shard_pool
            from repro.methods import TSM, FitContext, MatchSpec
            from repro.predictors.training import TrainConfig
            from repro.workloads.taskpool import TaskPool

            if stack is not None:
                raise ValueError("prebuilt stacks only apply to partition="
                                 "'replicate' (family shards train their own)")
            self.pool = TaskPool(serve.pool_size, rng=serve.seed)
            clusters = make_specialist_pool(config.pool_m)
            self.shard_clusters = shard_pool(clusters, n)
            train_tasks, _ = self.pool.split(0.6, rng=serve.seed + 1)
            self.spec = MatchSpec(solver=serve.solver_config())
            self.dcfg = serve.dispatcher_config()
            # Each shard trains its own predictors for its own clusters,
            # all on the same seed (the stacks differ by cluster set, not
            # by RNG stream) — per the serve-seed convention.
            self.shard_methods = []
            for shard in self.shard_clusters:
                ctx = FitContext.build(shard, train_tasks, self.spec,
                                       rng=serve.seed + 2)
                self.shard_methods.append(
                    TSM(train_config=TrainConfig(epochs=serve.train_epochs))
                    .fit(ctx))
            self.stack = None
        #: Per-shard stage profilers of the last :meth:`run` (populated
        #: only when ``serve.profile`` is set).
        self.last_profilers: "list" = []
        #: Per-shard ``routed`` journey preambles of the last
        #: :meth:`route` call (``serve.journey_sample > 0`` feeds them to
        #: each shard's dispatcher so fleet journeys open with the
        #: routing decision).
        self.last_route_journeys: "list[list[dict]]" = []

    # ------------------------------------------------------------------ #
    # Routing.
    # ------------------------------------------------------------------ #

    def shard_outages(self, outages: "Sequence[Outage] | None",
                      ) -> "list[list[Outage]]":
        """Each outage delivered to every shard serving that cluster."""
        per_shard: "list[list[Outage]]" = [[] for _ in range(self.config.n_shards)]
        for o in outages or ():
            for sid, clusters in enumerate(self.shard_clusters):
                if any(c.cluster_id == o.cluster_id for c in clusters):
                    per_shard[sid].append(o)
        return per_shard

    def route(self, events: "Sequence[tuple[float, Task]]",
              outages: "Sequence[Outage] | None" = None):
        """Split an arrival stream across shards.

        Returns ``(per_shard_events, per_shard_routes, rerouted)`` where
        ``per_shard_events`` are ``(hour, task)`` sub-streams in fleet
        admission order and ``per_shard_routes`` the matching
        ``(hour, task_id)`` record.  Deterministic: arrivals are
        processed in ``(hour, task_id)`` order and the router sees only
        simulated time, so the same stream always splits the same way.
        """
        cfg = self.config
        router = make_router(cfg.routing, cfg.n_shards, replicas=cfg.replicas,
                             window_hours=cfg.router_window_hours())
        shard_down = [
            full_down_intervals(per, len(self.shard_clusters[sid]))
            for sid, per in enumerate(self.shard_outages(outages))
        ]

        def shard_up(sid: int, t: float) -> bool:
            return not any(start <= t < end for start, end in shard_down[sid])

        per_shard_events: "list[list[tuple[float, Task]]]" = [
            [] for _ in range(cfg.n_shards)]
        per_shard_routes: "list[list[tuple[float, int]]]" = [
            [] for _ in range(cfg.n_shards)]
        route_journeys: "list[list[dict]]" = [[] for _ in range(cfg.n_shards)]
        ordered = sorted(events, key=lambda e: (e[0], e[1].task_id))
        for t, task in ordered:
            up = {s for s in range(cfg.n_shards) if shard_up(s, t)}
            sid = router.route(task.task_id, t, up)
            per_shard_events[sid].append((t, task))
            per_shard_routes[sid].append((t, task.task_id))
            # Journey preamble for the chosen shard's dispatcher: the
            # ring home and why this shard got the task (home pick, ring
            # failover past a down shard, or load-aware override).
            home = router.ring.owner(str(task.task_id))
            if sid == home:
                reason = "home"
            elif home not in up:
                reason = "failover"
            else:
                reason = "load"
            route_journeys[sid].append({
                "task_id": int(task.task_id), "t": float(t),
                "home": int(home), "shard": sid, "reason": reason,
                "policy": cfg.routing,
            })
        self.last_route_journeys = route_journeys
        return per_shard_events, per_shard_routes, router.rerouted

    # ------------------------------------------------------------------ #
    # Running.
    # ------------------------------------------------------------------ #

    def run(
        self,
        events: "Sequence[tuple[float, Task]]",
        *,
        outages: "Sequence[Outage] | None" = None,
        swap_schedule: "dict[int, str] | None" = None,
        registry=None,
        callbacks_factory: "Callable[[int], list] | None" = None,
        telemetry: str = "off",
        out_dir: "str | os.PathLike[str] | None" = None,
        run_prefix: str = "fleet-run",
    ) -> FleetStats:
        """Route the stream and drive every shard's dispatcher.

        ``swap_schedule`` (window → registry version, with ``registry``)
        applies the *same* schedule on every shard — the fleet-wide
        hot-swap primitive; methods are deep-copied per shard so the
        swap's ``load_into`` never leaks across shards or into the
        shared base stack.  ``callbacks_factory(shard_id)`` builds each
        shard's serve callbacks (fleet retraining attaches its
        harvesters here).  ``telemetry`` != ``"off"`` wraps each shard
        in its own recorder — run ``{run_prefix}-s{shard}``, base labels
        from :meth:`ServeConfig.identity_labels`, meta carrying both the
        per-shard serve params and the fleet params — so per-shard JSONL
        logs are individually replayable and merge losslessly.
        """
        cfg = self.config
        serve = cfg.serve
        per_shard_events, per_shard_routes, rerouted = self.route(
            events, outages)
        per_shard_outages = self.shard_outages(outages)

        per_shard: "list[ServeStats]" = []
        decide_totals: "list[float]" = []
        self.last_profilers = []
        for sid in range(cfg.n_shards):
            shard_cfg = cfg.shard_config(sid)
            method = self.shard_methods[sid]
            if swap_schedule:
                # load_into mutates the method in place; every shard gets
                # a private copy so pre-swap windows keep base weights
                # and the shared stack stays reusable.
                method = copy.deepcopy(method)
            profiler = None
            if serve.profile:
                from repro.telemetry.profiler import StageProfiler

                profiler = StageProfiler()
            self.last_profilers.append(profiler)
            dispatcher = Dispatcher(
                self.shard_clusters[sid], method, self.spec, self.dcfg,
                registry=registry,
                swap_schedule=dict(swap_schedule) if swap_schedule else None,
                callbacks=callbacks_factory(sid) if callbacks_factory else None,
                profiler=profiler,
            )
            if dispatcher.journeys is not None:
                # Open every journey with its routing decision, in fleet
                # admission order, so the shard's log carries the full
                # causal path (routed -> admitted -> ... -> terminal).
                for m in self.last_route_journeys[sid]:
                    dispatcher.journeys.record(
                        m["task_id"], m["t"], "routed", m["t"],
                        home=m["home"], shard=m["shard"],
                        reason=m["reason"], policy=m["policy"])
            shard_events = per_shard_events[sid]
            shard_outs = per_shard_outages[sid] or None
            if telemetry != "off":
                with recording(
                    mode=telemetry,
                    run=f"{run_prefix}-s{sid}",
                    out_dir=out_dir,
                    meta={"serve": shard_cfg.to_params(),
                          "fleet": cfg.to_params()},
                    labels=shard_cfg.identity_labels() or None,
                ):
                    stats = dispatcher.run(shard_events, rng=serve.seed + 4,
                                           outages=shard_outs)
            else:
                stats = dispatcher.run(shard_events, rng=serve.seed + 4,
                                       outages=shard_outs)
            per_shard.append(stats)
            decide_totals.append(float(sum(stats.decide_seconds)))
        return FleetStats(per_shard=per_shard, routes=per_shard_routes,
                          rerouted=rerouted, decide_total_s=decide_totals)

    # ------------------------------------------------------------------ #
    # Observability.
    # ------------------------------------------------------------------ #

    def write_flamegraph(self, path: "str | os.PathLike[str]") -> Path:
        """Merged collapsed-stack profile, one ``shardN`` root per shard.

        Requires the last run to have been profiled
        (``serve.profile=True``); shard frames nest under ``shardN`` so
        one flamegraph shows the whole fleet's latency budget.
        """
        lines: "list[str]" = []
        for sid, prof in enumerate(self.last_profilers):
            if prof is None:
                continue
            for line in prof.collapsed_stacks(root=f"shard{sid};window"):
                lines.append(line)
        if not lines:
            raise ValueError("no profiled run to export — set "
                             "serve.profile=True and call run() first")
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text("\n".join(lines) + "\n")
        return out


# --------------------------------------------------------------------- #
# The sharding benchmark (repro fleet bench / bench_serve --shards).
# --------------------------------------------------------------------- #


def run_sharding_benchmark(
    *,
    shard_counts: "tuple[int, ...]" = (1, 2, 4, 8),
    setting: str = "A",
    pattern: str = "poisson",
    rate_per_hour: float = 60.0,
    horizon_hours: float = 12.0,
    pool_size: int = 64,
    max_batch: int = 16,
    max_wait_hours: float = 0.25,
    queue_capacity: int = 128,
    train_epochs: int = 120,
    solver_tol: float = 1e-4,
    solver_max_iters: int = 400,
    seed: int = 0,
    routing: str = "hash",
    partition: str = "replicate",
    saturation: float = 4.0,
    smoke: bool = False,
    out_path: "str | os.PathLike[str] | None" = None,
) -> dict:
    """Capacity-vs-shard-count sweep at saturating offered load.

    Two parts.  The **anchor** replays the exact warm serving soak
    (same stack, same arrival draw, same dispatcher knobs) through a
    1-shard fleet: its trace SHA must equal ``BENCH_serve.json``'s warm
    mode, pinning the fleet layer as a strict extension of the single
    dispatcher.  The **sweep** then measures what sharding buys:
    sustained matching capacity.  At the soak's offered load a single
    dispatcher is mostly idle — its timeout-fired windows go out
    quarter-full every ``max_wait_hours`` — and splitting an
    unsaturated queue N ways only trades batch efficiency for
    parallelism, so the sweep offers ``saturation``x the soak rate
    (default 4x).  That drives the 1-shard baseline *batch-bound*: the
    dispatcher fires a window the moment ``max_batch`` tasks queue, so
    it decides ~``arrivals / max_batch`` back-to-back full windows, and
    each added shard divides that window count (per-shard batches stay
    full until the per-shard rate falls back under the batch-fill
    threshold) instead of diluting batch size.  Aggregate throughput
    divides total matches by the slowest shard's decide time (shards of
    a deployed fleet run in parallel); ``sum_decide_s`` is also
    reported for the pessimistic one-machine reading.  ``smoke=True``
    shrinks the workload with the same knobs as the serving soak's
    smoke mode.
    """
    from repro.serve.config import ServeConfig
    from repro.serve.loadgen import make_load
    from repro.utils.rng import as_generator

    if smoke:
        rate_per_hour = min(rate_per_hour, 30.0)
        horizon_hours = min(horizon_hours, 2.0)
        pool_size = min(pool_size, 40)
        train_epochs = min(train_epochs, 40)

    base = FleetConfig(
        n_shards=1, routing=routing, partition=partition,
        serve=ServeConfig(
            setting=setting, pool_size=pool_size, seed=seed,
            train_epochs=train_epochs, solver_tol=solver_tol,
            solver_max_iters=solver_max_iters, max_batch=max_batch,
            max_wait_hours=max_wait_hours, queue_capacity=queue_capacity,
        ),
    )
    stack = build_stack(base.serve) if partition == "replicate" else None
    pool = stack[0] if stack is not None else None
    if pool is None:
        from repro.workloads.taskpool import TaskPool

        pool = TaskPool(pool_size, rng=seed)

    def measure(n: int, events) -> dict:
        config = base.with_overrides(n_shards=n)
        controller = FleetController(config, stack=stack)
        wall0 = time.perf_counter()
        stats = controller.run(events)
        run_wall_s = time.perf_counter() - wall0
        lat = np.concatenate(
            [np.asarray(s.decide_seconds) for s in stats.per_shard
             if s.decide_seconds] or [np.zeros(1)])
        return {
            "shards": n,
            "run_wall_s": round(run_wall_s, 4),
            "windows": stats.windows,
            "arrived": stats.arrived,
            "matched": stats.matched,
            "completed": stats.completed,
            "failed": stats.failed,
            "shed": stats.shed,
            "requeued": stats.requeued,
            "unserved": stats.unserved,
            "rerouted": stats.rerouted,
            "conserved": stats.conserved,
            # Per-shard matched identity: every dispatch is accounted as
            # a completion, failure, or requeue — the sharded mirror of
            # tests/test_serve.py's conservation checks.
            "matched_identity": all(
                s.matched == s.completed + s.failed + s.requeued
                for s in stats.per_shard),
            "per_shard_matched": [s.matched for s in stats.per_shard],
            "per_shard_windows": [s.windows for s in stats.per_shard],
            "max_shard_decide_s": round(stats.max_shard_decide_s, 4),
            "sum_decide_s": round(stats.sum_decide_s, 4),
            "throughput_tasks_per_s": round(stats.throughput_tasks_per_s(), 1),
            "p95_decide_ms": round(float(np.percentile(lat, 95)) * 1e3, 3),
            "trace_sha256": stats.trace_sha256(),
        }

    anchor_events = make_load(pattern, pool, rate_per_hour).draw(
        horizon_hours, as_generator(seed + 3))
    anchor = measure(1, anchor_events)
    anchor["rate_per_hour"] = rate_per_hour

    offered_rate = rate_per_hour * saturation
    events = make_load(pattern, pool, offered_rate).draw(
        horizon_hours, as_generator(seed + 3))
    entries = [measure(n, events) for n in shard_counts]

    by_shards = {e["shards"]: e for e in entries}
    base_tp = by_shards.get(1, entries[0])["throughput_tasks_per_s"]
    report = {
        "benchmark": ("sharded serving: aggregate matching capacity vs "
                      "shard count at saturating offered load "
                      "(deterministic routing), plus a 1-shard trace "
                      "anchor on the warm soak workload"),
        "setting": setting,
        "pattern": pattern,
        "rate_per_hour": rate_per_hour,
        "saturation": saturation,
        "offered_rate_per_hour": offered_rate,
        "horizon_hours": horizon_hours,
        "pool_size": pool_size,
        "max_batch": max_batch,
        "max_wait_hours": max_wait_hours,
        "train_epochs": train_epochs,
        "seed": seed,
        "routing": routing,
        "partition": partition,
        "arrivals": len(events),
        "anchor": anchor,
        "entries": entries,
        "speedup_vs_1shard": {
            str(e["shards"]): round(e["throughput_tasks_per_s"] / base_tp, 2)
            if base_tp else None
            for e in entries
        },
    }
    if out_path is not None:
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report
