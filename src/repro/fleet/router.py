"""Deterministic task routing for the sharded multi-dispatcher platform.

The fleet layer splits the admission stream across N per-shard
dispatchers; this module decides *which* shard each arriving task hits.
Two policies, both pure functions of (task identity, arrival hour,
up-shard set) so a routed fleet run is replayable from its seed:

- :class:`HashRouter` — consistent hashing on the task id over a
  virtual-node ring (:class:`HashRing`).  Stable under shard-count
  changes (adding a shard moves ~1/(n+1) of the keys) and gives each
  task a full *preference order* of shards, so failover under a
  full-shard outage is deterministic: the task goes to the first shard
  of its preference list that is up;
- :class:`LoadAwareRouter` — the same ring breaks ties, but the primary
  signal is an admission-side queue-depth proxy: the count of tasks
  routed to each shard within the trailing ``window_hours``.  The least
  loaded up shard wins (preference rank breaks ties), which levels
  bursty streams across shards at the cost of cache affinity.

Neither router sees wall clock or randomness; both are *stateful over a
single run* (the load-aware depth window), so callers construct a fresh
router per run — :func:`make_router` is the factory the fleet controller
and replay layer share.

:func:`full_down_intervals` reduces a shard's cluster outage schedule to
the intervals where *every* cluster of the shard is down — the only
condition under which the fleet re-routes around a shard, since a
partially degraded shard still serves (the dispatcher's own
dropout/requeue machinery handles it internally).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from collections import deque

from repro.serve.dispatcher import Outage

__all__ = [
    "HashRing",
    "HashRouter",
    "LoadAwareRouter",
    "make_router",
    "full_down_intervals",
]

ROUTING_POLICIES = ("hash", "load")


def _hash64(text: str) -> int:
    """Stable 64-bit hash (sha256 prefix) — never Python's salted hash()."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over ``n_shards`` with virtual nodes.

    Each shard owns ``replicas`` points on a 64-bit ring; a key routes to
    the owner of the first point at or after its own hash (wrapping).
    With enough replicas per shard the key space splits near-uniformly,
    and growing the fleet from n to n+1 shards remaps only the keys that
    fall into the new shard's arcs — ~1/(n+1) of them.
    """

    def __init__(self, n_shards: int, *, replicas: int = 64) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.n_shards = n_shards
        self.replicas = replicas
        points: "list[tuple[int, int]]" = []
        for shard in range(n_shards):
            for r in range(replicas):
                points.append((_hash64(f"shard-{shard}#{r}"), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def owner(self, key: str) -> int:
        """The shard owning ``key`` (its ring home)."""
        i = bisect_right(self._hashes, _hash64(key)) % len(self._points)
        return self._points[i][1]

    def preference(self, key: str) -> "tuple[int, ...]":
        """All shards in ring-walk order from ``key`` (home first).

        The deterministic failover order: a task whose home shard is
        fully down goes to the next *distinct* shard along the ring.
        """
        start = bisect_right(self._hashes, _hash64(key))
        seen: "list[int]" = []
        member = set()
        n = len(self._points)
        for step in range(n):
            shard = self._points[(start + step) % n][1]
            if shard not in member:
                member.add(shard)
                seen.append(shard)
                if len(seen) == self.n_shards:
                    break
        return tuple(seen)


class HashRouter:
    """Pure consistent-hash routing with ring-order failover."""

    policy = "hash"

    def __init__(self, n_shards: int, *, replicas: int = 64) -> None:
        self.ring = HashRing(n_shards, replicas=replicas)
        self.n_shards = n_shards
        self.rerouted = 0  # arrivals that missed their ring home

    def route(self, task_id: int, t: float, up: "frozenset[int] | set[int]",
              ) -> int:
        """Shard for ``task_id`` arriving at hour ``t`` given up shards.

        With every shard down the ring home is returned anyway — the
        shard's dispatcher queues the task until a cluster rejoins, so
        no arrival is ever dropped at the routing layer.
        """
        pref = self.ring.preference(str(task_id))
        if not up:
            return pref[0]
        for shard in pref:
            if shard in up:
                if shard != pref[0]:
                    self.rerouted += 1
                return shard
        return pref[0]


class LoadAwareRouter:
    """Least-loaded routing over a trailing admission window.

    The load signal is deterministic and admission-side: how many tasks
    this router sent to each shard within the last ``window_hours`` —
    a queue-depth proxy the routing tier of a real platform computes
    without waiting on dispatcher feedback.  The consistent-hash
    preference order breaks depth ties, so the policy degrades to hash
    routing under uniform load.
    """

    policy = "load"

    def __init__(self, n_shards: int, *, replicas: int = 64,
                 window_hours: float = 1.0) -> None:
        if window_hours <= 0:
            raise ValueError(f"window_hours must be positive, got {window_hours}")
        self.ring = HashRing(n_shards, replicas=replicas)
        self.n_shards = n_shards
        self.window_hours = window_hours
        self.rerouted = 0
        self._recent: "list[deque[float]]" = [deque() for _ in range(n_shards)]

    def _depth(self, shard: int, t: float) -> int:
        recent = self._recent[shard]
        horizon = t - self.window_hours
        while recent and recent[0] <= horizon:
            recent.popleft()
        return len(recent)

    def route(self, task_id: int, t: float, up: "frozenset[int] | set[int]",
              ) -> int:
        pref = self.ring.preference(str(task_id))
        rank = {shard: i for i, shard in enumerate(pref)}
        candidates = [s for s in range(self.n_shards) if s in up] or [pref[0]]
        best = min(candidates, key=lambda s: (self._depth(s, t), rank[s]))
        if best != pref[0]:
            self.rerouted += 1
        self._recent[best].append(t)
        return best


def make_router(policy: str, n_shards: int, *, replicas: int = 64,
                window_hours: float = 1.0):
    """Fresh router for one run (routers carry per-run state)."""
    if policy == "hash":
        return HashRouter(n_shards, replicas=replicas)
    if policy == "load":
        return LoadAwareRouter(n_shards, replicas=replicas,
                               window_hours=window_hours)
    raise ValueError(
        f"routing policy must be one of {ROUTING_POLICIES}, got {policy!r}")


def full_down_intervals(outages: "list[Outage]", n_clusters: int,
                        ) -> "list[tuple[float, float]]":
    """Intervals during which *every* one of ``n_clusters`` is down.

    Per-cluster outage intervals are unioned first (overlapping outages
    of one cluster count once), then a sweep line finds the stretches
    where the down-count reaches ``n_clusters``.  Returned intervals are
    half-open ``[start, end)``, disjoint, and sorted — the shard is
    "up" at hour ``t`` iff ``t`` falls in none of them.
    """
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    by_cluster: "dict[int, list[tuple[float, float]]]" = {}
    for o in outages:
        by_cluster.setdefault(o.cluster_id, []).append((o.start, o.end))
    if len(by_cluster) < n_clusters:
        return []
    events: "list[tuple[float, int]]" = []
    for intervals in by_cluster.values():
        intervals.sort()
        merged: "list[list[float]]" = []
        for start, end in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        for start, end in merged:
            # At equal times the -1 (end) sorts before the +1 (start):
            # half-open intervals that touch do not count as overlapping.
            insort(events, (end, -1))
            insort(events, (start, +1))
    down = 0
    full: "list[tuple[float, float]]" = []
    full_since: "float | None" = None
    for t, delta in events:
        down += delta
        if down == n_clusters and full_since is None:
            full_since = t
        elif down < n_clusters and full_since is not None:
            if t > full_since:
                full.append((full_since, t))
            full_since = None
    return full
