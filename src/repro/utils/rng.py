"""Seeded random-number utilities.

Every stochastic component in :mod:`repro` draws from an explicitly seeded
:class:`numpy.random.Generator`.  This module centralizes generator
construction so experiments are reproducible bit-for-bit across runs and so
independent subsystems (workload sampling, failure draws, weight init,
zeroth-order perturbations) consume *independent* streams derived from a
single experiment seed.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "as_generator",
    "spawn",
    "spawn_many",
    "seed_sequence",
]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an ``int`` seed, an existing generator (returned unchanged so
    callers can thread a stream through a pipeline), or ``None`` for an
    OS-entropy-seeded generator (discouraged outside interactive use).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def seed_sequence(seed: int | None) -> np.random.SeedSequence:
    """Build the root :class:`~numpy.random.SeedSequence` for a run."""
    return np.random.SeedSequence(seed)


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive a single independent child generator from ``rng``.

    Uses the generator's bit-generator seed sequence when available, falling
    back to drawing a 64-bit seed.  Children are statistically independent
    of the parent and of each other.
    """
    ss = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
    if isinstance(ss, np.random.SeedSequence):
        (child,) = ss.spawn(1)
        return np.random.default_rng(child)
    return np.random.default_rng(rng.integers(0, 2**63 - 1))


def spawn_many(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    ss = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
    if isinstance(ss, np.random.SeedSequence):
        return [np.random.default_rng(c) for c in ss.spawn(n)]
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def stream_of(seed: int, *labels: str | int) -> np.random.Generator:
    """Deterministic named stream: the same ``(seed, labels)`` pair always
    yields the same generator, regardless of call order.

    Useful when two subsystems must not share a stream but neither owns the
    other (e.g. workload sampling vs. failure draws inside one experiment).
    """
    entropy = [seed] + [_label_to_int(lbl) for lbl in labels]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def _label_to_int(label: str | int) -> int:
    if isinstance(label, int):
        return label
    # Stable, platform-independent FNV-1a 64-bit hash of the label text
    # (plain Python ints with an explicit wrap — no overflow warnings).
    mask = (1 << 64) - 1
    h = 1469598103934665603  # offset basis
    for byte in label.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & mask
    return h


def iter_seeds(base_seed: int, n: int) -> Iterator[int]:
    """Yield ``n`` deterministic per-repetition seeds for multi-seed runs."""
    ss = np.random.SeedSequence(base_seed)
    for child in ss.spawn(n):
        yield int(child.generate_state(1, dtype=np.uint64)[0] % (2**31 - 1))


def check_seeds(seeds: Sequence[int]) -> list[int]:
    """Validate a user-supplied seed list (non-empty, all ints)."""
    out = [int(s) for s in seeds]
    if not out:
        raise ValueError("seed list must be non-empty")
    return out
