"""Shared utilities: seeded RNG streams, validation, table rendering.

Timing lives in :mod:`repro.telemetry` (the ``span`` primitive); the
legacy ``repro.utils.timer`` shims were removed after a deprecation
cycle.
"""

from repro.utils.csvio import write_reports_csv, write_series_csv
from repro.utils.rng import as_generator, iter_seeds, spawn, spawn_many, stream_of
from repro.utils.tables import Table, format_mean_std, render_series
from repro.utils.validation import (
    check_array,
    check_assignment_matrix,
    check_in_range,
    check_matrix,
    check_positive,
    check_probability,
)

__all__ = [
    "as_generator",
    "iter_seeds",
    "spawn",
    "spawn_many",
    "stream_of",
    "Table",
    "format_mean_std",
    "render_series",
    "check_array",
    "check_assignment_matrix",
    "check_in_range",
    "check_matrix",
    "check_positive",
    "check_probability",
    "write_reports_csv",
    "write_series_csv",
]
