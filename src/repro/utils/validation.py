"""Argument validation helpers shared across the library.

These are small, fast checks used at public API boundaries.  Inner loops
never call them; validation happens once per call into the library, in line
with the HPC guidance of keeping hot paths branch-light.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "check_array",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_assignment_matrix",
]


def check_array(
    x: Any,
    *,
    name: str = "array",
    ndim: int | None = None,
    dtype: type = np.float64,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``x`` to a C-contiguous float array and validate its shape.

    Raises :class:`ValueError` on NaN/inf entries — silent NaN propagation
    through the solvers produces confusing downstream failures.
    """
    arr = np.ascontiguousarray(x, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite entries")
    return arr


def check_matrix(
    x: Any,
    *,
    name: str = "matrix",
    shape: tuple[int, int] | None = None,
) -> np.ndarray:
    """Validate a 2-D float matrix, optionally of an exact shape."""
    arr = check_array(x, name=name, ndim=2)
    if shape is not None and arr.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr


def check_positive(value: float, *, name: str = "value", strict: bool = True) -> float:
    """Validate a (strictly) positive scalar."""
    v = float(value)
    if strict and not v > 0:
        raise ValueError(f"{name} must be > 0, got {v}")
    if not strict and not v >= 0:
        raise ValueError(f"{name} must be >= 0, got {v}")
    return v


def check_probability(value: float, *, name: str = "probability") -> float:
    """Validate a scalar in [0, 1]."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {v}")
    return v


def check_in_range(
    value: float,
    lo: float,
    hi: float,
    *,
    name: str = "value",
    inclusive: bool = True,
) -> float:
    """Validate ``lo <= value <= hi`` (or strict inequalities)."""
    v = float(value)
    ok = (lo <= v <= hi) if inclusive else (lo < v < hi)
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {lo} {op} {name} {op} {hi}, got {v}")
    return v


def check_assignment_matrix(
    x: Any,
    *,
    name: str = "X",
    binary: bool = False,
    atol: float = 1e-6,
) -> np.ndarray:
    """Validate an M×N (relaxed) assignment matrix.

    Columns must sum to 1 (each task assigned with total mass one) and
    entries must lie in [0, 1].  With ``binary=True`` entries must be
    exactly 0/1 within ``atol``.
    """
    arr = check_array(x, name=name, ndim=2)
    if np.any(arr < -atol) or np.any(arr > 1 + atol):
        raise ValueError(f"{name} entries must lie in [0, 1]")
    col_sums = arr.sum(axis=0)
    if not np.allclose(col_sums, 1.0, atol=1e-4):
        bad = np.argmax(np.abs(col_sums - 1.0))
        raise ValueError(
            f"{name} columns must sum to 1 (task {bad} has mass {col_sums[bad]:.6f})"
        )
    if binary:
        rounded = np.round(arr)
        if not np.allclose(arr, rounded, atol=atol):
            raise ValueError(f"{name} must be binary")
        return rounded
    return arr


def check_lengths_match(*pairs: tuple[str, Sequence[Any]]) -> int:
    """Validate that all named sequences share one length; return it."""
    if not pairs:
        raise ValueError("no sequences supplied")
    n = len(pairs[0][1])
    for name, seq in pairs:
        if len(seq) != n:
            lengths = ", ".join(f"{nm}={len(sq)}" for nm, sq in pairs)
            raise ValueError(f"length mismatch ({lengths})")
    return n
