"""CSV export of experiment results (plotting-tool-friendly figure data)."""

from __future__ import annotations

import csv
import os
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # runtime import would cycle through repro.metrics
    from repro.metrics.report import MethodReport

__all__ = ["write_reports_csv", "write_series_csv"]


def write_reports_csv(
    reports: "Mapping[str, MethodReport]",
    path: "str | os.PathLike[str]",
    *,
    extra: Mapping[str, object] | None = None,
) -> None:
    """One row per method: mean and std of each §4.1.3 metric.

    ``extra`` columns (e.g. setting name) are prepended to every row.
    """
    extra = dict(extra or {})
    with open(os.fspath(path), "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow([*extra.keys(), "method",
                         "regret_mean", "regret_std",
                         "reliability_mean", "reliability_std",
                         "utilization_mean", "utilization_std"])
        for name, report in reports.items():
            r, rel, u = report.regret, report.reliability, report.utilization
            writer.writerow([*extra.values(), name,
                             f"{r[0]:.6f}", f"{r[1]:.6f}",
                             f"{rel[0]:.6f}", f"{rel[1]:.6f}",
                             f"{u[0]:.6f}", f"{u[1]:.6f}"])


def write_series_csv(
    x_label: str,
    results: "Mapping[float, Mapping[str, MethodReport]]",
    path: "str | os.PathLike[str]",
    *,
    metric: str = "regret",
) -> None:
    """Figure-style data: one row per (x, method) with mean/std of ``metric``."""
    if metric not in ("regret", "reliability", "utilization"):
        raise ValueError(f"unknown metric {metric!r}")
    with open(os.fspath(path), "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_label, "method", f"{metric}_mean", f"{metric}_std"])
        for x in sorted(results):
            for name, report in results[x].items():
                mean, std = getattr(report, metric)
                writer.writerow([x, name, f"{mean:.6f}", f"{std:.6f}"])
