"""ASCII table rendering for experiment reports.

The experiment harnesses print paper-style tables (mean ± std cells) to the
terminal; this module owns the formatting so every table in the repo looks
the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["Table", "format_mean_std", "render_series"]


def format_mean_std(mean: float, std: float, *, digits: int = 3) -> str:
    """Render ``mean ± std`` the way the paper's tables do."""
    return f"{mean:.{digits}f} ± {std:.{digits}f}"


@dataclass
class Table:
    """A small immutable-ish ASCII table builder.

    >>> t = Table(["Method", "Regret"], title="Table 2")
    >>> t.add_row(["TSM", "2.014 ± 0.035"])
    >>> print(t.render())  # doctest: +SKIP
    """

    columns: Sequence[str]
    title: str | None = None
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, row: Iterable[object]) -> None:
        cells = [str(c) for c in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        sep = "-+-".join("-" * w for w in widths)
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(sep))
        lines.append(fmt_row(list(self.columns)))
        lines.append(sep)
        lines.extend(fmt_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_series(
    x_label: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    title: str | None = None,
    digits: int = 3,
) -> str:
    """Render figure-style data (one x column, one column per method).

    Used by the Fig. 4/5 harnesses to print the exact numbers behind each
    plotted line so the reproduction can be compared against the paper.
    """
    table = Table([x_label, *series.keys()], title=title)
    for i, x in enumerate(xs):
        row: list[str] = [f"{x:g}"]
        for name, ys in series.items():
            if len(ys) != len(xs):
                raise ValueError(f"series {name!r} has {len(ys)} points, expected {len(xs)}")
            row.append(f"{ys[i]:.{digits}f}")
        table.add_row(row)
    return table.render()
