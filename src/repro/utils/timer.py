"""Lightweight wall-clock timing helpers for the benchmark harnesses.

.. deprecated::
    These helpers predate :mod:`repro.telemetry` and are now thin shims
    over its span primitive.  New code should use
    :func:`repro.telemetry.span` (optionally with an active
    :class:`repro.telemetry.Recorder`), which adds hierarchical paths,
    error tracking, and JSONL run logs for free.  ``Timer``/``timed``
    stay importable for the existing benchmarks but emit a
    ``DeprecationWarning`` on use.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.telemetry import span as _tele_span

__all__ = ["Timer", "timed"]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.utils.timer.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class Timer:
    """Accumulating timer: tracks total elapsed seconds over many sections.

    Deprecated shim over :func:`repro.telemetry.span`: each section opens a
    telemetry span named ``timer/<name>`` (recorded when a recorder is
    active) and accumulates locally so ``total``/``mean``/``report`` keep
    working with telemetry off.

    >>> import warnings
    >>> t = Timer()
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     with t.section("solve"):
    ...         pass
    >>> t.total("solve") >= 0.0
    True
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        _deprecated("Timer.section", "repro.telemetry.span")
        import time

        # Time locally (the no-op span does not measure) and let the span
        # record the same section when a recorder is active.
        start = time.perf_counter()
        with _tele_span(f"timer/{name}"):
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self.totals[name] = self.totals.get(name, 0.0) + elapsed
                self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        n = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / n if n else 0.0

    def report(self) -> str:
        lines = ["section            total(s)   calls   mean(s)"]
        for name in sorted(self.totals):
            lines.append(
                f"{name:<18} {self.totals[name]:>8.3f} {self.counts[name]:>7d} "
                f"{self.mean(name):>9.5f}"
            )
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[list[float]]:
    """Context manager yielding a one-element list that receives the elapsed
    wall-clock seconds on exit::

        with timed() as t:
            work()
        print(t[0])

    Deprecated shim: opens a ``timer/timed`` telemetry span under the hood.
    """
    _deprecated("timed", "repro.telemetry.span")
    import time

    out = [0.0]
    start = time.perf_counter()
    with _tele_span("timer/timed"):
        try:
            yield out
        finally:
            out[0] = time.perf_counter() - start
