"""Lightweight wall-clock timing helpers for the benchmark harnesses."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulating timer: tracks total elapsed seconds over many sections.

    >>> t = Timer()
    >>> with t.section("solve"):
    ...     pass
    >>> t.total("solve") >= 0.0
    True
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        n = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / n if n else 0.0

    def report(self) -> str:
        lines = ["section            total(s)   calls   mean(s)"]
        for name in sorted(self.totals):
            lines.append(
                f"{name:<18} {self.totals[name]:>8.3f} {self.counts[name]:>7d} "
                f"{self.mean(name):>9.5f}"
            )
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[list[float]]:
    """Context manager yielding a one-element list that receives the elapsed
    wall-clock seconds on exit::

        with timed() as t:
            work()
        print(t[0])
    """
    out = [0.0]
    start = time.perf_counter()
    try:
        yield out
    finally:
        out[0] = time.perf_counter() - start
