"""repro — reproduction of "Joint Prediction and Matching for Computing
Resource Exchange Platforms" (MFCP, ICPP '25).

Subpackages
-----------
``repro.nn``
    From-scratch NumPy autograd + MLP substrate for the predictors.
``repro.workloads``
    DL task specs, operator graphs, feature embedding, task pools.
``repro.clusters``
    Heterogeneous cluster ground-truth performance/reliability models.
``repro.sim``
    Discrete-event execution engine (sequential & parallel modes).
``repro.matching``
    Eq. (2) problem, smoothing/barrier objectives, Algorithm 1 solver,
    exact solvers, KKT differentiation (Eq. 15), zeroth-order gradients
    (Algorithm 2).
``repro.predictors``
    Per-cluster time/reliability MLP heads, training, ensembles.
``repro.methods``
    TAM / TSM / UCB / MFCP-AD / MFCP-FG and the Table 1 ablations.
``repro.metrics``
    Regret, reliability, utilization + mean±std reporting.
``repro.theory``
    Numerical verification of Theorems 1–5.
``repro.experiments``
    Harnesses regenerating Table 1, Fig. 4, Fig. 5, Table 2.

Quick start
-----------
>>> from repro.workloads import TaskPool
>>> from repro.clusters import make_setting
>>> from repro.methods import MFCP, MatchSpec, FitContext
>>> pool = TaskPool(60, rng=0)
>>> clusters = make_setting("A")
>>> train, test = pool.split(0.7, rng=1)
>>> ctx = FitContext.build(clusters, train, MatchSpec(), rng=2)
>>> method = MFCP("analytic").fit(ctx)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
