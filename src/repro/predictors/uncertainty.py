"""Ensemble uncertainty estimation for the UCB baseline (paper §4.1.2).

The UCB method "selects the solution with the highest upper confidence
bound rather than the best-performing matching scheme" — it needs
per-prediction uncertainty.  We use the classic deep-ensemble estimate:
K predictors trained on bootstrap resamples with independent inits; the
ensemble mean is the prediction, the ensemble std the uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.predictors.dataset import Standardizer
from repro.predictors.models import ReliabilityPredictor, TimePredictor
from repro.predictors.training import TrainConfig, train_reliability, train_time_mse
from repro.utils.rng import as_generator, spawn

__all__ = ["EnsembleTimePredictor", "EnsembleReliabilityPredictor"]


@dataclass(frozen=True)
class _EnsembleOutput:
    mean: np.ndarray
    std: np.ndarray


class _Ensemble:
    """Shared bootstrap-ensemble machinery for both heads."""

    def __init__(self, members: Sequence[object]) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        self.members = list(members)

    def _stats(self, Z: np.ndarray) -> _EnsembleOutput:
        preds = np.stack([m.predict(Z) for m in self.members])  # type: ignore[attr-defined]
        return _EnsembleOutput(mean=preds.mean(axis=0), std=preds.std(axis=0))

    def predict(self, Z: np.ndarray) -> np.ndarray:
        return self._stats(Z).mean

    def predict_with_std(self, Z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        out = self._stats(Z)
        return out.mean, out.std


def _bootstrap(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.integers(0, n, size=n)


class EnsembleTimePredictor(_Ensemble):
    """Bootstrap ensemble of K :class:`TimePredictor` members."""

    @staticmethod
    def fit(
        Z: np.ndarray,
        t: np.ndarray,
        *,
        k: int = 5,
        hidden: Sequence[int] = (32, 32),
        standardizer: Standardizer | None = None,
        config: TrainConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> "EnsembleTimePredictor":
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        rng = as_generator(rng)
        members = []
        for _ in range(k):
            member_rng = spawn(rng)
            idx = _bootstrap(len(Z), member_rng)
            member = TimePredictor(Z.shape[1], hidden, standardizer=standardizer,
                                   rng=member_rng)
            train_time_mse(member, Z[idx], np.asarray(t)[idx], config, member_rng)
            members.append(member)
        return EnsembleTimePredictor(members)


class EnsembleReliabilityPredictor(_Ensemble):
    """Bootstrap ensemble of K :class:`ReliabilityPredictor` members."""

    @staticmethod
    def fit(
        Z: np.ndarray,
        a: np.ndarray,
        *,
        k: int = 5,
        hidden: Sequence[int] = (32, 32),
        standardizer: Standardizer | None = None,
        config: TrainConfig | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> "EnsembleReliabilityPredictor":
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        rng = as_generator(rng)
        members = []
        for _ in range(k):
            member_rng = spawn(rng)
            idx = _bootstrap(len(Z), member_rng)
            member = ReliabilityPredictor(Z.shape[1], hidden, standardizer=standardizer,
                                          rng=member_rng)
            train_reliability(member, Z[idx], np.asarray(a)[idx], config, member_rng)
            members.append(member)
        return EnsembleReliabilityPredictor(members)
