"""Cluster performance predictors: datasets, MLP heads, training loops,
ensemble uncertainty (the m_ω / m_φ stack of paper §2.1)."""

from repro.predictors.dataset import ClusterDataset, Standardizer, build_datasets
from repro.predictors.models import PredictorPair, ReliabilityPredictor, TimePredictor
from repro.predictors.training import (
    TrainConfig,
    TrainResult,
    train_reliability,
    train_time_mse,
)
from repro.predictors.uncertainty import EnsembleReliabilityPredictor, EnsembleTimePredictor

__all__ = [
    "ClusterDataset",
    "Standardizer",
    "build_datasets",
    "TimePredictor",
    "ReliabilityPredictor",
    "PredictorPair",
    "TrainConfig",
    "TrainResult",
    "train_time_mse",
    "train_reliability",
    "EnsembleTimePredictor",
    "EnsembleReliabilityPredictor",
]
