"""Per-cluster training datasets D = {z, t, a} (paper Eq. 1 context).

Builds predictor training data by running tasks on clusters through the
noisy measurement pipeline, and owns the feature standardization that the
predictors share between training and deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clusters.cluster import Cluster
from repro.utils.rng import as_generator
from repro.workloads.taskpool import Task

__all__ = ["Standardizer", "ClusterDataset", "build_datasets"]


@dataclass(frozen=True)
class Standardizer:
    """Affine feature map fitted on training features (z − mean) / std."""

    mean: np.ndarray
    std: np.ndarray

    @staticmethod
    def fit(Z: np.ndarray) -> "Standardizer":
        Z = np.asarray(Z, dtype=np.float64)
        if Z.ndim != 2:
            raise ValueError("Z must be 2-D (samples × features)")
        std = Z.std(axis=0)
        return Standardizer(mean=Z.mean(axis=0), std=np.where(std > 1e-9, std, 1.0))

    def transform(self, Z: np.ndarray) -> np.ndarray:
        return (np.asarray(Z, dtype=np.float64) - self.mean) / self.std


@dataclass(frozen=True)
class ClusterDataset:
    """Measured training data of one cluster.

    ``Z`` holds raw (unstandardized) features; ``t`` observed times (hours);
    ``a`` observed success-probability estimates.
    """

    cluster_id: int
    Z: np.ndarray
    t: np.ndarray
    a: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.Z) == len(self.t) == len(self.a)):
            raise ValueError("Z, t, a must have matching lengths")
        if np.any(self.t <= 0):
            raise ValueError("observed times must be positive")
        if np.any((self.a < 0) | (self.a > 1)):
            raise ValueError("observed reliabilities must lie in [0, 1]")

    def __len__(self) -> int:
        return len(self.t)


def build_datasets(
    clusters: "list[Cluster]",
    train_tasks: "list[Task]",
    rng: np.random.Generator | int | None = None,
) -> list[ClusterDataset]:
    """Measure every training task on every cluster (the paper's protocol:
    "we run the tasks directly on each cluster ... to obtain their actual
    execution times and reliability metrics")."""
    if not clusters:
        raise ValueError("clusters must be non-empty")
    if not train_tasks:
        raise ValueError("train_tasks must be non-empty")
    rng = as_generator(rng)
    Z = np.stack([task.features for task in train_tasks])
    datasets = []
    for cluster in clusters:
        ms = cluster.measure_batch(train_tasks, rng)
        datasets.append(
            ClusterDataset(
                cluster_id=cluster.cluster_id,
                Z=Z,
                t=np.array([m.time_hours for m in ms]),
                a=np.array([m.reliability for m in ms]),
            )
        )
    return datasets
