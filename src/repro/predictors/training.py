"""MSE training loops for the two-stage baseline (paper Eq. 1).

``train_time_mse`` regresses log-time (the :class:`TimePredictor` head is
exp(·), so MSE on log targets equals relative-error regression — the right
loss for quantities spanning orders of magnitude).  ``train_reliability``
offers the paper's MSE loss and a BCE option.

:class:`StepwiseTrainer` exposes the same optimization one minibatch at a
time — the incremental-refit entry point of the online retraining loop
(:mod:`repro.retrain`), which must interleave training steps with dispatch
windows instead of blocking the serving loop on a full ``train_*`` call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Adam, Tensor, mse_loss, bce_loss, ops
from repro.nn.layers import Module
from repro.predictors.models import ReliabilityPredictor, TimePredictor
from repro.utils.rng import as_generator

__all__ = [
    "TrainConfig",
    "train_time_mse",
    "train_reliability",
    "TrainResult",
    "StepwiseTrainer",
]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters shared by the supervised training loops."""

    epochs: int = 300
    lr: float = 5e-3
    batch_size: int = 32
    weight_decay: float = 1e-5

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")


@dataclass(frozen=True)
class TrainResult:
    """Final loss and per-epoch history of one supervised run."""

    final_loss: float
    history: np.ndarray


def _minibatches(
    n: int, batch_size: int, rng: np.random.Generator
) -> "list[np.ndarray]":
    order = rng.permutation(n)
    return [order[i : i + batch_size] for i in range(0, n, batch_size)]


def train_time_mse(
    predictor: TimePredictor,
    Z: np.ndarray,
    t: np.ndarray,
    config: TrainConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> TrainResult:
    """Fit the time head by MSE on log-times (Eq. 1, log-space variant)."""
    cfg = config or TrainConfig()
    rng = as_generator(rng)
    Z = np.asarray(Z, dtype=np.float64)
    log_t = np.log(np.asarray(t, dtype=np.float64))
    if len(Z) != len(log_t):
        raise ValueError("Z and t must have matching lengths")
    opt = Adam(predictor.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
    history = np.empty(cfg.epochs)
    for epoch in range(cfg.epochs):
        epoch_loss = 0.0
        batches = _minibatches(len(Z), cfg.batch_size, rng)
        for idx in batches:
            opt.zero_grad()
            pred = ops.log(predictor.forward(Z[idx]))
            loss = mse_loss(pred, log_t[idx])
            loss.backward()
            opt.step()
            epoch_loss += loss.item() * len(idx)
        history[epoch] = epoch_loss / len(Z)
    return TrainResult(final_loss=float(history[-1]), history=history)


def train_reliability(
    predictor: ReliabilityPredictor,
    Z: np.ndarray,
    a: np.ndarray,
    config: TrainConfig | None = None,
    rng: np.random.Generator | int | None = None,
    *,
    loss: str = "mse",
) -> TrainResult:
    """Fit the reliability head by MSE (the paper's Eq. 1) or BCE."""
    if loss not in ("mse", "bce"):
        raise ValueError(f"loss must be 'mse' or 'bce', got {loss!r}")
    cfg = config or TrainConfig()
    rng = as_generator(rng)
    Z = np.asarray(Z, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    if len(Z) != len(a):
        raise ValueError("Z and a must have matching lengths")
    loss_fn = mse_loss if loss == "mse" else bce_loss
    opt = Adam(predictor.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
    history = np.empty(cfg.epochs)
    for epoch in range(cfg.epochs):
        epoch_loss = 0.0
        for idx in _minibatches(len(Z), cfg.batch_size, rng):
            opt.zero_grad()
            pred = predictor.forward(Z[idx])
            value = loss_fn(pred, a[idx])
            value.backward()
            opt.step()
            epoch_loss += value.item() * len(idx)
        history[epoch] = epoch_loss / len(Z)
    return TrainResult(final_loss=float(history[-1]), history=history)


class StepwiseTrainer:
    """Cooperative mini-batch trainer: the refit loop's unit of work.

    Runs the exact optimization of :func:`train_time_mse` /
    :func:`train_reliability` (same shuffling scheme, same optimizer, same
    losses) but yields control after every minibatch, so a caller embedded
    in the serving loop can budget "at most ``n`` steps per dispatch
    window" and keep the dispatcher's event loop — and its determinism —
    intact.  Driven to completion with the same generator it reproduces
    the blocking loops' loss trajectory exactly.

    ``loss`` selects the head semantics: ``"log_mse"`` (time head — MSE
    between the log of the forward pass and log targets), ``"mse"`` or
    ``"bce"`` (reliability head on [0, 1] targets).
    """

    def __init__(
        self,
        predictor: Module,
        Z: np.ndarray,
        y: np.ndarray,
        config: TrainConfig | None = None,
        rng: np.random.Generator | int | None = None,
        *,
        loss: str = "log_mse",
    ) -> None:
        if loss not in ("log_mse", "mse", "bce"):
            raise ValueError(f"loss must be 'log_mse', 'mse' or 'bce', got {loss!r}")
        self.config = cfg = config or TrainConfig()
        self.rng = as_generator(rng)
        self.loss = loss
        self.predictor = predictor
        self.Z = np.asarray(Z, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(self.Z) != len(y):
            raise ValueError("Z and y must have matching lengths")
        if len(self.Z) == 0:
            raise ValueError("need at least one training sample")
        self.y = np.log(y) if loss == "log_mse" else y
        self.opt = Adam(predictor.parameters(), lr=cfg.lr,
                        weight_decay=cfg.weight_decay)
        self.steps_done = 0
        self.epochs_done = 0
        self.last_loss = float("nan")
        self.history: "list[float]" = []  # per-epoch mean sample loss
        self._pending: "list[np.ndarray]" = []
        self._epoch_loss = 0.0

    # ------------------------------------------------------------------ #

    @property
    def steps_per_epoch(self) -> int:
        n = len(self.Z)
        b = self.config.batch_size
        return (n + b - 1) // b

    @property
    def total_steps(self) -> int:
        return self.steps_per_epoch * self.config.epochs

    @property
    def done(self) -> bool:
        return self.epochs_done >= self.config.epochs

    def step(self) -> float:
        """Run one minibatch; returns its mean loss.  Raises when done."""
        if self.done:
            raise RuntimeError("trainer already finished its epoch budget")
        if not self._pending:
            self._pending = _minibatches(len(self.Z), self.config.batch_size,
                                         self.rng)
            self._epoch_loss = 0.0
        idx = self._pending.pop(0)
        self.opt.zero_grad()
        if self.loss == "log_mse":
            pred = ops.log(self.predictor.forward(self.Z[idx]))
            value = mse_loss(pred, self.y[idx])
        else:
            pred = self.predictor.forward(self.Z[idx])
            loss_fn = mse_loss if self.loss == "mse" else bce_loss
            value = loss_fn(pred, self.y[idx])
        value.backward()
        self.opt.step()
        self.steps_done += 1
        self.last_loss = value.item()
        self._epoch_loss += self.last_loss * len(idx)
        if not self._pending:
            self.epochs_done += 1
            self.history.append(self._epoch_loss / len(self.Z))
        return self.last_loss

    def run_steps(self, budget: int) -> int:
        """Advance at most ``budget`` minibatches; returns how many ran."""
        ran = 0
        while ran < budget and not self.done:
            self.step()
            ran += 1
        return ran

    def result(self) -> TrainResult:
        """The finished run as a :class:`TrainResult` (requires ``done``)."""
        if not self.done:
            raise RuntimeError("trainer has not finished yet")
        history = np.asarray(self.history)
        return TrainResult(final_loss=float(history[-1]), history=history)
