"""MSE training loops for the two-stage baseline (paper Eq. 1).

``train_time_mse`` regresses log-time (the :class:`TimePredictor` head is
exp(·), so MSE on log targets equals relative-error regression — the right
loss for quantities spanning orders of magnitude).  ``train_reliability``
offers the paper's MSE loss and a BCE option.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Adam, Tensor, mse_loss, bce_loss, ops
from repro.predictors.models import ReliabilityPredictor, TimePredictor
from repro.utils.rng import as_generator

__all__ = ["TrainConfig", "train_time_mse", "train_reliability", "TrainResult"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters shared by the supervised training loops."""

    epochs: int = 300
    lr: float = 5e-3
    batch_size: int = 32
    weight_decay: float = 1e-5

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")


@dataclass(frozen=True)
class TrainResult:
    """Final loss and per-epoch history of one supervised run."""

    final_loss: float
    history: np.ndarray


def _minibatches(
    n: int, batch_size: int, rng: np.random.Generator
) -> "list[np.ndarray]":
    order = rng.permutation(n)
    return [order[i : i + batch_size] for i in range(0, n, batch_size)]


def train_time_mse(
    predictor: TimePredictor,
    Z: np.ndarray,
    t: np.ndarray,
    config: TrainConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> TrainResult:
    """Fit the time head by MSE on log-times (Eq. 1, log-space variant)."""
    cfg = config or TrainConfig()
    rng = as_generator(rng)
    Z = np.asarray(Z, dtype=np.float64)
    log_t = np.log(np.asarray(t, dtype=np.float64))
    if len(Z) != len(log_t):
        raise ValueError("Z and t must have matching lengths")
    opt = Adam(predictor.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
    history = np.empty(cfg.epochs)
    for epoch in range(cfg.epochs):
        epoch_loss = 0.0
        batches = _minibatches(len(Z), cfg.batch_size, rng)
        for idx in batches:
            opt.zero_grad()
            pred = ops.log(predictor.forward(Z[idx]))
            loss = mse_loss(pred, log_t[idx])
            loss.backward()
            opt.step()
            epoch_loss += loss.item() * len(idx)
        history[epoch] = epoch_loss / len(Z)
    return TrainResult(final_loss=float(history[-1]), history=history)


def train_reliability(
    predictor: ReliabilityPredictor,
    Z: np.ndarray,
    a: np.ndarray,
    config: TrainConfig | None = None,
    rng: np.random.Generator | int | None = None,
    *,
    loss: str = "mse",
) -> TrainResult:
    """Fit the reliability head by MSE (the paper's Eq. 1) or BCE."""
    if loss not in ("mse", "bce"):
        raise ValueError(f"loss must be 'mse' or 'bce', got {loss!r}")
    cfg = config or TrainConfig()
    rng = as_generator(rng)
    Z = np.asarray(Z, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    if len(Z) != len(a):
        raise ValueError("Z and a must have matching lengths")
    loss_fn = mse_loss if loss == "mse" else bce_loss
    opt = Adam(predictor.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
    history = np.empty(cfg.epochs)
    for epoch in range(cfg.epochs):
        epoch_loss = 0.0
        for idx in _minibatches(len(Z), cfg.batch_size, rng):
            opt.zero_grad()
            pred = predictor.forward(Z[idx])
            value = loss_fn(pred, a[idx])
            value.backward()
            opt.step()
            epoch_loss += value.item() * len(idx)
        history[epoch] = epoch_loss / len(Z)
    return TrainResult(final_loss=float(history[-1]), history=history)
