"""Cluster-specific performance predictors (paper §2.1).

Two MLP heads per cluster, matching the paper's setup ("we only utilized
fully connected layers"):

- :class:`TimePredictor` — ``t̂ = exp(h_ω(z))``: the network regresses
  log-time, which linearizes the multiplicative structure of execution
  times (roofline ratios, affinity multipliers) and keeps t̂ > 0;
- :class:`ReliabilityPredictor` — ``â = σ(h_φ(z))`` ∈ (0, 1).

Both expose a tape-building ``forward`` (for end-to-end regret training)
and a tape-free ``predict``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn import MLP, Tensor, no_grad, ops
from repro.nn.layers import Module
from repro.predictors.dataset import Standardizer
from repro.utils.rng import as_generator

__all__ = ["TimePredictor", "ReliabilityPredictor", "PredictorPair"]

#: Clamp on the log-time head: e^{±8} spans ~3e-4 .. 3e3 hours, far beyond
#: any real task, while preventing overflow from an untrained network.
_LOG_T_CLIP = 8.0


class TimePredictor(Module):
    """Execution-time head: MLP in log-time space, exponentiated output."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int] = (32, 32),
        *,
        standardizer: Standardizer | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        self.net = MLP(in_features, hidden, 1, activation="relu", output="identity",
                       rng=as_generator(rng))
        self.standardizer = standardizer

    def _prep(self, Z: np.ndarray) -> np.ndarray:
        Z = np.atleast_2d(np.asarray(Z, dtype=np.float64))
        if self.standardizer is not None:
            Z = self.standardizer.transform(Z)
        return Z

    def forward(self, Z: "np.ndarray | Tensor") -> Tensor:
        """Differentiable prediction: returns t̂ as a length-N tensor."""
        if isinstance(Z, Tensor):
            raise TypeError("pass raw features; the predictor standardizes internally")
        x = Tensor(self._prep(Z))
        log_t = ops.clip(self.net(x), -_LOG_T_CLIP, _LOG_T_CLIP)
        return ops.exp(log_t).reshape(-1)

    def predict(self, Z: np.ndarray) -> np.ndarray:
        """Tape-free t̂ (shape (N,))."""
        with no_grad():
            return self.forward(Z).data.copy()


class ReliabilityPredictor(Module):
    """Reliability head: MLP with a logistic output, â ∈ (0, 1)."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int] = (32, 32),
        *,
        standardizer: Standardizer | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        self.net = MLP(in_features, hidden, 1, activation="relu", output="sigmoid",
                       rng=as_generator(rng))
        self.standardizer = standardizer

    def _prep(self, Z: np.ndarray) -> np.ndarray:
        Z = np.atleast_2d(np.asarray(Z, dtype=np.float64))
        if self.standardizer is not None:
            Z = self.standardizer.transform(Z)
        return Z

    def forward(self, Z: "np.ndarray | Tensor") -> Tensor:
        if isinstance(Z, Tensor):
            raise TypeError("pass raw features; the predictor standardizes internally")
        return self.net(Tensor(self._prep(Z))).reshape(-1)

    def predict(self, Z: np.ndarray) -> np.ndarray:
        with no_grad():
            return self.forward(Z).data.copy()


class PredictorPair:
    """The (m_ω, m_φ) pair of one cluster, built with independent seeds."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int] = (32, 32),
        *,
        standardizer: Standardizer | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        rng = as_generator(rng)
        self.time = TimePredictor(in_features, hidden, standardizer=standardizer, rng=rng)
        self.reliability = ReliabilityPredictor(
            in_features, hidden, standardizer=standardizer, rng=rng
        )

    def predict(self, Z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(t̂, â) for a feature matrix — the per-cluster prediction rows."""
        return self.time.predict(Z), self.reliability.predict(Z)

    # ------------------------------------------------------------------ #
    # Architecture introspection + cloning (online refit support).
    # ------------------------------------------------------------------ #

    @property
    def in_features(self) -> int:
        return self.time.net.in_features

    @property
    def hidden_sizes(self) -> tuple[int, ...]:
        """Hidden layer widths, read back from the time head's MLP."""
        from repro.nn.layers import Linear

        linears = [m for m in self.time.net.net if isinstance(m, Linear)]
        return tuple(layer.out_features for layer in linears[:-1])

    def clone(self, rng: np.random.Generator | int | None = None) -> "PredictorPair":
        """An independent pair with the same architecture and weights.

        The online refit policy trains *candidate* weights while the live
        pair keeps serving; cloning (same standardizer reference, deep-
        copied parameters) is how an incremental refit warm-starts from
        the live checkpoint without aliasing it.
        """
        fresh = PredictorPair(
            self.in_features, self.hidden_sizes,
            standardizer=self.time.standardizer, rng=rng,
        )
        fresh.time.load_state_dict(
            {k: v.copy() for k, v in self.time.state_dict().items()})
        fresh.reliability.load_state_dict(
            {k: v.copy() for k, v in self.reliability.state_dict().items()})
        # The heads may carry distinct standardizers after a registry load.
        fresh.reliability.standardizer = self.reliability.standardizer
        return fresh
