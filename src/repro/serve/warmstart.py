"""Learned warm-start head: predict the relaxed solution from task features.

The warm-start *cache* only helps for repeated task ids on an unchanged
fleet; a cold-start window (fresh tasks, post-swap cache flush, off-bucket
batch) still pays a full descent.  Following "Faster Matchings via Learned
Duals" (Dinitz et al., PAPERS.md), this module learns the map the cache
memorizes: a multinomial logistic head from raw task features to the
task's relaxed assignment *column* over the full cluster fleet, trained on
``(features, relaxed column)`` pairs harvested from
:class:`~repro.serve.dispatcher.WindowSnapshot` streams (see
:mod:`repro.retrain.warmstart` for the online trainer).

The head only ever *seeds* — :func:`repro.matching.relaxed.solve_relaxed`
and the block driver hedge every seed against the cold interior start, so
a bad prediction can cost nothing worse than a cold solve.  ``seed``
additionally declines (returns ``None``) when the head is untrained, the
fleet contains unknown clusters, or the predicted columns are too diffuse
to beat a uniform start (the learned analogue of the cache's
mostly-unseen guard).

Deterministic end to end: full-batch gradient descent, no RNG, and a
SHA-256 weights digest so registry checkpoints of the head are verifiable
the same way predictor checkpoints are.
"""

from __future__ import annotations

import hashlib
import os
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.taskpool import Task

__all__ = ["WarmStartHead"]

#: Strictly positive floor for seeded columns (mirror updates need every
#: coordinate alive) — matches repro.serve.cache._COL_FLOOR.
_COL_FLOOR = 1e-6


class WarmStartHead:
    """Multinomial logistic regression ``task features → assignment column``.

    One weight column per cluster of the *full* fleet (``cluster_ids``
    fixes the row order); outage windows are seeded by slicing the
    predicted columns to the up clusters and renormalizing.  Targets are
    soft (the relaxed columns), so the head learns the solver's actual
    fixed point — split assignments included — not just the argmax.
    """

    def __init__(
        self,
        n_features: int,
        cluster_ids: Sequence[int],
        *,
        l2: float = 1e-3,
        min_confidence: float = 1.25,
    ) -> None:
        if n_features <= 0 or not cluster_ids:
            raise ValueError("need n_features > 0 and a non-empty cluster fleet")
        if l2 < 0 or min_confidence < 0:
            raise ValueError("l2 and min_confidence must be >= 0")
        self.n_features = int(n_features)
        self.cluster_ids = tuple(int(c) for c in cluster_ids)
        self.l2 = float(l2)
        #: Seed-confidence guard in units of the uniform probability: a
        #: seed is offered only when the mean top probability over the up
        #: clusters exceeds ``min_confidence / m`` — an untrained or
        #: washed-out head (≈ uniform, top ≈ 1/m) declines.
        self.min_confidence = float(min_confidence)
        M = len(self.cluster_ids)
        self.W = np.zeros((self.n_features, M))
        self.b = np.zeros(M)
        self.mean = np.zeros(self.n_features)
        self.std = np.ones(self.n_features)
        self.trained = False
        self.fits = 0

    @property
    def M(self) -> int:
        return len(self.cluster_ids)

    # ------------------------------------------------------------------ #
    # Training.
    # ------------------------------------------------------------------ #

    def fit(
        self,
        Z: np.ndarray,
        columns: np.ndarray,
        *,
        epochs: int = 120,
        lr: float = 0.5,
    ) -> "WarmStartHead":
        """Full-batch gradient descent on soft-target cross-entropy.

        ``Z`` is (n, d) raw task features; ``columns`` is (n, M) relaxed
        assignment columns (each row on the simplex).  Deterministic:
        refitting on the same labels reproduces the same weights.
        """
        Z = np.asarray(Z, dtype=np.float64)
        C = np.asarray(columns, dtype=np.float64)
        if Z.ndim != 2 or Z.shape[1] != self.n_features:
            raise ValueError(f"Z must be (n, {self.n_features}), got {Z.shape}")
        if C.shape != (Z.shape[0], self.M):
            raise ValueError(f"columns must be ({Z.shape[0]}, {self.M}), got {C.shape}")
        if epochs <= 0 or lr <= 0:
            raise ValueError("epochs and lr must be positive")
        n = Z.shape[0]
        self.mean = Z.mean(axis=0)
        self.std = np.maximum(Z.std(axis=0), 1e-8)
        Zs = (Z - self.mean) / self.std
        # Restart from zero each refit: the label buffer is the state, the
        # weights a pure function of it (replayable retraining).
        W = np.zeros_like(self.W)
        b = np.zeros_like(self.b)
        for _ in range(int(epochs)):
            logits = Zs @ W + b
            logits -= logits.max(axis=1, keepdims=True)
            P = np.exp(logits)
            P /= P.sum(axis=1, keepdims=True)
            G = (P - C) / n
            W -= lr * (Zs.T @ G + self.l2 * W)
            b -= lr * G.sum(axis=0)
        self.W, self.b = W, b
        self.trained = True
        self.fits += 1
        return self

    # ------------------------------------------------------------------ #
    # Seeding.
    # ------------------------------------------------------------------ #

    def predict_columns(self, Z: np.ndarray) -> np.ndarray:
        """Predicted (n, M) assignment columns over the full fleet."""
        Zs = (np.asarray(Z, dtype=np.float64) - self.mean) / self.std
        logits = Zs @ self.W + self.b
        logits -= logits.max(axis=1, keepdims=True)
        P = np.exp(logits)
        P /= P.sum(axis=1, keepdims=True)
        return P

    def seed(
        self, tasks: "Sequence[Task]", cluster_ids: Sequence[int]
    ) -> "np.ndarray | None":
        """A column-stochastic (m, k) warm start for a window, or ``None``.

        ``cluster_ids`` are the window's up clusters; rows are sliced out
        of the full-fleet prediction and renormalized.  Declines when the
        head is untrained, a cluster is unknown, or the confidence guard
        fails — the caller falls through to a cold start.
        """
        if not self.trained or not tasks:
            return None
        pos = {c: i for i, c in enumerate(self.cluster_ids)}
        try:
            rows = [pos[int(c)] for c in cluster_ids]
        except KeyError:
            return None
        P = self.predict_columns(np.stack([t.features for t in tasks]))
        sub = P[:, rows]
        totals = sub.sum(axis=1, keepdims=True)
        if np.any(totals <= 0):
            return None
        sub = sub / totals
        m = len(rows)
        if float(sub.max(axis=1).mean()) < self.min_confidence / m:
            return None
        X0 = sub.T  # (m, k)
        X0 = np.maximum(X0, _COL_FLOOR)
        X0 /= X0.sum(axis=0, keepdims=True)
        return X0

    # ------------------------------------------------------------------ #
    # Serialization (registry checkpoint artifact).
    # ------------------------------------------------------------------ #

    def digest(self) -> str:
        """Deterministic SHA-256 over weights, standardizer and fleet."""
        h = hashlib.sha256()
        for arr in (self.W, self.b, self.mean, self.std):
            h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
        h.update(np.asarray(self.cluster_ids, dtype=np.int64).tobytes())
        return h.hexdigest()

    def save(self, path: "str | os.PathLike[str]") -> None:
        np.savez(
            path, W=self.W, b=self.b, mean=self.mean, std=self.std,
            cluster_ids=np.asarray(self.cluster_ids, dtype=np.int64),
            meta=np.asarray([self.l2, self.min_confidence, float(self.trained)]),
        )

    @classmethod
    def load(cls, path: "str | os.PathLike[str]") -> "WarmStartHead":
        with np.load(path) as data:
            l2, min_confidence, trained = (float(v) for v in data["meta"])
            head = cls(
                n_features=data["W"].shape[0],
                cluster_ids=[int(c) for c in data["cluster_ids"]],
                l2=l2, min_confidence=min_confidence,
            )
            head.W = data["W"]
            head.b = data["b"]
            head.mean = data["mean"]
            head.std = data["std"]
            head.trained = bool(trained)
        return head

    def __repr__(self) -> str:
        return (
            f"WarmStartHead(d={self.n_features}, M={self.M}, "
            f"trained={self.trained}, fits={self.fits})"
        )
