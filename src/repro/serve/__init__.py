"""repro.serve — the online serving layer.

Turns the batch reproduction into a continuously operating platform
service (ROADMAP north star; see DESIGN.md §10):

- :mod:`repro.serve.dispatcher` — event-driven micro-batching dispatch
  loop with bounded admission, load shedding, and cluster dropout/rejoin
  handling;
- :mod:`repro.serve.cache` — warm-start solver cache (previous window's
  relaxed columns + step memory) and predictor forward memoization;
- :mod:`repro.serve.registry` — versioned predictor checkpoint registry
  with mid-run hot-swap;
- :mod:`repro.serve.loadgen` — Poisson/bursty/diurnal load generation and
  the ``repro serve bench`` throughput/latency soak benchmark;
- :mod:`repro.serve.config` — the typed :class:`ServeConfig` facade and
  :func:`build_platform`, the one-call constructor wiring dispatcher,
  quality monitor, checkpoint registry, and the closed-loop retraining
  controller together.
"""

from repro.serve.cache import (
    PredictionMemo,
    WarmStartCache,
    batch_size_bucket,
    make_cache_key,
)
from repro.serve.dispatcher import (
    Dispatcher,
    DispatcherConfig,
    Outage,
    ServeCallback,
    ServeRecord,
    ServeStats,
    WindowSnapshot,
)
from repro.serve.loadgen import (
    BurstyLoad,
    DiurnalLoad,
    PoissonLoad,
    make_load,
    run_scaling_benchmark,
    run_serve_benchmark,
)
from repro.serve.config import Platform, ServeConfig, build_platform, build_stack
from repro.serve.registry import (
    CHECKPOINT_FORMAT,
    CheckpointInfo,
    ModelRegistry,
    weights_digest,
)
from repro.serve.warmstart import WarmStartHead

__all__ = [
    "ServeConfig",
    "Platform",
    "build_platform",
    "build_stack",
    "Dispatcher",
    "DispatcherConfig",
    "Outage",
    "ServeRecord",
    "ServeStats",
    "ServeCallback",
    "WindowSnapshot",
    "WarmStartCache",
    "WarmStartHead",
    "PredictionMemo",
    "batch_size_bucket",
    "make_cache_key",
    "ModelRegistry",
    "CheckpointInfo",
    "CHECKPOINT_FORMAT",
    "weights_digest",
    "PoissonLoad",
    "BurstyLoad",
    "DiurnalLoad",
    "make_load",
    "run_serve_benchmark",
    "run_scaling_benchmark",
]
