"""Versioned predictor checkpoint registry with hot-swap support.

A serving platform retrains its predictors periodically (nightly, or on
drift alarms) while the dispatcher keeps matching traffic.  This registry
gives that loop a durable handoff point, layered on
:mod:`repro.nn.serialization`:

- one directory per version (``v0001``, ``v0002``, ...) holding the
  per-cluster time/reliability ``.npz`` state dicts;
- a ``meta.json`` metadata header per version: checkpoint format, git SHA
  and interpreter (via :func:`repro.telemetry.run_metadata`), the training
  config repr, arbitrary metrics, cluster/parameter counts, an optional
  human tag, a deterministic **weights digest** (SHA-256 over parameter
  names and raw array bytes — stable across re-runs, unlike npz file
  bytes, whose zip headers embed timestamps) and an optional **parent**
  version recording retrain lineage;
- a **live pointer** (``live.json``) naming the version production
  traffic should load.  Registering a checkpoint never moves the pointer:
  the canary gate of :mod:`repro.retrain` promotes versions explicitly
  via :meth:`set_live`, and :meth:`rollback` walks the pointer back along
  the lineage chain — so canary-rejected candidates can be kept for audit
  without ever becoming the serving default;
- ``load_into`` restores a version into any trained method *in place*, so
  a running :class:`~repro.serve.dispatcher.Dispatcher` can hot-swap
  models between windows without rebuilding its queue or cache state.

Any object exposing per-cluster :class:`~repro.predictors.models.PredictorPair`
objects works as a source/target: a plain list of pairs, or a method with
a ``pairs`` property (TSM) / ``_pairs`` attribute (MFCP).

Not to be confused with :mod:`repro.clusters.catalog` (formerly
``repro.clusters.registry``), the *cluster archetype catalog* — this
module stores model checkpoints, that one hardware definitions.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.nn.serialization import load_module, save_module
from repro.predictors.dataset import Standardizer
from repro.predictors.models import PredictorPair
from repro.telemetry import run_metadata

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointInfo",
    "ModelRegistry",
    "weights_digest",
]

CHECKPOINT_FORMAT = 1

_VERSION_RE = re.compile(r"^v(\d{4,})$")


@dataclass(frozen=True)
class CheckpointInfo:
    """One registered checkpoint: its version id, directory, and metadata."""

    version: str
    path: Path
    meta: dict

    @property
    def digest(self) -> "str | None":
        return self.meta.get("digest")

    @property
    def parent(self) -> "str | None":
        return self.meta.get("parent")


def _pairs_of(source: Any) -> "list[PredictorPair]":
    """Extract the per-cluster predictor pairs of a method (or pass a list)."""
    if isinstance(source, (list, tuple)):
        pairs = list(source)
    else:
        pairs = None
        for attr in ("pairs", "_pairs"):
            candidate = getattr(source, attr, None)
            if candidate:
                pairs = list(candidate)
                break
        if pairs is None:
            raise TypeError(
                f"{type(source).__name__} exposes no trained predictor pairs "
                "(need a list, a 'pairs' property, or a '_pairs' attribute)"
            )
    if not pairs or not all(isinstance(p, PredictorPair) for p in pairs):
        raise TypeError("source must provide a non-empty list of PredictorPair")
    return pairs


def weights_digest(source: Any) -> str:
    """Deterministic SHA-256 (hex) over a source's predictor weights.

    Hashes parameter names and raw array bytes (plus the fitted
    standardizer), so two runs producing identical weights produce
    identical digests regardless of when the checkpoint files were
    written.  This is the identity carried in ``serve/hot_swap`` replay
    breadcrumbs.
    """
    h = hashlib.sha256()
    for i, pair in enumerate(_pairs_of(source)):
        for head_name, head in (("time", pair.time), ("rel", pair.reliability)):
            h.update(f"{i}/{head_name}".encode())
            for name, arr in sorted(head.state_dict().items()):
                h.update(name.encode())
                h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
        std = pair.time.standardizer
        if std is not None:
            h.update(np.ascontiguousarray(std.mean, dtype=np.float64).tobytes())
            h.update(np.ascontiguousarray(std.std, dtype=np.float64).tobytes())
    return h.hexdigest()


class ModelRegistry:
    """Directory-backed, versioned store of predictor checkpoints."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #

    def versions(self) -> "list[str]":
        """Registered versions, oldest first."""
        found = []
        for p in self.root.iterdir():
            if p.is_dir() and _VERSION_RE.match(p.name) and (p / "meta.json").exists():
                found.append(p.name)
        return sorted(found, key=lambda v: int(v[1:]))

    def latest(self) -> "str | None":
        versions = self.versions()
        return versions[-1] if versions else None

    def __len__(self) -> int:
        return len(self.versions())

    def __contains__(self, version: str) -> bool:
        return version in self.versions()

    def info(self, version: str) -> CheckpointInfo:
        path = self.root / version
        meta_path = path / "meta.json"
        if not meta_path.exists():
            raise KeyError(f"unknown checkpoint version {version!r} in {self.root}")
        with open(meta_path) as fh:
            meta = json.load(fh)
        return CheckpointInfo(version=version, path=path, meta=meta)

    # ------------------------------------------------------------------ #
    # Live pointer + lineage.
    # ------------------------------------------------------------------ #

    @property
    def _live_path(self) -> Path:
        return self.root / "live.json"

    def live(self) -> "str | None":
        """Version the live pointer names, or ``None`` when never set."""
        if not self._live_path.exists():
            return None
        with open(self._live_path) as fh:
            return json.load(fh)["version"]

    def set_live(self, version: str) -> CheckpointInfo:
        """Promote ``version`` to live (it must exist); returns its info."""
        info = self.info(version)  # raises KeyError for unknown versions
        with open(self._live_path, "w") as fh:
            json.dump({"version": version}, fh)
        return info

    def rollback(self) -> CheckpointInfo:
        """Move the live pointer to the live version's parent.

        Raises ``KeyError`` when no live version is set and ``ValueError``
        when the live version records no parent (nothing to roll back to).
        """
        live = self.live()
        if live is None:
            raise KeyError(f"registry {self.root} has no live version to roll back")
        parent = self.info(live).parent
        if parent is None:
            raise ValueError(f"live version {live} has no parent to roll back to")
        return self.set_live(parent)

    def lineage(self, version: "str | None" = None) -> "list[str]":
        """Parent chain starting at ``version`` (default live), oldest last."""
        v = version if version is not None else self.live()
        chain: "list[str]" = []
        while v is not None and v not in chain:
            chain.append(v)
            v = self.info(v).parent
        return chain

    # ------------------------------------------------------------------ #
    # Save / load.
    # ------------------------------------------------------------------ #

    def save(
        self,
        source: Any,
        *,
        config: Any = None,
        metrics: "dict[str, float] | None" = None,
        tag: "str | None" = None,
        parent: "str | None" = None,
        warm_start: Any = None,
    ) -> CheckpointInfo:
        """Register the source's current weights as the next version.

        ``config`` is stored as its repr (training configs are dataclasses
        with informative reprs); ``metrics`` is an arbitrary scalar dict
        (validation regret, final loss, ...); ``tag`` is a free-form label
        (e.g. ``"nightly-retrain"``); ``parent`` records the version this
        checkpoint was refit from (retrain lineage — consumed by
        :meth:`rollback`); ``warm_start`` optionally bundles a trained
        :class:`~repro.serve.warmstart.WarmStartHead` with the checkpoint
        (stored as ``warm_start.npz`` plus its digest in the metadata, so
        a hot-swapped head is verifiable the same way predictor weights
        are).  Saving never moves the live pointer.
        """
        pairs = _pairs_of(source)
        if parent is not None and parent not in self:
            raise KeyError(f"parent version {parent!r} is not registered")
        latest = self.latest()
        version = f"v{(int(latest[1:]) + 1) if latest else 1:04d}"
        path = self.root / version
        path.mkdir()
        for i, pair in enumerate(pairs):
            save_module(pair.time, path / f"cluster{i:03d}_time.npz")
            save_module(pair.reliability, path / f"cluster{i:03d}_reliability.npz")
            # The feature standardizer is fitted on the *training set*, not
            # part of the module state dict — without it a restored
            # checkpoint would run the right weights on the wrong feature
            # scale (both predictors of a pair share one standardizer).
            std = pair.time.standardizer
            if std is not None:
                np.savez(path / f"cluster{i:03d}_standardizer.npz",
                         mean=std.mean, std=std.std)
        warm_digest = None
        if warm_start is not None:
            warm_start.save(path / "warm_start.npz")
            warm_digest = warm_start.digest()
        meta = {
            "format": CHECKPOINT_FORMAT,
            "version": version,
            "warm_start_digest": warm_digest,
            "n_clusters": len(pairs),
            "n_parameters": sum(
                p.time.num_parameters() + p.reliability.num_parameters() for p in pairs
            ),
            "metrics": dict(metrics or {}),
            "tag": tag,
            "parent": parent,
            "digest": weights_digest(pairs),
            **run_metadata(config=config),
        }
        with open(path / "meta.json", "w") as fh:
            json.dump(meta, fh, sort_keys=True, indent=2)
        return CheckpointInfo(version=version, path=path, meta=meta)

    def load_into(self, target: Any, version: "str | None" = None) -> CheckpointInfo:
        """Restore a version's weights into ``target`` in place.

        ``version=None`` loads the live version when the pointer is set,
        else the latest.  The target must already have the matching
        architecture (cluster count is validated here; layer shapes by
        :meth:`Module.load_state_dict`).
        """
        if version is None:
            version = self.live() or self.latest()
            if version is None:
                raise KeyError(f"registry {self.root} has no checkpoints")
        info = self.info(version)
        pairs = _pairs_of(target)
        n = info.meta["n_clusters"]
        if len(pairs) != n:
            raise ValueError(
                f"checkpoint {version} holds {n} cluster pairs, target has {len(pairs)}"
            )
        if info.meta.get("format") != CHECKPOINT_FORMAT:
            raise ValueError(
                f"checkpoint {version} has format {info.meta.get('format')!r}, "
                f"this build reads format {CHECKPOINT_FORMAT}"
            )
        for i, pair in enumerate(pairs):
            load_module(pair.time, info.path / f"cluster{i:03d}_time.npz")
            load_module(pair.reliability, info.path / f"cluster{i:03d}_reliability.npz")
            std_path = info.path / f"cluster{i:03d}_standardizer.npz"
            if std_path.exists():
                with np.load(std_path) as data:
                    std = Standardizer(mean=data["mean"], std=data["std"])
                pair.time.standardizer = std
                pair.reliability.standardizer = std
            else:
                pair.time.standardizer = None
                pair.reliability.standardizer = None
        return info

    def load_warm_start(self, version: "str | None" = None):
        """The warm-start head bundled with a version, or ``None``.

        ``version=None`` resolves live-then-latest like :meth:`load_into`.
        Returns ``None`` (rather than raising) when the version carries no
        head: a post-swap dispatcher falls back to cache/cold seeding.
        Raises ``ValueError`` when the stored head does not match the
        digest recorded in the checkpoint metadata (corrupt artifact).
        """
        from repro.serve.warmstart import WarmStartHead

        if version is None:
            version = self.live() or self.latest()
            if version is None:
                raise KeyError(f"registry {self.root} has no checkpoints")
        info = self.info(version)
        path = info.path / "warm_start.npz"
        if not path.exists():
            return None
        head = WarmStartHead.load(path)
        expected = info.meta.get("warm_start_digest")
        if expected is not None and head.digest() != expected:
            raise ValueError(
                f"warm-start head of {version} does not match its recorded "
                f"digest (expected {expected[:12]}…, got {head.digest()[:12]}…)"
            )
        return head
