"""Load generation and the serving throughput/latency benchmark.

Three arrival processes cover the traffic regimes a resource exchange
platform sees in production:

- :class:`PoissonLoad` — homogeneous Poisson stream (the steady state);
- :class:`BurstyLoad` — a two-state Markov-modulated Poisson process
  (quiet base rate, exponential-duration bursts at a high rate) modelling
  batch-submission spikes;
- :class:`DiurnalLoad` — a sinusoidal day/night rate profile realized by
  thinning, modelling the human-driven daily cycle.

All three implement the ``draw(horizon_hours, rng)`` protocol consumed by
both :func:`repro.sim.online.simulate_online` and
:class:`repro.serve.dispatcher.Dispatcher`, and all draws are fully
determined by the passed generator.

:func:`run_serve_benchmark` is the end-to-end soak benchmark behind
``repro serve bench``: it trains a predictor stack, replays the same
arrival stream through the dispatcher cold (no warm-start cache), warm,
warm + quality monitor, warm + stage profiler, and warm + full journey
tracing (causality-audited), and reports sustained
matching throughput, p50/p95/p99 assignment latency, the warm/cold
solver-iteration ratio, and the profiled run's latency budget (per-stage
percentiles, ``coverage_p95``, hook-call overhead bounds) — the numbers
committed to ``BENCH_serve.json``.  Solver iterations are read back from
the telemetry ``serve/solve_iterations`` histogram so the benchmark
measures exactly what production telemetry would.
"""

from __future__ import annotations

import hashlib
import io
import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.telemetry.metrics import quantile
from repro.utils.rng import as_generator
from repro.workloads.taskpool import Task, TaskPool

__all__ = [
    "PoissonLoad",
    "BurstyLoad",
    "DiurnalLoad",
    "make_load",
    "run_serve_benchmark",
    "run_scaling_benchmark",
]


@dataclass(frozen=True)
class PoissonLoad:
    """Homogeneous Poisson arrivals sampled from a task pool."""

    pool: TaskPool
    rate_per_hour: float

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise ValueError(f"rate_per_hour must be > 0, got {self.rate_per_hour}")

    def draw(self, horizon_hours: float, rng: np.random.Generator) -> "list[tuple[float, Task]]":
        if horizon_hours <= 0:
            raise ValueError("horizon must be positive")
        rng = as_generator(rng)
        events: list[tuple[float, Task]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.rate_per_hour))
            if t >= horizon_hours:
                return events
            events.append((t, self.pool.sample_round(1, rng, replace=True)[0]))


@dataclass(frozen=True)
class BurstyLoad:
    """Two-state MMPP: base-rate quiet phases, high-rate burst phases.

    Phases alternate (starting quiet) with exponential durations; within a
    phase arrivals are Poisson at that phase's rate.
    """

    pool: TaskPool
    base_rate: float
    burst_rate: float
    mean_quiet_hours: float = 1.5
    mean_burst_hours: float = 0.5

    def __post_init__(self) -> None:
        if self.base_rate <= 0 or self.burst_rate <= 0:
            raise ValueError("base_rate and burst_rate must be > 0")
        if self.burst_rate <= self.base_rate:
            raise ValueError("burst_rate must exceed base_rate")
        if self.mean_quiet_hours <= 0 or self.mean_burst_hours <= 0:
            raise ValueError("phase durations must be > 0")

    def draw(self, horizon_hours: float, rng: np.random.Generator) -> "list[tuple[float, Task]]":
        if horizon_hours <= 0:
            raise ValueError("horizon must be positive")
        rng = as_generator(rng)
        events: list[tuple[float, Task]] = []
        t = 0.0
        bursting = False
        while t < horizon_hours:
            mean = self.mean_burst_hours if bursting else self.mean_quiet_hours
            phase_end = min(t + float(rng.exponential(mean)), horizon_hours)
            rate = self.burst_rate if bursting else self.base_rate
            s = t
            while True:
                s += float(rng.exponential(1.0 / rate))
                if s >= phase_end:
                    break
                events.append((s, self.pool.sample_round(1, rng, replace=True)[0]))
            t = phase_end
            bursting = not bursting
        return events


@dataclass(frozen=True)
class DiurnalLoad:
    """Sinusoidal day/night rate profile realized by Poisson thinning.

    Instantaneous rate: ``trough + (peak - trough) * (1 + sin(2π(t/period
    + phase))) / 2`` — peak-rate candidates are thinned by the rate ratio,
    the textbook non-homogeneous Poisson construction.
    """

    pool: TaskPool
    peak_rate: float
    trough_rate: float
    period_hours: float = 24.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.trough_rate <= 0 or self.peak_rate <= self.trough_rate:
            raise ValueError("need 0 < trough_rate < peak_rate")
        if self.period_hours <= 0:
            raise ValueError("period_hours must be > 0")

    def rate_at(self, t: float) -> float:
        wave = 0.5 * (1.0 + math.sin(2.0 * math.pi * (t / self.period_hours + self.phase)))
        return self.trough_rate + (self.peak_rate - self.trough_rate) * wave

    def draw(self, horizon_hours: float, rng: np.random.Generator) -> "list[tuple[float, Task]]":
        if horizon_hours <= 0:
            raise ValueError("horizon must be positive")
        rng = as_generator(rng)
        events: list[tuple[float, Task]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.peak_rate))
            if t >= horizon_hours:
                return events
            if rng.random() < self.rate_at(t) / self.peak_rate:
                events.append((t, self.pool.sample_round(1, rng, replace=True)[0]))


def make_load(pattern: str, pool: TaskPool, rate_per_hour: float):
    """Factory keyed by CLI pattern name, normalized to a mean ``rate``."""
    if rate_per_hour <= 0:
        raise ValueError(f"rate_per_hour must be > 0, got {rate_per_hour}")
    if pattern == "poisson":
        return PoissonLoad(pool, rate_per_hour)
    if pattern == "bursty":
        # Quiet 3/4 of the time at half rate, bursts at 2.5x: mean ≈ rate.
        return BurstyLoad(pool, base_rate=0.5 * rate_per_hour,
                          burst_rate=2.5 * rate_per_hour)
    if pattern == "diurnal":
        # Symmetric swing around the requested mean.
        return DiurnalLoad(pool, peak_rate=1.6 * rate_per_hour,
                           trough_rate=0.4 * rate_per_hour)
    raise ValueError(f"unknown load pattern {pattern!r}")


# --------------------------------------------------------------------- #
# The serving benchmark (repro serve bench).
# --------------------------------------------------------------------- #


def run_serve_benchmark(
    *,
    setting: str = "A",
    pattern: str = "poisson",
    rate_per_hour: float = 60.0,
    horizon_hours: float = 12.0,
    pool_size: int = 64,
    max_batch: int = 16,
    max_wait_hours: float = 0.25,
    queue_capacity: int = 128,
    train_epochs: int = 120,
    solver_tol: float = 1e-4,
    solver_max_iters: int = 400,
    seed: int = 0,
    smoke: bool = False,
    out_path: "str | os.PathLike[str] | None" = None,
    flamegraph_path: "str | os.PathLike[str] | None" = None,
) -> dict:
    """Cold-vs-warm serving soak; returns (and optionally writes) the report.

    The same arrival stream and execution RNG replay through fresh
    dispatchers — warm-start cache off, then on, then on with the quality
    monitor, then on with the stage profiler — so the iteration counts
    are paired and every observer mode is gated against the plain warm
    trace.  ``smoke=True`` shrinks every knob for CI.
    ``flamegraph_path`` writes the profiled run's collapsed-stack profile
    there (speedscope / ``flamegraph.pl`` format).

    ``solver_tol``/``solver_max_iters`` define the *serving-grade* solver
    configuration: latency-bound deployments stop the barrier descent at a
    looser tolerance than the offline experiments (the rounded assignment
    is long since stable in the 1e-7 tail), which is also the regime where
    a warm start pays — the seeded solve opens near the optimum and the
    early-stop rule fires quickly.
    """
    from repro.clusters import make_setting
    from repro.matching.relaxed import SolverConfig
    from repro.methods import FitContext, MatchSpec, TSM
    from repro.predictors.training import TrainConfig
    from repro.serve.dispatcher import Dispatcher, DispatcherConfig
    from repro.telemetry import recording

    if smoke:
        rate_per_hour = min(rate_per_hour, 30.0)
        horizon_hours = min(horizon_hours, 2.0)
        pool_size = min(pool_size, 40)
        train_epochs = min(train_epochs, 40)

    pool = TaskPool(pool_size, rng=seed)
    clusters = make_setting(setting)
    train_tasks, _ = pool.split(0.6, rng=seed + 1)
    spec = MatchSpec(solver=SolverConfig(tol=solver_tol, max_iters=solver_max_iters))
    ctx = FitContext.build(clusters, train_tasks, spec, rng=seed + 2)
    method = TSM(train_config=TrainConfig(epochs=train_epochs)).fit(ctx)
    load = make_load(pattern, pool, rate_per_hour)
    events = load.draw(horizon_hours, as_generator(seed + 3))

    # The monitored mode replays the warm configuration with the quality
    # monitor attached (imported lazily: serve must not depend on monitor
    # except here, at the benchmark seam).  It gates two invariants:
    # observation never changes behavior (trace hash equals the warm
    # run's) and monitoring costs < 5% of dispatcher wall time.  The
    # profiled mode replays the warm configuration once more with the
    # stage profiler attached and gates the same trace-identity invariant
    # plus the latency-budget coverage floor.
    from repro.monitor import MonitorConfig, QualityMonitor
    from repro.telemetry.profiler import NULL_PROFILER, StageProfiler

    from repro.telemetry.journey import JourneyRecorder
    from repro.telemetry.journey import audit_journeys as _audit_journeys

    modes: dict[str, dict] = {}
    monitors: dict[str, QualityMonitor] = {}
    hists_by_mode: dict[str, dict] = {}
    profiler: "StageProfiler | None" = None
    journeys_rec: "JourneyRecorder | None" = None
    journeys_stats = None
    for mode, warm in (("cold", False), ("warm", True), ("monitored", True),
                       ("profiled", True), ("journeys", True)):
        cfg = DispatcherConfig(
            max_batch=max_batch,
            max_wait_hours=max_wait_hours,
            queue_capacity=queue_capacity,
            warm_start=warm,
            memoize_predictions=warm,  # memo rides with the cache mode
        )
        callbacks = None
        if mode == "profiled":
            profiler = StageProfiler()
        if mode == "monitored":
            # Serving-grade knobs: hindsight re-solves amortized over many
            # windows and stopped at a coarser tolerance than deployment
            # solves — the gap decomposition needs ~1e-3 accuracy, not a
            # deployment-quality optimum.
            monitors[mode] = QualityMonitor(MonitorConfig(
                sample_every=25,
                solver_config=SolverConfig(tol=1e-3, max_iters=150),
            ))
            callbacks = [monitors[mode]]
        with recording(mode="summary", run=f"serve-bench-{mode}",
                       stream=io.StringIO()) as rec:
            dispatcher = Dispatcher(clusters, method, spec, cfg,
                                    callbacks=callbacks,
                                    profiler=profiler if mode == "profiled" else None)
            if mode == "journeys":
                # sample=1.0 so the conservation audit is exact, and
                # keep=True because the summary-mode recorder drops
                # event lines — the audit reads the in-process copies.
                journeys_rec = JourneyRecorder(
                    1.0, slo_wait_hours=4.0 * max_wait_hours, keep=True)
                dispatcher.journeys = journeys_rec
            wall0 = time.perf_counter()
            stats = dispatcher.run(events, rng=seed + 4)
            run_wall_s = time.perf_counter() - wall0
            hists = rec.aggregate()["histograms"]
        hists_by_mode[mode] = hists
        iters_hist = hists.get("serve/solve_iterations", {"count": 0, "sum": 0.0})
        iters_mean = (
            iters_hist["sum"] / iters_hist["count"] if iters_hist["count"] else 0.0
        )
        decide_total_s = float(sum(stats.decide_seconds))
        modes[mode] = {
            "run_wall_s": round(run_wall_s, 4),
            "callback_seconds": round(stats.callback_seconds, 4),
            "trace_sha256": hashlib.sha256(stats.trace_bytes()).hexdigest(),
            "windows": stats.windows,
            "matched": stats.matched,
            "completed": stats.completed,
            "failed": stats.failed,
            "shed": stats.shed,
            "max_queue_depth": stats.max_queue_depth,
            "solve_iterations_mean": round(iters_mean, 3),
            "decide_total_s": round(decide_total_s, 4),
            "throughput_tasks_per_s": round(
                stats.matched / decide_total_s if decide_total_s else 0.0, 1
            ),
            "assignment_latency_s": {
                k: round(v, 6) for k, v in stats.latency_percentiles().items()
            },
            "mean_wait_hours": round(stats.mean_wait_hours, 4),
            "cache": stats.cache,
            "memo": stats.memo,
        }
        if mode == "journeys":
            journeys_stats = stats
        if mode in monitors:
            summary = monitors[mode].summary()
            modes[mode]["monitor_overhead_frac"] = round(
                stats.callback_seconds / run_wall_s if run_wall_s else 0.0, 4
            )
            modes[mode]["alerts"] = summary["alerts"]
            modes[mode]["windows_sampled"] = summary["attribution"]["sampled"]
        if mode == "profiled":
            budget = stats.profile
            modes[mode]["profile"] = {
                "coverage_p95": round(budget["coverage_p95"], 4),
                "unattributed_frac": round(budget["unattributed"]["frac"], 4),
                "e2e_p95_s": round(budget["e2e"]["p95"], 6),
                "stages": {
                    path: {
                        "total_s": round(s["total_s"], 4),
                        "self_s": round(s["self_s"], 4),
                        "p95_s": round(s["p95"], 6),
                        "calls": s["calls"],
                    }
                    for path, s in budget["stages"].items()
                },
                "sim_stages": {
                    name: {
                        "total_hours": round(s["total_hours"], 4),
                        "p95_hours": round(s["p95"], 4),
                        "calls": s["calls"],
                    }
                    for name, s in budget["sim_stages"].items()
                },
            }

    assert profiler is not None
    if flamegraph_path is not None:
        profiler.write_flamegraph(flamegraph_path)

    # Profiler overhead, bounded the bench_micro way: count the hook calls
    # the profiled run actually made, microbenchmark one disabled and one
    # live hook call, and compare the products against the paired run
    # walls.  Never a wall-clock diff between two runs — on CI machines
    # that signal is noise-dominated.
    n = 50_000
    t0 = time.perf_counter()
    for _ in range(n):
        with NULL_PROFILER.stage("bench"):
            pass
    noop_s = (time.perf_counter() - t0) / n
    probe = StageProfiler()
    t0 = time.perf_counter()
    for _ in range(n):
        with probe.stage("bench"):
            pass
    live_s = (time.perf_counter() - t0) / n
    hook_calls = profiler.events_recorded
    warm_wall = modes["warm"]["run_wall_s"]
    prof_wall = modes["profiled"]["run_wall_s"]
    modes["profiled"]["overhead"] = {
        "hook_calls": hook_calls,
        "noop_call_ns": round(noop_s * 1e9, 1),
        "live_call_ns": round(live_s * 1e9, 1),
        "off_frac_bound": round(hook_calls * noop_s / warm_wall, 6) if warm_wall else 0.0,
        "on_frac_bound": round(hook_calls * live_s / prof_wall, 6) if prof_wall else 0.0,
    }

    # Journey tracing: causality audit over the kept journeys, and the
    # same microbenched overhead methodology.  Journeys off is a single
    # `is None` check per hook site; journeys on is a record() call.
    assert journeys_rec is not None and journeys_stats is not None
    journeys_rec.finish()
    expect = {name: getattr(journeys_stats, name)
              for name in ("arrived", "matched", "completed", "failed",
                           "shed", "requeued", "unserved")}
    audit_problems = _audit_journeys(journeys_rec.kept, expect=expect,
                                     sample=1.0)
    probe_off = None
    t0 = time.perf_counter()
    for _ in range(n):
        if probe_off is not None:
            raise AssertionError
    off_check_s = (time.perf_counter() - t0) / n
    probe = JourneyRecorder(1.0, slo_wait_hours=4.0 * max_wait_hours)
    t0 = time.perf_counter()
    for i in range(n // 2):
        probe.record(i, 0.25, "admitted", 0.25, queue_depth=1)
        probe.record(i, 0.25, "completed", 0.5, window=0, cluster_id=0,
                     requeues=0)
    live_record_s = (time.perf_counter() - t0) / (2 * (n // 2))
    j_calls = journeys_rec.events_recorded
    j_wall = modes["journeys"]["run_wall_s"]
    modes["journeys"].update({
        "audit_pass": not audit_problems,
        "audit_problems": audit_problems[:10],
        "journeys_emitted": journeys_rec.journeys_emitted,
        "journeys_forced": journeys_rec.journeys_forced,
        "exemplar_buckets": len(journeys_rec.exemplars()),
        "overhead": {
            "hook_calls": j_calls,
            "off_check_ns": round(off_check_s * 1e9, 1),
            "live_record_ns": round(live_record_s * 1e9, 1),
            "off_frac_bound": round(j_calls * off_check_s / warm_wall, 6)
            if warm_wall else 0.0,
            "on_frac_bound": round(j_calls * live_record_s / j_wall, 6)
            if j_wall else 0.0,
        },
    })

    # Serving percentiles re-read through the public histogram quantile —
    # the benchmark reports exactly what a scrape of the telemetry
    # aggregate would show (bucket upper bounds, not exact order stats).
    latency_hist = hists_by_mode["monitored"].get("serve/assignment_latency_s")
    if latency_hist is not None:
        modes["monitored"]["assignment_latency_hist"] = {
            "p50": quantile(latency_hist, 0.5),
            "p95": quantile(latency_hist, 0.95),
            "p99": quantile(latency_hist, 0.99),
        }

    cold_it = modes["cold"]["solve_iterations_mean"]
    warm_it = modes["warm"]["solve_iterations_mean"]
    report = {
        "benchmark": "online serving soak: micro-batching dispatcher, warm vs cold solver",
        "setting": setting,
        "pattern": pattern,
        "rate_per_hour": rate_per_hour,
        "horizon_hours": horizon_hours,
        "pool_size": pool_size,
        "max_batch": max_batch,
        "max_wait_hours": max_wait_hours,
        "queue_capacity": queue_capacity,
        "solver_tol": solver_tol,
        "solver_max_iters": solver_max_iters,
        "seed": seed,
        "arrivals": len(events),
        "cold": modes["cold"],
        "warm": modes["warm"],
        "monitored": modes["monitored"],
        "profiled": modes["profiled"],
        "journeys": modes["journeys"],
        "warm_start_iters_speedup": round(cold_it / warm_it, 2) if warm_it else None,
    }
    if out_path is not None:
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def run_scaling_benchmark(
    *,
    sizes: "tuple[tuple[int, int], ...] | None" = None,
    seed: int = 0,
    solver_tol: float = 1e-4,
    solver_max_iters: int = 3000,
    smoke: bool = False,
    out_path: "str | os.PathLike[str] | None" = None,
) -> dict:
    """Scalar-vs-blocks window-solve sweep over growing (tasks, clusters).

    One cold solve per mode on each instance — exactly the cache-miss
    window the decomposition targets.  Instances use the specialist fleet
    (:func:`repro.clusters.make_specialist_pool`): family-sharded cluster
    pools whose viability graph splits into per-family components, the
    regime the ROADMAP's sharded-platform item serves.  ``sizes`` are
    ``(n_tasks, m_clusters)`` pairs; the defaults sweep to 200x200.

    ``solver_max_iters`` defaults far above the serving-grade cap so the
    tolerance early-stop — not the cap — ends both solves and the
    iteration counts are comparable; on stiff 200-task instances the
    dense solver genuinely needs thousands of normalized steps.
    """
    from repro.clusters import make_specialist_pool
    from repro.matching.blocks import solve_relaxed_blocks
    from repro.matching.relaxed import SolverConfig, solve_relaxed
    from repro.methods import MatchSpec

    if sizes is None:
        sizes = ((32, 8), (64, 16)) if smoke else (
            (48, 12), (96, 24), (128, 48), (200, 200))
    solver = SolverConfig(tol=solver_tol, max_iters=solver_max_iters)
    spec = MatchSpec(solver=solver)
    entries = []
    for n_tasks, m_clusters in sizes:
        pool = TaskPool(n_tasks, rng=seed)
        clusters = make_specialist_pool(m_clusters)
        tasks = pool.tasks
        T = np.stack([c.true_times(tasks) for c in clusters])
        A = np.stack([c.true_reliabilities(tasks) for c in clusters])
        problem = spec.build_problem(T, A)

        wall0 = time.perf_counter()
        scalar = solve_relaxed(problem, solver)
        scalar_wall = time.perf_counter() - wall0
        wall0 = time.perf_counter()
        blocks = solve_relaxed_blocks(problem, solver)
        blocks_wall = time.perf_counter() - wall0

        ratio = scalar.iterations / blocks.iterations if blocks.iterations else None
        entries.append({
            "tasks": n_tasks,
            "clusters": m_clusters,
            "scalar": {
                "iterations": scalar.iterations,
                "converged": bool(scalar.converged),
                "wall_s": round(scalar_wall, 4),
                "objective": round(float(scalar.objective), 6),
            },
            "blocks": {
                "iterations": blocks.iterations,
                "converged": bool(blocks.converged),
                "wall_s": round(blocks_wall, 4),
                "objective": round(float(blocks.objective), 6),
                "n_blocks": blocks.n_blocks,
                "block_shapes": [list(s) for s in blocks.block_shapes],
                "batched_groups": blocks.batched_groups,
            },
            "iters_ratio": round(ratio, 2) if ratio else None,
            # Negative = the decomposed solve reached a *better* barrier
            # value (per-block step normalization is not dominated by the
            # globally stiffest component).
            "objective_gap_rel": round(
                (float(blocks.objective) - float(scalar.objective))
                / max(abs(float(scalar.objective)), 1e-12), 6),
        })
    ratios = [e["iters_ratio"] for e in entries if e["iters_ratio"]]
    report = {
        "benchmark": ("window-solve scaling: dense scalar vs block-decomposed "
                      "batched solve, cold starts on specialist fleets"),
        "solver_tol": solver_tol,
        "solver_max_iters": solver_max_iters,
        "seed": seed,
        "entries": entries,
        "min_iters_ratio": round(min(ratios), 2) if ratios else None,
        "max_iters_ratio": round(max(ratios), 2) if ratios else None,
    }
    if out_path is not None:
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report
