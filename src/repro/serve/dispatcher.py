"""Event-driven micro-batching dispatcher: the platform's serving loop.

The offline experiments answer "match these N tasks once"; a deployed
exchange platform answers "keep matching whatever arrives, forever".  This
module provides that loop over simulated time:

- **admission control** — a bounded queue with two deterministic shedding
  policies (``"reject"`` drops the incoming job, ``"drop_oldest"`` evicts
  the longest-waiting admitted job), so the queue depth is bounded by
  construction under any overload;
- **micro-batching windows** — a window closes on whichever trigger fires
  first: the queue reaching ``max_batch`` (size trigger) or the oldest
  queued job waiting ``max_wait_hours`` (time trigger).  A configurable
  per-window ``dispatch_overhead_hours`` models the platform-side decision
  cost and creates genuine backpressure: while the dispatcher is "busy",
  arrivals accumulate and shedding can kick in;
- **cluster dropout/rejoin** — an :class:`Outage` takes a cluster out of
  the matchable set; jobs scheduled on it that had not finished are
  *orphaned* and re-queued at the front of the admission queue (re-queues
  bypass the capacity check and are never shed, so dropout loses zero
  tasks).  On rejoin the cluster starts clean at the rejoin time;
- **warm-started solves** — each window's relaxed solve is seeded from the
  :class:`~repro.serve.cache.WarmStartCache` (previous window's columns +
  step memory) and predictor forwards come from the
  :class:`~repro.serve.cache.PredictionMemo`;
- **checkpoint hot-swap** — a ``swap_schedule`` mapping window index →
  registry version reloads predictor weights *between* windows and bumps
  the memo, modelling periodic retraining without stopping the loop; a
  serving observer (the :mod:`repro.retrain` controller) can instead call
  :meth:`Dispatcher.request_swap` mid-run, which applies at the start of
  the next dispatched window through the same mechanics.  Every applied
  swap leaves a ``serve/hot_swap`` breadcrumb carrying the checkpoint's
  deterministic weights digest, so swapped runs stay replayable.

Everything is driven by seeded RNG streams and processed in a fixed event
order, so a run is bit-reproducible: :meth:`ServeStats.trace_bytes` is the
canonical assignment trace two equal-seed runs must agree on byte-for-byte
(wall-clock decide latencies are kept out of the trace for that reason).
"""

from __future__ import annotations

import time
from collections import deque
from itertools import islice
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.clusters.cluster import Cluster
from repro.matching.objectives import reliability_value
from repro.matching.rounding import labels_from_assignment
from repro.methods.base import BaseMethod, MatchSpec
from repro.serve.cache import PredictionMemo, WarmStartCache, make_cache_key
from repro.serve.registry import ModelRegistry
from repro.telemetry import ITER_BUCKETS, SIZE_BUCKETS, TIME_BUCKETS_S, get_recorder
from repro.telemetry.profiler import NULL_PROFILER, StageProfiler
from repro.utils.rng import as_generator
from repro.workloads.taskpool import Task

__all__ = [
    "Outage",
    "DispatcherConfig",
    "ServeRecord",
    "ServeStats",
    "WindowSnapshot",
    "ServeCallback",
    "Dispatcher",
]

_EPS = 1e-12


@dataclass(frozen=True)
class Outage:
    """One cluster unavailability interval [start, end) in platform hours."""

    cluster_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"need 0 <= start < end, got [{self.start}, {self.end})")


@dataclass(frozen=True)
class DispatcherConfig:
    """Operating parameters of the serving loop."""

    max_batch: int = 32  # size trigger: dispatch as soon as this many queue up
    max_wait_hours: float = 0.25  # time trigger: oldest admitted job's max wait
    queue_capacity: int = 256  # admission bound (re-queues are exempt)
    shed_policy: str = "reject"  # "reject" | "drop_oldest"
    #: Simulated platform-side decision cost per window.  While a window is
    #: being decided the dispatcher accepts no new window, so arrivals pile
    #: up — this is what makes overload (and shedding) reachable.
    dispatch_overhead_hours: float = 0.0
    failures: bool = True
    jitter_std: float = 0.0  # execution-time lognormal jitter (0 = deterministic)
    warm_start: bool = True
    memoize_predictions: bool = True
    #: ``"scalar"`` = one dense solve per window (the historical path,
    #: byte-identical traces); ``"blocks"`` = decompose into viability
    #: components and solve them as one batched float32 instance
    #: (:func:`repro.matching.blocks.solve_relaxed_blocks`).
    solve_mode: str = "scalar"
    #: Seed cache-miss windows from the learned warm-start head (the
    #: dispatcher's ``warm_model``) instead of going cold.
    learned_seeds: bool = False
    #: Per-task journey tracing (:mod:`repro.telemetry.journey`).  The
    #: kept fraction of uneventful journeys; shed / requeued / long-wait
    #: journeys are always kept.  ``0.0`` disables tracing entirely (one
    #: ``is not None`` check per decision point — and journeys never
    #: touch the RNG or the records, so the trace stays byte-identical
    #: either way).
    journey_sample: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch <= 0 or self.queue_capacity <= 0:
            raise ValueError("max_batch and queue_capacity must be positive")
        if self.max_wait_hours <= 0:
            raise ValueError("max_wait_hours must be positive")
        if self.shed_policy not in ("reject", "drop_oldest"):
            raise ValueError(f"unknown shed_policy {self.shed_policy!r}")
        if not 0.0 <= self.journey_sample <= 1.0:
            raise ValueError(
                f"journey_sample must be in [0, 1], got {self.journey_sample}")
        if self.dispatch_overhead_hours < 0 or self.jitter_std < 0:
            raise ValueError("dispatch_overhead_hours and jitter_std must be >= 0")
        if self.solve_mode not in ("scalar", "blocks"):
            raise ValueError(f"solve_mode must be 'scalar' or 'blocks', "
                             f"got {self.solve_mode!r}")


@dataclass(frozen=True)
class ServeRecord:
    """Final execution record of one served task (its last dispatch)."""

    task_id: int
    window: int
    cluster_id: int
    arrival: float
    dispatched: float
    start: float
    end: float
    success: bool
    requeues: int


@dataclass
class ServeStats:
    """Aggregate outcome of a dispatcher run."""

    arrived: int = 0
    matched: int = 0  # dispatches, counting re-dispatch after requeue
    completed: int = 0
    failed: int = 0
    shed: int = 0
    requeued: int = 0
    unserved: int = 0  # still queued when the run ended (no cluster up)
    windows: int = 0
    swaps: int = 0
    max_queue_depth: int = 0
    total_wait_hours: float = 0.0
    total_flow_hours: float = 0.0
    decide_seconds: list[float] = field(default_factory=list, repr=False)
    #: One dict per applied hot-swap: ``{window, version, digest, reason}``.
    #: Simulated-window quantities only, so a replay must reproduce the
    #: sequence exactly (checked by ``TraceReplay.verify``).
    swap_events: list[dict] = field(default_factory=list, repr=False)
    #: Wall-clock seconds spent inside serve callbacks (snapshot build +
    #: observer work); 0.0 when no callbacks are registered.  Excluded
    #: from the canonical trace — wall clock never enters
    #: :meth:`trace_bytes`.
    callback_seconds: float = 0.0
    solver_iterations: list[int] = field(default_factory=list, repr=False)
    batch_sizes: list[int] = field(default_factory=list, repr=False)
    #: Windows by warm-start seed source: ``{"cache": n, "learned": n,
    #: "cold": n}`` (default-pipeline windows only).
    seed_sources: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    memo: dict = field(default_factory=dict)
    #: Latency budget from an attached :class:`StageProfiler`
    #: (:meth:`StageProfiler.budget`); empty when profiling is off.
    #: Wall-clock only — never part of :meth:`trace_bytes`.
    profile: dict = field(default_factory=dict, repr=False)
    records: list[ServeRecord] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------ #

    @property
    def conserved(self) -> bool:
        """No task lost: every arrival is served, shed, or still queued."""
        return self.arrived == self.completed + self.failed + self.shed + self.unserved

    @property
    def mean_wait_hours(self) -> float:
        served = self.completed + self.failed
        if served == 0:
            raise ValueError("no served jobs")
        return self.total_wait_hours / served

    @property
    def mean_flow_hours(self) -> float:
        served = self.completed + self.failed
        if served == 0:
            raise ValueError("no served jobs")
        return self.total_flow_hours / served

    @property
    def mean_solver_iterations(self) -> float:
        if not self.solver_iterations:
            raise ValueError("no solver windows recorded")
        return float(np.mean(self.solver_iterations))

    def latency_percentiles(self, qs: Sequence[float] = (50, 95, 99)) -> dict:
        """Wall-clock assignment (decide) latency percentiles in seconds."""
        if not self.decide_seconds:
            return {f"p{int(q)}": 0.0 for q in qs}
        arr = np.asarray(self.decide_seconds)
        return {f"p{int(q)}": float(np.percentile(arr, q)) for q in qs}

    def trace_bytes(self) -> bytes:
        """Canonical byte serialization of the assignment trace.

        Contains only simulated-time quantities (never wall clock), so two
        equal-seed runs must produce identical bytes — the determinism
        soak test's contract.
        """
        lines = [
            f"{r.task_id},{r.window},{r.cluster_id},{r.arrival:.12g},"
            f"{r.dispatched:.12g},{r.start:.12g},{r.end:.12g},"
            f"{int(r.success)},{r.requeues}"
            for r in self.records
        ]
        return "\n".join(lines).encode()

    def summary(self) -> str:
        pct = self.latency_percentiles()
        return (
            f"windows={self.windows} arrived={self.arrived} done={self.completed} "
            f"failed={self.failed} shed={self.shed} requeued={self.requeued} "
            f"unserved={self.unserved} max_depth={self.max_queue_depth} "
            f"p95_decide={pct['p95'] * 1e3:.1f}ms"
        )


@dataclass(frozen=True)
class WindowSnapshot:
    """Everything one dispatched window exposes to serving observers.

    Handed to :class:`ServeCallback.on_window` right after the window's
    jobs are scheduled.  All quantities are simulated-time (no wall
    clock), so anything derived from a snapshot stream is replayable:
    the same arrival log re-driven through the dispatcher yields the
    same snapshot sequence.  Matrix rows follow ``cluster_ids`` (the
    clusters that were up for this window); per-task arrays follow
    ``task_ids`` (the window's batch order).

    ``T_hat``/``A_hat`` are the predicted matrices the decision used —
    ``None`` for methods with a custom ``decide`` override that never
    predicts.  ``realized_hours`` is the *busy* time each job actually
    occupied its cluster (execution jitter included; truncated for
    failed jobs), i.e. what a real platform would observe, while
    ``T``/``A`` carry the ground-truth expectations.
    """

    window: int
    time: float  # dispatch time in platform hours
    cluster_ids: tuple[int, ...]
    task_ids: tuple[int, ...]
    T: np.ndarray  # true expected times, shape (m, k)
    A: np.ndarray  # true reliabilities, shape (m, k)
    T_hat: "np.ndarray | None"  # predicted times (m, k) or None
    A_hat: "np.ndarray | None"
    X: np.ndarray  # executed binary assignment, shape (m, k)
    gamma: float  # reliability threshold of the window's problem
    reliability_slack: float  # g(X, A_true) - gamma of the executed matching
    arrival: np.ndarray  # per-task arrival hour, shape (k,)
    start: np.ndarray  # per-task execution start hour
    end: np.ndarray  # per-task execution end hour
    realized_hours: np.ndarray  # per-task busy time actually consumed
    success: np.ndarray  # per-task bool outcome
    requeues: np.ndarray  # per-task prior requeue count
    queue_depth: int  # admission queue depth after the batch left
    arrived_total: int  # cumulative arrivals when the window closed
    shed_total: int  # cumulative sheds when the window closed
    #: Raw (unstandardized) task feature matrix, shape (k, d) in
    #: ``task_ids`` order — what the label harvester of the retraining
    #: loop pairs with ``realized_hours``/``success`` to form training
    #: examples.  ``None`` only for snapshots built by old code paths.
    features: "np.ndarray | None" = None
    #: Relaxed interior solution of the window's decision solve, shape
    #: (m, k) — the soft assignment columns the learned warm-start
    #: trainer (:mod:`repro.retrain.warmstart`) harvests as labels.
    #: ``None`` for custom-``decide`` methods (no relaxed solve ran).
    X_relaxed: "np.ndarray | None" = None

    @property
    def batch_size(self) -> int:
        return len(self.task_ids)

    @property
    def wait_hours(self) -> np.ndarray:
        """Per-task admission-to-dispatch wait."""
        return self.time - self.arrival


class ServeCallback:
    """No-op observer base for the serving loop.

    The monitor layer (:mod:`repro.monitor`) subclasses this; the
    dispatcher itself depends on nothing above :mod:`repro.serve`.  With
    no callbacks registered the dispatcher skips snapshot construction
    entirely — the disabled mode costs one truthiness check per window,
    mirroring the :class:`repro.telemetry.NullRecorder` pattern.
    """

    def on_window(self, snapshot: WindowSnapshot) -> None:
        """One micro-batch window was dispatched and scheduled."""

    def on_requeue(self, task_id: int, arrival: float, t: float) -> None:
        """A scheduled task was orphaned by a dropout and re-queued.

        Its earlier dispatch never completed, so any label derived from
        that dispatch's snapshot is void — the retraining loop's harvester
        uses this hook to discard it before it can time-travel into a
        training set.
        """

    def on_finish(self, stats: "ServeStats") -> None:
        """The run drained; ``stats`` is final (records sorted)."""


@dataclass
class _Queued:
    task: Task
    arrival: float
    enqueued_at: float
    requeues: int = 0


@dataclass
class _Scheduled:
    task: Task
    window: int
    cluster_id: int
    arrival: float
    dispatched: float
    start: float
    end: float
    success: bool
    requeues: int


class Dispatcher:
    """Continuously operating micro-batching matchmaker (module docstring)."""

    def __init__(
        self,
        clusters: "list[Cluster]",
        method: BaseMethod,
        spec: MatchSpec,
        config: DispatcherConfig | None = None,
        *,
        cache: WarmStartCache | None = None,
        memo: PredictionMemo | None = None,
        registry: ModelRegistry | None = None,
        swap_schedule: "dict[int, str] | None" = None,
        callbacks: "Sequence[ServeCallback] | None" = None,
        warm_model=None,
        block_config=None,
        profiler: "StageProfiler | None" = None,
    ) -> None:
        if not clusters:
            raise ValueError("clusters must be non-empty")
        if swap_schedule and registry is None:
            raise ValueError("swap_schedule requires a registry")
        self.clusters = list(clusters)
        self.method = method
        self.spec = spec
        self.config = config or DispatcherConfig()
        # Explicit None checks: an *empty* cache/memo is falsy (len == 0),
        # so `cache or WarmStartCache()` would discard a caller's instance.
        if not self.config.warm_start:
            self.cache = None
        else:
            self.cache = WarmStartCache() if cache is None else cache
        if not self.config.memoize_predictions:
            self.memo = None
        else:
            self.memo = PredictionMemo() if memo is None else memo
        self.registry = registry
        self.swap_schedule = dict(swap_schedule or {})
        #: Learned warm-start head (``seed(tasks, cluster_ids)`` protocol,
        #: see :class:`repro.serve.warmstart.WarmStartHead`).  Consulted on
        #: cache misses when ``config.learned_seeds`` is set; installed
        #: here by the :class:`repro.retrain.warmstart.WarmStartTrainer`
        #: callback or loaded from a registry checkpoint on hot-swap.
        self.warm_model = warm_model
        #: Decomposition knobs for ``solve_mode="blocks"`` (``None`` uses
        #: :class:`repro.matching.blocks.BlockConfig` defaults).
        self.block_config = block_config
        #: Bumped on every applied hot-swap; observers holding labels
        #: harvested from pre-swap windows key invalidation off this.
        self.swap_epoch = 0
        #: Swap requested mid-run (``(version, reason)``), applied at the
        #: start of the next dispatched window.
        self._pending_swap: "tuple[str, str] | None" = None
        #: Latency-budget profiler (:mod:`repro.telemetry.profiler`).
        #: ``None`` disables profiling: the hooks degrade to the shared
        #: no-op :data:`NULL_PROFILER` (a few calls per window).  The
        #: profiler records wall clock only and draws no randomness, so
        #: attaching it never changes the assignment trace.
        self.profiler = profiler
        #: Per-task journey tracer (:mod:`repro.telemetry.journey`), or
        #: ``None`` when ``config.journey_sample == 0`` — call sites pay
        #: one ``is not None`` check in the disabled mode.  Long-wait
        #: journeys are force-kept from 4x the window wait trigger: a
        #: task that outwaited four dispatch deadlines is tail, not noise.
        self.journeys: "JourneyRecorder | None" = None
        if self.config.journey_sample > 0.0:
            from repro.telemetry.journey import JourneyRecorder

            self.journeys = JourneyRecorder(
                self.config.journey_sample,
                slo_wait_hours=4.0 * self.config.max_wait_hours)
        self.callbacks: "list[ServeCallback]" = list(callbacks or ())
        # The warm-start/memo hooks only apply to methods running the
        # default predict→solve→round pipeline; custom decide() overrides
        # (e.g. Oracle) are dispatched as-is.
        self._default_decide = type(method).decide is BaseMethod.decide

    # ------------------------------------------------------------------ #

    def request_swap(self, version: str, *, reason: str = "retrain") -> None:
        """Queue a checkpoint hot-swap for the next dispatched window.

        The closed-loop retrainer calls this from inside a serve callback
        (i.e. mid-window); applying the swap immediately would tear the
        weights out from under the window being observed, so it is
        deferred to the next window's dispatch — the same boundary
        ``swap_schedule`` swaps at.  A second request before the next
        window replaces the first (last writer wins).
        """
        if self.registry is None:
            raise ValueError("request_swap requires a registry")
        self._pending_swap = (str(version), str(reason))

    def run(
        self,
        events: "Iterable[tuple[float, Task]]",
        rng: "np.random.Generator | int | None" = None,
        outages: "Sequence[Outage] | None" = None,
    ) -> ServeStats:
        """Consume an arrival stream to exhaustion and return statistics.

        ``events`` is a time-ordered (or orderable) iterable of
        ``(arrival_hour, task)`` pairs, e.g. from
        :mod:`repro.serve.loadgen`; ``outages`` take clusters down and
        back up at fixed times.  The queue is flushed at the end of the
        stream; only tasks with no up cluster left remain ``unserved``.
        """
        cfg = self.config
        rng = as_generator(rng)
        stats = ServeStats()
        rec = get_recorder()
        prof = self.profiler if self.profiler is not None else NULL_PROFILER
        jt = self.journeys

        # Merged primary event list.  Priority orders simultaneous events
        # deterministically: rejoins first (capacity returns), then
        # arrivals, then dropouts.
        evs: list[tuple[float, int, int, str, object]] = []
        for i, (t, task) in enumerate(events):
            evs.append((float(t), 1, i, "arrive", task))
        for i, o in enumerate(outages or ()):
            if not any(c.cluster_id == o.cluster_id for c in self.clusters):
                raise ValueError(f"outage for unknown cluster {o.cluster_id}")
            evs.append((o.end, 0, i, "up", o.cluster_id))
            evs.append((o.start, 2, i, "down", o.cluster_id))
        evs.sort(key=lambda e: (e[0], e[1], e[2]))

        # Replay breadcrumbs (JSONL mode): the outage schedule up front,
        # one event per arrival below — together with the run header they
        # are what :class:`repro.monitor.replay.TraceReplay` inverts back
        # into an arrival stream + outage schedule.
        if rec.enabled:
            for o in outages or ():
                rec.event("serve/outage", cluster_id=o.cluster_id,
                          start=o.start, end=o.end)

        queue: "deque[_Queued]" = deque()
        down: set[int] = set()
        free_at = {c.cluster_id: 0.0 for c in self.clusters}
        schedule: dict[int, list[_Scheduled]] = {c.cluster_id: [] for c in self.clusters}
        busy_until = 0.0
        t_last = 0.0
        # Last simulated time the up-set changed (dropout or rejoin).  No
        # dispatch may predate it: a window that ripened while every
        # cluster was down must wait for the rejoin, and orphans requeued
        # by a dropout must not be re-dispatched before the dropout.
        fleet_changed_at = 0.0

        def any_up() -> bool:
            return len(down) < len(self.clusters)

        def note_depth() -> None:
            stats.max_queue_depth = max(stats.max_queue_depth, len(queue))

        def ripe_at() -> "float | None":
            """Earliest simulated time the next window can dispatch."""
            if not queue or not any_up():
                return None
            if len(queue) >= cfg.max_batch:
                # Size-triggered: as soon as not busy, but never before
                # every job of the would-be batch (the queue's first
                # max_batch entries) was enqueued — else the trace would
                # record dispatched < arrival.
                newest = max(q.enqueued_at for q in islice(queue, cfg.max_batch))
                return max(busy_until, newest, fleet_changed_at)
            earliest = min(q.enqueued_at for q in queue)
            return max(earliest + cfg.max_wait_hours, busy_until, fleet_changed_at)

        def shed_one() -> None:
            stats.shed += 1
            if rec.enabled:
                rec.counter_add("serve/shed")

        def admit(task: Task, now: float) -> None:
            stats.arrived += 1
            if len(queue) >= cfg.queue_capacity:
                if cfg.shed_policy == "reject":
                    shed_one()
                    if jt is not None:
                        jt.record(task.task_id, now, "shed", now,
                                  reason="reject", queue_depth=len(queue))
                    return
                # drop_oldest: evict the longest-waiting *admitted* job;
                # re-queued orphans are protected (zero-loss guarantee).
                victim_idx = next(
                    (i for i, q in enumerate(queue) if q.requeues == 0), None
                )
                if victim_idx is None:
                    shed_one()
                    if jt is not None:
                        jt.record(task.task_id, now, "shed", now,
                                  reason="reject", queue_depth=len(queue))
                    return
                victim = queue[victim_idx]
                del queue[victim_idx]
                shed_one()
                if jt is not None:
                    jt.record(victim.task.task_id, victim.arrival, "shed",
                              now, reason="drop_oldest",
                              evicted_by=int(task.task_id))
            queue.append(_Queued(task, arrival=now, enqueued_at=now))
            if jt is not None:
                jt.record(task.task_id, now, "admitted", now,
                          queue_depth=len(queue))
            note_depth()

        def requeue(s: _Scheduled, now: float) -> None:
            queue.appendleft(_Queued(
                s.task, arrival=s.arrival, enqueued_at=now, requeues=s.requeues + 1
            ))
            stats.requeued += 1
            if rec.enabled:
                rec.counter_add("serve/requeued")
            if jt is not None:
                jt.record(s.task.task_id, s.arrival, "requeued", now,
                          window=s.window, cluster_id=s.cluster_id,
                          requeues=s.requeues + 1)
            if self.callbacks:
                cb0 = time.perf_counter()
                for cb in self.callbacks:
                    cb.on_requeue(s.task.task_id, s.arrival, now)
                stats.callback_seconds += time.perf_counter() - cb0
            note_depth()

        def apply_swap(window: int, version: str, reason: str) -> None:
            info = self.registry.load_into(self.method, version)
            if self.memo is not None:
                self.memo.bump()
            if self.cache is not None:
                # Cached columns were optima of the *old* model's
                # predicted problem; keeping them would let post-swap
                # windows report warm "hits" seeded from a stale
                # objective.  Start the new model cold.
                self.cache.clear()
            self.swap_epoch += 1
            if cfg.learned_seeds:
                # The old head predicted the old model's relaxed optima;
                # swap in the checkpoint's bundled head, or drop to cold
                # seeding until the trainer refits on post-swap windows.
                self.warm_model = self.registry.load_warm_start(info.version)
            stats.swaps += 1
            stats.swap_events.append({
                "window": window, "version": info.version,
                "digest": info.digest, "reason": reason,
            })
            if rec.enabled:
                rec.event("serve/hot_swap", window=window, version=info.version,
                          digest=info.digest, reason=reason)

        def dispatch_window(now: float) -> None:
            nonlocal busy_until
            prof.begin_window()
            with prof.stage("form"):
                ups = [c for c in self.clusters if c.cluster_id not in down]
                k = min(cfg.max_batch, len(queue))
                window = stats.windows
                if self.swap_schedule and window in self.swap_schedule:
                    apply_swap(window, self.swap_schedule[window], "schedule")
                if self._pending_swap is not None:
                    version, reason = self._pending_swap
                    self._pending_swap = None
                    apply_swap(window, version, reason)
                if rec.enabled:
                    rec.observe("serve/queue_depth", len(queue), bounds=SIZE_BUCKETS)
                batch = [queue.popleft() for _ in range(k)]
                tasks = [q.task for q in batch]
                T = np.stack([c.true_times(tasks) for c in ups])
                A = np.stack([c.true_reliabilities(tasks) for c in ups])
                problem = self.spec.build_problem(T, A)
            if prof.enabled:
                # Simulated-time components of task latency: how long each
                # task of this batch sat in the admission queue, and how
                # long the formed batch waited for its dispatch trigger
                # after its newest member arrived.  Platform hours, not
                # wall clock — reported in the budget's own section.
                for q in batch:
                    prof.observe_sim("admission_wait", now - q.enqueued_at)
                prof.observe_sim(
                    "batch_wait", now - max(q.enqueued_at for q in batch))

            t0 = time.perf_counter()
            iters = 0
            predictions = None
            relaxed_X = None
            seed_src = None
            decision = None
            if self._default_decide:
                # Methods predict rows for the *full* fleet they were
                # fitted on; with clusters down the rows must be subset to
                # the up clusters to match the window's problem shape.
                # Observers also need the predicted matrices, so with
                # callbacks registered the forward pass always happens
                # here (decide_full would otherwise run the identical
                # predict internally — same result, just not exposed).
                need_subset = len(ups) != len(self.clusters)
                with prof.stage("predict"):
                    if self.memo is not None:
                        predictions = self.memo.predict(self.method, tasks)
                    elif need_subset or self.callbacks:
                        predictions = self.method.predict(tasks)
                    if predictions is not None and need_subset:
                        pos = {c.cluster_id: i for i, c in enumerate(self.clusters)}
                        idx = [pos[c.cluster_id] for c in ups]
                        predictions = (predictions[0][idx], predictions[1][idx])
                x0 = None
                solver = None
                seed_src = "cold"
                key = make_cache_key([c.cluster_id for c in ups], k)
                with prof.stage("seed"):
                    if self.cache is not None:
                        x0 = self.cache.seed(key, tasks, len(ups))
                        solver = self.cache.solver_config(key, self.spec.solver)
                        if x0 is not None:
                            seed_src = "cache"
                    if x0 is None and cfg.learned_seeds and self.warm_model is not None:
                        x0 = self.warm_model.seed(tasks, [c.cluster_id for c in ups])
                        if x0 is not None:
                            seed_src = "learned"
                with prof.stage("solve"):
                    decision = self.method.decide_full(
                        problem, tasks, x0=x0, solver=solver, predictions=predictions,
                        solve_mode=cfg.solve_mode, block_config=self.block_config,
                        profiler=self.profiler,
                    )
                with prof.stage("commit"):
                    if self.cache is not None:
                        self.cache.store(key, tasks, decision.relaxed)
                    X = decision.X
                    relaxed_X = decision.relaxed.X
                    iters = decision.relaxed.iterations
                    stats.solver_iterations.append(iters)
                    stats.seed_sources[seed_src] = (
                        stats.seed_sources.get(seed_src, 0) + 1)
                    if rec.enabled:
                        rec.counter_add(f"serve/seed_{seed_src}")
                        if seed_src == "learned":
                            # Seed quality: how much of the seed's per-task
                            # argmax placement survived the solve.
                            agree = float(np.mean(
                                x0.argmax(axis=0) == relaxed_X.argmax(axis=0)))
                            rec.observe("serve/seed_agreement", agree,
                                        bounds=(0.1, 0.25, 0.5, 0.75, 0.9, 0.99))
            else:
                with prof.stage("solve"):
                    X = self.method.decide(problem, tasks)
            latency = time.perf_counter() - t0

            stats.windows += 1
            stats.matched += k
            stats.decide_seconds.append(latency)
            stats.batch_sizes.append(k)
            if rec.enabled:
                rec.counter_add("serve/windows")
                rec.observe("serve/batch_size", k, bounds=SIZE_BUCKETS)
                rec.observe("serve/assignment_latency_s", latency,
                            bounds=TIME_BUCKETS_S)
                if self._default_decide:
                    rec.observe("serve/solve_iterations", iters, bounds=ITER_BUCKETS)

            with prof.stage("schedule"):
                labels = labels_from_assignment(X)
                order = np.argsort(labels, kind="stable")
                starts = np.empty(k)
                ends = np.empty(k)
                successes = np.empty(k, dtype=bool)
                for j in order:
                    cluster = ups[int(labels[j])]
                    q = batch[int(j)]
                    start = max(free_at[cluster.cluster_id], now)
                    duration = cluster.true_time(q.task)
                    if cfg.jitter_std > 0:
                        duration *= float(np.exp(rng.normal(0.0, cfg.jitter_std)))
                    success = (not cfg.failures) or (
                        rng.random() < cluster.true_reliability(q.task)
                    )
                    busy = duration if success else duration * float(
                        rng.uniform(0.05, 0.95))
                    end = start + busy
                    free_at[cluster.cluster_id] = end
                    starts[int(j)], ends[int(j)] = start, end
                    successes[int(j)] = success
                    schedule[cluster.cluster_id].append(_Scheduled(
                        task=q.task, window=window, cluster_id=cluster.cluster_id,
                        arrival=q.arrival, dispatched=now, start=start, end=end,
                        success=success, requeues=q.requeues,
                    ))
                busy_until = now + cfg.dispatch_overhead_hours

            if jt is not None:
                # Two journey events per batch member: the window-level
                # decision (membership, wait, seed source, solve shape)
                # and the committed schedule.  Recorded before callbacks
                # run so a harvest lands after its window's schedule.
                blocks = (getattr(decision.relaxed, "n_blocks", None)
                          if decision is not None
                          and cfg.solve_mode == "blocks" else None)
                for j, q in enumerate(batch):
                    jt.record(q.task.task_id, q.arrival, "dispatched", now,
                              window=window, wait_hours=now - q.enqueued_at,
                              batch=k, seed=seed_src,
                              solve_mode=cfg.solve_mode, iterations=iters,
                              blocks=blocks)
                    jt.record(q.task.task_id, q.arrival, "scheduled", now,
                              window=window,
                              cluster_id=ups[int(labels[j])].cluster_id,
                              start=float(starts[j]), end=float(ends[j]),
                              requeues=q.requeues)

            if self.callbacks:
                cb0 = time.perf_counter()
                with prof.stage("callbacks"):
                    snapshot = WindowSnapshot(
                        window=window,
                        time=now,
                        cluster_ids=tuple(c.cluster_id for c in ups),
                        task_ids=tuple(t.task_id for t in tasks),
                        T=T,
                        A=A,
                        T_hat=None if predictions is None else predictions[0],
                        A_hat=None if predictions is None else predictions[1],
                        X=X,
                        gamma=problem.gamma,
                        reliability_slack=reliability_value(X, problem),
                        arrival=np.array([q.arrival for q in batch]),
                        start=starts,
                        end=ends,
                        realized_hours=ends - starts,
                        success=successes,
                        requeues=np.array([q.requeues for q in batch]),
                        queue_depth=len(queue),
                        arrived_total=stats.arrived,
                        shed_total=stats.shed,
                        features=np.stack([t.features for t in tasks]),
                        X_relaxed=relaxed_X,
                    )
                    for cb in self.callbacks:
                        cb.on_window(snapshot)
                stats.callback_seconds += time.perf_counter() - cb0
            prof.end_window()

        def drain(t_limit: float) -> None:
            """Dispatch every window that ripens at or before ``t_limit``."""
            while True:
                r = ripe_at()
                if r is None or r > t_limit + _EPS:
                    return
                dispatch_window(r)

        # ---------------- main event loop over simulated time ---------- #
        for t, _prio, _seq, kind, payload in evs:
            drain(t)
            t_last = max(t_last, t)
            if kind == "arrive":
                if rec.enabled:
                    rec.event("serve/arrival", t=t,
                              task_id=payload.task_id)  # type: ignore[union-attr]
                admit(payload, t)  # type: ignore[arg-type]
            elif kind == "down":
                cid = int(payload)  # type: ignore[arg-type]
                down.add(cid)
                fleet_changed_at = t
                kept = [s for s in schedule[cid] if s.end <= t + _EPS]
                orphans = [s for s in schedule[cid] if s.end > t + _EPS]
                schedule[cid] = kept
                # Earliest-started orphan ends up at the queue front.
                for s in sorted(orphans, key=lambda s: (s.start, s.task.task_id),
                                reverse=True):
                    requeue(s, t)
            else:  # "up"
                cid = int(payload)  # type: ignore[arg-type]
                down.discard(cid)
                fleet_changed_at = t
                # Every job kept through the outage ended at or before its
                # start, and the orphans were re-queued to run elsewhere —
                # the rejoined cluster starts clean at the rejoin time.
                free_at[cid] = t

        # Flush: serve everything still queued (unless no cluster is up).
        while queue and any_up():
            r = ripe_at()
            assert r is not None
            dispatch_window(max(r, t_last))
        stats.unserved = len(queue)
        if jt is not None:
            for q in queue:
                jt.record(q.task.task_id, q.arrival, "unserved", t_last,
                          requeues=q.requeues)

        # Finalize execution records (deterministic order, then by task id).
        for c in self.clusters:
            for s in schedule[c.cluster_id]:
                stats.records.append(ServeRecord(
                    task_id=s.task.task_id, window=s.window, cluster_id=s.cluster_id,
                    arrival=s.arrival, dispatched=s.dispatched, start=s.start,
                    end=s.end, success=s.success, requeues=s.requeues,
                ))
                if s.success:
                    stats.completed += 1
                else:
                    stats.failed += 1
                if jt is not None:
                    jt.record(s.task.task_id, s.arrival,
                              "completed" if s.success else "failed", s.end,
                              window=s.window, cluster_id=s.cluster_id,
                              requeues=s.requeues)
                stats.total_wait_hours += s.start - s.arrival
                stats.total_flow_hours += s.end - s.arrival
        stats.records.sort(key=lambda r: (r.task_id, r.window))
        if self.cache is not None:
            stats.cache = self.cache.stats()
        if self.memo is not None:
            stats.memo = self.memo.stats()
        if prof.enabled:
            stats.profile = prof.budget()
            if rec.enabled:
                # Stage-budget series for the scrape endpoint / run log:
                # one labeled gauge per stage path.  Wall-clock values —
                # they live in metrics, never in the trace.
                for path, s in stats.profile["stages"].items():
                    rec.gauge_set("serve/stage_total_s", s["total_s"],
                                  labels={"stage": path})
                    rec.gauge_set("serve/stage_p95_s", s["p95"],
                                  labels={"stage": path})
                unattr = stats.profile["unattributed"]
                rec.gauge_set("serve/stage_total_s",
                              unattr.get("total_s", 0.0),
                              labels={"stage": "unattributed"})
                rec.gauge_set("serve/profile_coverage_p95",
                              stats.profile["coverage_p95"])
        if rec.enabled:
            rec.counter_add("serve/arrived", stats.arrived)
            rec.counter_add("serve/completed", stats.completed)
            rec.counter_add("serve/failed", stats.failed)
            if self.cache is not None:
                rec.counter_add("serve/cache_hits", self.cache.hits)
                rec.counter_add("serve/cache_misses", self.cache.misses)
            # Scalar outcome of the whole run: what a replay must
            # reproduce exactly (the conservation identity's terms plus
            # the dispatch count).
            rec.event(
                "serve/run_stats",
                arrived=stats.arrived, matched=stats.matched,
                completed=stats.completed, failed=stats.failed,
                shed=stats.shed, requeued=stats.requeued,
                unserved=stats.unserved, windows=stats.windows,
                swaps=stats.swaps, max_queue_depth=stats.max_queue_depth,
            )
        if jt is not None:
            jt.finish()
        if self.callbacks:
            cb0 = time.perf_counter()
            for cb in self.callbacks:
                cb.on_finish(stats)
            stats.callback_seconds += time.perf_counter() - cb0
        return stats
