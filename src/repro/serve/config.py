"""Typed serving configuration and the one-call platform builder.

Historically a serving run was described by a loose parameter *dict*
(``serve_params``) threaded through the CLI, the JSONL meta header, and
the replay layer — stringly-typed, unvalidated, and silently ignoring
typos.  :class:`ServeConfig` replaces it: one frozen dataclass holding
every stack knob, with nested :class:`~repro.monitor.quality.
MonitorConfig` and :class:`~repro.retrain.RetrainConfig` sections for
the observability and closed-loop-learning subsystems, validated at
construction and JSON round-trippable (``to_params``/``from_params`` —
the exact dict written to and read from ``meta["serve"]``).

:func:`build_platform` turns a config into a ready :class:`Platform`:
pool → clusters → trained method → dispatcher, plus (when configured)
the quality monitor, the checkpoint registry, and the retrain
controller — wired together (drift listener, callbacks, registry
bootstrap) exactly once, here, instead of in every caller.

Layering note: this module lives in :mod:`repro.serve` but the monitor
and retrain layers sit *above* serve, so those imports happen lazily
inside the functions that need them — a plain dispatcher build never
touches the higher layers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.matching.relaxed import SolverConfig
from repro.serve.dispatcher import (
    Dispatcher,
    DispatcherConfig,
    Outage,
    ServeStats,
)
from repro.serve.registry import ModelRegistry

if TYPE_CHECKING:  # layering: monitor/retrain import serve, not vice versa
    from repro.monitor.quality import MonitorConfig, QualityMonitor
    from repro.retrain.loop import RetrainConfig, RetrainController
    from repro.retrain.warmstart import WarmStartTrainer
    from repro.telemetry.profiler import StageProfiler

__all__ = ["ServeConfig", "Platform", "build_platform"]

_SHED_POLICIES = ("reject", "drop_oldest")
_WARM_STARTS = ("cache", "learned", "off")
_SOLVE_MODES = ("scalar", "blocks")


@dataclass(frozen=True)
class ServeConfig:
    """Complete, validated description of one serving run.

    The flat fields mirror the legacy ``serve_params`` keys one-to-one
    (existing JSONL logs parse with :meth:`from_params` unchanged); the
    ``monitor``/``retrain`` sections opt into the observability and
    closed-loop retraining subsystems.
    """

    setting: str = "A"
    pool_size: int = 64
    seed: int = 0
    train_epochs: int = 120
    solver_tol: float = 1e-4
    solver_max_iters: int = 400
    max_batch: int = 16
    max_wait_hours: float = 0.25
    queue_capacity: int = 128
    shed_policy: str = "reject"
    #: Window-seed source: ``"cache"`` (last-window columns, the historical
    #: ``True``), ``"learned"`` (cache first, then the online-trained
    #: :class:`~repro.serve.warmstart.WarmStartHead` on misses), or
    #: ``"off"`` (always cold, the historical ``False``).  Booleans are
    #: accepted and normalized for back-compat with old logs/callers.
    warm_start: str = "cache"
    #: ``"scalar"`` = dense per-window solve (default; byte-identical
    #: traces), ``"blocks"`` = block-decomposed batched solve.
    solve_mode: str = "scalar"
    #: Attach a :class:`repro.telemetry.StageProfiler` to the dispatcher:
    #: per-stage latency budgets (form/predict/seed/solve/…), flamegraph
    #: export, ``stats.profile``.  Wall-clock only — never perturbs the
    #: assignment trace — and zero-cost when off.
    profile: bool = False
    monitor: "MonitorConfig | None" = None
    retrain: "RetrainConfig | None" = None
    #: Checkpoint registry directory; required when ``retrain`` is set.
    registry_root: "str | None" = None
    #: Fleet identity: which shard of a sharded deployment this run is
    #: (``repro.fleet`` stamps it per shard; ``serve run --shard`` sets it
    #: for hand-rolled fleets) and an optional instance name.  Pure
    #: labels — they never change the stack or the trace, but they ride
    #: ``meta["serve"]`` into run logs and replay, and become the
    #: recorder's base labels via :meth:`identity_labels`.
    shard: "str | None" = None
    instance: "str | None" = None
    #: Per-task journey tracing (:mod:`repro.telemetry.journey`): the
    #: kept fraction of uneventful journeys (shed / requeued / long-wait
    #: tasks are always kept).  ``0.0`` = off.  Journeys draw no
    #: randomness and never enter the records, so the assignment trace
    #: is byte-identical at any setting.
    journey_sample: float = 0.0

    def __post_init__(self) -> None:
        for name in ("pool_size", "train_epochs", "solver_max_iters",
                     "max_batch", "queue_capacity"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.solver_tol <= 0 or self.max_wait_hours <= 0:
            raise ValueError("solver_tol and max_wait_hours must be positive")
        if self.shed_policy not in _SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {_SHED_POLICIES}, got {self.shed_policy!r}")
        if isinstance(self.warm_start, bool):  # legacy boolean knob
            object.__setattr__(self, "warm_start",
                               "cache" if self.warm_start else "off")
        if self.warm_start not in _WARM_STARTS:
            raise ValueError(
                f"warm_start must be one of {_WARM_STARTS}, got {self.warm_start!r}")
        if self.solve_mode not in _SOLVE_MODES:
            raise ValueError(
                f"solve_mode must be one of {_SOLVE_MODES}, got {self.solve_mode!r}")
        for name in ("shard", "instance"):  # label values; normalize to str
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                object.__setattr__(self, name, str(value))
        if not 0.0 <= self.journey_sample <= 1.0:
            raise ValueError(
                f"journey_sample must be in [0, 1], got {self.journey_sample}")

    # ------------------------------------------------------------------ #
    # JSON round-trip (meta["serve"] in run logs; CLI flag plumbing).
    # ------------------------------------------------------------------ #

    def to_params(self) -> dict:
        """The JSON-serializable dict stored in a run log's meta header."""
        params: "dict[str, Any]" = {
            "setting": self.setting,
            "pool_size": self.pool_size,
            "seed": self.seed,
            "train_epochs": self.train_epochs,
            "solver_tol": self.solver_tol,
            "solver_max_iters": self.solver_max_iters,
            "max_batch": self.max_batch,
            "max_wait_hours": self.max_wait_hours,
            "queue_capacity": self.queue_capacity,
            "shed_policy": self.shed_policy,
            "warm_start": self.warm_start,
            "solve_mode": self.solve_mode,
            "profile": self.profile,
            "monitor": asdict(self.monitor) if self.monitor is not None else None,
            "retrain": self.retrain.to_params() if self.retrain is not None else None,
            "registry_root": self.registry_root,
            "shard": self.shard,
            "instance": self.instance,
            "journey_sample": self.journey_sample,
        }
        return params

    @classmethod
    def from_params(cls, params: dict) -> "ServeConfig":
        """Inverse of :meth:`to_params`; tolerates legacy dicts that
        predate the ``monitor``/``retrain``/``registry_root`` keys."""
        monitor = params.get("monitor")
        if monitor is not None and not hasattr(monitor, "sample_every"):
            from repro.monitor.quality import MonitorConfig
            from repro.monitor.slo import SLORule

            monitor = dict(monitor)
            sc = monitor.get("solver_config")
            monitor["solver_config"] = SolverConfig(**sc) if sc else None
            monitor["slos"] = tuple(SLORule(**r) for r in monitor.get("slos", ()))
            monitor = MonitorConfig(**monitor)
        retrain = params.get("retrain")
        if retrain is not None and not hasattr(retrain, "trigger"):
            from repro.retrain.loop import RetrainConfig

            retrain = RetrainConfig.from_params(retrain)
        return cls(
            setting=str(params["setting"]),
            pool_size=int(params["pool_size"]),
            seed=int(params["seed"]),
            train_epochs=int(params["train_epochs"]),
            solver_tol=float(params["solver_tol"]),
            solver_max_iters=int(params["solver_max_iters"]),
            max_batch=int(params["max_batch"]),
            max_wait_hours=float(params["max_wait_hours"]),
            queue_capacity=int(params["queue_capacity"]),
            shed_policy=str(params["shed_policy"]),
            # Legacy logs store a boolean; __post_init__ normalizes it.
            warm_start=params["warm_start"],
            solve_mode=str(params.get("solve_mode", "scalar")),
            profile=bool(params.get("profile", False)),
            monitor=monitor,
            retrain=retrain,
            registry_root=params.get("registry_root"),
            shard=params.get("shard"),
            instance=params.get("instance"),
            journey_sample=float(params.get("journey_sample", 0.0)),
        )

    def with_overrides(self, **changes: Any) -> "ServeConfig":
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)

    def identity_labels(self) -> "dict[str, str]":
        """Base labels for the run's recorder (``shard``/``instance``).

        Empty dict when neither is set, so ``identity_labels() or None``
        is the value to hand :func:`repro.telemetry.recording`.
        """
        labels: "dict[str, str]" = {}
        if self.shard is not None:
            labels["shard"] = self.shard
        if self.instance is not None:
            labels["instance"] = self.instance
        return labels

    # ------------------------------------------------------------------ #
    # Derived configs (the serve-seed convention in one place).
    # ------------------------------------------------------------------ #

    def solver_config(self) -> SolverConfig:
        return SolverConfig(tol=self.solver_tol, max_iters=self.solver_max_iters)

    def dispatcher_config(self) -> DispatcherConfig:
        warm = self.warm_start != "off"
        return DispatcherConfig(
            max_batch=self.max_batch,
            max_wait_hours=self.max_wait_hours,
            queue_capacity=self.queue_capacity,
            shed_policy=self.shed_policy,
            warm_start=warm,
            memoize_predictions=warm,
            learned_seeds=self.warm_start == "learned",
            solve_mode=self.solve_mode,
            journey_sample=self.journey_sample,
        )


@dataclass
class Platform:
    """A fully wired serving stack, ready to consume an arrival stream."""

    config: ServeConfig
    pool: Any  # TaskPool
    clusters: list
    method: Any  # trained BaseMethod
    spec: Any  # MatchSpec
    dispatcher: Dispatcher
    monitor: "QualityMonitor | None" = None
    controller: "RetrainController | None" = None
    registry: "ModelRegistry | None" = None
    trainer: "WarmStartTrainer | None" = None
    profiler: "StageProfiler | None" = None

    def load(self, pattern: str = "poisson", rate_per_hour: float = 30.0):
        """A load generator over this platform's pool (CLI pattern names)."""
        from repro.serve.loadgen import make_load

        return make_load(pattern, self.pool, rate_per_hour)

    def run(
        self,
        events,
        *,
        outages: "list[Outage] | None" = None,
    ) -> ServeStats:
        """Drive the dispatcher (seeded ``seed + 4`` by convention)."""
        return self.dispatcher.run(events, rng=self.config.seed + 4,
                                   outages=outages or None)


def build_stack(config: ServeConfig):
    """Construct the core stack: ``(pool, clusters, method, spec, dcfg)``.

    Follows the serve-seed convention exactly: pool on ``seed``,
    train/test split on ``seed + 1``, fit context on ``seed + 2`` (the
    load generator uses ``seed + 3`` and the dispatcher ``seed + 4``).
    Shared by :func:`build_platform`, the ``repro serve run`` CLI path,
    and trace replay — replays match original runs by construction.
    """
    from repro.clusters import make_setting
    from repro.methods import TSM, FitContext, MatchSpec
    from repro.predictors.training import TrainConfig
    from repro.workloads.taskpool import TaskPool

    pool = TaskPool(config.pool_size, rng=config.seed)
    clusters = make_setting(config.setting)
    train_tasks, _ = pool.split(0.6, rng=config.seed + 1)
    spec = MatchSpec(solver=config.solver_config())
    ctx = FitContext.build(clusters, train_tasks, spec, rng=config.seed + 2)
    method = TSM(train_config=TrainConfig(epochs=config.train_epochs)).fit(ctx)
    return pool, clusters, method, spec, config.dispatcher_config()


def build_platform(
    config: ServeConfig,
    *,
    registry_root: "str | None" = None,
    stack=None,
) -> Platform:
    """Build and wire the full platform a :class:`ServeConfig` describes.

    - ``config.monitor`` set → a :class:`QualityMonitor` observes the run;
    - ``config.retrain`` set → a :class:`ModelRegistry` (at
      ``config.registry_root``, overridable via ``registry_root`` — replay
      uses a scratch directory) plus a bound
      :class:`~repro.retrain.RetrainController`; a drift-style trigger
      auto-creates a default monitor when none was configured, and the
      monitor's ``retrain_suggested`` alerts are wired to the controller;
    - ``stack`` accepts a prebuilt :func:`build_stack` result so tests
      replaying one config several times train the predictor once.
    """
    pool, clusters, method, spec, dcfg = stack or build_stack(config)

    monitor = controller = registry = None
    callbacks = []
    if config.monitor is not None:
        from repro.monitor.quality import QualityMonitor

        monitor = QualityMonitor(config.monitor)
    if config.retrain is not None:
        from repro.retrain.loop import RetrainController

        root = registry_root or config.registry_root
        if root is None:
            raise ValueError(
                "retraining requires a registry: set ServeConfig.registry_root "
                "or pass registry_root to build_platform"
            )
        registry = ModelRegistry(root)
        controller = RetrainController(config.retrain,
                                       solver_config=config.solver_config())
        if monitor is None and config.retrain.trigger in ("drift", "both"):
            from repro.monitor.quality import MonitorConfig, QualityMonitor

            monitor = QualityMonitor(MonitorConfig())
        if monitor is not None:
            monitor.add_retrain_listener(controller.notify_drift)
    if monitor is not None:
        callbacks.append(monitor)
    if controller is not None:
        callbacks.append(controller)
    trainer = None
    if config.warm_start == "learned":
        from repro.retrain.warmstart import WarmStartTrainer

        trainer = WarmStartTrainer()
        callbacks.append(trainer)
    profiler = None
    if config.profile:
        from repro.telemetry.profiler import StageProfiler

        profiler = StageProfiler()

    dispatcher = Dispatcher(clusters, method, spec, dcfg,
                            registry=registry, callbacks=callbacks,
                            profiler=profiler)
    if controller is not None:
        controller.bind(dispatcher)
    if trainer is not None:
        trainer.bind(dispatcher)
    return Platform(
        config=config, pool=pool, clusters=clusters, method=method, spec=spec,
        dispatcher=dispatcher, monitor=monitor, controller=controller,
        registry=registry, trainer=trainer, profiler=profiler,
    )
