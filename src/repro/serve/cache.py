"""Warm-start solver cache and predictor forward-pass memoization.

Consecutive serving windows solve *nearly the same* barrier program: the
cluster fleet changes rarely, batch sizes live in a narrow band, and task
specs repeat because jobs are drawn from a finite population.  Following
the learned-duals idea (Dinitz et al., 2021 — reuse prior solutions to cut
matching cost), this module recycles two artifacts across windows:

- :class:`WarmStartCache` — per ``(cluster-set signature, batch-size
  bucket)`` key it remembers the previous relaxed solve: one simplex
  *column* per task id (the task's soft assignment over clusters), the
  mean column for unseen tasks, and the solver's step memory (how many
  backtracking halvings the final accepted iterate needed).  Seeding the
  next window from those columns lands the solver near its optimum, so the
  ``tol``/``patience`` early-stop rule fires after a handful of iterations
  instead of a full descent.  Warm starts never change *feasibility*
  semantics: a seed that is not strictly interior for the new instance is
  blended toward the instance's own interior start, and the solver itself
  falls back to a cold start if the seed is still infeasible — only the
  iteration count changes, not the fixed point being approximated.
- :class:`PredictionMemo` — memoized predictor forward passes keyed by
  task id, invalidated wholesale on checkpoint hot-swap (``bump``).  A
  repeated task spec costs a dict lookup instead of 2·M MLP forwards.

Both structures are bounded (LRU on insertion order) so a long-running
dispatcher holds O(1) memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.matching.relaxed import RelaxedSolution, SolverConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.methods.base import BaseMethod
    from repro.workloads.taskpool import Task

__all__ = [
    "CacheKey",
    "WarmStartCache",
    "PredictionMemo",
    "batch_size_bucket",
    "make_cache_key",
]

#: Strictly positive floor applied to seeded columns so every coordinate
#: stays alive under the multiplicative mirror update.
_COL_FLOOR = 1e-6

CacheKey = tuple[tuple[int, ...], int]


def batch_size_bucket(n: int) -> int:
    """Power-of-two bucket index for a batch size (1→0, 2→1, 3-4→2, ...).

    Bucketing keeps the step memory regime-specific — a 4-task window and a
    128-task window have very different barrier stiffness — without
    fragmenting the cache into one entry per exact batch size.
    """
    if n <= 0:
        raise ValueError(f"batch size must be positive, got {n}")
    return int(n - 1).bit_length()


def make_cache_key(cluster_ids: Sequence[int], batch_size: int) -> CacheKey:
    """Cache key: (sorted cluster-set signature, batch-size bucket)."""
    return tuple(sorted(int(c) for c in cluster_ids)), batch_size_bucket(batch_size)


@dataclass
class _Entry:
    """One cached window solution for a (cluster set, size bucket) key."""

    columns: dict[int, np.ndarray]  # task_id -> (M,) simplex column
    mean_column: np.ndarray  # (M,) fallback for unseen tasks
    halvings: int  # step memory of the stored solve


@dataclass
class WarmStartCache:
    """Bounded warm-start store for the projected-gradient solver."""

    max_entries: int = 16
    max_columns: int = 4096  # per entry
    hits: int = 0
    misses: int = 0
    _entries: dict[CacheKey, _Entry] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.max_entries <= 0 or self.max_columns <= 0:
            raise ValueError("max_entries and max_columns must be positive")

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #

    def seed(
        self, key: CacheKey, tasks: "Sequence[Task]", m: int
    ) -> np.ndarray | None:
        """A column-stochastic warm start for an ``(m, len(tasks))`` solve.

        Columns of tasks seen in the cached window are reused verbatim;
        unseen tasks get the cached mean column.  The assembled iterate is
        floored/renormalized (mirror updates need strictly positive
        coordinates); *feasibility* against the new instance is the
        solver's job — :func:`~repro.matching.relaxed.solve_relaxed`
        blends an infeasible warm start toward the instance's interior
        point, so a stale seed can only cost iterations, never change the
        program being solved.
        """
        entry = self._entries.get(key)
        used_key = key
        if entry is None or entry.mean_column.size != m:
            # Bucket fallback: a task's simplex column does not depend on
            # how many other tasks share its window, so a neighbouring
            # size bucket's columns are still a good seed (only the step
            # memory is regime-specific — see :meth:`solver_config`).
            # Without this every flush/ramp-up window with an off-bucket
            # batch size would start cold.
            sig, bucket = key
            candidates = [
                (abs(b - bucket), (s, b))
                for (s, b), e in self._entries.items()
                if s == sig and e.mean_column.size == m
            ]
            if not candidates:
                self.misses += 1
                return None
            used_key = min(candidates)[1]
            entry = self._entries[used_key]
        cols = entry.columns
        known = sum(1 for task in tasks if task.task_id in cols)
        if 2 * known < len(tasks):
            # Mostly-unseen batch: a seed built chiefly from the mean
            # column is no better than the uniform start and occasionally
            # worse (it biases every unseen task the same way).  Declare a
            # miss and let the solver start cold.
            self.misses += 1
            return None
        X0 = np.empty((m, len(tasks)))
        for j, task in enumerate(tasks):
            X0[:, j] = cols.get(task.task_id, entry.mean_column)
        X0 = np.maximum(X0, _COL_FLOOR)
        X0 /= X0.sum(axis=0, keepdims=True)
        self.hits += 1
        # Touch for LRU recency.
        self._entries[used_key] = self._entries.pop(used_key)
        return X0

    def solver_config(self, key: CacheKey, base: SolverConfig) -> SolverConfig:
        """Step-memory override: reopen near the previously accepted step.

        Backtracking still adapts in both directions, so this only skips
        the rejected trial evaluations the previous window already paid
        for (one level of headroom is kept so the step can grow back).
        """
        entry = self._entries.get(key)
        if entry is None or entry.halvings <= 1:
            return base
        return replace(base, lr=base.lr / 2.0 ** (entry.halvings - 1))

    def store(
        self,
        key: CacheKey,
        tasks: "Sequence[Task]",
        solution: RelaxedSolution,
    ) -> None:
        """Record a finished window solve under ``key``."""
        X = np.asarray(solution.X)
        if X.ndim != 2 or X.shape[1] != len(tasks):
            raise ValueError(f"solution/tasks mismatch: {X.shape} vs {len(tasks)} tasks")
        entry = self._entries.pop(key, None)
        if entry is None or entry.mean_column.size != X.shape[0]:
            entry = _Entry(columns={}, mean_column=X.mean(axis=1), halvings=0)
        for j, task in enumerate(tasks):
            entry.columns.pop(task.task_id, None)  # re-insert for LRU order
            entry.columns[task.task_id] = X[:, j].copy()
        while len(entry.columns) > self.max_columns:
            entry.columns.pop(next(iter(entry.columns)))
        entry.mean_column = X.mean(axis=1)
        entry.halvings = solution.halvings
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))

    # ------------------------------------------------------------------ #

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


class PredictionMemo:
    """Memoized predictor forward passes for repeated task specs.

    Stores one ``(t̂ column, â column)`` pair per task id — the full
    M-cluster prediction for that task — and assembles round matrices from
    cached columns, calling ``method.predict`` only for the misses.
    ``bump()`` invalidates everything; the dispatcher calls it on
    checkpoint hot-swap so stale-model predictions can never leak into a
    post-swap window.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.version = 0
        self.hits = 0
        self.misses = 0
        self._cols: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self._cols)

    def bump(self) -> None:
        """Invalidate the memo (model hot-swap: new weights, new columns)."""
        self.version += 1
        self._cols.clear()

    def predict(
        self, method: "BaseMethod", tasks: "Sequence[Task]"
    ) -> tuple[np.ndarray, np.ndarray]:
        """(T̂, Â) for ``tasks``, shape (M, N), reusing cached columns."""
        missing = [t for t in tasks if t.task_id not in self._cols]
        if missing:
            T_m, A_m = method.predict(list(missing))
            for k, task in enumerate(missing):
                self._cols[task.task_id] = (T_m[:, k].copy(), A_m[:, k].copy())
        self.misses += len(missing)
        self.hits += len(tasks) - len(missing)
        T_hat = np.stack([self._cols[t.task_id][0] for t in tasks], axis=1)
        A_hat = np.stack([self._cols[t.task_id][1] for t in tasks], axis=1)
        # LRU recency + capacity bound.
        for t in tasks:
            self._cols[t.task_id] = self._cols.pop(t.task_id)
        while len(self._cols) > self.capacity:
            self._cols.pop(next(iter(self._cols)))
        return T_hat, A_hat

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._cols),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "version": self.version,
        }
