"""Render a telemetry aggregate in Prometheus text exposition format.

Takes the canonical aggregate dict — either ``Recorder.aggregate()``
from a live run or ``telemetry.jsonl.aggregate_events(load_run(path))``
from a JSONL log — and renders version 0.0.4 text exposition:

- counters  → ``<name>_total``
- gauges    → ``<name>``
- histograms→ cumulative ``<name>_bucket{le="..."}`` series plus
  ``_sum``/``_count`` (the recorder's buckets already use Prometheus
  ``le`` upper-bound semantics, so this is a pure re-labelling)
- spans     → ``<name>_seconds_total`` / ``<name>_calls_total`` /
  ``<name>_errors_total``

Metric names are sanitized to the Prometheus grammar
(``serve/solve_iterations`` → ``repro_serve_solve_iterations``).  The
output is deterministic: sections and series are emitted in sorted
order, so snapshot files diff cleanly between runs.
"""

from __future__ import annotations

import re

__all__ = ["prometheus_text", "sanitize_name"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str, prefix: str = "repro") -> str:
    """Map an internal metric path onto a legal Prometheus metric name."""
    flat = _NAME_RE.sub("_", name.strip("/"))
    flat = re.sub(r"_+", "_", flat).strip("_")
    if not flat:
        raise ValueError(f"metric name {name!r} sanitizes to nothing")
    out = f"{prefix}_{flat}" if prefix else flat
    if re.match(r"^[0-9]", out):
        out = f"_{out}"
    return out


def _fmt(value: float) -> str:
    """Prometheus float formatting: integers stay integral, +Inf spelled."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(aggregate: dict, *, prefix: str = "repro") -> str:
    """The aggregate as a Prometheus text-format exposition page."""
    lines: "list[str]" = []

    for name, state in sorted(aggregate.get("counters", {}).items()):
        metric = sanitize_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(state['value'])}")

    for name, state in sorted(aggregate.get("gauges", {}).items()):
        metric = sanitize_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(state['value'])}")

    for name, state in sorted(aggregate.get("histograms", {}).items()):
        metric = sanitize_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cum = 0
        bounds = list(state["bounds"]) + [float("inf")]
        for bound, count in zip(bounds, state["counts"]):
            cum += count
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {cum}')
        lines.append(f"{metric}_sum {_fmt(state['sum'])}")
        lines.append(f"{metric}_count {state['count']}")

    for name, state in sorted(aggregate.get("spans", {}).items()):
        metric = sanitize_name(name, prefix)
        lines.append(f"# TYPE {metric}_seconds_total counter")
        lines.append(f"{metric}_seconds_total {_fmt(state['total_s'])}")
        lines.append(f"# TYPE {metric}_calls_total counter")
        lines.append(f"{metric}_calls_total {state['calls']}")
        if state.get("errors"):
            lines.append(f"# TYPE {metric}_errors_total counter")
            lines.append(f"{metric}_errors_total {state['errors']}")

    return "\n".join(lines) + "\n" if lines else ""
