"""Render a telemetry aggregate in Prometheus text exposition format.

Takes the canonical aggregate dict — ``Recorder.aggregate()`` from a live
run, ``telemetry.jsonl.aggregate_events(load_run(path))`` from a JSONL
log, or a fleet view from ``telemetry.registry.merge_aggregates`` — and
renders version 0.0.4 text exposition:

- counters  → ``<name>_total``
- gauges    → ``<name>``
- histograms→ cumulative ``<name>_bucket{le="..."}`` series plus
  ``_sum``/``_count`` (the recorder's buckets already use Prometheus
  ``le`` upper-bound semantics, so this is a pure re-labelling)
- spans     → ``<name>_seconds_total`` / ``<name>_calls_total`` /
  ``<name>_errors_total``

Labeled series (schema-2 aggregates key them as ``name{k="v",...}``)
render under one shared metric name with their label sets preserved —
histogram bucket lines merge ``le`` into the series labels — and one
``# TYPE`` header per metric family.

Metric names are sanitized to the Prometheus grammar
(``serve/solve_iterations`` → ``repro_serve_solve_iterations``).
Sanitization is lossy, so two *distinct* raw names can collapse onto one
metric name (``serve/windows`` vs ``serve-windows``); because silently
merging different instruments would corrupt the exposition, that
collision raises ``ValueError``.  Values format per the exposition
grammar: ``+Inf`` / ``-Inf`` / ``NaN`` spelled exactly, integral floats
without a fraction.  The output is deterministic: sections and series
are emitted in sorted order, so snapshot files diff cleanly between
runs.
"""

from __future__ import annotations

import math
import re

from repro.telemetry.registry import split_series_key

__all__ = ["prometheus_text", "sanitize_name"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str, prefix: str = "repro") -> str:
    """Map an internal metric path onto a legal Prometheus metric name."""
    flat = _NAME_RE.sub("_", name.strip("/"))
    flat = re.sub(r"_+", "_", flat).strip("_")
    if not flat:
        raise ValueError(f"metric name {name!r} sanitizes to nothing")
    out = f"{prefix}_{flat}" if prefix else flat
    if re.match(r"^[0-9]", out):
        out = f"_{out}"
    return out


def _fmt(value: float) -> str:
    """Exposition float grammar: ``+Inf``/``-Inf``/``NaN`` spelled
    exactly, integral values without a fraction."""
    v = float(value)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v.is_integer():
        return str(int(v))
    return repr(v)


def _labeled(metric: str, suffix: str, extra: "str | None" = None) -> str:
    """``metric{...}`` with the series' label suffix, optionally merged
    with one extra ``k="v"`` pair (the histogram ``le`` label)."""
    if not suffix:
        return f"{metric}{{{extra}}}" if extra else metric
    if extra:
        return f"{metric}{suffix[:-1]},{extra}}}"
    return f"{metric}{suffix}"


def _families(section: dict, prefix: str) -> "dict[str, list[tuple[str, dict]]]":
    """Group a section's series by sanitized metric name.

    Returns ``{metric: [(label_suffix, state), ...]}`` with both levels
    in sorted order.  Raises when two distinct raw base names collapse
    onto the same sanitized metric — a silent merge would mix unrelated
    instruments in the exposition.
    """
    fams: "dict[str, list[tuple[str, dict]]]" = {}
    raw_of: "dict[str, str]" = {}
    for key in sorted(section):
        base, suffix = split_series_key(key)
        metric = sanitize_name(base, prefix)
        seen = raw_of.setdefault(metric, base)
        if seen != base:
            raise ValueError(
                f"metric name collision: {seen!r} and {base!r} both "
                f"sanitize to {metric!r}"
            )
        fams.setdefault(metric, []).append((suffix, section[key]))
    return fams


def prometheus_text(aggregate: dict, *, prefix: str = "repro") -> str:
    """The aggregate as a Prometheus text-format exposition page."""
    lines: "list[str]" = []

    for metric, series in _families(aggregate.get("counters", {}), prefix).items():
        lines.append(f"# TYPE {metric}_total counter")
        for suffix, state in series:
            lines.append(f"{_labeled(metric + '_total', suffix)} "
                         f"{_fmt(state['value'])}")

    for metric, series in _families(aggregate.get("gauges", {}), prefix).items():
        lines.append(f"# TYPE {metric} gauge")
        for suffix, state in series:
            lines.append(f"{_labeled(metric, suffix)} {_fmt(state['value'])}")

    for metric, series in _families(aggregate.get("histograms", {}), prefix).items():
        lines.append(f"# TYPE {metric} histogram")
        for suffix, state in series:
            cum = 0
            bounds = list(state["bounds"]) + [float("inf")]
            for bound, count in zip(bounds, state["counts"]):
                cum += count
                le = f'le="{_fmt(bound)}"'
                lines.append(f"{_labeled(metric + '_bucket', suffix, le)} {cum}")
            lines.append(f"{_labeled(metric + '_sum', suffix)} {_fmt(state['sum'])}")
            lines.append(f"{_labeled(metric + '_count', suffix)} {state['count']}")

    for metric, series in _families(aggregate.get("spans", {}), prefix).items():
        for suffix, state in series:
            lines.append(f"# TYPE {metric}_seconds_total counter")
            lines.append(f"{_labeled(metric + '_seconds_total', suffix)} "
                         f"{_fmt(state['total_s'])}")
            lines.append(f"# TYPE {metric}_calls_total counter")
            lines.append(f"{_labeled(metric + '_calls_total', suffix)} "
                         f"{state['calls']}")
            if state.get("errors"):
                lines.append(f"# TYPE {metric}_errors_total counter")
                lines.append(f"{_labeled(metric + '_errors_total', suffix)} "
                             f"{state['errors']}")

    return "\n".join(lines) + "\n" if lines else ""
