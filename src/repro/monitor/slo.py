"""Declarative SLOs with burn-rate alerting over dispatch windows.

An :class:`SLORule` states an objective ("at most 5% of tasks wait more
than 2 hours") and the monitor tracks the *bad fraction* over two
rolling window lengths — a fast window that reacts within a few
dispatch windows and a slow window that filters one-off spikes.  The
burn rate is ``bad_fraction / objective``; an alert fires on the rising
edge when **both** windows burn above ``burn_threshold``, the standard
multi-window multi-burn-rate pattern (it pages for sustained budget
burn, not for a single bad batch).

Measurements arrive per dispatch window as a ``(bad, total)`` count
pair, so rules compose over any per-task predicate (wait above bound,
task shed, reliability constraint violated) without the monitor keeping
raw samples around.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["SLORule", "SLOStatus", "SLOMonitor"]


@dataclass(frozen=True)
class SLORule:
    """One service-level objective over a per-task bad-event predicate."""

    name: str
    #: Allowed long-run bad fraction (the error budget), in (0, 1).
    objective: float
    #: Rolling lengths in *dispatch windows*, fast < slow.
    fast_windows: int = 6
    slow_windows: int = 30
    #: Alert when both rolling burn rates exceed this multiple of budget.
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"{self.name}: objective must be in (0, 1)")
        if not 0 < self.fast_windows <= self.slow_windows:
            raise ValueError(f"{self.name}: need 0 < fast_windows <= slow_windows")
        if self.burn_threshold <= 0:
            raise ValueError(f"{self.name}: burn_threshold must be > 0")


@dataclass
class SLOStatus:
    """Rolling state of one rule (window counts plus current burn)."""

    rule: SLORule
    fast: "deque[tuple[int, int]]" = field(default_factory=deque, repr=False)
    slow: "deque[tuple[int, int]]" = field(default_factory=deque, repr=False)
    breaching: bool = False  # rising-edge latch
    alerts: int = 0

    @staticmethod
    def _burn(buf: "deque[tuple[int, int]]", objective: float) -> float:
        total = sum(t for _, t in buf)
        if total == 0:
            return 0.0
        bad = sum(b for b, _ in buf)
        return (bad / total) / objective

    @property
    def fast_burn(self) -> float:
        return self._burn(self.fast, self.rule.objective)

    @property
    def slow_burn(self) -> float:
        return self._burn(self.slow, self.rule.objective)

    def observe(self, bad: int, total: int) -> bool:
        """Push one window's counts; ``True`` on a fresh breach edge."""
        if bad < 0 or total < bad:
            raise ValueError(f"{self.rule.name}: need 0 <= bad <= total")
        self.fast.append((bad, total))
        if len(self.fast) > self.rule.fast_windows:
            self.fast.popleft()
        self.slow.append((bad, total))
        if len(self.slow) > self.rule.slow_windows:
            self.slow.popleft()
        # Cold-start gate: with fewer windows than the fast length even a
        # single bad sample burns "infinitely"; hold alerts until the
        # slow buffer holds at least one fast window's worth of history.
        warmed = len(self.slow) >= self.rule.fast_windows
        burning = warmed and (
            self.fast_burn > self.rule.burn_threshold
            and self.slow_burn > self.rule.burn_threshold
        )
        edge = burning and not self.breaching
        self.breaching = burning
        if edge:
            self.alerts += 1
        return edge

    def state(self) -> dict:
        return {
            "name": self.rule.name,
            "objective": self.rule.objective,
            "fast_burn": round(self.fast_burn, 6),
            "slow_burn": round(self.slow_burn, 6),
            "breaching": self.breaching,
            "alerts": self.alerts,
        }


class SLOMonitor:
    """A set of named SLO rules fed window count-pairs by signal name."""

    def __init__(self, rules: "list[SLORule]") -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO rule names: {names}")
        self.status = {r.name: SLOStatus(rule=r) for r in rules}

    def observe(self, name: str, bad: int, total: int) -> bool:
        """Feed one rule; ``True`` when that rule newly breaches."""
        return self.status[name].observe(bad, total)

    def state(self) -> "list[dict]":
        return [s.state() for s in self.status.values()]
