"""Live metrics plane: HTTP ``/metrics`` scrape endpoint + terminal top.

PR 4's Prometheus export was an offline text dump — useful after a run,
invisible during one.  This module puts the same exposition behind a
stdlib HTTP server that snapshots the *running* recorder, and adds the
``repro serve top`` terminal dashboard that refreshes against it:

- :class:`MetricsServer` — ``http.server.ThreadingHTTPServer`` on a
  daemon thread serving ``/metrics`` (Prometheus text),
  ``/snapshot`` (the full JSON status snapshot ``serve top`` renders)
  and ``/healthz``.  Every request calls the ``snapshot_fn`` closure,
  which reads the recorder's aggregate *under the registry lock*
  (``Recorder.aggregate()`` is lock-guarded), so a scrape mid-window
  always sees a consistent view and never blocks the serving loop for
  longer than one snapshot copy;
- :func:`serve_snapshot` — builds that closure's payload from the live
  recorder / profiler / quality monitor: canonical aggregate, stage
  budget, queue/seed/SLO status;
- :func:`render_top` — a *pure* snapshot → text function (unit-testable
  without sockets) showing queue depth, seed sources, per-stage latency
  budgets and SLO burn rates;
- :func:`top` — the fetch/clear/redraw loop behind ``repro serve top``.

Layering: this sits in :mod:`repro.monitor` because it imports the
Prometheus exporter and reads monitor state; :mod:`repro.serve` stays
free of any dependency on it.  The CLI wires a server around a serve
run with ``repro serve run --metrics-port ...``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, TextIO

from repro.monitor.export import prometheus_text
from repro.telemetry.metrics import quantile
from repro.telemetry.registry import merge_aggregates

__all__ = [
    "MetricsServer",
    "serve_snapshot",
    "merge_snapshots",
    "snapshot_from_logs",
    "render_top",
    "top",
]


def _fold_histograms(agg: dict, base: str) -> "dict | None":
    """Fold every label set of histogram ``base`` into one state.

    Shard-labeled recorders write e.g. ``serve/queue_depth{shard="0"}``;
    a fleet-level quantile needs the bucket counts summed across shards
    (same bounds by construction — all shards run the same recorder
    config).  Returns ``None`` when no series matches.
    """
    states = [h for key, h in agg.get("histograms", {}).items()
              if key.split("{", 1)[0] == base]
    if not states:
        return None
    if len(states) == 1:
        return states[0]
    merged = merge_aggregates({"histograms": {base: h}} for h in states)
    return merged["histograms"][base]


def _status_from_aggregate(agg: dict) -> "dict[str, Any]":
    """Queue-depth / seed-source status lines, from an aggregate alone."""
    status: "dict[str, Any]" = {}
    qd = _fold_histograms(agg, "serve/queue_depth")
    if qd is not None:
        status["queue_depth_p95"] = quantile(qd, 0.95)
        status["windows_observed"] = qd.get("count", 0)
    seed: "dict[str, float]" = {}
    for key, state in agg.get("counters", {}).items():
        base = key.split("{", 1)[0]
        if base.startswith("serve/seed_"):
            src = base.rsplit("_", 1)[-1]
            seed[src] = seed.get(src, 0.0) + state.get("value", 0.0)
    if seed:
        status["seed_sources"] = seed
    return status


def serve_snapshot(recorder=None, *, profiler=None, monitor=None,
                   journeys=None, extra: "dict | None" = None) -> dict:
    """One consistent status snapshot of a (possibly mid-flight) run.

    Keys: ``aggregate`` (canonical telemetry aggregate), ``profile``
    (stage budget, when a profiler is attached), ``status`` (queue
    depth / seed sources / SLO burn rates / alert count), ``journeys``
    (wait-histogram exemplar payload, when a
    :class:`~repro.telemetry.journey.JourneyRecorder` is attached) and
    anything in ``extra`` (run identity, config hints).
    """
    snap: "dict[str, Any]" = {"time": time.time()}
    agg: "dict[str, Any]" = {}
    if recorder is not None and getattr(recorder, "enabled", False):
        agg = recorder.aggregate()
    snap["aggregate"] = agg
    if profiler is not None and getattr(profiler, "enabled", False):
        snap["profile"] = profiler.budget()
    if journeys is not None:
        snap["journeys"] = journeys.exemplar_payload()
    status = _status_from_aggregate(agg)
    if monitor is not None:
        try:
            status["slo"] = monitor.slo.state()
            status["alerts"] = len(monitor.alert_log())
        except Exception:  # monitor mid-mutation: skip, never break a scrape
            pass
    snap["status"] = status
    if extra:
        snap.update(extra)
    return snap


def _merge_profiles(profiles: "list[dict]") -> dict:
    """Fold per-shard stage budgets into one fleet budget.

    Totals and call counts are exact sums; per-stage p95 takes the worst
    shard (conservative — a fleet's tail is at least its worst shard's)
    and coverage the weakest shard's.  Sim-time stages merge the same
    way.
    """
    def fold(dicts: "list[dict]") -> dict:
        out: "dict[str, Any]" = {"total_s": 0.0, "calls": 0, "p95": 0.0}
        for s in dicts:
            out["total_s"] += s.get("total_s", 0.0)
            out["calls"] += s.get("calls", 0)
            out["p95"] = max(out["p95"], s.get("p95", 0.0))
        return out

    merged: "dict[str, Any]" = {
        "windows": sum(p.get("windows", 0) for p in profiles),
        "e2e": fold([p.get("e2e", {}) for p in profiles]),
        "unattributed": fold([p.get("unattributed", {}) for p in profiles]),
        "coverage_p95": min((p.get("coverage_p95", 0.0) for p in profiles),
                            default=0.0),
    }
    stage_keys: "list[str]" = []
    for p in profiles:
        for path in p.get("stages", {}):
            if path not in stage_keys:
                stage_keys.append(path)
    merged["stages"] = {
        path: fold([p["stages"][path] for p in profiles
                    if path in p.get("stages", {})])
        for path in stage_keys
    }
    sim_keys: "list[str]" = []
    for p in profiles:
        for name in p.get("sim_stages", {}):
            if name not in sim_keys:
                sim_keys.append(name)
    if sim_keys:
        merged["sim_stages"] = {}
        for name in sim_keys:
            entries = [p["sim_stages"][name] for p in profiles
                       if name in p.get("sim_stages", {})]
            merged["sim_stages"][name] = {
                "p50": max(e.get("p50", 0.0) for e in entries),
                "p95": max(e.get("p95", 0.0) for e in entries),
                "calls": sum(e.get("calls", 0) for e in entries),
            }
    return merged


def merge_snapshots(snaps: "list[dict]") -> dict:
    """Fold N per-shard ``/snapshot`` payloads into one fleet snapshot.

    The aggregates merge losslessly (shard-labeled series stay distinct,
    see :func:`repro.telemetry.merge_aggregates`), the fleet status is
    recomputed from the *merged* aggregate (queue-depth p95 over the
    summed bucket counts, seed sources summed), SLO rule states
    concatenate and alert counts sum, and stage budgets fold per
    :func:`_merge_profiles`.  The result renders through the same
    :func:`render_top` as a single-shard snapshot — that is the whole
    point: ``repro serve top url0 url1 ...`` is the fleet dashboard.
    """
    if not snaps:
        raise ValueError("no snapshots to merge")
    if len(snaps) == 1:
        return dict(snaps[0])
    agg = merge_aggregates([s.get("aggregate", {}) for s in snaps])
    merged: "dict[str, Any]" = {
        "time": max((s.get("time", 0.0) for s in snaps), default=0.0),
        "aggregate": agg,
        "merged_from": len(snaps),
    }
    profiles = [s["profile"] for s in snaps if s.get("profile")]
    if profiles:
        merged["profile"] = _merge_profiles(profiles)
    status = _status_from_aggregate(agg)
    if any("alerts" in s.get("status", {}) for s in snaps):
        status["alerts"] = sum(s.get("status", {}).get("alerts", 0)
                               for s in snaps)
    slo = [rule for s in snaps for rule in s.get("status", {}).get("slo", [])]
    if slo:
        status["slo"] = slo
    merged["status"] = status
    journeys = [s["journeys"] for s in snaps if s.get("journeys")]
    if journeys:
        from repro.telemetry.journey import merge_exemplar_payloads

        merged["journeys"] = merge_exemplar_payloads(journeys)
    shards_seen = sorted({sid for s in snaps
                          for sid in s.get("shards_seen", [])})
    if shards_seen:
        merged["shards_seen"] = shards_seen
    runs = [str(s["run"]) for s in snaps if s.get("run")]
    if runs:
        merged["run"] = " + ".join(runs)
    return merged


def snapshot_from_logs(paths) -> dict:
    """A fleet snapshot from JSONL run logs instead of live endpoints.

    The offline twin of merging ``/snapshot`` scrapes: per-shard logs of
    a finished (or crashed) fleet run rebuild the same dashboard payload
    ``repro serve top --log`` renders.  Lossless by the same argument —
    shard-labeled series merge by full series key.  Each log is read
    once; beyond the metric aggregate this also folds any
    ``journey_exemplars`` events into one fleet exemplar payload and
    collects shard identities from the meta headers, so a truncated log
    whose metric lines were lost (the recorder writes them *last*) still
    contributes its shard to the dashboard's per-shard table.
    """
    from pathlib import Path

    from repro.telemetry.journey import EXEMPLAR_EVENT, merge_exemplar_payloads
    from repro.telemetry.jsonl import aggregate_events, load_run, meta_of

    paths = list(paths)
    if not paths:
        raise ValueError("no run logs given")
    aggs: "list[dict]" = []
    exemplars: "list[dict]" = []
    shards_seen: "list[str]" = []
    for p in paths:
        events = load_run(p)
        aggs.append(aggregate_events(events))
        meta = meta_of(events)
        shard = (meta.get("labels", {}).get("shard")
                 if isinstance(meta.get("labels"), dict) else None)
        if shard is None and isinstance(meta.get("serve"), dict):
            shard = meta["serve"].get("shard")
        if shard is not None and str(shard) not in shards_seen:
            shards_seen.append(str(shard))
        for ev in events:
            if ev.get("type") == "event" and ev.get("name") == EXEMPLAR_EVENT:
                exemplars.append(ev)
    agg = merge_aggregates(aggs)
    snap = {
        "time": time.time(),
        "aggregate": agg,
        "status": _status_from_aggregate(agg),
        "run": " + ".join(Path(p).stem for p in paths),
        "merged_from": len(paths),
    }
    if exemplars:
        snap["journeys"] = merge_exemplar_payloads(exemplars)
    if shards_seen:
        snap["shards_seen"] = shards_seen
    return snap


def _scrape_aggregate(snap: dict) -> dict:
    """The aggregate to expose on ``/metrics``: the recorder's, plus the
    live stage budget folded in as labeled gauges (the dispatcher only
    writes its end-of-run stage gauges at drain time — a mid-run scrape
    must see the budget too)."""
    agg = dict(snap.get("aggregate", {}))
    profile = snap.get("profile")
    drained = any(  # dispatcher already wrote its end-of-run stage gauges
        key.split("{", 1)[0] == "serve/stage_total_s"
        for key in agg.get("gauges", {}))
    if profile and profile.get("windows") and not drained:
        gauges = dict(agg.get("gauges", {}))
        for path, s in profile["stages"].items():
            key = f'serve/stage_total_s{{stage="{path}"}}'
            gauges[key] = {"value": s["total_s"], "calls": s["calls"],
                           "labels": {"stage": path}}
            key = f'serve/stage_p95_s{{stage="{path}"}}'
            gauges[key] = {"value": s["p95"], "calls": s["calls"],
                           "labels": {"stage": path}}
        unattr = profile.get("unattributed", {})
        gauges['serve/stage_total_s{stage="unattributed"}'] = {
            "value": unattr.get("total_s", 0.0), "calls": profile["windows"],
            "labels": {"stage": "unattributed"},
        }
        gauges["serve/profile_coverage_p95"] = {
            "value": profile.get("coverage_p95", 0.0),
            "calls": profile["windows"],
        }
        agg["gauges"] = gauges
    return agg


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            if self.path.split("?")[0] == "/metrics":
                body = prometheus_text(_scrape_aggregate(self.server.snapshot_fn()))
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif self.path.split("?")[0] == "/snapshot":
                body = json.dumps(self.server.snapshot_fn(), sort_keys=True,
                                  default=float)
                ctype = "application/json"
            elif self.path.split("?")[0] == "/healthz":
                body, ctype = "ok\n", "text/plain"
            else:
                self.send_error(404, "unknown path (try /metrics, /snapshot)")
                return
        except Exception as exc:  # surface snapshot bugs to the scraper
            self.send_error(500, f"snapshot failed: {type(exc).__name__}: {exc}")
            return
        payload = body.encode()
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, fmt: str, *args) -> None:  # silence per-request noise
        pass


class MetricsServer:
    """Background ``/metrics`` + ``/snapshot`` HTTP server.

    ``snapshot_fn`` is called once per request from the server thread; it
    must be thread-safe against the recording run (``serve_snapshot``
    over a live recorder is — the aggregate is taken under the registry
    lock).  ``port=0`` picks a free ephemeral port; read ``.port`` after
    :meth:`start`.
    """

    def __init__(self, snapshot_fn: "Callable[[], dict]", *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.snapshot_fn = snapshot_fn
        self.host = host
        self._requested_port = port
        self._httpd: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        httpd = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        httpd.daemon_threads = True
        httpd.snapshot_fn = self.snapshot_fn  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-metrics", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# --------------------------------------------------------------------- #
# `repro serve top`.
# --------------------------------------------------------------------- #


def _bar(frac: float, width: int = 24) -> str:
    frac = min(max(frac, 0.0), 1.0)
    filled = int(round(frac * width))
    return "#" * filled + "." * (width - filled)


def render_top(snap: dict, *, width: int = 78) -> str:
    """Render one ``/snapshot`` payload as the terminal dashboard.

    Pure text-in/text-out (no sockets, no clearing), so the dashboard
    layout is unit-testable; :func:`top` owns the refresh loop.
    """
    lines: "list[str]" = []
    run = snap.get("run", "serve")
    lines.append(f"repro serve top — {run}".ljust(width))
    lines.append("-" * width)

    status = snap.get("status", {})
    agg = snap.get("aggregate", {})
    counters = agg.get("counters", {})

    def cval(name: str) -> float:
        # Sum across label sets: a shard-labeled run has no unlabeled key.
        return sum(state.get("value", 0.0) for key, state in counters.items()
                   if key.split("{", 1)[0] == name)

    lines.append(
        f"windows {cval('serve/windows'):>6.0f}   "
        f"arrived {cval('serve/arrived'):>6.0f}   "
        f"shed {cval('serve/shed'):>5.0f}   "
        f"requeued {cval('serve/requeued'):>5.0f}"
    )
    if "queue_depth_p95" in status:
        lines.append(f"queue depth p95: {status['queue_depth_p95']:.0f}  "
                     f"(over {status.get('windows_observed', 0)} windows)")

    # Fleet view: when series carry shard labels, break the totals down
    # per shard (sorted numerically where possible).  Shard identities
    # come from *every* shard-labeled series (any kind) plus the
    # snapshot's ``shards_seen`` meta-header roll call — a shard whose
    # metric lines were lost to truncation (the recorder writes them
    # last) must still get a row rather than silently vanish.
    shards: "dict[str, dict[str, float]]" = {}
    for section in ("counters", "gauges", "histograms"):
        for key, state in agg.get(section, {}).items():
            shard = state.get("labels", {}).get("shard")
            if shard is not None:
                shards.setdefault(str(shard), {})
    for sid in snap.get("shards_seen", []):
        shards.setdefault(str(sid), {})
    for key, state in counters.items():
        shard = state.get("labels", {}).get("shard")
        if shard is None:
            continue
        base = key.split("{", 1)[0]
        if base in ("serve/windows", "serve/arrived", "serve/completed",
                    "serve/failed", "serve/shed", "serve/requeued"):
            row = shards.setdefault(str(shard), {})
            row[base] = row.get(base, 0.0) + state.get("value", 0.0)
    if shards:
        lines.append("")
        lines.append(f"shards ({len(shards)}):")
        lines.append("  shard   windows  arrived  completed  failed  "
                     "shed  requeued  qd_p95")
        for shard in sorted(shards, key=lambda s: (not s.isdigit(),
                                                   int(s) if s.isdigit() else 0,
                                                   s)):
            row = shards[shard]
            qd = next(
                (h for key, h in agg.get("histograms", {}).items()
                 if key.split("{", 1)[0] == "serve/queue_depth"
                 and h.get("labels", {}).get("shard") == shard), None)
            qd_p95 = f"{quantile(qd, 0.95):.0f}" if qd is not None else "-"
            lines.append(
                f"  {shard:<7} {row.get('serve/windows', 0):>7.0f} "
                f"{row.get('serve/arrived', 0):>8.0f} "
                f"{row.get('serve/completed', 0):>10.0f} "
                f"{row.get('serve/failed', 0):>7.0f} "
                f"{row.get('serve/shed', 0):>5.0f} "
                f"{row.get('serve/requeued', 0):>9.0f} "
                f"{qd_p95:>7}")

    seed = status.get("seed_sources")
    if seed:
        total = sum(seed.values()) or 1.0
        lines.append("")
        lines.append("seed sources:")
        for src in sorted(seed):
            frac = seed[src] / total
            lines.append(f"  {src:<8} {_bar(frac)} {seed[src]:>6.0f} "
                         f"({100 * frac:5.1f}%)")

    profile = snap.get("profile")
    if profile and profile.get("windows"):
        e2e = profile.get("e2e", {})
        lines.append("")
        lines.append(f"latency budget over {profile['windows']} windows "
                     f"(e2e p95 {1e3 * e2e.get('p95', 0.0):.2f} ms, "
                     f"coverage {100 * profile.get('coverage_p95', 0.0):.1f}%):")
        total_s = e2e.get("total_s", 0.0) or 1.0
        for path, s in profile["stages"].items():
            if ";" in path:
                continue  # depth-1 budget view; children show in flamegraph
            frac = s["total_s"] / total_s
            lines.append(f"  {path:<10} {_bar(frac)} {1e3 * s['p95']:>8.3f} ms p95"
                         f" ({100 * frac:5.1f}%)")
        unattr = profile.get("unattributed", {})
        frac = unattr.get("total_s", 0.0) / total_s
        lines.append(f"  {'(unattr)':<10} {_bar(frac)} "
                     f"{1e3 * unattr.get('p95', 0.0):>8.3f} ms p95"
                     f" ({100 * frac:5.1f}%)")
        sim = profile.get("sim_stages", {})
        if sim:
            lines.append("  simulated-time stages (platform hours):")
            for name, s in sim.items():
                lines.append(f"    {name:<16} p50 {s['p50']:.3f}  "
                             f"p95 {s['p95']:.3f}  calls {s['calls']}")

    journeys = snap.get("journeys")
    if journeys and journeys.get("buckets"):
        lines.append("")
        lines.append(
            f"wait exemplars (journeys: {journeys.get('emitted', 0)} emitted, "
            f"{journeys.get('forced', 0)} forced, "
            f"sample {journeys.get('sample', 0.0):g}):")
        lines.append("  wait<=h   tasks  worst trace        task   wait_h")
        for b in journeys["buckets"]:
            le = b.get("le")
            # The overflow bucket's bound is the string "+Inf".
            le_s = f"{le:g}" if isinstance(le, (int, float)) else "+inf"
            lines.append(
                f"  {le_s:<9} {b.get('count', 0):>5}  "
                f"{b.get('trace', '-'): <16}  "
                f"{b.get('task_id', '-')!s:>5}  "
                f"{b.get('wait_hours', 0.0):>6.3f}")

    slo = status.get("slo")
    if slo:
        lines.append("")
        lines.append(f"SLO burn rates ({status.get('alerts', 0)} alerts):")
        for s in slo:
            lines.append(f"  {s.get('name', '?'):<24} "
                         f"fast {s.get('fast_burn', 0.0):6.2f}  "
                         f"slow {s.get('slow_burn', 0.0):6.2f}  "
                         f"{'FIRING' if s.get('firing') else 'ok'}")
    return "\n".join(lines)


def fetch_snapshot(url: str, timeout: float = 5.0) -> dict:
    """GET ``<url>/snapshot`` and parse it."""
    base = url.rstrip("/")
    if not base.startswith("http"):
        base = f"http://{base}"
    with urllib.request.urlopen(f"{base}/snapshot", timeout=timeout) as resp:
        return json.loads(resp.read().decode())


def top(url: "str | list[str]", *, interval: float = 2.0,
        iterations: "int | None" = None,
        stream: "TextIO | None" = None) -> int:
    """Refresh loop: fetch ``/snapshot``(s), merge, clear, redraw.

    ``url`` may be one endpoint or a list — several endpoints are the
    fleet view: each refresh scrapes all of them and renders the
    :func:`merge_snapshots` fold (per-shard breakdown included).
    ``iterations=None`` runs until interrupted (Ctrl-C exits cleanly);
    ``iterations=1`` is the scriptable ``--once`` mode.  Returns a shell
    exit code.
    """
    urls = [url] if isinstance(url, str) else list(url)
    out = stream or sys.stdout
    clear = "\x1b[2J\x1b[H" if out.isatty() else ""
    n = 0
    try:
        while iterations is None or n < iterations:
            if n:
                time.sleep(interval)
            try:
                snap = merge_snapshots([fetch_snapshot(u) for u in urls])
            except OSError as exc:
                targets = urls[0] if len(urls) == 1 else ", ".join(urls)
                print(f"serve top: cannot reach {targets}: {exc}", file=out)
                return 1
            print(f"{clear}{render_top(snap)}", file=out, flush=True)
            n += 1
    except KeyboardInterrupt:
        pass
    return 0
