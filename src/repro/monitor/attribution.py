"""Online regret attribution: where did this window's makespan go?

For a sampled subset of dispatch windows the attributor re-solves the
window's matching in hindsight with the *true* matrices the snapshot
carries and decomposes the realized gap into two causes:

- **prediction gap** — ``f(X_exec, T) − f(X_oracle, T)``: the makespan
  the executed (prediction-driven) assignment paid over the assignment
  the same relax-and-round pipeline would have produced from the truth.
  This is exactly the paper's Eq. (6) regret numerator, reusing
  :func:`repro.metrics.regret.deployment_matching` so offline and
  online regret are computed by the same code path.
- **rounding slack** — ``f(X_oracle, T) − f(X_frac, T)``: what the
  rounding step itself costs relative to the fractional relaxed optimum.
  This part is *not* the predictor's fault; separating it keeps drift
  detectors fed by the prediction gap from alerting on solver artifacts.

Both terms are per-task normalized (the Eq. 6 convention).  For windows
small enough, an exact branch-and-bound solve additionally bounds the
pipeline slack against the true discrete optimum.

Sampling is deterministic (every ``sample_every``-th window), never
random — replaying the same trace reproduces the same attributions
byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.exact import solve_branch_and_bound
from repro.matching.objectives import makespan
from repro.matching.problem import MatchingProblem
from repro.matching.relaxed import SolverConfig, solve_relaxed
from repro.matching.rounding import round_assignment
from repro.serve.dispatcher import WindowSnapshot

__all__ = ["WindowAttribution", "RegretAttributor"]


@dataclass(frozen=True)
class WindowAttribution:
    """Per-task-normalized decomposition of one window's hindsight gap."""

    window: int
    n_tasks: int
    n_clusters: int
    cost_executed: float  # f(X_exec, T_true)
    cost_oracle: float  # f(round(relax(T_true)), T_true)
    cost_fractional: float  # f(X_frac, T_true), the relaxed lower anchor
    prediction_gap: float  # (cost_executed - cost_oracle) / N
    rounding_slack: float  # (cost_oracle - cost_fractional) / N
    cost_exact: "float | None" = None  # true discrete optimum (small windows)
    exact_slack: "float | None" = None  # (cost_oracle - cost_exact) / N

    @property
    def total_gap(self) -> float:
        """Identity: prediction gap + rounding slack, per task."""
        return self.prediction_gap + self.rounding_slack


class RegretAttributor:
    """Hindsight re-solver over a deterministic sample of windows.

    The last window of each ``sample_every``-window block (windows
    ``N−1, 2N−1, …``; every window when ``sample_every=1``) is re-solved
    from the snapshot's true ``T``/``A`` with the same deployment
    pipeline the dispatcher used.  End-of-block sampling keeps short
    runs from paying a fixed re-solve on window 0, so monitoring cost
    amortizes at the configured rate from the first window on.
    Windows with at most ``exact_max_tasks`` tasks additionally get an
    exact branch-and-bound solve — cheap at micro-batch sizes and it
    turns "rounding slack" from a relative into an absolute statement.
    """

    def __init__(
        self,
        *,
        sample_every: int = 8,
        solver_config: SolverConfig | None = None,
        exact_max_tasks: int = 0,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if exact_max_tasks < 0:
            raise ValueError("exact_max_tasks must be >= 0")
        self.sample_every = sample_every
        self.solver_config = solver_config or SolverConfig(tol=1e-4, max_iters=300)
        self.exact_max_tasks = exact_max_tasks
        self.attributions: "list[WindowAttribution]" = []

    def wants(self, window: int) -> bool:
        return (window + 1) % self.sample_every == 0

    def attribute(self, snapshot: WindowSnapshot) -> "WindowAttribution | None":
        """Decompose one window; ``None`` when the window is not sampled."""
        if not self.wants(snapshot.window):
            return None
        # Hindsight problem from the snapshot's ground truth.  Makespan
        # depends only on T, so default penalty knobs are fine here; the
        # oracle pipeline mirrors deployment_matching exactly.
        problem = MatchingProblem(T=snapshot.T, A=snapshot.A, gamma=snapshot.gamma)
        relaxed = solve_relaxed(problem, self.solver_config)
        X_oracle = round_assignment(relaxed.X, problem)
        cost_exec = makespan(snapshot.X, problem)
        cost_oracle = makespan(X_oracle, problem)
        cost_frac = makespan(relaxed.X, problem)
        n = problem.N
        cost_exact = exact_slack = None
        if 0 < n <= self.exact_max_tasks:
            exact = solve_branch_and_bound(problem)
            if exact.feasible:
                cost_exact = exact.objective
                exact_slack = (cost_oracle - cost_exact) / n
        attribution = WindowAttribution(
            window=snapshot.window,
            n_tasks=n,
            n_clusters=problem.M,
            cost_executed=cost_exec,
            cost_oracle=cost_oracle,
            cost_fractional=cost_frac,
            prediction_gap=(cost_exec - cost_oracle) / n,
            rounding_slack=(cost_oracle - cost_frac) / n,
            cost_exact=cost_exact,
            exact_slack=exact_slack,
        )
        self.attributions.append(attribution)
        return attribution

    def summary(self) -> dict:
        """Aggregate view over all sampled windows so far."""
        if not self.attributions:
            return {"sampled": 0}
        pred = [a.prediction_gap for a in self.attributions]
        slack = [a.rounding_slack for a in self.attributions]
        return {
            "sampled": len(self.attributions),
            "prediction_gap_mean": sum(pred) / len(pred),
            "prediction_gap_max": max(pred),
            "rounding_slack_mean": sum(slack) / len(slack),
            "rounding_slack_max": max(slack),
        }
