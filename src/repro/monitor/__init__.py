"""repro.monitor — online quality monitoring for the serving layer.

Observability for the deployed predict-then-match loop (DESIGN.md §11),
layered strictly *above* :mod:`repro.serve` and :mod:`repro.telemetry`
— the dispatcher knows only the :class:`repro.serve.ServeCallback`
protocol and never imports this package:

- :mod:`repro.monitor.drift` — streaming change detectors
  (Page–Hinkley, CUSUM, windowed error quantiles) over prediction-error
  signals;
- :mod:`repro.monitor.attribution` — sampled hindsight re-solves that
  split each window's makespan gap into prediction error vs
  rounding/solver slack (the online counterpart of Eq. 6 regret);
- :mod:`repro.monitor.slo` — declarative rolling-window SLO rules with
  multi-window burn-rate alerting;
- :mod:`repro.monitor.quality` — :class:`QualityMonitor`, the
  ServeCallback composing the above and emitting ``alert`` telemetry
  events (including ``retrain_suggested``);
- :mod:`repro.monitor.sinks` — pluggable alert delivery (file tailer,
  webhook-style callables) with per-sink failure isolation;
- :mod:`repro.monitor.export` — Prometheus text-format rendering of any
  telemetry aggregate;
- :mod:`repro.monitor.replay` — deterministic reconstruction of a
  serving run from its JSONL log (``repro replay``), including runs
  whose checkpoints were hot-swapped by the closed retraining loop.
"""

from repro.monitor.attribution import RegretAttributor, WindowAttribution
from repro.monitor.drift import Cusum, DriftBank, PageHinkley, QuantileWindow
from repro.monitor.export import prometheus_text, sanitize_name
from repro.monitor.live import (
    MetricsServer,
    merge_snapshots,
    render_top,
    serve_snapshot,
    snapshot_from_logs,
    top,
)
from repro.monitor.quality import DEFAULT_SLOS, Alert, MonitorConfig, QualityMonitor
from repro.monitor.replay import ReplayStream, TraceReplay
from repro.monitor.sinks import AlertSink, CallableSink, FileTailSink
from repro.monitor.slo import SLOMonitor, SLORule, SLOStatus

__all__ = [
    "PageHinkley",
    "Cusum",
    "QuantileWindow",
    "DriftBank",
    "RegretAttributor",
    "WindowAttribution",
    "SLORule",
    "SLOStatus",
    "SLOMonitor",
    "Alert",
    "MonitorConfig",
    "QualityMonitor",
    "DEFAULT_SLOS",
    "AlertSink",
    "FileTailSink",
    "CallableSink",
    "prometheus_text",
    "sanitize_name",
    "TraceReplay",
    "ReplayStream",
    "MetricsServer",
    "serve_snapshot",
    "merge_snapshots",
    "snapshot_from_logs",
    "render_top",
    "top",
]
