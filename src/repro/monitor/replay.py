"""Deterministic trace replay from a JSONL serving run log.

A ``repro serve run --telemetry jsonl`` run leaves three breadcrumb
event streams in its log — ``serve/arrival`` (exact arrival hour +
task id), ``serve/outage`` (the outage schedule) and
``serve/run_stats`` (the final counters) — plus a ``serve`` parameter
dict in the meta header.  Together with the repo-wide determinism
conventions that is a *complete* description of the run:

- :class:`repro.workloads.TaskPool` is a pure function of
  ``(pool_size, seed)``, so a logged ``task_id`` inverts back to the
  exact :class:`Task` object;
- ``json.dumps``/``json.loads`` round-trip Python floats exactly, so
  replayed arrival times are bit-identical to the original draw;
- the dispatcher consumes randomness only through its own generator
  (seeded ``seed + 4`` by the serve-seed convention), and its trace is
  simulated-time only.

:func:`build_stack` is the single constructor of the serving stack
(pool → clusters → trained method → dispatcher config) shared by the
``repro serve run`` CLI path and :class:`TraceReplay` — replays match
the original run by construction, not by parallel reimplementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.serve.dispatcher import (
    Dispatcher,
    DispatcherConfig,
    Outage,
    ServeCallback,
    ServeStats,
)
from repro.telemetry.jsonl import load_run, meta_of
from repro.workloads.taskpool import Task, TaskPool

__all__ = ["serve_params", "build_stack", "ReplayStream", "TraceReplay"]

#: Fields checked by :meth:`TraceReplay.verify`, mirroring the
#: ``serve/run_stats`` breadcrumb the dispatcher emits at end of run.
RUN_STAT_FIELDS = (
    "arrived", "matched", "completed", "failed", "shed", "requeued",
    "unserved", "windows", "swaps", "max_queue_depth",
)


def serve_params(
    *,
    setting: str = "A",
    pool_size: int = 64,
    seed: int = 0,
    train_epochs: int = 120,
    solver_tol: float = 1e-4,
    solver_max_iters: int = 400,
    max_batch: int = 16,
    max_wait_hours: float = 0.25,
    queue_capacity: int = 128,
    shed_policy: str = "reject",
    warm_start: bool = True,
) -> dict:
    """The JSON-serializable parameter dict a serve run stores in its
    telemetry meta header (``meta["serve"]``) for later replay."""
    return {
        "setting": setting,
        "pool_size": pool_size,
        "seed": seed,
        "train_epochs": train_epochs,
        "solver_tol": solver_tol,
        "solver_max_iters": solver_max_iters,
        "max_batch": max_batch,
        "max_wait_hours": max_wait_hours,
        "queue_capacity": queue_capacity,
        "shed_policy": shed_policy,
        "warm_start": warm_start,
    }


def build_stack(params: dict):
    """Construct the serving stack a parameter dict describes.

    Returns ``(pool, clusters, method, spec, config)`` — everything a
    :class:`Dispatcher` needs except the arrival stream.  Follows the
    serve-seed convention exactly: pool on ``seed``, train/test split on
    ``seed + 1``, fit context on ``seed + 2`` (the load generator uses
    ``seed + 3`` and the dispatcher ``seed + 4``).
    """
    from repro.clusters import make_setting
    from repro.matching.relaxed import SolverConfig
    from repro.methods import TSM, FitContext, MatchSpec
    from repro.predictors.training import TrainConfig

    seed = int(params["seed"])
    pool = TaskPool(int(params["pool_size"]), rng=seed)
    clusters = make_setting(params["setting"])
    train_tasks, _ = pool.split(0.6, rng=seed + 1)
    spec = MatchSpec(solver=SolverConfig(
        tol=float(params["solver_tol"]),
        max_iters=int(params["solver_max_iters"]),
    ))
    ctx = FitContext.build(clusters, train_tasks, spec, rng=seed + 2)
    method = TSM(
        train_config=TrainConfig(epochs=int(params["train_epochs"]))
    ).fit(ctx)
    warm = bool(params["warm_start"])
    config = DispatcherConfig(
        max_batch=int(params["max_batch"]),
        max_wait_hours=float(params["max_wait_hours"]),
        queue_capacity=int(params["queue_capacity"]),
        shed_policy=params["shed_policy"],
        warm_start=warm,
        memoize_predictions=warm,
    )
    return pool, clusters, method, spec, config


@dataclass(frozen=True)
class ReplayStream:
    """A logged arrival sequence as an :class:`repro.sim.ArrivalStream`.

    ``draw`` replays the recorded ``(hour, task)`` pairs verbatim — the
    generator argument is accepted for protocol compatibility and
    ignored, and arrivals beyond ``horizon_hours`` are clipped.
    """

    arrivals: "tuple[tuple[float, Task], ...]"

    def draw(self, horizon_hours: float, rng=None) -> "list[tuple[float, Task]]":
        return [(t, task) for t, task in self.arrivals if t <= horizon_hours]


class TraceReplay:
    """Reconstruct and re-drive one serving run from its JSONL log."""

    def __init__(self, params: dict, arrivals: "list[tuple[float, int]]",
                 outages: "list[Outage]", run_stats: "dict | None",
                 meta: "dict | None" = None) -> None:
        self.params = dict(params)
        self.arrivals = list(arrivals)  # (hour, task_id) in log order
        self.outages = list(outages)
        self.run_stats = dict(run_stats) if run_stats else None
        self.meta = dict(meta or {})
        self._swaps = []

    @classmethod
    def from_log(cls, path: "str | Path") -> "TraceReplay":
        """Parse a run log; raises ``ValueError`` when it is not replayable."""
        events = load_run(path)
        meta = meta_of(events)
        params = meta.get("serve")
        if not isinstance(params, dict):
            raise ValueError(
                f"{path}: meta header has no 'serve' parameter dict — "
                "was this log written by 'repro serve run --telemetry jsonl'?"
            )
        missing = [k for k in serve_params() if k not in params]
        if missing:
            raise ValueError(f"{path}: serve params missing {missing}")
        arrivals: "list[tuple[float, int]]" = []
        outages: "list[Outage]" = []
        run_stats = None
        swaps = []
        for ev in events:
            if ev.get("type") != "event":
                continue
            name = ev.get("name")
            if name == "serve/arrival":
                arrivals.append((float(ev["t"]), int(ev["task_id"])))
            elif name == "serve/outage":
                outages.append(Outage(cluster_id=int(ev["cluster_id"]),
                                      start=float(ev["start"]),
                                      end=float(ev["end"])))
            elif name == "serve/run_stats":
                run_stats = {k: ev[k] for k in RUN_STAT_FIELDS if k in ev}
            elif name == "serve/hot_swap":
                swaps.append(ev)
        if not arrivals:
            raise ValueError(f"{path}: no serve/arrival events — nothing to replay")
        replay = cls(params, arrivals, outages, run_stats, meta)
        replay._swaps = swaps
        return replay

    # ------------------------------------------------------------------ #

    def stream(self, pool: TaskPool) -> ReplayStream:
        """The logged arrivals resolved against a reconstructed pool."""
        return ReplayStream(tuple((t, pool[tid]) for t, tid in self.arrivals))

    def replay(
        self,
        *,
        callbacks: "list[ServeCallback] | None" = None,
        stack=None,
    ) -> ServeStats:
        """Re-drive the dispatcher over the logged arrivals.

        ``stack`` accepts a prebuilt :func:`build_stack` result so tests
        replaying one log several times train the predictor once.
        """
        if self._swaps:
            raise ValueError(
                "log contains serve/hot_swap events; replaying hot-swaps needs "
                "the original checkpoint registry, which the log does not carry"
            )
        pool, clusters, method, spec, config = stack or build_stack(self.params)
        events = self.stream(pool).draw(float("inf"))
        dispatcher = Dispatcher(clusters, method, spec, config,
                                callbacks=callbacks)
        return dispatcher.run(events, rng=int(self.params["seed"]) + 4,
                              outages=self.outages or None)

    def verify(self, stats: ServeStats) -> "list[str]":
        """Mismatches between a replay's stats and the logged run's.

        Empty list = the replay reproduced the original run's counters
        and the conservation identity exactly.
        """
        problems: "list[str]" = []
        if not stats.conserved:
            problems.append("conservation identity violated in replay")
        if self.run_stats is None:
            problems.append("log has no serve/run_stats event to verify against")
            return problems
        for name in RUN_STAT_FIELDS:
            if name not in self.run_stats:
                continue
            got, want = getattr(stats, name), self.run_stats[name]
            if got != want:
                problems.append(f"{name}: replay {got} != logged {want}")
        return problems
