"""Deterministic trace replay from a JSONL serving run log.

A ``repro serve run --telemetry jsonl`` run leaves breadcrumb event
streams in its log — ``serve/arrival`` (exact arrival hour + task id),
``serve/outage`` (the outage schedule), ``serve/hot_swap`` (every
applied checkpoint swap with its deterministic weights digest) and
``serve/run_stats`` (the final counters) — plus a ``serve`` parameter
dict in the meta header (a serialized :class:`repro.serve.ServeConfig`).
Together with the repo-wide determinism conventions that is a *complete*
description of the run:

- :class:`repro.workloads.TaskPool` is a pure function of
  ``(pool_size, seed)``, so a logged ``task_id`` inverts back to the
  exact :class:`Task` object;
- ``json.dumps``/``json.loads`` round-trip Python floats exactly, so
  replayed arrival times are bit-identical to the original draw;
- the dispatcher consumes randomness only through its own generator
  (seeded ``seed + 4`` by the serve-seed convention), and its trace is
  simulated-time only;
- the closed retraining loop (:mod:`repro.retrain`) is itself a pure
  function of the snapshot stream and its config seed, so a
  retrain-triggered hot-swap is *reproducible*: the replay re-runs the
  whole drift → refit → canary → swap cascade from scratch (against a
  scratch registry) and must regenerate checkpoints with the **same
  weights digests** at the **same windows** — which :meth:`TraceReplay.
  verify` checks against the logged breadcrumbs.  Only runs whose swaps
  came from an *external* ``swap_schedule`` remain non-replayable: their
  checkpoints live outside the log.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.serve.config import ServeConfig
from repro.serve.config import build_platform as _build_platform
from repro.serve.config import build_stack as _build_stack
from repro.serve.dispatcher import (
    Dispatcher,
    Outage,
    ServeCallback,
    ServeStats,
)
from repro.telemetry.jsonl import load_run, meta_of
from repro.workloads.taskpool import Task, TaskPool

__all__ = ["ReplayStream", "TraceReplay"]

#: Fields checked by :meth:`TraceReplay.verify`, mirroring the
#: ``serve/run_stats`` breadcrumb the dispatcher emits at end of run.
RUN_STAT_FIELDS = (
    "arrived", "matched", "completed", "failed", "shed", "requeued",
    "unserved", "windows", "swaps", "max_queue_depth",
)

#: Keys a meta header must carry to be replayable (the legacy core of
#: the serve parameter dict; newer logs add monitor/retrain sections).
REQUIRED_PARAMS = (
    "setting", "pool_size", "seed", "train_epochs", "solver_tol",
    "solver_max_iters", "max_batch", "max_wait_hours", "queue_capacity",
    "shed_policy", "warm_start",
)


@dataclass(frozen=True)
class ReplayStream:
    """A logged arrival sequence as an :class:`repro.sim.ArrivalStream`.

    ``draw`` replays the recorded ``(hour, task)`` pairs verbatim — the
    generator argument is accepted for protocol compatibility and
    ignored, and arrivals beyond ``horizon_hours`` are clipped.
    """

    arrivals: "tuple[tuple[float, Task], ...]"

    def draw(self, horizon_hours: float, rng=None) -> "list[tuple[float, Task]]":
        return [(t, task) for t, task in self.arrivals if t <= horizon_hours]


class TraceReplay:
    """Reconstruct and re-drive one serving run from its JSONL log."""

    def __init__(self, params: dict, arrivals: "list[tuple[float, int]]",
                 outages: "list[Outage]", run_stats: "dict | None",
                 meta: "dict | None" = None) -> None:
        self.params = dict(params)
        self.config = ServeConfig.from_params(self.params)
        self.arrivals = list(arrivals)  # (hour, task_id) in log order
        self.outages = list(outages)
        self.run_stats = dict(run_stats) if run_stats else None
        self.meta = dict(meta or {})
        self._swaps: "list[dict]" = []
        #: Raw ``journey`` event lines from the log (schema 3; empty for
        #: journey-free runs).  Grouped on demand by :meth:`journeys`.
        self._journey_events: "list[dict]" = []

    @classmethod
    def from_log(cls, path: "str | Path") -> "TraceReplay":
        """Parse a run log; raises ``ValueError`` when it is not replayable."""
        events = load_run(path)
        meta = meta_of(events)
        params = meta.get("serve")
        if not isinstance(params, dict):
            raise ValueError(
                f"{path}: meta header has no 'serve' parameter dict — "
                "was this log written by 'repro serve run --telemetry jsonl'?"
            )
        missing = [k for k in REQUIRED_PARAMS if k not in params]
        if missing:
            raise ValueError(f"{path}: serve params missing {missing}")
        arrivals: "list[tuple[float, int]]" = []
        outages: "list[Outage]" = []
        run_stats = None
        swaps = []
        journey_events: "list[dict]" = []
        for ev in events:
            if ev.get("type") != "event":
                continue
            name = ev.get("name")
            if name == "serve/arrival":
                arrivals.append((float(ev["t"]), int(ev["task_id"])))
            elif name == "serve/outage":
                outages.append(Outage(cluster_id=int(ev["cluster_id"]),
                                      start=float(ev["start"]),
                                      end=float(ev["end"])))
            elif name == "serve/run_stats":
                run_stats = {k: ev[k] for k in RUN_STAT_FIELDS if k in ev}
            elif name == "serve/hot_swap":
                swaps.append(ev)
            elif name == "journey":
                journey_events.append(ev)
        if not arrivals:
            raise ValueError(f"{path}: no serve/arrival events — nothing to replay")
        replay = cls(params, arrivals, outages, run_stats, meta)
        replay._swaps = swaps
        replay._journey_events = journey_events
        return replay

    # ------------------------------------------------------------------ #

    @property
    def swaps(self) -> "list[dict]":
        """Logged ``serve/hot_swap`` breadcrumbs, in application order."""
        return list(self._swaps)

    @property
    def journey_sample(self) -> float:
        """The run's journey sampling fraction (0.0 for journey-free logs)."""
        return float(self.params.get("journey_sample", 0.0))

    def journeys(self) -> "dict[str, list[dict]]":
        """Logged task journeys grouped by trace ID, in causal order."""
        from repro.telemetry.journey import journeys_from_events

        return journeys_from_events(self._journey_events)

    def audit_journeys(self) -> "list[str]":
        """Causality audit of the logged journeys (empty = clean).

        State-machine transitions, monotone timestamps and trace-ID
        integrity always; at sampling fraction 1.0 additionally the
        conservation layer against the logged ``serve/run_stats`` —
        every admitted task reaches exactly one terminal state and the
        terminal counts match the run's counters exactly.
        """
        from repro.telemetry.journey import audit_journeys

        return audit_journeys(self.journeys(), expect=self.run_stats,
                              sample=self.journey_sample)

    def stream(self, pool: TaskPool) -> ReplayStream:
        """The logged arrivals resolved against a reconstructed pool."""
        return ReplayStream(tuple((t, pool[tid]) for t, tid in self.arrivals))

    def replay(
        self,
        *,
        callbacks: "list[ServeCallback] | None" = None,
        stack=None,
        registry_root: "str | None" = None,
    ) -> ServeStats:
        """Re-drive the dispatcher over the logged arrivals.

        Runs with a retrain section rebuild the *entire* closed loop —
        monitor, controller, and a scratch checkpoint registry (a
        temporary directory unless ``registry_root`` is given; retrain
        runs start from an empty registry, so a scratch root regenerates
        the same version sequence) — and the retrain cascade re-fires
        during the replay.  Plain runs rebuild only the dispatcher.

        Hot-swaps logged *without* a retrain section came from an
        external ``swap_schedule`` whose checkpoints the log does not
        carry.  For those, ``registry_root`` names the *original*
        registry (or a copy): each logged swap's version is looked up
        there and its stored weights digest checked against the logged
        breadcrumb before any replay runs — a registry whose checkpoints
        were retrained since the run fails fast instead of silently
        replaying different weights.  The schedule is then rebuilt from
        the breadcrumbs and the replay re-applies the same swaps at the
        same windows.  Without ``registry_root`` such logs remain
        non-replayable.

        ``stack`` accepts a prebuilt :func:`repro.serve.build_stack`
        result so tests replaying one log several times train the
        predictor once.
        """
        if self.config.retrain is not None:
            extra = list(callbacks or ())
            if registry_root is not None:
                platform = _build_platform(self.config, stack=stack,
                                           registry_root=registry_root)
            else:
                with tempfile.TemporaryDirectory(prefix="replay-registry-") as tmp:
                    platform = _build_platform(self.config, stack=stack,
                                               registry_root=tmp)
                    return self._drive(platform.dispatcher, platform.pool, extra)
            return self._drive(platform.dispatcher, platform.pool, extra)
        if self._swaps and registry_root is None:
            raise ValueError(
                "log contains serve/hot_swap events but no retrain config; "
                "schedule-driven hot-swaps need the original checkpoint "
                "registry — pass replay(registry_root=...) pointing at it"
            )
        registry = None
        swap_schedule = None
        if self._swaps:
            from repro.serve.registry import ModelRegistry

            registry = ModelRegistry(registry_root)
            swap_schedule = {}
            for ev in self._swaps:
                version = str(ev["version"])
                if version not in registry:
                    raise ValueError(
                        f"logged swap @window {ev.get('window')} names version "
                        f"{version!r}, not present in registry {registry_root}"
                    )
                logged = ev.get("digest")
                stored = registry.info(version).digest
                if logged is not None and stored != logged:
                    raise ValueError(
                        f"registry {registry_root} version {version} digest "
                        f"{stored!r} does not match the logged swap digest "
                        f"{logged!r} — checkpoint changed since the run"
                    )
                swap_schedule[int(ev["window"])] = version
        pool, clusters, method, spec, config = stack or _build_stack(self.config)
        dispatcher = Dispatcher(clusters, method, spec, config,
                                registry=registry, swap_schedule=swap_schedule,
                                callbacks=callbacks)
        return self._drive(dispatcher, pool, [])

    def _drive(self, dispatcher: Dispatcher, pool: TaskPool,
               extra_callbacks: "list[ServeCallback]") -> ServeStats:
        for cb in extra_callbacks:
            dispatcher.callbacks.append(cb)
        events = self.stream(pool).draw(float("inf"))
        return dispatcher.run(events, rng=self.config.seed + 4,
                              outages=self.outages or None)

    def verify(self, stats: ServeStats) -> "list[str]":
        """Mismatches between a replay's stats and the logged run's.

        Beyond the counter/conservation checks, every applied hot-swap
        is compared against the logged breadcrumbs: same window, same
        version, same weights digest, same reason — i.e. the replayed
        retraining loop regenerated byte-identical checkpoints.  Logs
        with journeys additionally pass the causality audit
        (:meth:`audit_journeys`).  Empty list = exact reproduction.
        """
        problems: "list[str]" = []
        if not stats.conserved:
            problems.append("conservation identity violated in replay")
        if self._journey_events:
            problems.extend(self.audit_journeys())
        if self.run_stats is None:
            problems.append("log has no serve/run_stats event to verify against")
        else:
            for name in RUN_STAT_FIELDS:
                if name not in self.run_stats:
                    continue
                got, want = getattr(stats, name), self.run_stats[name]
                if got != want:
                    problems.append(f"{name}: replay {got} != logged {want}")
        if len(stats.swap_events) != len(self._swaps):
            problems.append(
                f"swap count: replay {len(stats.swap_events)} != "
                f"logged {len(self._swaps)}")
        else:
            for got, want in zip(stats.swap_events, self._swaps):
                for key in ("window", "version", "digest", "reason"):
                    if key in want and got.get(key) != want[key]:
                        problems.append(
                            f"swap @window {want.get('window')}: {key} "
                            f"replay {got.get(key)!r} != logged {want[key]!r}")
        return problems
