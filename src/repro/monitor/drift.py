"""Streaming drift detectors for prediction-quality signals.

Decision-focused systems are drift-sensitive in a way MSE dashboards do
not capture: a small bias in predicted execution times can flip an
argmin and cost real makespan while barely moving the average error
(the *Predict-and-Critic* observation; *Faster Matchings via Learned
Duals* shows stale learned inputs degrade the optimization itself).
This module provides three classic change detectors, all O(1) memory
per signal, consumed by :class:`repro.monitor.quality.QualityMonitor`:

- :class:`PageHinkley` — the Page–Hinkley test for an upward mean shift
  (one-sided; prediction *errors* only ever drift up when a model goes
  stale);
- :class:`Cusum` — two-sided tabular CUSUM against a frozen reference
  mean, for signed signals such as reliability calibration error where
  over- and under-confidence both matter;
- :class:`QuantileWindow` — a windowed error-quantile comparison
  (current window's q-quantile vs a frozen reference window) that
  catches tail blow-ups a mean test averages away.

Every detector is deterministic given its input stream: ``update``
returns ``True`` on the sample that crosses the alarm threshold, and
the caller decides what to do (emit an alert, ``reset()``, cool down).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["PageHinkley", "Cusum", "QuantileWindow", "DriftBank"]


@dataclass
class PageHinkley:
    """Page–Hinkley test for an upward shift of a stream's mean.

    Maintains the cumulative deviation from the running mean minus an
    allowed drift ``delta``; alarms when the deviation climbs more than
    ``threshold`` above its historical minimum.  ``min_samples`` gates
    the alarm until the running mean is meaningful.
    """

    delta: float = 0.05
    threshold: float = 5.0
    min_samples: int = 40

    n: int = field(default=0, init=False)
    mean: float = field(default=0.0, init=False)
    cum: float = field(default=0.0, init=False)
    cum_min: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.threshold <= 0 or self.delta < 0:
            raise ValueError("need threshold > 0 and delta >= 0")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    @property
    def stat(self) -> float:
        """Current test statistic (distance above the running minimum)."""
        return self.cum - self.cum_min

    def update(self, x: float) -> bool:
        """Consume one sample; ``True`` when the alarm threshold crosses."""
        self.n += 1
        self.mean += (x - self.mean) / self.n
        self.cum += x - self.mean - self.delta
        self.cum_min = min(self.cum_min, self.cum)
        return self.n >= self.min_samples and self.stat > self.threshold

    def reset(self) -> None:
        """Forget everything (post-alarm re-arm or post-retrain restart)."""
        self.n = 0
        self.mean = self.cum = self.cum_min = 0.0


@dataclass
class Cusum:
    """Two-sided tabular CUSUM against a frozen reference mean.

    The first ``warmup`` samples estimate the in-control mean; after
    that ``g⁺``/``g⁻`` accumulate positive/negative deviations beyond
    the allowed ``drift`` and alarm past ``threshold``.  Freezing the
    reference (unlike Page–Hinkley's running mean) makes the detector
    sensitive to slow ramps that a tracking mean would absorb.
    """

    drift: float = 0.05
    threshold: float = 5.0
    warmup: int = 40

    n: int = field(default=0, init=False)
    reference: float = field(default=0.0, init=False)
    g_pos: float = field(default=0.0, init=False)
    g_neg: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.threshold <= 0 or self.drift < 0:
            raise ValueError("need threshold > 0 and drift >= 0")
        if self.warmup < 1:
            raise ValueError("warmup must be >= 1")

    @property
    def stat(self) -> float:
        return max(self.g_pos, self.g_neg)

    def update(self, x: float) -> bool:
        self.n += 1
        if self.n <= self.warmup:
            self.reference += (x - self.reference) / self.n
            return False
        dev = x - self.reference
        self.g_pos = max(0.0, self.g_pos + dev - self.drift)
        self.g_neg = max(0.0, self.g_neg - dev - self.drift)
        return self.stat > self.threshold

    def reset(self) -> None:
        self.n = 0
        self.reference = self.g_pos = self.g_neg = 0.0


@dataclass
class QuantileWindow:
    """Windowed error-quantile monitor: current vs frozen reference tail.

    The first ``window`` samples form a frozen reference; afterwards the
    detector compares the ``q``-quantile of the most recent ``window``
    samples against the reference quantile and alarms when the ratio
    exceeds ``factor``.  ``floor`` keeps near-zero reference quantiles
    (a *very* good predictor) from turning numeric noise into alarms.
    """

    q: float = 0.9
    window: int = 100
    factor: float = 2.5
    floor: float = 1e-3

    _reference: "list[float]" = field(default_factory=list, init=False, repr=False)
    _current: "deque[float]" = field(default_factory=deque, init=False, repr=False)
    _ref_q: "float | None" = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {self.q}")
        if self.window < 2 or self.factor <= 1.0:
            raise ValueError("need window >= 2 and factor > 1")

    @staticmethod
    def _quantile(xs: "list[float]", q: float) -> float:
        ordered = sorted(xs)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    @property
    def stat(self) -> float:
        """Current-to-reference quantile ratio (0 while warming up)."""
        if self._ref_q is None or len(self._current) < self.window:
            return 0.0
        cur = self._quantile(list(self._current), self.q)
        return cur / max(self._ref_q, self.floor)

    def update(self, x: float) -> bool:
        if self._ref_q is None:
            self._reference.append(x)
            if len(self._reference) == self.window:
                self._ref_q = self._quantile(self._reference, self.q)
            return False
        self._current.append(x)
        if len(self._current) > self.window:
            self._current.popleft()
        return len(self._current) == self.window and self.stat > self.factor

    def reset(self) -> None:
        """Re-arm against a *fresh* reference (post-retrain semantics)."""
        self._reference.clear()
        self._current.clear()
        self._ref_q = None


class DriftBank:
    """A named set of detectors sharing one scalar signal.

    ``update`` feeds every detector and returns the names of those that
    fired on this sample; fired detectors are reset immediately so one
    sustained shift produces one alarm per detector, not one per sample
    (re-arming against post-shift data keeps them quiet until the next
    regime change — exactly the cooldown a retraining trigger wants).
    """

    def __init__(self, signal: str, detectors: "dict[str, object]") -> None:
        if not detectors:
            raise ValueError("DriftBank needs at least one detector")
        self.signal = signal
        self.detectors = dict(detectors)
        self.samples = 0
        self.fired: "list[tuple[int, str]]" = []  # (sample index, detector)

    def update(self, x: float) -> "list[str]":
        self.samples += 1
        hits: "list[str]" = []
        for name, det in self.detectors.items():
            if det.update(x):  # type: ignore[attr-defined]
                hits.append(name)
                self.fired.append((self.samples, name))
                det.reset()  # type: ignore[attr-defined]
        return hits

    def state(self) -> dict:
        return {
            "signal": self.signal,
            "samples": self.samples,
            "stats": {n: round(d.stat, 6) for n, d in self.detectors.items()},  # type: ignore[attr-defined]
            "fired": list(self.fired),
        }
