"""The online quality monitor: one ServeCallback composing the pieces.

:class:`QualityMonitor` plugs into :class:`repro.serve.Dispatcher` via
the callback protocol (``Dispatcher(..., callbacks=[monitor])``) and,
per dispatched window:

1. feeds per-task prediction-error signals into drift banks
   (:mod:`repro.monitor.drift`) — relative execution-time error and
   signed reliability calibration error, plus the sampled decision
   regret from (2);
2. runs hindsight regret attribution on sampled windows
   (:mod:`repro.monitor.attribution`), recording the prediction-gap /
   rounding-slack split into telemetry histograms;
3. evaluates SLO rules (:mod:`repro.monitor.slo`) on window counts:
   wait-bound misses, shed tasks, reliability-constraint violations.

Alerts are plain dataclasses collected on the monitor, emitted as
structured ``alert`` telemetry events (so a JSONL run log doubles as an
alert log), and fanned out to any registered :mod:`repro.monitor.sinks`
— each sink isolated so one failing webhook cannot break serving or
starve its siblings.  When any drift bank fires outside the cooldown
window the monitor raises a single ``retrain_suggested`` alert and calls
its registered *retrain listeners* — the hook
:class:`repro.retrain.RetrainController` plugs its ``notify_drift``
into, closing the drift → refit loop.

Everything the monitor computes is a pure function of the snapshot
stream (simulated time only), so a monitored run and its trace replay
produce identical alert sequences.  The monitor never mutates the
dispatcher: observing a run must not change it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.matching.relaxed import SolverConfig
from repro.monitor.attribution import RegretAttributor
from repro.monitor.drift import Cusum, DriftBank, PageHinkley, QuantileWindow
from repro.monitor.sinks import AlertSink
from repro.monitor.slo import SLOMonitor, SLORule
from repro.serve.dispatcher import ServeCallback, ServeStats, WindowSnapshot
from repro.telemetry import get_recorder
from repro.telemetry.metrics import TIME_BUCKETS_S

__all__ = ["Alert", "MonitorConfig", "QualityMonitor", "DEFAULT_SLOS"]

#: Regret/error values are small per-task hour quantities; reuse the
#: telemetry time buckets (they span 1e-4 .. 1e2 with log spacing).
_GAP_BUCKETS = TIME_BUCKETS_S

DEFAULT_SLOS: "tuple[SLORule, ...]" = (
    # At most 10% of tasks may wait longer than the wait bound.
    SLORule(name="wait", objective=0.10),
    # At most 5% of arrivals may be shed.
    SLORule(name="shed", objective=0.05),
    # At most 5% of windows may violate the reliability constraint.
    SLORule(name="reliability", objective=0.05),
)


@dataclass(frozen=True)
class Alert:
    """One structured monitor alert (also emitted as telemetry event)."""

    window: int
    time: float  # simulated platform hour
    kind: str  # "drift" | "slo" | "retrain_suggested" | "conservation"
    signal: str  # which stream/rule produced it
    detector: str  # detector/rule instance name
    value: float  # the statistic that crossed
    message: str


@dataclass(frozen=True)
class MonitorConfig:
    """Knobs for :class:`QualityMonitor`; defaults fit micro-batch runs."""

    #: Hindsight re-solve every N-th window (1 = every window).
    sample_every: int = 8
    #: Exact branch-and-bound bound for windows with at most this many
    #: tasks (0 disables the exact solve).
    exact_max_tasks: int = 0
    #: Solver for hindsight re-solves; ``None`` = attributor default.
    solver_config: "SolverConfig | None" = None
    #: Wait-SLO bad-event bound, in platform hours.
    wait_bound_hours: float = 2.0
    #: Suppress further ``retrain_suggested`` alerts for this many
    #: windows after one fires (drift on several signals at once should
    #: page once, not once per detector).
    cooldown_windows: int = 50
    #: SLO rules; replace to customize objectives/windows.
    slos: "tuple[SLORule, ...]" = DEFAULT_SLOS
    #: Drift detector knobs for the time-error bank.
    time_delta: float = 0.05
    time_threshold: float = 4.0
    time_min_samples: int = 40
    time_quantile_window: int = 64
    #: CUSUM knobs for the reliability calibration bank.
    reliability_drift: float = 0.08
    reliability_threshold: float = 6.0
    #: Page–Hinkley knobs for the sampled decision-regret bank.
    regret_delta: float = 0.02
    regret_threshold: float = 0.5
    regret_min_samples: int = 5


class QualityMonitor(ServeCallback):
    """Drift + SLO + regret-attribution observer for the serving loop."""

    def __init__(
        self,
        config: MonitorConfig | None = None,
        *,
        sinks: "Sequence[AlertSink] | None" = None,
    ) -> None:
        self.config = cfg = config or MonitorConfig()
        self.attributor = RegretAttributor(
            sample_every=cfg.sample_every,
            solver_config=cfg.solver_config,
            exact_max_tasks=cfg.exact_max_tasks,
        )
        self.banks = {
            "time_error": DriftBank("time_error", {
                "page_hinkley": PageHinkley(
                    delta=cfg.time_delta,
                    threshold=cfg.time_threshold,
                    min_samples=cfg.time_min_samples,
                ),
                "quantile_window": QuantileWindow(window=cfg.time_quantile_window),
            }),
            "reliability_error": DriftBank("reliability_error", {
                "cusum": Cusum(
                    drift=cfg.reliability_drift,
                    threshold=cfg.reliability_threshold,
                ),
            }),
            "decision_regret": DriftBank("decision_regret", {
                "page_hinkley": PageHinkley(
                    delta=cfg.regret_delta,
                    threshold=cfg.regret_threshold,
                    min_samples=cfg.regret_min_samples,
                ),
            }),
        }
        self.slo = SLOMonitor(list(cfg.slos))
        self.alerts: "list[Alert]" = []
        self.sinks: "list[AlertSink]" = list(sinks or ())
        self.sink_errors: "dict[str, int]" = {}
        self.windows_seen = 0
        self.retrain_suggested_at: "list[int]" = []
        self._retrain_listeners: "list[Callable[[Alert], None]]" = []
        self._last_retrain_window: "int | None" = None
        self._finished = False
        self._prev_shed_total = 0
        self._prev_arrived_total = 0

    # ------------------------------------------------------------------ #
    # alert plumbing

    def add_sink(self, sink: "AlertSink") -> "QualityMonitor":
        """Register an alert sink (fan-out target); returns self."""
        self.sinks.append(sink)
        return self

    def add_retrain_listener(self, fn: "Callable[[Alert], None]") -> "QualityMonitor":
        """Call ``fn(alert)`` on every ``retrain_suggested`` alert.

        This is the drift → refit wire: :meth:`repro.retrain.
        RetrainController.notify_drift` is the intended listener.
        Listener failures are isolated like sink failures.
        """
        self._retrain_listeners.append(fn)
        return self

    def _fan_out(self, alert: Alert) -> None:
        for sink in self.sinks:
            try:
                sink.emit(alert)
            except Exception:
                # One broken sink must not break serving or its siblings.
                name = type(sink).__name__
                self.sink_errors[name] = self.sink_errors.get(name, 0) + 1
                rec = get_recorder()
                if rec.enabled:
                    rec.counter_add("monitor/sink_errors")

    def _alert(self, snapshot_window: int, time: float, kind: str,
               signal: str, detector: str, value: float, message: str) -> Alert:
        alert = Alert(window=snapshot_window, time=time, kind=kind,
                      signal=signal, detector=detector, value=float(value),
                      message=message)
        self.alerts.append(alert)
        rec = get_recorder()
        if rec.enabled:
            rec.counter_add(f"monitor/alerts_{kind}")
            # Alert events are aggregated across a fleet's logs, so each
            # one carries the recorder's identity labels inline — metric
            # series get them from base labels, event lines do not.
            identity = {k: v for k, v in rec.registry.base_labels.items()
                        if k in ("shard", "instance")}
            rec.event("alert", window=alert.window, t=alert.time,
                      kind=alert.kind, signal=alert.signal,
                      detector=alert.detector, value=alert.value,
                      message=alert.message, **identity)
        self._fan_out(alert)
        return alert

    def _maybe_suggest_retrain(self, snapshot: WindowSnapshot,
                               signal: str, detectors: "list[str]") -> None:
        last = self._last_retrain_window
        if last is not None and snapshot.window - last < self.config.cooldown_windows:
            return
        self._last_retrain_window = snapshot.window
        self.retrain_suggested_at.append(snapshot.window)
        alert = self._alert(
            snapshot.window, snapshot.time, "retrain_suggested", signal,
            "+".join(detectors), float(len(detectors)),
            f"drift on {signal} ({', '.join(detectors)}): retrain the predictor",
        )
        for fn in self._retrain_listeners:
            try:
                fn(alert)
            except Exception:
                self.sink_errors["retrain_listener"] = (
                    self.sink_errors.get("retrain_listener", 0) + 1)

    # ------------------------------------------------------------------ #
    # ServeCallback protocol

    def on_window(self, snapshot: WindowSnapshot) -> None:
        self.windows_seen += 1
        rec = get_recorder()

        # --- drift signals ------------------------------------------- #
        if snapshot.T_hat is not None:
            assigned = np.argmax(snapshot.X, axis=0)  # cluster row per task
            cols = np.arange(snapshot.X.shape[1])
            placed = snapshot.X[assigned, cols] > 0  # shed-from-window guard
            t_hat = snapshot.T_hat[assigned, cols]
            # Relative time error vs what the cluster actually observed.
            time_err = np.abs(t_hat - snapshot.realized_hours) / np.maximum(
                snapshot.realized_hours, 1e-6
            )
            a_hat = snapshot.A_hat[assigned, cols] if snapshot.A_hat is not None else None
            for j in cols:
                if not placed[j]:
                    continue
                for name in self.banks["time_error"].update(float(time_err[j])):
                    self._alert(
                        snapshot.window, snapshot.time, "drift", "time_error",
                        name, self.banks["time_error"].detectors[name].stat,
                        "execution-time prediction error drifted",
                    )
                    self._maybe_suggest_retrain(snapshot, "time_error", [name])
                if a_hat is not None:
                    calib = float(a_hat[j]) - float(bool(snapshot.success[j]))
                    for name in self.banks["reliability_error"].update(calib):
                        self._alert(
                            snapshot.window, snapshot.time, "drift",
                            "reliability_error", name,
                            self.banks["reliability_error"].detectors[name].stat,
                            "reliability calibration drifted",
                        )
                        self._maybe_suggest_retrain(
                            snapshot, "reliability_error", [name])
            if rec.enabled and placed.any():
                rec.observe("monitor/time_error",
                            float(time_err[placed].mean()), bounds=_GAP_BUCKETS)

        # --- regret attribution -------------------------------------- #
        attribution = self.attributor.attribute(snapshot)
        if attribution is not None:
            if rec.enabled:
                rec.observe("monitor/prediction_gap",
                            max(attribution.prediction_gap, 0.0),
                            bounds=_GAP_BUCKETS)
                rec.observe("monitor/rounding_slack",
                            max(attribution.rounding_slack, 0.0),
                            bounds=_GAP_BUCKETS)
            for name in self.banks["decision_regret"].update(
                max(attribution.prediction_gap, 0.0)
            ):
                self._alert(
                    snapshot.window, snapshot.time, "drift", "decision_regret",
                    name, self.banks["decision_regret"].detectors[name].stat,
                    "sampled decision regret drifted",
                )
                self._maybe_suggest_retrain(snapshot, "decision_regret", [name])

        # --- SLOs ----------------------------------------------------- #
        waits = snapshot.wait_hours
        k = len(snapshot.task_ids)
        slo_obs = [
            ("wait", int(np.sum(waits > self.config.wait_bound_hours)), k),
            ("shed", snapshot.shed_total - self._prev_shed_total,
             max(snapshot.arrived_total - self._prev_arrived_total, 1)),
            ("reliability", int(snapshot.reliability_slack < 0.0), 1),
        ]
        self._prev_shed_total = snapshot.shed_total
        self._prev_arrived_total = snapshot.arrived_total
        for name, bad, total in slo_obs:
            if self.slo.observe(name, bad, total):
                status = self.slo.status[name]
                self._alert(
                    snapshot.window, snapshot.time, "slo", name, "burn_rate",
                    status.fast_burn,
                    f"SLO '{name}' burning at {status.fast_burn:.1f}x budget",
                )

    def on_finish(self, stats: ServeStats) -> None:
        self._finished = True
        if not stats.conserved:
            lost = stats.arrived - (
                stats.completed + stats.failed + stats.shed + stats.unserved
            )
            self._alert(
                stats.windows, 0.0, "conservation", "serve_stats",
                "identity", float(lost),
                f"task conservation violated: {lost} tasks unaccounted for",
            )
        rec = get_recorder()
        if rec.enabled:
            rec.gauge_set("monitor/windows_seen", self.windows_seen)
            rec.gauge_set("monitor/alerts_total", len(self.alerts))

    # ------------------------------------------------------------------ #

    def alert_log(self) -> "list[dict]":
        """Alerts as plain dicts (JSON-serializable, file order)."""
        return [
            {"window": a.window, "t": a.time, "kind": a.kind,
             "signal": a.signal, "detector": a.detector,
             "value": a.value, "message": a.message}
            for a in self.alerts
        ]

    def summary(self) -> dict:
        """One dict describing everything the monitor saw."""
        return {
            "windows_seen": self.windows_seen,
            "finished": self._finished,
            "alerts": len(self.alerts),
            "alerts_by_kind": {
                kind: sum(1 for a in self.alerts if a.kind == kind)
                for kind in sorted({a.kind for a in self.alerts})
            },
            "retrain_suggested_at": list(self.retrain_suggested_at),
            "drift": {name: bank.state() for name, bank in self.banks.items()},
            "slo": self.slo.state(),
            "attribution": self.attributor.summary(),
            "sink_errors": dict(self.sink_errors),
        }
