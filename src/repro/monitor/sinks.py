"""Pluggable alert delivery for the quality monitor.

:class:`~repro.monitor.quality.QualityMonitor` collects alerts on itself
and mirrors them into telemetry events; sinks are the third leg — pushing
each alert to the outside world (a tail-able file, a paging webhook) the
moment it fires.  Two properties matter more than the transports:

- **fan-out** — every registered sink sees every alert, in registration
  order;
- **failure isolation** — a sink that raises must never break the
  serving loop or starve its sibling sinks.  The monitor catches per
  sink, counts the error, and keeps dispatching.

Anything with an ``emit(alert)`` method is a sink (structural typing —
no registration or subclassing needed).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (quality imports us)
    from repro.monitor.quality import Alert

__all__ = ["AlertSink", "FileTailSink", "CallableSink", "alert_to_dict"]


def alert_to_dict(alert: "Alert") -> dict:
    """One alert as a JSON-serializable dict (shared by sinks and logs)."""
    return {
        "window": alert.window,
        "t": alert.time,
        "kind": alert.kind,
        "signal": alert.signal,
        "detector": alert.detector,
        "value": alert.value,
        "message": alert.message,
    }


@runtime_checkable
class AlertSink(Protocol):
    """Structural protocol: any object with ``emit(alert)`` is a sink."""

    def emit(self, alert: "Alert") -> None: ...


class FileTailSink:
    """Append each alert as one JSON line to a file (``tail -f``-able).

    Opens per emit rather than holding a handle: alerts are rare, the
    file stays usable by external tailers, and a crashed run leaves no
    partially buffered lines.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.emitted = 0

    def emit(self, alert: "Alert") -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(alert_to_dict(alert), sort_keys=True) + "\n")
        self.emitted += 1


class CallableSink:
    """Adapter turning any callable into a sink (webhook stub, test spy).

    The callable receives the alert *dict* (not the dataclass): that is
    the payload a real webhook POST would carry, and it keeps lambda
    consumers decoupled from the Alert class.

    Real webhook endpoints flake, so delivery is retried up to
    ``max_attempts`` times with exponential backoff (``backoff_s``,
    ``2 * backoff_s``, ...).  When every attempt fails the alert is
    appended to the ``dead_letter`` JSONL file (payload + error + attempt
    count — an operator can replay the file once the endpoint recovers)
    and the last error is re-raised so the monitor's per-sink isolation
    still counts the failure.  The defaults keep the historical
    one-shot behaviour for plain in-process callables cheap: a raising
    ``fn`` just gets two quick retries and no file unless asked for.
    """

    def __init__(
        self,
        fn: "Callable[[dict], None]",
        name: str = "callable",
        *,
        max_attempts: int = 3,
        backoff_s: float = 0.05,
        dead_letter: "str | os.PathLike[str] | None" = None,
        sleep: "Callable[[float], None] | None" = None,
    ) -> None:
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        self.fn = fn
        self.name = name
        self.max_attempts = int(max_attempts)
        self.backoff_s = float(backoff_s)
        self.dead_letter = Path(dead_letter) if dead_letter is not None else None
        if self.dead_letter is not None:
            self.dead_letter.parent.mkdir(parents=True, exist_ok=True)
        # Injectable for tests (assert the backoff schedule without waiting).
        self._sleep = sleep if sleep is not None else time.sleep
        self.emitted = 0
        self.retries = 0
        self.dead_lettered = 0

    def emit(self, alert: "Alert") -> None:
        payload = alert_to_dict(alert)
        last_error: "Exception | None" = None
        for attempt in range(self.max_attempts):
            if attempt:
                self.retries += 1
                self._sleep(self.backoff_s * 2 ** (attempt - 1))
            try:
                self.fn(payload)
            except Exception as exc:  # noqa: BLE001 - endpoint errors are opaque
                last_error = exc
                continue
            self.emitted += 1
            return
        self.dead_lettered += 1
        if self.dead_letter is not None:
            with open(self.dead_letter, "a") as fh:
                fh.write(json.dumps({
                    "sink": self.name,
                    "alert": payload,
                    "error": repr(last_error),
                    "attempts": self.max_attempts,
                }, sort_keys=True) + "\n")
        assert last_error is not None
        raise last_error
