"""Pluggable alert delivery for the quality monitor.

:class:`~repro.monitor.quality.QualityMonitor` collects alerts on itself
and mirrors them into telemetry events; sinks are the third leg — pushing
each alert to the outside world (a tail-able file, a paging webhook) the
moment it fires.  Two properties matter more than the transports:

- **fan-out** — every registered sink sees every alert, in registration
  order;
- **failure isolation** — a sink that raises must never break the
  serving loop or starve its sibling sinks.  The monitor catches per
  sink, counts the error, and keeps dispatching.

Anything with an ``emit(alert)`` method is a sink (structural typing —
no registration or subclassing needed).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (quality imports us)
    from repro.monitor.quality import Alert

__all__ = ["AlertSink", "FileTailSink", "CallableSink", "alert_to_dict"]


def alert_to_dict(alert: "Alert") -> dict:
    """One alert as a JSON-serializable dict (shared by sinks and logs)."""
    return {
        "window": alert.window,
        "t": alert.time,
        "kind": alert.kind,
        "signal": alert.signal,
        "detector": alert.detector,
        "value": alert.value,
        "message": alert.message,
    }


@runtime_checkable
class AlertSink(Protocol):
    """Structural protocol: any object with ``emit(alert)`` is a sink."""

    def emit(self, alert: "Alert") -> None: ...


class FileTailSink:
    """Append each alert as one JSON line to a file (``tail -f``-able).

    Opens per emit rather than holding a handle: alerts are rare, the
    file stays usable by external tailers, and a crashed run leaves no
    partially buffered lines.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.emitted = 0

    def emit(self, alert: "Alert") -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(alert_to_dict(alert), sort_keys=True) + "\n")
        self.emitted += 1


class CallableSink:
    """Adapter turning any callable into a sink (webhook stub, test spy).

    The callable receives the alert *dict* (not the dataclass): that is
    the payload a real webhook POST would carry, and it keeps lambda
    consumers decoupled from the Alert class.
    """

    def __init__(self, fn: "Callable[[dict], None]", name: str = "callable") -> None:
        self.fn = fn
        self.name = name
        self.emitted = 0

    def emit(self, alert: "Alert") -> None:
        self.fn(alert_to_dict(alert))
        self.emitted += 1
