"""Experiment configuration and the FAST/FULL execution profiles.

Profile selection: ``REPRO_PROFILE=full`` in the environment switches every
harness from the quick benchmark-friendly sizes to the paper-faithful ones
(more seeds, more evaluation rounds, longer MFCP training).  Both profiles
run the identical code paths — FULL only changes counts.

Cross-cutting run knobs travel the same way, so every experiment module
(each of which constructs its config independently) resolves them
identically:

- ``REPRO_TELEMETRY`` ∈ ``{off, summary, jsonl}`` — telemetry mode
  (:func:`active_telemetry`; the CLI's ``--telemetry`` flag sets it);
- ``REPRO_SEEDS`` — comma-separated seed override applied by
  :func:`default_config` (the CLI's ``--seeds`` flag sets it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.matching.relaxed import SolverConfig
from repro.methods.base import MatchSpec
from repro.methods.mfcp import MFCPConfig
from repro.predictors.training import TrainConfig
from repro.telemetry import MODES

__all__ = ["ExperimentConfig", "active_profile", "active_telemetry", "default_config"]


def active_profile() -> str:
    """"fast" (default) or "full", from the REPRO_PROFILE env var."""
    profile = os.environ.get("REPRO_PROFILE", "fast").lower()
    if profile not in ("fast", "full"):
        raise ValueError(f"REPRO_PROFILE must be 'fast' or 'full', got {profile!r}")
    return profile


def active_telemetry() -> str:
    """"off" (default), "summary" or "jsonl", from REPRO_TELEMETRY."""
    mode = os.environ.get("REPRO_TELEMETRY", "off").lower()
    if mode not in MODES:
        raise ValueError(f"REPRO_TELEMETRY must be one of {MODES}, got {mode!r}")
    return mode


def _seed_override() -> "tuple[int, ...] | None":
    """Seeds from REPRO_SEEDS (e.g. ``"0,1,2"``), or None when unset."""
    raw = os.environ.get("REPRO_SEEDS", "").strip()
    if not raw:
        return None
    try:
        return tuple(int(s) for s in raw.split(","))
    except ValueError as exc:
        raise ValueError(f"REPRO_SEEDS must be comma-separated ints, got {raw!r}") from exc


@dataclass(frozen=True)
class ExperimentConfig:
    """Sizes and hyperparameters of one experiment run."""

    pool_size: int = 80
    train_fraction: float = 0.7
    n_tasks: int = 5  # N per allocation round (paper: 5 tasks, 3 clusters)
    eval_rounds: int = 12  # test rounds per seed
    seeds: tuple[int, ...] = (0, 1, 2)
    spec: MatchSpec = field(default_factory=MatchSpec)
    mfcp: MFCPConfig = field(default_factory=lambda: MFCPConfig(epochs=50))
    supervised: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=200))
    ucb_ensemble: int = 4
    #: Exact-oracle node budget; beyond it the oracle falls back to the
    #: deployment pipeline (documented in EXPERIMENTS.md).
    oracle_node_limit: int = 400_000

    def __post_init__(self) -> None:
        if self.pool_size <= 0 or self.n_tasks <= 0 or self.eval_rounds <= 0:
            raise ValueError("pool_size, n_tasks and eval_rounds must be positive")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        if not self.seeds:
            raise ValueError("at least one seed is required")


def default_config(profile: str | None = None, **overrides: object) -> ExperimentConfig:
    """Build the profile's default configuration (override fields via kwargs)."""
    profile = profile or active_profile()
    if profile == "full":
        cfg = ExperimentConfig(
            pool_size=120,
            eval_rounds=15,
            seeds=(0, 1, 2, 3, 4),
            mfcp=MFCPConfig(epochs=80),
            supervised=TrainConfig(epochs=300),
            ucb_ensemble=5,
        )
    else:
        cfg = ExperimentConfig()
    seeds = _seed_override()
    if seeds is not None:
        cfg = replace(cfg, seeds=seeds)
    if overrides:
        cfg = replace(cfg, **overrides)  # type: ignore[arg-type]
    return cfg
