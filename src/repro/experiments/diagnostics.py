"""Predictor-quality diagnostics: what does each training scheme trade?

The paper's thesis is that MSE-optimal predictions are not decision-optimal
predictions.  This harness quantifies both sides for every method on held-
out tasks:

- **MSE side**: median/p90 relative time error, Spearman rank correlation,
  reliability Brier score against simulated outcomes;
- **decision side**: per-task fastest-cluster rank accuracy (the slice of
  accuracy the matching actually consumes) and mean regret.

The expected picture (and the reproduction's most direct evidence for the
paper's Fig. 2 story): MFCP gives up raw relative error versus TSM while
matching or beating it on rank accuracy and regret.

Run: ``python -m repro.experiments.diagnostics``.
"""

from __future__ import annotations

import numpy as np

from repro.clusters.catalog import make_setting
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import oracle_matching
from repro.matching.objectives import makespan
from repro.methods import MFCP, TSM, FitContext
from repro.metrics.calibration import (
    per_task_rank_accuracy,
    reliability_calibration,
    time_accuracy,
)
from repro.utils.rng import as_generator, spawn
from repro.utils.tables import Table
from repro.workloads.taskpool import TaskPool

__all__ = ["DiagnosticsRow", "run_diagnostics", "main"]

SETTING = "B"


class DiagnosticsRow(dict):
    """One method's diagnostics (a dict with fixed keys, kept simple)."""


def run_diagnostics(
    config: ExperimentConfig | None = None, seed: int = 0
) -> dict[str, DiagnosticsRow]:
    """Fit TSM and MFCP-AD once and measure both accuracy families."""
    config = config or default_config()
    rng = as_generator(seed)
    pool = TaskPool(config.pool_size, rng=spawn(rng))
    clusters = make_setting(SETTING)
    train, test = pool.split(config.train_fraction, rng=spawn(rng))
    ctx = FitContext.build(clusters, train, config.spec, rng=spawn(rng))

    methods = [TSM(train_config=config.supervised).fit(ctx),
               MFCP("analytic", config.mfcp).fit(ctx)]

    T_true = np.stack([c.true_times(test) for c in clusters])
    A_true = np.stack([c.true_reliabilities(test) for c in clusters])
    outcome_rng = spawn(rng)

    # Regret over evaluation rounds.
    eval_rng = spawn(rng)
    regrets: dict[str, list[float]] = {m.name: [] for m in methods}
    for _ in range(config.eval_rounds):
        idx = eval_rng.choice(len(test), size=min(config.n_tasks, len(test)),
                              replace=False)
        tasks = [test[int(i)] for i in idx]
        T = T_true[:, idx]
        A = A_true[:, idx]
        problem = config.spec.build_problem(T, A)
        X_oracle = oracle_matching(problem, config)
        base = makespan(X_oracle, problem)
        for m in methods:
            X = m.decide(problem, tasks)
            regrets[m.name].append((makespan(X, problem) - base) / problem.N)

    out: dict[str, DiagnosticsRow] = {}
    for m in methods:
        T_hat, A_hat = m.predict(test)
        acc = time_accuracy(T_hat, T_true)
        # Simulated success outcomes for calibration (one Bernoulli draw per
        # (cluster, task) pair under the true reliabilities).
        outcomes = (outcome_rng.random(A_true.shape) < A_true).astype(float)
        cal = reliability_calibration(A_hat.ravel(), outcomes.ravel())
        out[m.name] = DiagnosticsRow(
            median_rel_err=acc.median_relative_error,
            p90_rel_err=acc.p90_relative_error,
            spearman=acc.spearman,
            rank_accuracy=per_task_rank_accuracy(T_hat, T_true),
            brier=cal.brier,
            ece=cal.ece,
            mean_regret=float(np.mean(regrets[m.name])),
        )
    return out


def main() -> None:
    rows = run_diagnostics()
    table = Table(
        ["Method", "med rel err", "p90 rel err", "Spearman", "rank acc",
         "Brier", "ECE", "regret"],
        title=f"Predictor diagnostics — setting {SETTING}",
    )
    for name, r in rows.items():
        table.add_row([
            name, f"{r['median_rel_err']:.3f}", f"{r['p90_rel_err']:.3f}",
            f"{r['spearman']:.3f}", f"{r['rank_accuracy']:.3f}",
            f"{r['brier']:.4f}", f"{r['ece']:.4f}", f"{r['mean_regret']:.4f}",
        ])
    print(table.render())
    print("\nThe paper's Fig. 2 story in numbers: MFCP may lose raw relative "
          "accuracy to TSM while matching decisions (rank accuracy, regret) improve.")


if __name__ == "__main__":
    main()
