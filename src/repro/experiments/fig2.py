"""Figure 2 reproduction: the paper's motivating example.

Fig. 2 contrasts the predict-then-match framework with matching-focused
prediction on a minimal instance: linear-regression execution-time
predictors for two clusters, where Cluster A's true time grows *linearly*
in the task feature z while Cluster B's grows *exponentially*.  MSE-fitted
lines misrank the clusters for the middle task (the crossing region), so
the matching sends it to the wrong cluster; reweighting the regression
around the decision boundary (the matching-focused idea) fixes the
allocation even though the absolute fit is worse.

This harness constructs exactly that setting, fits both predictors, and
reports per-task true times, predicted times, allocations, and whether the
allocation is correct — the table behind the figure's two panels.

Run: ``python -m repro.experiments.fig2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = ["Fig2Result", "run_fig2", "main"]

#: The three tasks of the figure (feature values in the crossing region).
TASK_FEATURES = np.array([0.25, 0.52, 0.85])


def _true_times(z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cluster A: linear in z.  Cluster B: exponential in z (Fig. 2)."""
    t_a = 0.8 + 1.9 * z
    t_b = 0.35 * np.exp(2.6 * z)
    return t_a, t_b


def _fit_linear(z: np.ndarray, t: np.ndarray, w: np.ndarray) -> tuple[float, float]:
    """Weighted least squares line fit; returns (intercept, slope)."""
    W = np.diag(w)
    X = np.stack([np.ones_like(z), z], axis=1)
    coef = np.linalg.solve(X.T @ W @ X, X.T @ W @ t)
    return float(coef[0]), float(coef[1])


@dataclass(frozen=True)
class Fig2Result:
    """Per-task outcome under one training scheme."""

    scheme: str
    predicted_a: np.ndarray
    predicted_b: np.ndarray
    allocations: np.ndarray  # 0 = cluster A, 1 = cluster B
    correct: np.ndarray  # against the true-time allocation
    mse: float

    @property
    def all_correct(self) -> bool:
        return bool(self.correct.all())


def run_fig2(
    n_samples: int = 18,
    noise_std: float = 0.10,
    rng: "np.random.Generator | int | None" = 0,
) -> dict[str, Fig2Result]:
    """Fit MSE and matching-focused linear predictors; allocate the 3 tasks.

    The matching-focused weights emphasize samples near the clusters'
    crossing point — the region where the allocation decision is made —
    which is precisely the "cluster-specific task preference" reweighting
    §2.2 describes.
    """
    rng = as_generator(rng)
    z_train = rng.uniform(0.05, 0.95, n_samples)
    t_a_true, t_b_true = _true_times(z_train)
    t_a_obs = t_a_true * np.exp(rng.normal(0, noise_std, n_samples))
    t_b_obs = t_b_true * np.exp(rng.normal(0, noise_std, n_samples))

    # True crossing point of the two response curves (for the weights).
    z_grid = np.linspace(0.05, 0.95, 512)
    ga, gb = _true_times(z_grid)
    z_cross = float(z_grid[np.argmin(np.abs(ga - gb))])

    ta_tasks, tb_tasks = _true_times(TASK_FEATURES)
    true_alloc = (tb_tasks < ta_tasks).astype(int)

    out: dict[str, Fig2Result] = {}
    for scheme in ("MSE (predict-then-match)", "matching-focused"):
        if scheme.startswith("MSE"):
            w = np.ones(n_samples)
        else:
            # Decision-relevance weights: Gaussian bump at the crossing.
            w = np.exp(-(((z_train - z_cross) / 0.18) ** 2)) + 0.05
        a0, a1 = _fit_linear(z_train, t_a_obs, w)
        b0, b1 = _fit_linear(z_train, t_b_obs, w)
        pred_a = a0 + a1 * TASK_FEATURES
        pred_b = b0 + b1 * TASK_FEATURES
        alloc = (pred_b < pred_a).astype(int)
        # MSE of the fits on the training samples (uniform weighting).
        mse = float(
            np.mean((a0 + a1 * z_train - t_a_obs) ** 2)
            + np.mean((b0 + b1 * z_train - t_b_obs) ** 2)
        )
        out[scheme] = Fig2Result(
            scheme=scheme,
            predicted_a=pred_a,
            predicted_b=pred_b,
            allocations=alloc,
            correct=alloc == true_alloc,
            mse=mse,
        )
    return out


def main() -> None:
    results = run_fig2()
    ta, tb = _true_times(TASK_FEATURES)
    table = Table(
        ["Scheme", "Task", "z", "true A", "true B", "pred A", "pred B",
         "chosen", "correct"],
        title="Fig. 2 — MSE vs matching-focused linear predictors",
    )
    for scheme, res in results.items():
        for j, z in enumerate(TASK_FEATURES):
            table.add_row([
                scheme, j + 1, f"{z:.2f}", f"{ta[j]:.2f}", f"{tb[j]:.2f}",
                f"{res.predicted_a[j]:.2f}", f"{res.predicted_b[j]:.2f}",
                "B" if res.allocations[j] else "A",
                "yes" if res.correct[j] else "NO",
            ])
    print(table.render())
    mse_scheme = results["MSE (predict-then-match)"]
    mf_scheme = results["matching-focused"]
    print(f"\nMSE scheme: training MSE {mse_scheme.mse:.3f}, "
          f"{int(mse_scheme.correct.sum())}/3 tasks allocated correctly")
    print(f"Matching-focused: training MSE {mf_scheme.mse:.3f} (worse fit), "
          f"{int(mf_scheme.correct.sum())}/3 tasks allocated correctly")


if __name__ == "__main__":
    main()
