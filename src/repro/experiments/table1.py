"""Table 1 reproduction: ablation study of MFCP's gradient-computation design.

Paper §4.2 rows, in order:

1. **Maximum loss** — linear (sum) time cost instead of the smoothed max;
2. **Interior-point method** — hard hinge penalty instead of the log barrier;
3. **Zeroth-order gradient estimation** — MFCP-FG on the convex setting;
4. **MFCP** — the full method (analytic gradients).

Expected shape: (1) clearly worst regret and utilization (task dumping on
fast clusters); (2) lower reliability (constraint often violated);
(3) competitive with (4).

Run: ``python -m repro.experiments.table1``.
"""

from __future__ import annotations

from repro.clusters.catalog import make_setting
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import run_experiment
from repro.methods.ablations import make_table1_methods
from repro.metrics.report import MethodReport, comparison_table

__all__ = ["run_table1", "main"]

#: The cluster setting used for the ablation (the paper uses one fixed
#: environment for Table 1; we use setting A).
SETTING = "A"


def run_table1(
    config: ExperimentConfig | None = None, *, verbose: bool = False
) -> dict[str, MethodReport]:
    config = config or default_config()
    return run_experiment(
        lambda: make_setting(SETTING),
        lambda: make_table1_methods(config.mfcp),
        config,
        verbose=verbose,
        run_name="table1",
    )


def main() -> None:
    reports = run_table1(verbose=True)
    print()
    print(comparison_table(reports, title="Table 1 — Ablation study of MFCP").render())


if __name__ == "__main__":
    main()
