"""Figure 5 reproduction: scalability with the number of tasks per round.

Paper §4.4: setting A, task counts swept, Regret and Cluster Utilization
reported per method.  Expected shape: regret grows roughly linearly with N
for every method with MFCP variants lowest; utilization rises with N for
every method with MFCP highest and TAM lowest.

Run: ``python -m repro.experiments.fig5``.
"""

from __future__ import annotations

import numpy as np

from repro.clusters.catalog import make_setting
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.fig4 import fig4_methods
from repro.experiments.runner import run_experiment
from repro.metrics.report import MethodReport
from repro.utils.tables import render_series

__all__ = ["TASK_COUNTS", "run_fig5", "main"]

#: The paper's x-axis (number of tasks in a single round).
TASK_COUNTS: tuple[int, ...] = (5, 10, 15, 20, 25)

SETTING = "A"


def run_fig5(
    config: ExperimentConfig | None = None,
    task_counts: tuple[int, ...] = TASK_COUNTS,
    *,
    verbose: bool = False,
) -> dict[int, dict[str, MethodReport]]:
    """Run the sweep; returns {n_tasks: {method: report}}.

    Methods are fitted once per seed (training is N-independent); only the
    evaluation rounds change with N — matching the paper's protocol of one
    trained predictor evaluated at several round sizes.
    """
    from repro.experiments.runner import evaluate_round
    from repro.methods.base import FitContext
    from repro.utils.rng import as_generator, spawn
    from repro.workloads.taskpool import TaskPool

    config = config or default_config()
    results: dict[int, dict[str, MethodReport]] = {
        n: {} for n in task_counts
    }
    factory = fig4_methods(config)
    for seed in config.seeds:
        rng = as_generator(seed)
        pool = TaskPool(config.pool_size, rng=spawn(rng))
        clusters = make_setting(SETTING)
        train, test = pool.split(config.train_fraction, rng=spawn(rng))
        ctx = FitContext.build(clusters, train, config.spec, rng=spawn(rng))
        methods = factory()
        for method in methods:
            method.fit(ctx)
        eval_rng = spawn(rng)
        for n in task_counts:
            for _ in range(config.eval_rounds):
                idx = eval_rng.choice(len(test), size=min(n, len(test)), replace=False)
                tasks = [test[int(i)] for i in idx]
                samples = evaluate_round(methods, clusters, tasks, config)
                for name, sample in samples.items():
                    results[n].setdefault(name, MethodReport(name)).add(sample)
        if verbose:
            print(f"  seed {seed} done "
                  f"(fitted once, evaluated at N ∈ {list(task_counts)})")
    return results


def series(
    results: dict[int, dict[str, MethodReport]], metric: str
) -> tuple[list[int], dict[str, list[float]]]:
    """Extract {method: [metric mean per N]} for plotting/printing."""
    ns = sorted(results)
    methods = list(results[ns[0]].keys())
    out = {m: [getattr(results[n][m], metric)[0] for n in ns] for m in methods}
    return ns, out


def main() -> None:
    results = run_fig5(verbose=True)
    ns, regret = series(results, "regret")
    _, util = series(results, "utilization")
    print()
    print(render_series("N tasks", ns, regret, title="Fig. 5a — Regret vs task count"))
    print()
    print(render_series("N tasks", ns, util, title="Fig. 5b — Utilization vs task count"))


if __name__ == "__main__":
    main()
