"""Extension experiment E6: hyperparameter sensitivity of MFCP.

Sweeps the three knobs the paper's design introduces — the reliability
threshold position γ (via the quantile rule), the smoothing sharpness β,
and the barrier weight λ — and reports how MFCP-AD's and TSM's metrics
move.  The interesting shapes:

- **γ**: a tighter threshold shrinks the feasible set; regret rises for
  every method, and the reliability metric tracks the threshold;
- **β**: too small blurs the makespan (utilization falls towards the
  linear-cost ablation's behaviour), too large makes gradients stiff;
- **λ**: too large biases decisions towards reliability at a makespan cost.

Run: ``python -m repro.experiments.sensitivity``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.clusters.catalog import make_setting
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import run_experiment
from repro.methods import MFCP, TSM
from repro.metrics.report import MethodReport
from repro.utils.tables import Table

__all__ = ["run_gamma_sweep", "run_beta_sweep", "run_lambda_sweep", "main"]

SETTING = "A"

GAMMA_QUANTILES = (0.2, 0.5, 0.8)
BETAS = (1.0, 5.0, 20.0)
LAMBDAS = (0.001, 0.01, 0.1)


def _run_with_spec(
    config: ExperimentConfig, run_name: str = "sensitivity"
) -> dict[str, MethodReport]:
    def factory():
        return [TSM(train_config=config.supervised), MFCP("analytic", config.mfcp)]

    return run_experiment(
        lambda: make_setting(SETTING), factory, config, run_name=run_name
    )


def run_gamma_sweep(
    config: ExperimentConfig | None = None,
    quantiles: tuple[float, ...] = GAMMA_QUANTILES,
) -> dict[float, dict[str, MethodReport]]:
    config = config or default_config()
    return {
        q: _run_with_spec(
            replace(config, spec=replace(config.spec, gamma_quantile=q)),
            run_name=f"sensitivity_gamma{q:g}",
        )
        for q in quantiles
    }


def run_beta_sweep(
    config: ExperimentConfig | None = None,
    betas: tuple[float, ...] = BETAS,
) -> dict[float, dict[str, MethodReport]]:
    config = config or default_config()
    return {
        b: _run_with_spec(
            replace(config, spec=replace(config.spec, beta=b)),
            run_name=f"sensitivity_beta{b:g}",
        )
        for b in betas
    }


def run_lambda_sweep(
    config: ExperimentConfig | None = None,
    lambdas: tuple[float, ...] = LAMBDAS,
) -> dict[float, dict[str, MethodReport]]:
    config = config or default_config()
    return {
        lam: _run_with_spec(
            replace(config, spec=replace(config.spec, lam=lam)),
            run_name=f"sensitivity_lambda{lam:g}",
        )
        for lam in lambdas
    }


def _render(title: str, knob: str, results: dict[float, dict[str, MethodReport]]) -> str:
    table = Table([knob, "Method", "Regret", "Reliability", "Utilization"], title=title)
    for value, reports in results.items():
        for name, report in reports.items():
            table.add_row([
                f"{value:g}", name,
                f"{report.regret[0]:.4f}",
                f"{report.reliability[0]:.3f}",
                f"{report.utilization[0]:.3f}",
            ])
    return table.render()


def main() -> None:
    config = default_config()
    print(_render("E6a — γ-quantile sweep", "γ-quantile", run_gamma_sweep(config)))
    print()
    print(_render("E6b — smoothing β sweep", "β", run_beta_sweep(config)))
    print()
    print(_render("E6c — barrier λ sweep", "λ", run_lambda_sweep(config)))


if __name__ == "__main__":
    main()
