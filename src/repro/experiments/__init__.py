"""Experiment harnesses reproducing every table and figure of the paper's
evaluation (§4): Table 1 (ablation), Fig. 4 (overall), Fig. 5 (scale sweep),
Table 2 (parallel execution)."""

from repro.experiments.config import ExperimentConfig, active_profile, default_config
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import TASK_COUNTS, run_fig5
from repro.experiments.runner import (
    SeedResult,
    evaluate_round,
    oracle_matching,
    run_experiment,
    run_seed,
)
from repro.experiments.cluster_scaling import CLUSTER_COUNTS, run_cluster_scaling
from repro.experiments.dfl_landscape import run_dfl_landscape
from repro.experiments.diagnostics import run_diagnostics
from repro.experiments.fig2 import run_fig2
from repro.experiments.sensitivity import run_beta_sweep, run_gamma_sweep, run_lambda_sweep
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

__all__ = [
    "ExperimentConfig",
    "active_profile",
    "default_config",
    "run_fig4",
    "run_fig5",
    "TASK_COUNTS",
    "run_table1",
    "run_table2",
    "run_dfl_landscape",
    "run_cluster_scaling",
    "CLUSTER_COUNTS",
    "run_diagnostics",
    "run_fig2",
    "run_gamma_sweep",
    "run_beta_sweep",
    "run_lambda_sweep",
    "SeedResult",
    "evaluate_round",
    "oracle_matching",
    "run_experiment",
    "run_seed",
]
