"""Extension experiment E7: scaling in the number of clusters M.

The paper fixes M = 3 and sweeps N (Fig. 5).  Exchange platforms grow by
*acquiring clusters*, so the complementary sweep matters operationally:
with the task count fixed, more clusters mean more balancing freedom (the
oracle makespan falls) but a larger decision space for the predictors to
misrank.  We sweep M over random archetype pools and report regret and
utilization for TSM and MFCP-AD.

Run: ``python -m repro.experiments.cluster_scaling``.
"""

from __future__ import annotations

from repro.clusters.catalog import make_pool
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import run_experiment
from repro.methods import MFCP, TSM
from repro.metrics.report import MethodReport
from repro.utils.tables import render_series

__all__ = ["CLUSTER_COUNTS", "run_cluster_scaling", "main"]

CLUSTER_COUNTS: tuple[int, ...] = (2, 3, 4, 6)

#: Tasks per round grows with M so the per-cluster load stays comparable.
TASKS_PER_CLUSTER = 3


def run_cluster_scaling(
    config: ExperimentConfig | None = None,
    cluster_counts: tuple[int, ...] = CLUSTER_COUNTS,
    *,
    verbose: bool = False,
) -> dict[int, dict[str, MethodReport]]:
    """Run the M sweep; returns {m: {method: report}}.

    Pools are drawn deterministically per (M, seed) so every method sees
    identical cluster sets.
    """
    config = config or default_config()

    def factory():
        return [TSM(train_config=config.supervised), MFCP("analytic", config.mfcp)]

    results: dict[int, dict[str, MethodReport]] = {}
    for m in cluster_counts:
        if verbose:
            print(f"M = {m}:")
        results[m] = run_experiment(
            lambda m=m: make_pool(m, rng=1000 + m),
            factory,
            config,
            n_tasks=TASKS_PER_CLUSTER * m,
            verbose=verbose,
            run_name=f"cluster_scaling_m{m}",
        )
    return results


def main() -> None:
    results = run_cluster_scaling(verbose=True)
    ms = sorted(results)
    methods = list(results[ms[0]].keys())
    regret = {name: [results[m][name].regret[0] for m in ms] for name in methods}
    util = {name: [results[m][name].utilization[0] for m in ms] for name in methods}
    print()
    print(render_series("M clusters", ms, regret,
                        title="E7a — Regret vs cluster count", digits=4))
    print()
    print(render_series("M clusters", ms, util,
                        title="E7b — Utilization vs cluster count"))


if __name__ == "__main__":
    main()
