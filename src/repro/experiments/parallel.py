"""Multiprocessing experiment runner: seeds fan out across CPU cores.

Seeds are embarrassingly parallel — each fits its own methods on its own
pool — so the experiment harness scales nearly linearly with cores.  The
declarative :class:`MethodSpec` layer exists because process pools must
*pickle* the work description: factories built from lambdas (as the
single-process API uses) cannot cross process boundaries, while a spec of
(name, kwargs) can.

Usage::

    reports = run_experiment_parallel(
        setting="A",
        method_specs=[MethodSpec("tsm"), MethodSpec("mfcp_ad")],
        config=default_config(),
        workers=4,
    )
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SeedResult, run_seed
from repro.metrics.report import MethodReport

__all__ = ["MethodSpec", "run_experiment_parallel", "KNOWN_METHODS"]

#: Registry of spec names → constructor import paths (resolved in workers).
KNOWN_METHODS: dict[str, str] = {
    "tam": "repro.methods.tam:TAM",
    "tsm": "repro.methods.tsm:TSM",
    "ucb": "repro.methods.ucb:UCB",
    "mfcp_ad": "repro.methods.mfcp:MFCP",
    "mfcp_fg": "repro.methods.mfcp:MFCP",
    "oracle": "repro.methods.oracle:Oracle",
    "spo_plus": "repro.methods.dfl_baselines:SPOPlus",
    "dbb": "repro.methods.dfl_baselines:BlackboxDiff",
    "dpo": "repro.methods.dfl_baselines:PerturbedOpt",
}

#: Positional defaults injected per spec name (e.g. the MFCP gradient mode).
_IMPLICIT_ARGS: dict[str, tuple] = {
    "mfcp_ad": ("analytic",),
    "mfcp_fg": ("forward",),
}


@dataclass(frozen=True)
class MethodSpec:
    """Picklable description of one method to instantiate in a worker."""

    name: str
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in KNOWN_METHODS:
            raise ValueError(
                f"unknown method spec {self.name!r}; options: {sorted(KNOWN_METHODS)}"
            )

    def build(self):
        module_path, cls_name = KNOWN_METHODS[self.name].split(":")
        import importlib

        cls = getattr(importlib.import_module(module_path), cls_name)
        return cls(*_IMPLICIT_ARGS.get(self.name, ()), **self.kwargs)


def _worker(args: tuple) -> SeedResult:
    """Top-level worker (picklable): run one seed."""
    seed, setting, specs, config = args
    from repro.clusters.catalog import make_setting

    return run_seed(
        seed,
        lambda: make_setting(setting),
        lambda: [spec.build() for spec in specs],
        config,
    )


def run_experiment_parallel(
    setting: str,
    method_specs: "list[MethodSpec]",
    config: ExperimentConfig,
    *,
    workers: int = 2,
) -> dict[str, MethodReport]:
    """Fan the configured seeds across a process pool and aggregate.

    Produces results identical to the single-process
    :func:`~repro.experiments.runner.run_experiment` (seeds own their RNG
    streams, so execution order is irrelevant).
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if not method_specs:
        raise ValueError("method_specs must be non-empty")
    jobs = [(seed, setting, tuple(method_specs), config) for seed in config.seeds]
    reports: dict[str, MethodReport] = {}
    if workers == 1:
        results = [_worker(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            results = list(pool.map(_worker, jobs))
    for result in results:
        for name, samples in result.samples.items():
            report = reports.setdefault(name, MethodReport(name))
            for s in samples:
                report.add(s)
    return reports
