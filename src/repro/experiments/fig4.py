"""Figure 4 reproduction: overall performance of the five methods.

Paper §4.3: five deep-learning tasks matched to three heterogeneous
clusters, three cluster combinations (settings A, B, C), metrics Regret /
Reliability / Cluster Utilization.  Expected shape: MFCP-AD ≈ MFCP-FG
lowest regret and highest utilization; TSM above them; UCB between TSM and
MFCP; TAM setting-dependent.

Run: ``python -m repro.experiments.fig4`` (REPRO_PROFILE=full for the
paper-sized run).
"""

from __future__ import annotations

from repro.clusters.catalog import make_setting
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import run_experiment
from repro.methods import MFCP, TAM, TSM, UCB, MFCPConfig
from repro.metrics.report import MethodReport, comparison_table
from repro.predictors.training import TrainConfig

__all__ = ["fig4_methods", "run_fig4", "main"]

SETTINGS = ("A", "B", "C")


def fig4_methods(config: ExperimentConfig):
    """Factory for the five compared methods of §4.1.2."""

    def factory():
        return [
            TAM(),
            TSM(train_config=config.supervised),
            UCB(ensemble_size=config.ucb_ensemble,
                train_config=TrainConfig(epochs=max(100, config.supervised.epochs // 2))),
            MFCP("analytic", config.mfcp),
            MFCP("forward", config.mfcp),
        ]

    return factory


def run_fig4(
    config: ExperimentConfig | None = None,
    settings: tuple[str, ...] = SETTINGS,
    *,
    verbose: bool = False,
) -> dict[str, dict[str, MethodReport]]:
    """Run all settings; returns {setting: {method: report}}."""
    config = config or default_config()
    results: dict[str, dict[str, MethodReport]] = {}
    for setting in settings:
        if verbose:
            print(f"setting {setting}:")
        results[setting] = run_experiment(
            lambda s=setting: make_setting(s),
            fig4_methods(config),
            config,
            verbose=verbose,
            run_name=f"fig4_{setting}",
        )
    return results


def main() -> None:
    results = run_fig4(verbose=True)
    for setting, reports in results.items():
        print()
        print(comparison_table(reports, title=f"Fig. 4 — Setting {setting}").render())


if __name__ == "__main__":
    main()
