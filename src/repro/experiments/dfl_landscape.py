"""Extension experiment E5: MFCP vs the wider decision-focused-learning
landscape.

The paper's related-work section (§5) organizes DFL into three strategies —
surrogate losses (SPO+), black-box solver differentiation (DBB), and
perturbed optimizers (DPO).  This harness runs one representative of each
against MFCP-AD/FG under the standard Fig. 4 protocol on one setting,
answering the natural reviewer question "how would generic DFL methods do
on this problem?".

Run: ``python -m repro.experiments.dfl_landscape``.
"""

from __future__ import annotations

from repro.clusters.catalog import make_setting
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import run_experiment
from repro.methods.dfl_baselines import make_dfl_methods
from repro.methods.tsm import TSM
from repro.metrics.report import MethodReport, comparison_table

__all__ = ["run_dfl_landscape", "main"]

SETTING = "B"  # the hardest prediction environment of the three


def run_dfl_landscape(
    config: ExperimentConfig | None = None, *, verbose: bool = False
) -> dict[str, MethodReport]:
    config = config or default_config()

    def factory():
        return [TSM(train_config=config.supervised), *make_dfl_methods(config.mfcp)]

    return run_experiment(
        lambda: make_setting(SETTING), factory, config, verbose=verbose,
        run_name="dfl_landscape",
    )


def main() -> None:
    reports = run_dfl_landscape(verbose=True)
    print()
    print(comparison_table(
        reports, title=f"E5 — DFL landscape on setting {SETTING}"
    ).render())


if __name__ == "__main__":
    main()
