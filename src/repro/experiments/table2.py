"""Table 2 reproduction: parallel task execution (non-convex setting).

Paper §4.5: ζ is an exponential decay from 1 to 0.6, all clusters share the
scheduler; MFCP-AD is excluded (non-convex), leaving TAM / TSM / UCB /
MFCP-FG.  Expected shape: MFCP-FG best regret and utilization, with
roughly the paper's 25.7% (vs TSM) and 18.5% (vs UCB) regret reductions;
TAM's std is exactly zero (deterministic constant predictions).

Run: ``python -m repro.experiments.table2``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.clusters.catalog import make_setting
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import run_experiment
from repro.matching.speedup import ExponentialDecaySpeedup
from repro.methods import MFCP, TAM, TSM, UCB
from repro.metrics.report import MethodReport, comparison_table
from repro.predictors.training import TrainConfig

__all__ = ["run_table2", "main", "PARALLEL_ZETA"]

SETTING = "A"

#: §4.5's ζ: "an exponential decay curve from 1 to 0.6".
PARALLEL_ZETA = ExponentialDecaySpeedup(floor=0.6, rate=0.5)


def run_table2(
    config: ExperimentConfig | None = None, *, verbose: bool = False
) -> dict[str, MethodReport]:
    config = config or default_config()
    # Install the shared ζ into the matching spec (all clusters alike).
    spec = replace(config.spec, speedup=(PARALLEL_ZETA,))
    config = replace(config, spec=spec)

    def factory():
        return [
            TAM(),
            TSM(train_config=config.supervised),
            UCB(ensemble_size=config.ucb_ensemble,
                train_config=TrainConfig(epochs=max(100, config.supervised.epochs // 2))),
            MFCP("forward", config.mfcp),
        ]

    return run_experiment(
        lambda: make_setting(SETTING), factory, config, verbose=verbose,
        run_name="table2",
    )


def main() -> None:
    reports = run_table2(verbose=True)
    print()
    print(comparison_table(
        reports, title="Table 2 — Parallel task execution (ζ: exp decay 1→0.6)"
    ).render())
    if "TSM" in reports and "MFCP-FG" in reports:
        tsm, mfcp = reports["TSM"].regret[0], reports["MFCP-FG"].regret[0]
        if tsm > 0:
            print(f"\nMFCP-FG regret reduction vs TSM: {100 * (tsm - mfcp) / tsm:.1f}% "
                  f"(paper: 25.7%)")
    if "UCB" in reports and "MFCP-FG" in reports:
        ucb, mfcp = reports["UCB"].regret[0], reports["MFCP-FG"].regret[0]
        if ucb > 0:
            print(f"MFCP-FG regret reduction vs UCB: {100 * (ucb - mfcp) / ucb:.1f}% "
                  f"(paper: 18.5%)")


if __name__ == "__main__":
    main()
