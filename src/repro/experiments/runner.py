"""The shared experiment runner: fit methods per seed, evaluate over rounds.

Evaluation protocol (matching §4 of the paper):

- each seed builds a fresh task pool, splits train/test, measures the
  training tasks on every cluster (noisy), and fits every method;
- each evaluation round samples N *test* tasks, builds the ground-truth
  problem from noise-free T/A ("actual performance during execution"),
  computes the oracle matching — exact branch-and-bound when the node
  budget allows, the deployment pipeline otherwise (whichever is better) —
  and scores every method's matching on regret/reliability/utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.clusters.cluster import Cluster
from repro.experiments.config import ExperimentConfig
from repro.matching.exact import solve_branch_and_bound
from repro.matching.objectives import makespan, reliability_value
from repro.matching.problem import MatchingProblem
from repro.metrics.regret import deployment_matching
from repro.metrics.reliability import mean_assigned_reliability
from repro.metrics.report import MethodReport, MetricSample
from repro.metrics.utilization import cluster_utilization
from repro.methods.base import BaseMethod, FitContext
from repro import telemetry
from repro.utils.rng import as_generator, spawn
from repro.workloads.taskpool import Task, TaskPool

__all__ = ["oracle_matching", "evaluate_round", "run_seed", "run_experiment", "SeedResult"]

MethodFactory = Callable[[], "list[BaseMethod]"]
ClusterFactory = Callable[[], "list[Cluster]"]


def oracle_matching(
    problem: MatchingProblem,
    config: ExperimentConfig,
) -> np.ndarray:
    """Best available ground-truth matching X*(T, A).

    Exact branch-and-bound within the node budget; on overrun (large N)
    fall back to the deployment pipeline; always return the better of the
    two feasible candidates by the problem's decision cost.
    """
    candidates: list[np.ndarray] = []
    try:
        exact = solve_branch_and_bound(problem, node_limit=config.oracle_node_limit)
        if exact.feasible and exact.X is not None:
            candidates.append(exact.X)
    except RuntimeError:
        pass  # node budget exceeded — heuristic fallback below
    candidates.append(deployment_matching(problem, solver_config=config.spec.solver))
    feasible = [X for X in candidates if reliability_value(X, problem) >= -1e-9]
    pool = feasible or candidates
    return min(pool, key=lambda X: makespan(X, problem))


def evaluate_round(
    methods: Sequence[BaseMethod],
    clusters: "list[Cluster]",
    tasks: "list[Task]",
    config: ExperimentConfig,
) -> dict[str, MetricSample]:
    """Score every method on one allocation round of ground-truth tasks."""
    T = np.stack([c.true_times(tasks) for c in clusters])
    A = np.stack([c.true_reliabilities(tasks) for c in clusters])
    true_problem = config.spec.build_problem(T, A)
    X_oracle = oracle_matching(true_problem, config)
    cost_oracle = makespan(X_oracle, true_problem)
    n = true_problem.N
    out: dict[str, MetricSample] = {}
    for method in methods:
        X = method.decide(true_problem, list(tasks))
        sample = MetricSample(
            regret=(makespan(X, true_problem) - cost_oracle) / n,
            reliability=mean_assigned_reliability(X, A),
            utilization=cluster_utilization(X, true_problem),
        )
        telemetry.observe(f"eval/regret/{method.name}", sample.regret)
        out[method.name] = sample
    return out


@dataclass
class SeedResult:
    """Per-seed samples keyed by method name."""

    seed: int
    samples: dict[str, list[MetricSample]]


def run_seed(
    seed: int,
    cluster_factory: ClusterFactory,
    method_factory: MethodFactory,
    config: ExperimentConfig,
    *,
    n_tasks: int | None = None,
) -> SeedResult:
    """Fit fresh methods under one seed and evaluate them over all rounds."""
    rng = as_generator(seed)
    pool = TaskPool(config.pool_size, rng=spawn(rng))
    clusters = cluster_factory()
    train, test = pool.split(config.train_fraction, rng=spawn(rng))
    ctx = FitContext.build(clusters, train, config.spec, rng=spawn(rng))
    methods = method_factory()
    with telemetry.span("seed"):
        for method in methods:
            with telemetry.span(f"fit/{method.name}"):
                method.fit(ctx)

        n = n_tasks or config.n_tasks
        eval_rng = spawn(rng)
        samples: dict[str, list[MetricSample]] = {m.name: [] for m in methods}
        with telemetry.span("eval"):
            for _ in range(config.eval_rounds):
                idx = eval_rng.choice(len(test), size=min(n, len(test)), replace=False)
                tasks = [test[int(i)] for i in idx]
                round_samples = evaluate_round(methods, clusters, tasks, config)
                for name, sample in round_samples.items():
                    samples[name].append(sample)
    return SeedResult(seed=seed, samples=samples)


def run_experiment(
    cluster_factory: ClusterFactory,
    method_factory: MethodFactory,
    config: ExperimentConfig,
    *,
    n_tasks: int | None = None,
    verbose: bool = False,
    telemetry_mode: str | None = None,
    run_name: str = "experiment",
) -> dict[str, MethodReport]:
    """Aggregate :func:`run_seed` over every configured seed.

    ``telemetry_mode`` (default: the REPRO_TELEMETRY environment setting,
    see :func:`repro.experiments.config.active_telemetry`) opens a
    run-scoped recorder around the whole experiment — unless one is
    already active, in which case the caller's recorder is reused so
    nested experiment invocations land in a single run log.
    """
    from repro.experiments.config import active_telemetry

    mode = telemetry_mode if telemetry_mode is not None else active_telemetry()
    if telemetry.get_recorder().enabled:
        return _run_experiment_body(
            cluster_factory, method_factory, config, n_tasks, verbose
        )
    meta = telemetry.run_metadata(config=config, seeds=config.seeds)
    with telemetry.recording(mode=mode, run=run_name, meta=meta):
        return _run_experiment_body(
            cluster_factory, method_factory, config, n_tasks, verbose
        )


def _run_experiment_body(
    cluster_factory: ClusterFactory,
    method_factory: MethodFactory,
    config: ExperimentConfig,
    n_tasks: int | None,
    verbose: bool,
) -> dict[str, MethodReport]:
    reports: dict[str, MethodReport] = {}
    for seed in config.seeds:
        result = run_seed(seed, cluster_factory, method_factory, config, n_tasks=n_tasks)
        for name, samples in result.samples.items():
            report = reports.setdefault(name, MethodReport(name))
            for s in samples:
                report.add(s)
        if verbose:
            done = ", ".join(
                f"{name}={np.mean([s.regret for s in ss]):.3f}"
                for name, ss in result.samples.items()
            )
            print(f"  seed {seed}: regret {done}")
    return reports
