"""Execution traces produced by the cluster simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["TaskOutcome", "TaskRecord", "SimulationResult"]


class TaskOutcome(str, Enum):
    SUCCESS = "success"
    FAILED = "failed"


@dataclass(frozen=True)
class TaskRecord:
    """One task's realized execution on a cluster."""

    task_id: int
    cluster_id: int
    start: float
    end: float
    outcome: TaskOutcome
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("task record ends before it starts")


@dataclass
class SimulationResult:
    """Aggregate outcome of executing one matching."""

    records: list[TaskRecord] = field(default_factory=list)
    cluster_busy: dict[int, float] = field(default_factory=dict)
    makespan: float = 0.0

    @property
    def success_rate(self) -> float:
        if not self.records:
            raise ValueError("empty simulation result")
        ok = sum(1 for r in self.records if r.outcome is TaskOutcome.SUCCESS)
        return ok / len(self.records)

    @property
    def utilization(self) -> float:
        """Realized busy-time fraction: Σ busy / (M · makespan)."""
        if self.makespan <= 0 or not self.cluster_busy:
            raise ValueError("utilization undefined for an empty simulation")
        total = sum(self.cluster_busy.values())
        return total / (len(self.cluster_busy) * self.makespan)

    def records_for(self, cluster_id: int) -> list[TaskRecord]:
        return [r for r in self.records if r.cluster_id == cluster_id]

    def summary(self) -> str:
        busy = ", ".join(f"c{cid}={b:.2f}h" for cid, b in sorted(self.cluster_busy.items()))
        return (
            f"makespan={self.makespan:.2f}h success={self.success_rate:.1%} "
            f"utilization={self.utilization:.1%} busy[{busy}]"
        )
