"""Online platform operation: arrivals, batching windows, rolling execution.

The paper evaluates one-shot rounds ("N tasks to allocate within a given
time period").  A deployed exchange platform runs this loop continuously:
jobs arrive over time, the platform batches whatever queued up in each
decision window, matches the batch with its predictor + solver, and hands
the work to clusters that may still be busy with earlier batches.

This module provides that operating loop as a substrate extension:

- :class:`ArrivalStream` — the protocol every arrival process implements
  (``draw(horizon_hours, rng) -> [(time, task), ...]``); besides the
  built-in :class:`PoissonArrivals`, any generator from
  :mod:`repro.serve.loadgen` (bursty MMPP, diurnal) plugs in directly;
- :class:`PoissonArrivals` — a homogeneous Poisson job stream drawn from a
  task pool;
- :func:`simulate_online` — windowed batch matching over a finite horizon,
  with per-cluster busy offsets carried between windows (a cluster that is
  still executing batch k starts batch k+1's tasks late), realized failures,
  and queueing statistics.

The matching inside each window reuses the exact same method interface as
the offline experiments, so any :class:`~repro.methods.base.BaseMethod`
can be dropped into the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.clusters.cluster import Cluster
from repro.matching.rounding import labels_from_assignment
from repro.methods.base import BaseMethod, MatchSpec
from repro.telemetry import SIZE_BUCKETS, TIME_BUCKETS_S, get_recorder, span
from repro.utils.rng import as_generator
from repro.workloads.taskpool import Task, TaskPool

__all__ = [
    "ArrivalStream",
    "PoissonArrivals",
    "OnlineConfig",
    "OnlineStats",
    "simulate_online",
]


@runtime_checkable
class ArrivalStream(Protocol):
    """Anything that can draw a time-ordered (arrival, task) stream.

    Implemented by :class:`PoissonArrivals` here and by every generator in
    :mod:`repro.serve.loadgen`; consumed by :func:`simulate_online` and by
    :class:`repro.serve.dispatcher.Dispatcher` (via a pre-drawn list).
    """

    def draw(
        self, horizon_hours: float, rng: np.random.Generator
    ) -> "list[tuple[float, Task]]":
        """All (arrival time, task) events in ``[0, horizon_hours)``."""
        ...


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrivals of tasks sampled from a pool."""

    pool: TaskPool
    rate_per_hour: float

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise ValueError(f"rate_per_hour must be > 0, got {self.rate_per_hour}")

    def draw(self, horizon_hours: float, rng: np.random.Generator) -> list[tuple[float, Task]]:
        """All (arrival time, task) events in [0, horizon)."""
        if horizon_hours <= 0:
            raise ValueError("horizon must be positive")
        events: list[tuple[float, Task]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.rate_per_hour))
            if t >= horizon_hours:
                return events
            task = self.pool.sample_round(1, rng, replace=True)[0]
            events.append((t, task))


@dataclass(frozen=True)
class OnlineConfig:
    """Operating parameters of the online loop."""

    window_hours: float = 1.0  # decision/batching interval
    horizon_hours: float = 12.0
    failures: bool = True
    jitter_std: float = 0.05

    def __post_init__(self) -> None:
        if self.window_hours <= 0 or self.horizon_hours <= 0:
            raise ValueError("window_hours and horizon_hours must be positive")
        if self.jitter_std < 0:
            raise ValueError("jitter_std must be >= 0")


@dataclass
class OnlineStats:
    """Aggregate outcome of an online run."""

    jobs_arrived: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    total_wait_hours: float = 0.0  # arrival → execution start
    total_flow_hours: float = 0.0  # arrival → completion (or failure)
    cluster_busy: dict[int, float] = field(default_factory=dict)
    final_time: float = 0.0
    windows: int = 0

    @property
    def jobs_finished(self) -> int:
        return self.jobs_completed + self.jobs_failed

    @property
    def mean_wait_hours(self) -> float:
        if self.jobs_finished == 0:
            raise ValueError("no finished jobs")
        return self.total_wait_hours / self.jobs_finished

    @property
    def mean_flow_hours(self) -> float:
        if self.jobs_finished == 0:
            raise ValueError("no finished jobs")
        return self.total_flow_hours / self.jobs_finished

    @property
    def success_rate(self) -> float:
        if self.jobs_finished == 0:
            raise ValueError("no finished jobs")
        return self.jobs_completed / self.jobs_finished

    @property
    def utilization(self) -> float:
        """Busy fraction of the fleet over the realized makespan."""
        if self.final_time <= 0 or not self.cluster_busy:
            raise ValueError("empty run")
        return sum(self.cluster_busy.values()) / (len(self.cluster_busy) * self.final_time)

    def summary(self) -> str:
        return (
            f"windows={self.windows} arrived={self.jobs_arrived} "
            f"done={self.jobs_completed} failed={self.jobs_failed} "
            f"wait={self.mean_wait_hours:.2f}h flow={self.mean_flow_hours:.2f}h "
            f"success={self.success_rate:.1%} util={self.utilization:.1%}"
        )


def simulate_online(
    clusters: "list[Cluster]",
    method: BaseMethod,
    arrivals: ArrivalStream,
    spec: MatchSpec,
    config: OnlineConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> OnlineStats:
    """Run the windowed online loop (see module docstring).

    Per window: collect tasks that arrived since the last decision, build
    the ground-truth problem for the batch, let ``method`` decide, then
    execute each assignment sequentially on its cluster starting from the
    cluster's current free time.  Returns queueing/throughput statistics.
    """
    cfg = config or OnlineConfig()
    rng = as_generator(rng)
    if not clusters:
        raise ValueError("clusters must be non-empty")

    events = arrivals.draw(cfg.horizon_hours, rng)
    stats = OnlineStats(jobs_arrived=len(events))
    free_at = {c.cluster_id: 0.0 for c in clusters}
    stats.cluster_busy = {c.cluster_id: 0.0 for c in clusters}

    n_windows = int(np.ceil(cfg.horizon_hours / cfg.window_hours))
    cursor = 0
    for w in range(1, n_windows + 1):
        window_end = w * cfg.window_hours
        batch: list[tuple[float, Task]] = []
        while cursor < len(events) and events[cursor][0] < window_end:
            batch.append(events[cursor])
            cursor += 1
        if not batch:
            continue
        stats.windows += 1
        tasks = [task for _, task in batch]
        rec = get_recorder()
        if rec.enabled:
            rec.observe("online/queue_depth", len(batch), bounds=SIZE_BUCKETS)
        T = np.stack([c.true_times(tasks) for c in clusters])
        A = np.stack([c.true_reliabilities(tasks) for c in clusters])
        problem = spec.build_problem(T, A)
        # Assignment latency: the platform-side matching decision for the
        # window (span aggregate gives total/mean decide wall clock).
        with span("online/decide") as decide_span:
            X = method.decide(problem, tasks)
        if rec.enabled:
            rec.observe("online/assignment_latency_s", decide_span.elapsed,
                        bounds=TIME_BUCKETS_S)
        labels = labels_from_assignment(X)

        # Execute sequentially per cluster from each cluster's free time.
        order = np.argsort(labels)  # group tasks per cluster deterministically
        for j in order:
            cluster = clusters[int(labels[j])]
            arrival, task = batch[j]
            start = max(free_at[cluster.cluster_id], window_end)
            duration = cluster.true_time(task)
            if cfg.jitter_std > 0:
                duration *= float(np.exp(rng.normal(0.0, cfg.jitter_std)))
            success = (not cfg.failures) or (
                rng.random() < cluster.true_reliability(task)
            )
            busy = duration if success else duration * float(rng.uniform(0.05, 0.95))
            end = start + busy
            free_at[cluster.cluster_id] = end
            stats.cluster_busy[cluster.cluster_id] += busy
            stats.total_wait_hours += start - arrival
            stats.total_flow_hours += end - arrival
            if rec.enabled:
                rec.observe("online/task_wait_h", start - arrival,
                            bounds=TIME_BUCKETS_S)
            if success:
                stats.jobs_completed += 1
            else:
                stats.jobs_failed += 1

    stats.final_time = max(list(free_at.values()) + [cfg.horizon_hours])
    rec = get_recorder()
    if rec.enabled:
        rec.counter_add("online/windows", stats.windows)
        rec.counter_add("online/jobs_arrived", stats.jobs_arrived)
        rec.counter_add("online/jobs_completed", stats.jobs_completed)
        rec.counter_add("online/jobs_failed", stats.jobs_failed)
    return stats
