"""Minimal discrete-event simulation core.

A classic event-queue kernel: events are (time, priority, seq) ordered,
callbacks may schedule further events.  Deliberately small — the cluster
execution engine (``repro.sim.engine``) is its only in-repo client, but the
kernel is generic and tested independently.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """One scheduled callback; ordering is (time, priority, seq)."""

    time: float
    priority: int
    seq: int
    callback: Callable[["Simulator"], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Event-driven simulator with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self.now = 0.0
        self.processed = 0

    def schedule(
        self,
        delay: float,
        callback: Callable[["Simulator"], None],
        *,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        event = Event(time=self.now + delay, priority=priority, seq=self._seq,
                      callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Event) -> None:
        """Mark an event as cancelled (lazily skipped when popped)."""
        event.cancelled = True

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Process events until the queue empties (or ``until``/limit).

        Returns the simulation end time.
        """
        while self._queue:
            if self.processed >= max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway simulation?")
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if until is not None and event.time > until:
                heapq.heappush(self._queue, event)  # put back; caller may resume
                self.now = until
                return self.now
            if event.time < self.now - 1e-12:
                raise RuntimeError("event scheduled in the past (clock corruption)")
            self.now = event.time
            self.processed += 1
            event.callback(self)
        return self.now

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
