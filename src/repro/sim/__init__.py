"""Discrete-event execution substrate: event kernel, cluster engine, traces."""

from repro.sim.engine import ExecutionConfig, simulate_matching
from repro.sim.events import Event, Simulator
from repro.sim.online import (
    ArrivalStream,
    OnlineConfig,
    OnlineStats,
    PoissonArrivals,
    simulate_online,
)
from repro.sim.trace import SimulationResult, TaskOutcome, TaskRecord

__all__ = [
    "Event",
    "Simulator",
    "ExecutionConfig",
    "simulate_matching",
    "SimulationResult",
    "TaskOutcome",
    "TaskRecord",
    "ArrivalStream",
    "PoissonArrivals",
    "OnlineConfig",
    "OnlineStats",
    "simulate_online",
]
