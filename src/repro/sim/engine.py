"""Execute a matching on the synthetic clusters as a discrete-event run.

Two execution modes mirroring the paper's two settings:

- **sequential** (§2.1's base model [17, 21, 33]): each cluster runs its
  assigned tasks one at a time with exclusive access;
- **parallel** (§3.4): a cluster runs all its tasks concurrently as a
  malleable batch, finishing after ``ζ(k) · Σ t`` — each task's realized
  span is the batch window (fair-share scheduling).

Failures: each (task, cluster) pair fails with probability ``1 − a`` (the
ground-truth reliability); a failed task aborts at a uniformly random
fraction of its nominal duration, wasting that cluster time, and may be
retried up to ``max_retries`` times.

With jitter and failures disabled, the sequential simulator's makespan is
*exactly* the analytic ``makespan(X, problem)`` — the integration tests
assert this equivalence, tying the optimization layer to the execution
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clusters.cluster import Cluster
from repro.matching.rounding import labels_from_assignment
from repro.matching.speedup import IdentitySpeedup, SpeedupFunction
from repro.sim.events import Simulator
from repro.sim.trace import SimulationResult, TaskOutcome, TaskRecord
from repro.telemetry import SIZE_BUCKETS, TIME_BUCKETS_S, get_recorder, span
from repro.utils.rng import as_generator
from repro.workloads.taskpool import Task

__all__ = ["ExecutionConfig", "simulate_matching"]


@dataclass(frozen=True)
class ExecutionConfig:
    """Knobs of the execution run."""

    mode: str = "sequential"  # "sequential" | "parallel"
    jitter_std: float = 0.0  # log-normal runtime jitter (0 = deterministic)
    failures: bool = False  # draw Bernoulli failures from true reliability
    max_retries: int = 0  # re-queue failed tasks up to this many times
    speedup: SpeedupFunction | None = None  # ζ for parallel mode
    #: Intra-cluster service order for sequential mode.  The makespan is
    #: order-invariant, but mean completion/flow time is not: "sjf"
    #: (shortest job first) minimizes it, "ljf" maximizes it, "fifo" keeps
    #: the assignment order.
    order: str = "fifo"  # "fifo" | "sjf" | "ljf"

    def __post_init__(self) -> None:
        if self.mode not in ("sequential", "parallel"):
            raise ValueError(f"mode must be 'sequential' or 'parallel', got {self.mode!r}")
        if self.jitter_std < 0:
            raise ValueError("jitter_std must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.order not in ("fifo", "sjf", "ljf"):
            raise ValueError(f"order must be 'fifo', 'sjf' or 'ljf', got {self.order!r}")


def simulate_matching(
    clusters: "list[Cluster]",
    tasks: "list[Task]",
    X: np.ndarray,
    config: ExecutionConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> SimulationResult:
    """Run matching ``X`` (binary M×N) to completion and return the trace."""
    cfg = config or ExecutionConfig()
    rng = as_generator(rng)
    X = np.asarray(X, dtype=np.float64)
    if X.shape != (len(clusters), len(tasks)):
        raise ValueError(f"X must have shape {(len(clusters), len(tasks))}, got {X.shape}")
    labels = labels_from_assignment(X)

    result = SimulationResult()
    sim = Simulator()
    per_cluster: dict[int, list[int]] = {c.cluster_id: [] for c in clusters}
    for j, lbl in enumerate(labels):
        per_cluster[clusters[int(lbl)].cluster_id].append(j)

    with span("sim/run"):
        if cfg.mode == "sequential":
            _run_sequential(sim, clusters, tasks, per_cluster, cfg, rng, result)
        else:
            _run_parallel(sim, clusters, tasks, per_cluster, cfg, rng, result)
        end = sim.run()
    result.makespan = max(end, max(result.cluster_busy.values(), default=0.0))
    rec = get_recorder()
    if rec.enabled:
        rec.counter_add("sim/rounds")
        rec.counter_add("sim/tasks", len(tasks))
        rec.observe("sim/makespan", result.makespan, bounds=TIME_BUCKETS_S)
    return result


def _duration(
    cluster: Cluster, task: Task, cfg: ExecutionConfig, rng: np.random.Generator
) -> float:
    t = cluster.true_time(task)
    if cfg.jitter_std > 0:
        t *= float(np.exp(rng.normal(0.0, cfg.jitter_std)))
    return t


def _draw_outcome(
    cluster: Cluster, task: Task, cfg: ExecutionConfig, rng: np.random.Generator
) -> tuple[TaskOutcome, float]:
    """(outcome, completed_fraction_of_duration)."""
    if not cfg.failures:
        return TaskOutcome.SUCCESS, 1.0
    a = cluster.true_reliability(task)
    if rng.random() < a:
        return TaskOutcome.SUCCESS, 1.0
    return TaskOutcome.FAILED, float(rng.uniform(0.05, 0.95))


def _run_sequential(
    sim: Simulator,
    clusters: "list[Cluster]",
    tasks: "list[Task]",
    per_cluster: dict[int, list[int]],
    cfg: ExecutionConfig,
    rng: np.random.Generator,
    result: SimulationResult,
) -> None:
    rec = get_recorder()
    tele = rec.enabled

    def make_worker(cluster: Cluster, queue: list[int]):
        """Build the FIFO worker chain for one cluster (factory avoids the
        classic late-binding-in-a-loop closure bug)."""
        attempts: dict[int, int] = {}

        def start_next(s: Simulator) -> None:
            if not queue:
                return
            j = queue.pop(0)
            task = tasks[j]
            attempts[j] = attempts.get(j, 0) + 1
            duration = _duration(cluster, task, cfg, rng)
            outcome, frac = _draw_outcome(cluster, task, cfg, rng)
            task_span = duration * frac
            start_time = s.now
            if tele:
                # Per-event state: depth of the cluster's remaining queue
                # and how long this task waited for the cluster (t=0 is
                # the assignment instant, so the wait IS the start time).
                rec.observe("sim/queue_depth", len(queue), bounds=SIZE_BUCKETS)
                rec.observe("sim/task_wait", start_time, bounds=TIME_BUCKETS_S)

            def finish(s2: Simulator) -> None:
                result.cluster_busy[cluster.cluster_id] += task_span
                if outcome is TaskOutcome.FAILED and attempts[j] <= cfg.max_retries:
                    queue.append(j)  # re-queue at the back
                    if tele:
                        rec.counter_add("sim/retries")
                else:
                    result.records.append(
                        TaskRecord(task.task_id, cluster.cluster_id,
                                   start_time, s2.now, outcome, attempts[j])
                    )
                    if tele and outcome is TaskOutcome.FAILED:
                        rec.counter_add("sim/failures")
                start_next(s2)

            s.schedule(task_span, finish)

        return start_next

    for cluster in clusters:
        result.cluster_busy[cluster.cluster_id] = 0.0
        queue = list(per_cluster[cluster.cluster_id])
        if cfg.order != "fifo":
            queue.sort(key=lambda j: cluster.true_time(tasks[j]),
                       reverse=(cfg.order == "ljf"))
        sim.schedule(0.0, make_worker(cluster, queue))


def _run_parallel(
    sim: Simulator,
    clusters: "list[Cluster]",
    tasks: "list[Task]",
    per_cluster: dict[int, list[int]],
    cfg: ExecutionConfig,
    rng: np.random.Generator,
    result: SimulationResult,
) -> None:
    zeta: SpeedupFunction = cfg.speedup or IdentitySpeedup()
    rec = get_recorder()
    tele = rec.enabled
    for cluster in clusters:
        assigned = per_cluster[cluster.cluster_id]
        result.cluster_busy[cluster.cluster_id] = 0.0
        if not assigned:
            continue
        durations = {j: _duration(cluster, tasks[j], cfg, rng) for j in assigned}
        k = len(assigned)
        window = float(zeta.value(np.array(float(k)))) * sum(durations.values())
        result.cluster_busy[cluster.cluster_id] = window
        if tele:
            rec.observe("sim/queue_depth", k, bounds=SIZE_BUCKETS)
            rec.observe("sim/batch_window", window, bounds=TIME_BUCKETS_S)

        def finish_batch(s: Simulator, cluster=cluster, assigned=assigned,
                         window=window) -> None:
            for j in assigned:
                outcome, frac = _draw_outcome(cluster, tasks[j], cfg, rng)
                end = s.now if outcome is TaskOutcome.SUCCESS else s.now - window * (1 - frac)
                result.records.append(
                    TaskRecord(tasks[j].task_id, cluster.cluster_id,
                               s.now - window, max(end, s.now - window), outcome)
                )

        sim.schedule(window, finish_batch)
