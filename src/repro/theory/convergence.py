"""Numerical verification of Theorems 4 and 5 (solver convergence).

- Theorem 4 (convex case): projected/mirror descent on the strongly convex
  barrier objective converges linearly — we measure the contraction factor
  of ``F(X^(k)) − F*`` on entropy-regularized sequential instances.
- Theorem 5 (non-convex case): with the parallel ζ objective the averaged
  squared gradient norm decays like O(1/k) plus a noise floor — we measure
  the decay of the best-so-far projected-gradient norm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.objectives import barrier_gradient, barrier_value
from repro.matching.problem import MatchingProblem, feasible_gamma
from repro.matching.relaxed import SolverConfig, solve_relaxed
from repro.matching.speedup import ExponentialDecaySpeedup
from repro.utils.rng import as_generator

__all__ = [
    "ConvexConvergence",
    "convex_convergence_study",
    "NonConvexConvergence",
    "nonconvex_convergence_study",
]


@dataclass(frozen=True)
class ConvexConvergence:
    """History of F(X^(k)) − F* and the fitted linear-rate factor."""

    gaps: np.ndarray
    rate: float  # geometric mean per-iteration contraction of the gap

    def is_linear(self, threshold: float = 0.999) -> bool:
        """Linear convergence = strictly contracting optimality gap."""
        return 0.0 < self.rate < threshold


def convex_convergence_study(
    *,
    m: int = 3,
    n: int = 6,
    iters: int = 400,
    entropy: float = 0.05,
    rng: np.random.Generator | int | None = None,
) -> ConvexConvergence:
    """Track the optimality gap of Algorithm 1 on a convex instance."""
    rng = as_generator(rng)
    T = rng.uniform(0.2, 3.0, size=(m, n))
    A = rng.uniform(0.6, 0.995, size=(m, n))
    problem = MatchingProblem(
        T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.4), entropy=entropy
    )
    # Reference optimum: a much longer, tighter solve.
    ref = solve_relaxed(problem, SolverConfig(max_iters=20000, tol=1e-16, patience=200))
    f_star = ref.objective
    sol = solve_relaxed(problem, SolverConfig(max_iters=iters, tol=0.0, patience=10**9))
    gaps = np.maximum(sol.history - f_star, 1e-16)
    # Fit geometric contraction over the first phase (before hitting tol).
    useful = gaps[gaps > 1e-12]
    if len(useful) < 3:
        return ConvexConvergence(gaps=gaps, rate=0.0)
    k = len(useful) - 1
    rate = float((useful[-1] / useful[0]) ** (1.0 / k))
    return ConvexConvergence(gaps=gaps, rate=rate)


@dataclass(frozen=True)
class NonConvexConvergence:
    """Best-so-far squared projected-gradient norms at checkpoints."""

    checkpoints: np.ndarray
    grad_norms: np.ndarray

    def is_decreasing(self) -> bool:
        return bool(np.all(np.diff(self.grad_norms) <= 1e-9))


def _projected_grad_norm(X: np.ndarray, problem: MatchingProblem) -> float:
    """Norm of the gradient projected onto the simplex tangent space
    (per-column mean removed) — zero exactly at stationary points."""
    g = barrier_gradient(X, problem)
    g = g - g.mean(axis=0, keepdims=True)
    return float(np.sum(g * g))


def nonconvex_convergence_study(
    *,
    m: int = 3,
    n: int = 6,
    checkpoints: "list[int] | None" = None,
    rng: np.random.Generator | int | None = None,
) -> NonConvexConvergence:
    """Measure stationarity decay of Algorithm 1 on the parallel objective."""
    rng = as_generator(rng)
    T = rng.uniform(0.2, 3.0, size=(m, n))
    A = rng.uniform(0.6, 0.995, size=(m, n))
    problem = MatchingProblem(
        T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.4),
        speedup=(ExponentialDecaySpeedup(),), entropy=0.02,
    )
    cps = sorted(checkpoints or [10, 50, 100, 200, 400])
    norms = []
    best = np.inf
    for cp in cps:
        sol = solve_relaxed(problem, SolverConfig(max_iters=cp, tol=0.0, patience=10**9))
        best = min(best, _projected_grad_norm(sol.X, problem))
        norms.append(best)
    return NonConvexConvergence(checkpoints=np.array(cps), grad_norms=np.array(norms))
