"""Numerical verification of Theorem 1 (smooth approximation of the max).

For ``f̃(v) = (1/β) log Σ exp(β v_i)`` the classical bounds are

    max(v)  ≤  f̃(v)  ≤  max(v) + log(M)/β,

so ``f̃ → max`` uniformly as β → ∞ at rate O(log M / β).  The functions
here evaluate the bound and the empirical gap over instance families; the
Table-1-adjacent ablation bench sweeps β with them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.functional import logsumexp_np

__all__ = ["smooth_max_gap", "theorem1_bound", "verify_theorem1", "SmoothingSweep", "sweep_beta"]


def smooth_max_gap(values: np.ndarray, beta: float) -> float:
    """``f̃(v) − max(v)`` (always in [0, log(M)/β])."""
    if beta <= 0:
        raise ValueError(f"beta must be > 0, got {beta}")
    values = np.asarray(values, dtype=np.float64)
    lse = float(logsumexp_np(beta * values)) / beta
    return lse - float(values.max())


def theorem1_bound(m: int, beta: float) -> float:
    """The Theorem 1 upper bound ``log(M)/β`` on the smoothing gap."""
    if m <= 0 or beta <= 0:
        raise ValueError("m and beta must be positive")
    return float(np.log(m) / beta)


def verify_theorem1(values: np.ndarray, beta: float, *, atol: float = 1e-12) -> bool:
    """Check ``0 ≤ f̃ − max ≤ log(M)/β`` on one instance."""
    gap = smooth_max_gap(values, beta)
    return -atol <= gap <= theorem1_bound(len(np.asarray(values)), beta) + atol


@dataclass(frozen=True)
class SmoothingSweep:
    """Result of a β sweep: empirical max gap vs. theoretical bound."""

    betas: np.ndarray
    empirical_gap: np.ndarray  # worst case over instances, per β
    bound: np.ndarray

    def holds(self) -> bool:
        return bool(np.all(self.empirical_gap <= self.bound + 1e-12))


def sweep_beta(
    betas: "list[float] | np.ndarray",
    *,
    m: int = 3,
    instances: int = 50,
    scale: float = 3.0,
    rng: np.random.Generator | int | None = None,
) -> SmoothingSweep:
    """Empirically measure the smoothing gap across random load vectors."""
    gen = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    betas_arr = np.asarray(betas, dtype=np.float64)
    if np.any(betas_arr <= 0):
        raise ValueError("all betas must be positive")
    samples = gen.uniform(0.0, scale, size=(instances, m))
    gaps = np.array(
        [max(smooth_max_gap(v, b) for v in samples) for b in betas_arr]
    )
    bounds = np.array([theorem1_bound(m, b) for b in betas_arr])
    return SmoothingSweep(betas=betas_arr, empirical_gap=gaps, bound=bounds)
