"""Numerical study of Theorem 3 (zeroth-order gradient approximation error).

Theorem 3 bounds the estimator's mean-squared error by a bias term growing
with Δ² and a variance term shrinking with S·Δ², implying the optimal
perturbation Δ* = (2σ_F²/(β²S))^{1/4}.  We measure the error of the
Algorithm-2 estimator against the analytic KKT gradient on convex
instances, across Δ and S — reproducing the bias/variance U-shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.kkt import kkt_vjp
from repro.matching.problem import MatchingProblem, feasible_gamma
from repro.matching.relaxed import SolverConfig, solve_relaxed
from repro.matching.zeroth_order import ZeroOrderConfig, zo_vjp
from repro.utils.rng import as_generator

__all__ = ["GradientErrorPoint", "gradient_error_study"]


@dataclass(frozen=True)
class GradientErrorPoint:
    """Error of the ZO estimate vs. the analytic gradient for one (Δ, S)."""

    delta: float
    samples: int
    mse: float
    cosine: float  # direction agreement with the analytic gradient


def _make_problem(rng: np.random.Generator, m: int, n: int) -> MatchingProblem:
    """A well-conditioned instance for gradient comparison: moderate γ and a
    strong entropy term keep the optimum away from simplex vertices, where
    both the analytic reference and the estimator are well-defined (the
    near-boundary regime degrades both and would measure conditioning, not
    estimator quality)."""
    T = rng.uniform(0.2, 3.0, size=(m, n))
    A = rng.uniform(0.6, 0.995, size=(m, n))
    return MatchingProblem(
        T=T, A=A, gamma=feasible_gamma(T, A, quantile=0.25), entropy=0.1
    )


def gradient_error_study(
    deltas: "list[float]",
    sample_counts: "list[int]",
    *,
    m: int = 3,
    n: int = 5,
    repeats: int = 5,
    solver: SolverConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[GradientErrorPoint]:
    """Compare zo_vjp to kkt_vjp over a grid of (Δ, S).

    Returns one point per grid cell, averaging over ``repeats`` random
    instances and upstream gradients.
    """
    rng = as_generator(rng)
    solver = solver or SolverConfig(max_iters=2000, tol=1e-13, patience=20, lr=0.3)
    cases = []
    for _ in range(repeats):
        problem = _make_problem(rng, m, n)
        sol = solve_relaxed(problem, solver)
        g_X = rng.normal(size=(m, n))
        analytic = kkt_vjp(sol.X, problem, g_X)
        ref = np.concatenate([analytic.dT[0], analytic.dA[0]])
        cases.append((problem, sol, g_X, ref))

    out = []
    for delta in deltas:
        for s in sample_counts:
            errs, cosines = [], []
            for problem, sol, g_X, ref in cases:
                zg = zo_vjp(
                    problem, sol, 0, g_X,
                    ZeroOrderConfig(samples=s, delta=delta, warm_start_iters=200),
                    solver_config=solver, rng=rng,
                )
                est = np.concatenate([zg.dt, zg.da])
                errs.append(float(np.mean((est - ref) ** 2)))
                denom = np.linalg.norm(est) * np.linalg.norm(ref)
                cosines.append(float(est @ ref / denom) if denom > 0 else 0.0)
            out.append(
                GradientErrorPoint(
                    delta=delta, samples=s,
                    mse=float(np.mean(errs)), cosine=float(np.mean(cosines)),
                )
            )
    return out
