"""Numerical verification of the paper's Theorems 1–5 (used by tests and
the ablation benchmarks)."""

from repro.theory.convergence import (
    ConvexConvergence,
    NonConvexConvergence,
    convex_convergence_study,
    nonconvex_convergence_study,
)
from repro.theory.feasibility import FeasibilityStats, feasibility_study
from repro.theory.gradient_error import GradientErrorPoint, gradient_error_study
from repro.theory.smoothing import (
    SmoothingSweep,
    smooth_max_gap,
    sweep_beta,
    theorem1_bound,
    verify_theorem1,
)

__all__ = [
    "smooth_max_gap",
    "theorem1_bound",
    "verify_theorem1",
    "SmoothingSweep",
    "sweep_beta",
    "FeasibilityStats",
    "feasibility_study",
    "GradientErrorPoint",
    "gradient_error_study",
    "ConvexConvergence",
    "convex_convergence_study",
    "NonConvexConvergence",
    "nonconvex_convergence_study",
]
