"""Numerical study of Theorem 2 (ε-feasibility of the interior-point method).

Theorem 2 states that after k barrier iterations the solution satisfies
``g(X^(k), A) ≥ γ − ε`` with high probability, where ε shrinks with the
iteration count and the barrier weight.  We verify the *operational*
content: solutions of the barrier problem violate the original constraint
by at most a margin that (a) is usually zero for the relaxed solution and
(b) decreases as λ decreases (a tighter barrier) — and that the rounded
matching's violation probability is controlled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.matching.problem import MatchingProblem, feasible_gamma
from repro.matching.relaxed import SolverConfig, solve_relaxed
from repro.matching.rounding import round_assignment
from repro.utils.rng import as_generator

__all__ = ["FeasibilityStats", "feasibility_study"]


@dataclass(frozen=True)
class FeasibilityStats:
    """Violation statistics for one λ across random instances."""

    lam: float
    relaxed_violation_rate: float
    relaxed_worst_violation: float  # max(0, −slack) worst case
    rounded_violation_rate: float
    rounded_worst_violation: float


def _random_instance(
    m: int, n: int, rng: np.random.Generator, gamma_quantile: float
) -> MatchingProblem:
    T = rng.uniform(0.2, 3.0, size=(m, n))
    A = rng.uniform(0.6, 0.995, size=(m, n))
    return MatchingProblem(T=T, A=A, gamma=feasible_gamma(T, A, quantile=gamma_quantile))


def feasibility_study(
    lams: "list[float]",
    *,
    m: int = 3,
    n: int = 6,
    instances: int = 30,
    gamma_quantile: float = 0.5,
    solver: SolverConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[FeasibilityStats]:
    """Measure constraint violations of barrier solutions across λ values."""
    rng = as_generator(rng)
    base_problems = [_random_instance(m, n, rng, gamma_quantile) for _ in range(instances)]
    out = []
    for lam in lams:
        if lam <= 0:
            raise ValueError("lam values must be positive")
        relaxed_viol, rounded_viol = [], []
        for base in base_problems:
            problem = replace(base, lam=lam)
            sol = solve_relaxed(problem, solver)
            relaxed_viol.append(max(0.0, -problem.reliability_slack(sol.X)))
            Xr = round_assignment(sol.X, problem)
            rounded_viol.append(max(0.0, -problem.reliability_slack(Xr)))
        rv = np.array(relaxed_viol)
        dv = np.array(rounded_viol)
        out.append(
            FeasibilityStats(
                lam=lam,
                relaxed_violation_rate=float((rv > 1e-9).mean()),
                relaxed_worst_violation=float(rv.max()),
                rounded_violation_rate=float((dv > 1e-9).mean()),
                rounded_worst_violation=float(dv.max()),
            )
        )
    return out
