"""Upper-Confidence-Bound method (paper §4.1.2, citing Zhou et al. [44]).

"We select the solution with the highest upper confidence bound rather
than the best-performing matching scheme to mitigate the impact of
stochastic environments on matching regret."  Concretely: bootstrap
ensembles provide per-prediction uncertainty, and the matching is solved
under *pessimistic* matrices — inflated times ``t̂ + κ·σ_t`` (an upper
confidence bound on the cost of any matching) and deflated reliabilities
``â − κ·σ_a`` (a lower confidence bound on constraint satisfaction).
Minimizing the pessimistic cost is exactly choosing the matching whose
confidence-bound performance is best.
"""

from __future__ import annotations

import numpy as np

from repro.methods.base import BaseMethod, FitContext
from repro.predictors.training import TrainConfig
from repro.predictors.uncertainty import (
    EnsembleReliabilityPredictor,
    EnsembleTimePredictor,
)
from repro.utils.rng import spawn
from repro.workloads.taskpool import Task

__all__ = ["UCB"]


class UCB(BaseMethod):
    name = "UCB"

    def __init__(
        self,
        kappa: float = 1.0,
        ensemble_size: int = 5,
        hidden: tuple[int, ...] = (32, 32),
        train_config: TrainConfig | None = None,
    ) -> None:
        super().__init__()
        if kappa < 0:
            raise ValueError(f"kappa must be >= 0, got {kappa}")
        if ensemble_size <= 1:
            raise ValueError("ensemble_size must be > 1 for a usable std estimate")
        self.kappa = kappa
        self.ensemble_size = ensemble_size
        self.hidden = hidden
        self.train_config = train_config or TrainConfig(epochs=150)
        self._time_ens: list[EnsembleTimePredictor] = []
        self._rel_ens: list[EnsembleReliabilityPredictor] = []

    def _fit(self, ctx: FitContext) -> None:
        self._time_ens, self._rel_ens = [], []
        for ds in ctx.datasets:
            self._time_ens.append(
                EnsembleTimePredictor.fit(
                    ds.Z, ds.t, k=self.ensemble_size, hidden=self.hidden,
                    standardizer=ctx.standardizer, config=self.train_config,
                    rng=spawn(ctx.rng),
                )
            )
            self._rel_ens.append(
                EnsembleReliabilityPredictor.fit(
                    ds.Z, ds.a, k=self.ensemble_size, hidden=self.hidden,
                    standardizer=ctx.standardizer, config=self.train_config,
                    rng=spawn(ctx.rng),
                )
            )

    def predict(self, tasks: list[Task]) -> tuple[np.ndarray, np.ndarray]:
        if not self._time_ens:
            raise RuntimeError("UCB.predict called before fit")
        Z = np.stack([t.features for t in tasks])
        T_rows, A_rows = [], []
        for te, re in zip(self._time_ens, self._rel_ens):
            t_mean, t_std = te.predict_with_std(Z)
            a_mean, a_std = re.predict_with_std(Z)
            T_rows.append(t_mean + self.kappa * t_std)
            A_rows.append(np.clip(a_mean - self.kappa * a_std, 0.0, 1.0))
        return np.stack(T_rows), np.stack(A_rows)
