"""Common interface for the compared methods (paper §4.1.2).

Every method consumes one :class:`FitContext` (clusters + measured training
data + matching hyperparameters) and then answers allocation rounds through
``decide`` — producing a binary matching for a given ground-truth problem,
using only its own *predictions* of that problem's matrices.  The
evaluation harness computes regret/reliability/utilization from the
returned matching against the ground truth.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

import numpy as np

from repro.clusters.cluster import Cluster
from repro.matching.problem import MatchingProblem, feasible_gamma
from repro.matching.relaxed import RelaxedSolution, SolverConfig, solve_relaxed
from repro.matching.rounding import round_assignment
from repro.matching.speedup import SpeedupFunction
from repro.predictors.dataset import ClusterDataset, Standardizer, build_datasets
from repro.utils.rng import as_generator
from repro.workloads.taskpool import Task

__all__ = ["MatchSpec", "FitContext", "BaseMethod", "Decision"]


@dataclass(frozen=True)
class MatchSpec:
    """Matching hyperparameters shared by training and evaluation.

    ``gamma_quantile`` positions the reliability threshold between the
    uniform-assignment value (0) and the best achievable (1) on each round
    — see :func:`repro.matching.problem.feasible_gamma`; the platform
    applies the same rule at training and deployment.
    """

    gamma_quantile: float = 0.5
    beta: float = 5.0
    lam: float = 0.01
    train_entropy: float = 0.05  # τ for training-time solves (keeps KKT well-posed)
    speedup: tuple[SpeedupFunction, ...] | None = None
    solver: SolverConfig = field(default_factory=SolverConfig)
    cost: str = "makespan"  # "linear" for Table 1 ablation (1)
    penalty: str = "log_barrier"  # "hinge" for Table 1 ablation (2)

    def build_problem(
        self, T: np.ndarray, A: np.ndarray, *, training: bool = False
    ) -> MatchingProblem:
        """Instantiate Eq. (2)'s relaxation for one allocation round."""
        gamma = feasible_gamma(T, A, quantile=self.gamma_quantile)
        return MatchingProblem(
            T=T,
            A=A,
            gamma=gamma,
            beta=self.beta,
            lam=self.lam,
            entropy=self.train_entropy if training else 0.0,
            speedup=self.speedup,
            cost=self.cost,
            penalty=self.penalty,
        )


@dataclass
class FitContext:
    """Everything a method may use at training time."""

    clusters: list[Cluster]
    train_tasks: list[Task]
    spec: MatchSpec
    rng: np.random.Generator
    datasets: list[ClusterDataset] = field(default_factory=list)
    standardizer: Standardizer | None = None

    @staticmethod
    def build(
        clusters: list[Cluster],
        train_tasks: list[Task],
        spec: MatchSpec,
        rng: np.random.Generator | int | None = None,
    ) -> "FitContext":
        """Measure the training tasks on every cluster and standardize."""
        rng = as_generator(rng)
        datasets = build_datasets(clusters, train_tasks, rng)
        standardizer = Standardizer.fit(datasets[0].Z)
        return FitContext(
            clusters=clusters,
            train_tasks=train_tasks,
            spec=spec,
            rng=rng,
            datasets=datasets,
            standardizer=standardizer,
        )

    @property
    def feature_dim(self) -> int:
        return self.train_tasks[0].features.shape[0]

    @property
    def M(self) -> int:
        return len(self.clusters)

    def features(self, tasks: list[Task]) -> np.ndarray:
        return np.stack([t.features for t in tasks])


@dataclass(frozen=True)
class Decision:
    """Full outcome of one allocation decision (serving-layer entry point).

    ``X`` is the rounded binary matching the platform executes; ``relaxed``
    carries the interior iterate, iteration count and step memory a
    warm-start cache feeds back into the next window's solve; ``problem``
    is the *decision* problem (built from predictions) the solve ran on.
    """

    X: np.ndarray
    relaxed: RelaxedSolution
    problem: MatchingProblem


class BaseMethod(ABC):
    """A matching method: fit once, then decide allocation rounds."""

    #: Short name used in tables (e.g. "TSM", "MFCP-AD").
    name: str = "base"

    def __init__(self) -> None:
        self._fitted = False
        self._spec: MatchSpec | None = None

    # ------------------------------------------------------------------ #

    def fit(self, ctx: FitContext) -> "BaseMethod":
        """Train on the context; returns self for chaining."""
        self._spec = ctx.spec
        self._fit(ctx)
        self._fitted = True
        return self

    @abstractmethod
    def _fit(self, ctx: FitContext) -> None:
        """Method-specific training."""

    @abstractmethod
    def predict(self, tasks: list[Task]) -> tuple[np.ndarray, np.ndarray]:
        """Predicted (T̂, Â) matrices for an allocation round, shape (M, N)."""

    # ------------------------------------------------------------------ #

    def decide(self, true_problem: MatchingProblem, tasks: list[Task]) -> np.ndarray:
        """Produce the binary matching for one round.

        Default behaviour is the paper's deployment pipeline: build the
        problem from *predicted* matrices, solve the relaxation, round.
        Methods that alter the decision objective (ablations) override
        :meth:`_decision_problem`.
        """
        return self.decide_full(true_problem, tasks).X

    def decide_full(
        self,
        true_problem: MatchingProblem,
        tasks: list[Task],
        *,
        x0: np.ndarray | None = None,
        solver: SolverConfig | None = None,
        predictions: "tuple[np.ndarray, np.ndarray] | None" = None,
        solve_mode: str = "scalar",
        block_config=None,
        profiler=None,
    ) -> Decision:
        """The deployment pipeline with its serving hooks exposed.

        Parameters
        ----------
        x0:
            Warm start for the relaxed solve (e.g. the previous window's
            iterate from :class:`repro.serve.cache.WarmStartCache`); must
            be column-stochastic, falls back to the cold interior start if
            infeasible for this instance.
        solver:
            Override of the spec's solver config (step-memory consumers
            reopen at a remembered learning rate).
        predictions:
            Precomputed ``(T̂, Â)`` matrices — the serving layer memoizes
            predictor forward passes for repeated task specs and injects
            them here instead of re-running :meth:`predict`.
        solve_mode:
            ``"scalar"`` (default) runs the dense
            :func:`~repro.matching.relaxed.solve_relaxed`; ``"blocks"``
            runs :func:`~repro.matching.blocks.solve_relaxed_blocks` —
            decompose into viability components, solve as one batched
            float32 instance (``block_config`` is its
            :class:`~repro.matching.blocks.BlockConfig`).
        profiler:
            Optional :class:`repro.telemetry.profiler.StageProfiler`.
            When given, the pipeline's relaxed solve and rounding run
            under ``relaxed`` / ``rounding`` stages (nested below
            whatever stage the caller holds open — the dispatcher's
            ``solve``), so the latency budget splits solver time from
            rounding time.
        """
        if not self._fitted:
            raise RuntimeError(f"{self.name}: decide() called before fit()")
        if solve_mode not in ("scalar", "blocks"):
            raise ValueError(f"unknown solve_mode {solve_mode!r}")
        if profiler is None:
            from repro.telemetry.profiler import NULL_PROFILER as profiler
        with profiler.stage("predict"):
            T_hat, A_hat = self.predict(tasks) if predictions is None else predictions
        problem = self._decision_problem(true_problem.with_predictions(T_hat, A_hat))
        cfg = solver or self._solver_config()
        with profiler.stage("relaxed"):
            if solve_mode == "blocks":
                from repro.matching.blocks import solve_relaxed_blocks

                sol = solve_relaxed_blocks(problem, cfg, block_config=block_config,
                                           x0=x0)
            else:
                sol = solve_relaxed(problem, cfg, x0=x0)
        with profiler.stage("rounding"):
            X = round_assignment(sol.X, problem)
        return Decision(X=X, relaxed=sol, problem=problem)

    def _decision_problem(self, problem: MatchingProblem) -> MatchingProblem:
        """Hook for ablations to alter the decision objective."""
        return problem

    def _solver_config(self) -> SolverConfig:
        assert self._spec is not None
        return self._spec.solver

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, fitted={self._fitted})"
