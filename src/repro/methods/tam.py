"""Task-Agnostic Matching (TAM) baseline (paper §4.1.2).

"This naive method ignores task variations in execution time and
reliability, using average cluster performance across tasks to solve
problem (2)."  Each cluster is summarized by the mean measured time and
reliability over the training set; every task receives the same predicted
row.  Deterministic given the training data — the paper's Table 2 shows
±0.000 std for TAM for exactly this reason.
"""

from __future__ import annotations

import numpy as np

from repro.methods.base import BaseMethod, FitContext
from repro.workloads.taskpool import Task

__all__ = ["TAM"]


class TAM(BaseMethod):
    name = "TAM"

    def __init__(self) -> None:
        super().__init__()
        self._mean_t: np.ndarray | None = None
        self._mean_a: np.ndarray | None = None

    def _fit(self, ctx: FitContext) -> None:
        self._mean_t = np.array([ds.t.mean() for ds in ctx.datasets])
        self._mean_a = np.array([ds.a.mean() for ds in ctx.datasets])

    def predict(self, tasks: list[Task]) -> tuple[np.ndarray, np.ndarray]:
        if self._mean_t is None or self._mean_a is None:
            raise RuntimeError("TAM.predict called before fit")
        n = len(tasks)
        T_hat = np.repeat(self._mean_t[:, None], n, axis=1)
        A_hat = np.repeat(self._mean_a[:, None], n, axis=1)
        return T_hat, A_hat
