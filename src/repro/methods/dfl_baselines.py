"""Decision-focused-learning baselines from the literature the paper surveys.

§5 of the paper organizes prior DFL work into three directions; we
implement one representative of each, adapted to the cluster–task matching
problem, so the repository can compare MFCP against the broader DFL
landscape (extension experiment E5 in DESIGN.md):

1. **Surrogate losses** — :class:`SPOPlus` (Elmachtoub & Grigas, "Smart
   Predict-then-Optimize").  SPO+ is defined for linear objectives, so it
   trains the time predictor against the *linear-cost* matching surrogate
   (sum of cluster times — cᵀx with c = vec(T)); the reliability head is
   trained by MSE.  Decisions at deployment use the full makespan
   objective, isolating the effect of the training loss.

2. **Black-box differentiation** — :class:`BlackboxDiff` (Vlastelica et
   al., "Differentiation of Blackbox Combinatorial Solvers").  The solver
   is treated as a black box; the backward pass re-solves a *perturbed*
   instance ``T̂ + λ_int · dL/dX`` and returns the finite difference
   ``(X*(T̂) − X*_perturbed) / λ_int`` as the gradient of the loss w.r.t.
   the prediction.

3. **Perturbed optimizers** — :class:`PerturbedOpt` (Berthet et al.,
   "Learning with Differentiable Perturbed Optimizers").  Predictions are
   perturbed with Gaussian noise; the score-function (REINFORCE) estimator

       d E[L(X*(t̂ + σZ))] / dt̂ ≈ (1/S) Σ_s L_s · Z_s / σ

   with a mean baseline gives the gradient.

All three share MFCP's warm-start pretraining and its training-round
sampler (inherited from :class:`~repro.methods.mfcp.MFCP`), differing only
in how the regret signal reaches the predictor — an apples-to-apples
comparison of the differentiation strategy itself.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.matching.objectives import linear_cost, smooth_cost
from repro.matching.problem import MatchingProblem
from repro.matching.relaxed import solve_relaxed
from repro.matching.rounding import round_assignment
from repro.methods.base import FitContext
from repro.methods.mfcp import MFCP, MFCPConfig
from repro.nn import clip_grad_norm
from repro.utils.rng import spawn

__all__ = ["SPOPlus", "BlackboxDiff", "PerturbedOpt", "make_dfl_methods"]


class SPOPlus(MFCP):
    """SPO+ surrogate loss on the linear-cost matching surrogate.

    For a linear objective ``min_x cᵀx`` over a fixed feasible set, the
    SPO+ subgradient w.r.t. the predicted cost ĉ is

        ∂ℓ_SPO+ / ∂ĉ = 2 (x*(c) − x*(2ĉ − c))

    where ``x*(·)`` is the solver oracle and ``c`` the true cost.  Here
    ``c = vec(T)`` restricted to the trained cluster's row (other rows are
    ground truth, exactly like MFCP's Algorithm-2 line 3 protocol).
    """

    def __init__(self, config: MFCPConfig | None = None,
                 hidden: tuple[int, ...] = (32, 32)) -> None:
        super().__init__("analytic", config, hidden)
        self.name = "SPO+"

    def _train_round(self, ctx: FitContext, Z, true_problem, opt_time, opt_rel,
                     update_time, update_rel):  # type: ignore[override]
        cfg = self.config
        M, N = true_problem.M, true_problem.N
        T_true = np.array(true_problem.T)
        A_true = np.array(true_problem.A)
        # SPO+'s oracle works on the linear surrogate.
        lin_problem = replace(true_problem, cost="linear")
        X_star_true = self._oracle(lin_problem)
        total_loss = 0.0

        for i in range(M):
            t_hat = self._pairs[i].time.forward(Z)
            a_hat = self._pairs[i].reliability.forward(Z)

            # SPO+ subgradient on cluster i's cost row.
            T_spo = T_true.copy()
            T_spo[i] = 2.0 * t_hat.data - T_true[i]
            X_spo = self._oracle(lin_problem.with_predictions(T_spo, A_true))
            grad_t = 2.0 * (X_star_true[i] - X_spo[i])

            total_loss += float(
                linear_cost(X_spo, lin_problem) - linear_cost(X_star_true, lin_problem)
            ) / N

            if update_time:
                opt_time[i].zero_grad()
                t_hat.backward(grad_t)
                clip_grad_norm(opt_time[i].params, cfg.grad_clip)
                opt_time[i].step()
            if update_rel:
                # Reliability head keeps its MSE anchor (SPO+ has no
                # constraint-side theory); a_true serves as the target.
                opt_rel[i].zero_grad()
                residual = 2.0 * (a_hat.data - A_true[i]) / N
                a_hat.backward(residual)
                opt_rel[i].step()
        return total_loss / M

    def _oracle(self, problem: MatchingProblem) -> np.ndarray:
        sol = solve_relaxed(problem, self._spec.solver if self._spec else None)
        return round_assignment(sol.X, problem)


class BlackboxDiff(MFCP):
    """Vlastelica et al.'s black-box solver differentiation (DBB).

    Backward pass: with upstream gradient ``g = dL/dX*`` and interpolation
    strength ``λ_int``, re-solve at ``T̂' = T̂ + λ_int · g_row`` and return

        dL/dt̂ᵢ ≈ (X*(T̂)ᵢ − X*(T̂')ᵢ) · scale / λ_int

    a linear interpolation of the piecewise-constant solver map.  Only the
    time head receives a decision gradient (DBB differentiates through the
    objective's cost vector); the reliability head keeps an MSE anchor.
    """

    def __init__(self, config: MFCPConfig | None = None,
                 hidden: tuple[int, ...] = (32, 32),
                 interpolation: float = 5.0) -> None:
        super().__init__("forward", config, hidden)
        if interpolation <= 0:
            raise ValueError(f"interpolation must be > 0, got {interpolation}")
        self.name = "DBB"
        self.interpolation = interpolation

    def _train_round(self, ctx: FitContext, Z, true_problem, opt_time, opt_rel,
                     update_time, update_rel):  # type: ignore[override]
        cfg = self.config
        M, N = true_problem.M, true_problem.N
        T_true = np.array(true_problem.T)
        A_true = np.array(true_problem.A)
        oracle_sol = solve_relaxed(true_problem, ctx.spec.solver)
        total_loss = 0.0

        for i in range(M):
            t_hat = self._pairs[i].time.forward(Z)
            a_hat = self._pairs[i].reliability.forward(Z)
            T_hat = T_true.copy()
            A_hat = A_true.copy()
            T_hat[i] = t_hat.data
            A_hat[i] = a_hat.data
            pred_problem = true_problem.with_predictions(T_hat, A_hat)
            sol = solve_relaxed(pred_problem, ctx.spec.solver, x0=oracle_sol.X)
            g_X = self._upstream_gradient(sol.X, true_problem)
            total_loss += self._regret_proxy(sol.X, oracle_sol.X, true_problem)

            # DBB backward: one extra solve at the gradient-informed point.
            lam = self.interpolation
            T_pert = T_hat.copy()
            T_pert[i] = np.maximum(T_hat[i] + lam * g_X[i] * N, 1e-4)
            sol_pert = solve_relaxed(
                pred_problem.with_predictions(T_pert, A_hat),
                ctx.spec.solver, x0=sol.X,
            )
            grad_t = -(sol_pert.X[i] - sol.X[i]) / lam

            if update_time:
                opt_time[i].zero_grad()
                t_hat.backward(grad_t)
                clip_grad_norm(opt_time[i].params, cfg.grad_clip)
                opt_time[i].step()
            if update_rel:
                opt_rel[i].zero_grad()
                residual = 2.0 * (a_hat.data - A_true[i]) / N
                a_hat.backward(residual)
                opt_rel[i].step()
        return total_loss / M


class PerturbedOpt(MFCP):
    """Berthet et al.'s perturbed optimizer with a score-function gradient.

    The loss of the *perturbed* decision is differentiated by REINFORCE:

        dE[L]/dt̂ ≈ (1/S) Σ_s (L_s − L̄) Z_s / σ

    where ``L_s = F(X*(t̂ + σZ_s), T, A)/N`` and L̄ is the mean baseline.
    Perturbing both heads gives the reliability head a decision gradient
    too — unlike SPO+/DBB, this estimator handles constraint variables.
    """

    def __init__(self, config: MFCPConfig | None = None,
                 hidden: tuple[int, ...] = (32, 32),
                 sigma: float = 0.05, samples: int = 8) -> None:
        super().__init__("forward", config, hidden)
        if sigma <= 0 or samples <= 1:
            raise ValueError("sigma must be > 0 and samples > 1")
        self.name = "DPO"
        self.sigma = sigma
        self.samples = samples

    def _train_round(self, ctx: FitContext, Z, true_problem, opt_time, opt_rel,
                     update_time, update_rel):  # type: ignore[override]
        cfg = self.config
        M, N = true_problem.M, true_problem.N
        T_true = np.array(true_problem.T)
        A_true = np.array(true_problem.A)
        oracle_sol = solve_relaxed(true_problem, ctx.spec.solver)
        oracle_cost = smooth_cost(oracle_sol.X, true_problem)
        rng = spawn(ctx.rng)
        total_loss = 0.0

        for i in range(M):
            t_hat = self._pairs[i].time.forward(Z)
            a_hat = self._pairs[i].reliability.forward(Z)
            losses = np.empty(self.samples)
            Zt = rng.normal(size=(self.samples, N))
            Za = rng.normal(size=(self.samples, N))
            for s in range(self.samples):
                T_hat = T_true.copy()
                A_hat = A_true.copy()
                T_hat[i] = np.maximum(t_hat.data + self.sigma * Zt[s], 1e-4)
                A_hat[i] = np.clip(a_hat.data + self.sigma * Za[s], 0.0, 1.0)
                pred = true_problem.with_predictions(T_hat, A_hat)
                sol = solve_relaxed(pred, ctx.spec.solver, x0=oracle_sol.X)
                # Loss of the perturbed decision under the truth; the slack
                # floor mirrors MFCP's infeasibility handling.
                losses[s] = self._perturbed_loss(sol.X, true_problem, oracle_cost)
            baseline = losses.mean()
            total_loss += baseline
            grad_t = ((losses - baseline)[:, None] * Zt).mean(axis=0) / self.sigma
            grad_a = ((losses - baseline)[:, None] * Za).mean(axis=0) / self.sigma

            if update_time:
                opt_time[i].zero_grad()
                t_hat.backward(grad_t)
                clip_grad_norm(opt_time[i].params, cfg.grad_clip)
                opt_time[i].step()
            if update_rel:
                opt_rel[i].zero_grad()
                a_hat.backward(grad_a)
                clip_grad_norm(opt_rel[i].params, cfg.grad_clip)
                opt_rel[i].step()
        return total_loss / M

    def _perturbed_loss(
        self, X: np.ndarray, true_problem: MatchingProblem, oracle_cost: float
    ) -> float:
        slack = true_problem.reliability_slack(X)
        problem = true_problem
        if slack < self.config.slack_floor:
            problem = replace(
                true_problem,
                gamma=true_problem.gamma - (self.config.slack_floor - slack),
            )
        from repro.matching.objectives import barrier_value

        return (barrier_value(X, problem) - oracle_cost) / true_problem.N


def make_dfl_methods(config: MFCPConfig | None = None) -> list[MFCP]:
    """The DFL-landscape lineup of extension experiment E5:
    SPO+ / DBB / DPO / MFCP-AD / MFCP-FG."""
    return [
        SPOPlus(config),
        BlackboxDiff(config),
        PerturbedOpt(config),
        MFCP("analytic", config),
        MFCP("forward", config),
    ]
