"""Two-Stage Method (TSM) baseline (paper §4.1.2, citing Yang et al. [39]).

"Independently trains cluster performance predictors by minimizing MSE
loss, then solves problem (2) using predicted values" — the canonical
predict-then-optimize pipeline MFCP is measured against.
"""

from __future__ import annotations

import numpy as np

from repro.methods.base import BaseMethod, FitContext
from repro.predictors.models import PredictorPair
from repro.predictors.training import TrainConfig, train_reliability, train_time_mse
from repro.utils.rng import spawn
from repro.workloads.taskpool import Task

__all__ = ["TSM"]


class TSM(BaseMethod):
    name = "TSM"

    def __init__(
        self,
        hidden: tuple[int, ...] = (32, 32),
        train_config: TrainConfig | None = None,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.train_config = train_config or TrainConfig(epochs=200)
        self._pairs: list[PredictorPair] = []

    def _fit(self, ctx: FitContext) -> None:
        self._pairs = []
        for ds in ctx.datasets:
            pair = PredictorPair(
                ctx.feature_dim, self.hidden,
                standardizer=ctx.standardizer, rng=spawn(ctx.rng),
            )
            train_time_mse(pair.time, ds.Z, ds.t, self.train_config, spawn(ctx.rng))
            train_reliability(pair.reliability, ds.Z, ds.a, self.train_config, spawn(ctx.rng))
            self._pairs.append(pair)

    def predict(self, tasks: list[Task]) -> tuple[np.ndarray, np.ndarray]:
        if not self._pairs:
            raise RuntimeError("TSM.predict called before fit")
        Z = np.stack([t.features for t in tasks])
        rows = [pair.predict(Z) for pair in self._pairs]
        T_hat = np.stack([r[0] for r in rows])
        A_hat = np.stack([r[1] for r in rows])
        return T_hat, A_hat

    @property
    def pairs(self) -> list[PredictorPair]:
        """The trained per-cluster predictor pairs (used by MFCP warm start)."""
        return self._pairs
