"""The five compared methods of §4.1.2 plus the Table 1 ablation variants."""

from repro.methods.ablations import MFCPHardPenalty, MFCPLinearLoss, make_table1_methods
from repro.methods.base import BaseMethod, Decision, FitContext, MatchSpec
from repro.methods.dfl_baselines import BlackboxDiff, PerturbedOpt, SPOPlus, make_dfl_methods
from repro.methods.mfcp import MFCP, MFCPConfig
from repro.methods.oracle import Oracle
from repro.methods.tam import TAM
from repro.methods.tsm import TSM
from repro.methods.ucb import UCB

__all__ = [
    "BaseMethod",
    "Decision",
    "FitContext",
    "MatchSpec",
    "TAM",
    "TSM",
    "UCB",
    "MFCP",
    "MFCPConfig",
    "MFCPLinearLoss",
    "MFCPHardPenalty",
    "make_table1_methods",
    "SPOPlus",
    "BlackboxDiff",
    "PerturbedOpt",
    "make_dfl_methods",
    "Oracle",
]
