"""Oracle method: matches with the *true* performance matrices.

Not part of the paper's comparison (its cost is the regret baseline by
definition), but a useful skyline in experiments and examples: any gap
between a method and the oracle is prediction-induced, and the oracle's
own metrics show what the matching layer alone can deliver.
"""

from __future__ import annotations

import numpy as np

from repro.matching.problem import MatchingProblem
from repro.matching.relaxed import solve_relaxed
from repro.matching.rounding import round_assignment
from repro.methods.base import BaseMethod, FitContext
from repro.workloads.taskpool import Task

__all__ = ["Oracle"]


class Oracle(BaseMethod):
    """Decides with ground-truth T and A (regret ≈ 0 by construction)."""

    name = "Oracle"

    def _fit(self, ctx: FitContext) -> None:
        self._clusters = ctx.clusters

    def predict(self, tasks: list[Task]) -> tuple[np.ndarray, np.ndarray]:
        """The oracle "prediction" is the ground truth itself."""
        if not self._fitted:
            raise RuntimeError("Oracle.predict called before fit")
        T = np.stack([c.true_times(tasks) for c in self._clusters])
        A = np.stack([c.true_reliabilities(tasks) for c in self._clusters])
        return T, A

    def decide(self, true_problem: MatchingProblem, tasks: list[Task]) -> np.ndarray:
        """Solve the true problem directly (no prediction substitution)."""
        if not self._fitted:
            raise RuntimeError("Oracle.decide called before fit")
        sol = solve_relaxed(true_problem, self._solver_config())
        return round_assignment(sol.X, true_problem)
