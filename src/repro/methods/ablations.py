"""Ablation variants of MFCP for Table 1.

The paper ablates three design choices of the gradient pipeline:

1. **Maximum loss** → :class:`MFCPLinearLoss`: the time-cost functional is
   simplified to the *sum* of cluster times (a linear function), both in
   training and in the deployment decision;
2. **Interior-point method** → :class:`MFCPHardPenalty`: the logarithmic
   barrier is replaced by the hard hinge penalty
   ``λ · max(0, γ − g(X, A))``;
3. **Zeroth-order gradient estimation** → plain ``MFCP(gradient="forward")``
   evaluated on the convex (exclusive) setting, against
   ``MFCP(gradient="analytic")``.

Variants 1–2 subclass MFCP and only swap the problem-construction knobs in
the spec, so the training loop, gradients and rounding are shared code.
"""

from __future__ import annotations

from dataclasses import replace

from repro.matching.problem import MatchingProblem
from repro.methods.base import FitContext
from repro.methods.mfcp import MFCP, MFCPConfig

__all__ = ["MFCPLinearLoss", "MFCPHardPenalty", "make_table1_methods"]

#: The hinge penalty needs a much larger weight than the barrier's λ to
#: influence decisions at all: the barrier diverges near the boundary
#: while the hinge grows only linearly past it.
_HINGE_LAM = 5.0


class MFCPLinearLoss(MFCP):
    """Table 1 ablation (1): linear (sum) time cost instead of the max."""

    def __init__(self, gradient: str = "analytic", config: MFCPConfig | None = None,
                 hidden: tuple[int, ...] = (32, 32)) -> None:
        super().__init__(gradient, config, hidden)
        self.name = "MFCP (linear loss)"

    def _fit(self, ctx: FitContext) -> None:
        super()._fit(replace(ctx, spec=replace(ctx.spec, cost="linear")))

    def _decision_problem(self, problem: MatchingProblem) -> MatchingProblem:
        return replace(problem, cost="linear")


class MFCPHardPenalty(MFCP):
    """Table 1 ablation (2): hinge penalty instead of the log barrier."""

    def __init__(self, gradient: str = "analytic", config: MFCPConfig | None = None,
                 hidden: tuple[int, ...] = (32, 32)) -> None:
        super().__init__(gradient, config, hidden)
        self.name = "MFCP (hard penalty)"

    def _fit(self, ctx: FitContext) -> None:
        spec = replace(ctx.spec, penalty="hinge", lam=_HINGE_LAM)
        super()._fit(replace(ctx, spec=spec))

    def _decision_problem(self, problem: MatchingProblem) -> MatchingProblem:
        return replace(problem, penalty="hinge", lam=_HINGE_LAM)


def make_table1_methods(config: MFCPConfig | None = None) -> list[MFCP]:
    """The four rows of Table 1 in paper order:
    (1) linear loss, (2) hard penalty, (3) zeroth-order gradients, MFCP."""
    return [
        MFCPLinearLoss("analytic", config),
        MFCPHardPenalty("analytic", config),
        MFCP("forward", config),
        MFCP("analytic", config),
    ]
