"""MFCP: the Matching-Focused Cluster Performance Predictor (paper §3).

Training pipeline (Fig. 3 / Algorithm 2):

1. **Warm start** — short MSE pretraining of every cluster's predictor
   pair.  (The bilevel loss is only informative once predictions are in a
   sane range; starting the interior-point solves from random nets wastes
   most of the budget.  Documented deviation — see DESIGN.md.)
2. **Regret training** — per epoch, sample an allocation round of N train
   tasks, take the measured performance as ground truth (T, A), and for
   each cluster i (Alg. 2 line 3) form the semi-predicted matrices
   ``T̂ = [T with row i ← m_ω_i(z)]``, ``Â = [A with row i ← m_φ_i(z)]``.
   Solve the relaxed matching X*(T̂, Â) (Algorithm 1), form the regret
   upstream gradient ``dL/dX* = (1/N) ∇_X F(X*, T, A)`` (the oracle term
   of Eq. 12 is constant in ω, φ), and pull it back to the predictions:

   - ``gradient="analytic"`` (MFCP-AD): KKT adjoint solve, Eq. (15);
   - ``gradient="forward"`` (MFCP-FG): zeroth-order estimation, Alg. 2.

   The prediction gradients are then backpropagated through the predictor
   networks by the autograd tape, and ω and φ are updated on alternating
   epochs ("we fix ω when optimizing φ, and fix φ when optimizing ω").

**Fused batched round** (default, ``MFCPConfig.batched``): Algorithm 2's
literal per-cluster loop solves M relaxed instances (plus, for MFCP-FG,
M×2S perturbed ones) sequentially — yet they are same-shape copies of the
identical convex barrier program.  The batched path assembles all of them
into one :class:`repro.matching.batch.BatchProblem`, solves them in a
single vectorized mirror-descent program warm-started from the oracle
solution, pulls all M upstream gradients back in one stacked KKT adjoint
(:func:`repro.matching.batch_vjp.batch_kkt_vjp`) or one cross-cluster
zeroth-order batch (:func:`repro.matching.zeroth_order.zo_vjp_cross`),
and only then touches Python-level autograd for the M small predictor
updates.  Non-convex ζ objectives (and the Table 1 ablation knobs) fall
back to the scalar path automatically; see DESIGN.md "Batched training
path" for the exact semantics deltas.

Per-phase wall-clock totals are recorded as telemetry spans
(``train/pretrain`` / ``train/solve`` / ``train/vjp`` /
``train/optimizer`` / ``train/validation``; see :mod:`repro.telemetry`)
so speedups are measured, not asserted — ``benchmarks/bench_micro.py``
reports them.  :attr:`MFCP.timings` remains available as a derived
per-phase view of the last fit for backward compatibility.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, replace

import numpy as np

from repro.matching.batch import (
    BatchProblem,
    batch_barrier_gradient,
    clamp_predictions_batch,
    solve_relaxed_batch,
)
from repro.matching.batch_vjp import batch_kkt_vjp
from repro.matching.kkt import kkt_vjp
from repro.matching.objectives import barrier_gradient, reliability_value
from repro.matching.problem import MatchingProblem
from repro.matching.relaxed import SolverConfig, solve_relaxed
from repro.matching.zeroth_order import ZeroOrderConfig, zo_vjp, zo_vjp_cross
from repro.methods.base import BaseMethod, FitContext, MatchSpec
from repro.nn import Adam, clip_grad_norm
from repro import telemetry
from repro.predictors.models import PredictorPair
from repro.predictors.training import TrainConfig, train_reliability, train_time_mse
from repro.utils.rng import spawn
from repro.workloads.taskpool import Task

__all__ = ["MFCPConfig", "MFCP"]


@dataclass(frozen=True)
class MFCPConfig:
    """Hyperparameters of the regret-training phase."""

    epochs: int = 60  # regret epochs (each touches every cluster)
    round_size: int = 5  # N tasks per sampled training round
    lr: float = 1e-3  # Adam lr for regret updates
    grad_clip: float = 5.0
    pretrain: TrainConfig = TrainConfig(epochs=120)
    #: vectorized=True dispatches all perturbed solves to the batch solver
    #: on convex instances (identical estimates, ~5-10x faster); the
    #: non-convex ζ objective falls back to scalar solves automatically.
    zero_order: ZeroOrderConfig = ZeroOrderConfig(samples=8, delta=0.05, vectorized=True)
    #: §3.3 suggests alternating ω/φ updates for stability; empirically the
    #: joint update is at least as stable and twice as sample-efficient at
    #: small budgets (see DESIGN.md), so it is the default.  Set True for
    #: the paper-literal schedule.
    alternate: bool = False
    #: Floor on the true-problem slack when forming the upstream regret
    #: gradient: a predicted matching that is infeasible under the *true*
    #: reliabilities would make Eq. (12)'s barrier infinite; flooring the
    #: slack keeps the gradient finite and pointing back into feasibility.
    slack_floor: float = 1e-3
    #: Validation-based model selection: every ``validate_every`` epochs,
    #: score the current predictors by deployment regret on
    #: ``validation_rounds`` held-out rounds sampled from the training set,
    #: and keep the best snapshot (restored at the end of fit).  Guards
    #: against the regret-SGD drift occasionally degrading a good warm
    #: start; 0 disables.
    validation_rounds: int = 4
    validate_every: int = 5
    #: Fuse each training epoch into one cross-cluster batched solve (and
    #: one batched adjoint / zeroth-order batch).  Applies only to the
    #: convex sequential makespan barrier with the mirror projection; the
    #: non-convex ζ objective and the Table 1 ablation knobs automatically
    #: stay on the scalar per-cluster loop.  Set False to force the
    #: paper-literal Algorithm 2 loop everywhere (escape hatch).
    batched: bool = True

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.round_size <= 0:
            raise ValueError("epochs and round_size must be positive")
        if self.lr <= 0 or self.grad_clip <= 0:
            raise ValueError("lr and grad_clip must be positive")
        if self.slack_floor <= 0:
            raise ValueError("slack_floor must be positive")
        if self.validation_rounds < 0 or self.validate_every <= 0:
            raise ValueError("validation_rounds must be >= 0, validate_every > 0")


class MFCP(BaseMethod):
    """MFCP-AD (``gradient="analytic"``) and MFCP-FG (``gradient="forward"``)."""

    def __init__(
        self,
        gradient: str = "analytic",
        config: MFCPConfig | None = None,
        hidden: tuple[int, ...] = (32, 32),
    ) -> None:
        super().__init__()
        if gradient not in ("analytic", "forward"):
            raise ValueError(f"gradient must be 'analytic' or 'forward', got {gradient!r}")
        self.gradient = gradient
        self.name = "MFCP-AD" if gradient == "analytic" else "MFCP-FG"
        self.config = config or MFCPConfig()
        self.hidden = hidden
        self._pairs: list[PredictorPair] = []
        self.loss_history: list[float] = []
        self._phase_totals: dict[str, float] = {}

    # ------------------------------------------------------------------ #

    @property
    def timings(self) -> dict[str, float]:
        """Per-phase wall-clock seconds of the last fit (pretrain / solve /
        vjp / optimizer / validation) — a derived view of the ``train/*``
        telemetry spans, kept so PR 1's benchmark code works unchanged."""
        return dict(self._phase_totals)

    @contextmanager
    def _phase(self, key: str):
        """One training phase: opens the ``train/<key>`` telemetry span and
        mirrors its wall clock into the :attr:`timings` compat view (which
        must keep accumulating even when telemetry is off)."""
        t0 = time.perf_counter()
        with telemetry.span(f"train/{key}"):
            try:
                yield
            finally:
                self._phase_totals[key] = (
                    self._phase_totals.get(key, 0.0) + time.perf_counter() - t0
                )

    def _can_batch(self, spec: MatchSpec) -> bool:
        """Whether the fused batched round matches the scalar semantics:
        convex sequential makespan barrier, mirror projection with
        normalized steps (the batch solver's only mode)."""
        s = spec.solver
        return (
            self.config.batched
            and spec.cost == "makespan"
            and spec.penalty == "log_barrier"
            and s.projection == "mirror"
            and s.normalize_steps
        )

    def _fit(self, ctx: FitContext) -> None:
        if self.gradient == "analytic" and ctx.spec.speedup is not None:
            raise ValueError(
                "MFCP-AD requires the convex sequential objective; "
                "use MFCP-FG for parallel execution (paper §4.5)"
            )
        cfg = self.config
        self._phase_totals = {}
        # 1. Warm start with MSE pretraining.
        self._pairs = []
        with self._phase("pretrain"):
            for ds in ctx.datasets:
                pair = PredictorPair(ctx.feature_dim, self.hidden,
                                     standardizer=ctx.standardizer, rng=spawn(ctx.rng))
                train_time_mse(pair.time, ds.Z, ds.t, cfg.pretrain, spawn(ctx.rng))
                train_reliability(pair.reliability, ds.Z, ds.a, cfg.pretrain, spawn(ctx.rng))
                self._pairs.append(pair)

        # 2. Regret training.
        opt_time = [Adam(p.time.parameters(), lr=cfg.lr) for p in self._pairs]
        opt_rel = [Adam(p.reliability.parameters(), lr=cfg.lr) for p in self._pairs]
        n_train = len(ctx.train_tasks)
        round_size = min(cfg.round_size, n_train)
        Z_all = ctx.features(ctx.train_tasks)
        T_all = np.stack([ds.t for ds in ctx.datasets])  # (M, n_train) measured
        A_all = np.stack([ds.a for ds in ctx.datasets])

        # Held-out validation rounds for model selection (fixed once so all
        # epoch snapshots are scored on the same instances).
        val_rng = spawn(ctx.rng)
        val_rounds = []
        for _ in range(cfg.validation_rounds):
            idx = val_rng.choice(n_train, size=round_size, replace=False)
            try:
                val_rounds.append(
                    (Z_all[idx],
                     ctx.spec.build_problem(T_all[:, idx], A_all[:, idx], training=True))
                )
            except ValueError:
                continue
        best_score = self._validation_score(ctx, val_rounds) if val_rounds else None
        best_state = self._snapshot() if val_rounds else None

        batched = self._can_batch(ctx.spec)
        if cfg.batched and not batched:
            telemetry.event(
                "train/scalar_fallback", method=self.name,
                reason="spec not batchable (cost/penalty/projection)",
            )
        fallback_warned = False
        self.loss_history = []
        for epoch in range(cfg.epochs):
            idx = ctx.rng.choice(n_train, size=round_size, replace=False)
            Z = Z_all[idx]
            T_true, A_true = T_all[:, idx], A_all[:, idx]
            try:
                true_problem = ctx.spec.build_problem(T_true, A_true, training=True)
            except ValueError:
                continue  # degenerate round (γ unattainable); resample next epoch
            update_time = (not cfg.alternate) or (epoch % 2 == 0)
            update_rel = (not cfg.alternate) or (epoch % 2 == 1)
            if batched and true_problem.is_parallel:
                # The batch solver only covers the convex sequential
                # barrier; ζ rounds silently ran the scalar path before —
                # now the fallback is a first-class, queryable event.
                telemetry.counter_add("train/scalar_fallback_rounds")
                if not fallback_warned:
                    fallback_warned = True
                    telemetry.event(
                        "train/scalar_fallback", method=self.name,
                        reason="non-convex (zeta) round",
                    )
            round_fn = (
                self._train_round_batched
                if batched and not true_problem.is_parallel
                else self._train_round
            )
            epoch_loss = round_fn(
                ctx, Z, true_problem, opt_time, opt_rel, update_time, update_rel
            )
            self.loss_history.append(epoch_loss)
            telemetry.observe("train/epoch_regret_proxy", epoch_loss)
            if val_rounds and (epoch + 1) % cfg.validate_every == 0:
                score = self._validation_score(ctx, val_rounds)
                if score < best_score:  # type: ignore[operator]
                    best_score = score
                    best_state = self._snapshot()
        if val_rounds and best_state is not None:
            final = self._validation_score(ctx, val_rounds)
            if final > best_score:  # type: ignore[operator]
                self._restore(best_state)

    # ------------------------------------------------------------------ #
    # Scalar (paper-literal) round: one cluster at a time.
    # ------------------------------------------------------------------ #

    def _train_round(
        self,
        ctx: FitContext,
        Z: np.ndarray,
        true_problem: MatchingProblem,
        opt_time: list[Adam],
        opt_rel: list[Adam],
        update_time: bool,
        update_rel: bool,
    ) -> float:
        """One epoch: every cluster's predictors get one regret update."""
        cfg = self.config
        M, N = true_problem.M, true_problem.N
        T_true = np.array(true_problem.T)
        A_true = np.array(true_problem.A)
        with self._phase("solve"):
            oracle_sol = solve_relaxed(true_problem, ctx.spec.solver)
        total_loss = 0.0

        for i in range(M):
            # Alg. 2 line 3: only cluster i's rows are predicted.
            with self._phase("optimizer"):
                t_hat = self._pairs[i].time.forward(Z)
                a_hat = self._pairs[i].reliability.forward(Z)
            T_hat = T_true.copy()
            A_hat = A_true.copy()
            T_hat[i] = t_hat.data
            A_hat[i] = a_hat.data
            pred_problem = true_problem.with_predictions(T_hat, A_hat)
            with self._phase("solve"):
                sol = solve_relaxed(pred_problem, ctx.spec.solver, x0=oracle_sol.X)

            g_X = self._upstream_gradient(sol.X, true_problem)
            total_loss += self._regret_proxy(sol.X, oracle_sol.X, true_problem)

            with self._phase("vjp"):
                if self.gradient == "analytic":
                    kg = kkt_vjp(sol.X, pred_problem, g_X)
                    dt, da = kg.dT[i], kg.dA[i]
                else:
                    zg = zo_vjp(
                        pred_problem, sol, i, g_X,
                        cfg.zero_order, solver_config=ctx.spec.solver, rng=spawn(ctx.rng),
                    )
                    dt, da = zg.dt, zg.da

            with self._phase("optimizer"):
                if update_time:
                    opt_time[i].zero_grad()
                    t_hat.backward(dt)
                    clip_grad_norm(opt_time[i].params, cfg.grad_clip)
                    opt_time[i].step()
                if update_rel:
                    opt_rel[i].zero_grad()
                    a_hat.backward(da)
                    clip_grad_norm(opt_rel[i].params, cfg.grad_clip)
                    opt_rel[i].step()
        return total_loss / M

    # ------------------------------------------------------------------ #
    # Fused batched round: all M clusters in one cross-cluster solve.
    # ------------------------------------------------------------------ #

    def _train_round_batched(
        self,
        ctx: FitContext,
        Z: np.ndarray,
        true_problem: MatchingProblem,
        opt_time: list[Adam],
        opt_rel: list[Adam],
        update_time: bool,
        update_rel: bool,
    ) -> float:
        """One epoch as a single batched NumPy program (see module docs)."""
        cfg = self.config
        M, N = true_problem.M, true_problem.N
        T_true = np.array(true_problem.T)
        A_true = np.array(true_problem.A)
        scfg: SolverConfig = ctx.spec.solver

        # Forward passes stay per-cluster (each pair owns its weights); the
        # semi-predicted matrices are assembled by one diagonal row write.
        with self._phase("optimizer"):
            t_hats = [p.time.forward(Z) for p in self._pairs]
            a_hats = [p.reliability.forward(Z) for p in self._pairs]
        diag = np.arange(M)
        # Instances 0..M−1 are the semi-predicted problems; instance M is
        # the oracle (fully measured) problem, so the whole epoch — oracle
        # included — is one batched solve.  (The scalar path warm-starts
        # the pred solves from the oracle solution instead; the fused batch
        # cold-starts all instances from the feasible blend, which changes
        # nothing at the optimum of these convex programs — see DESIGN.md.)
        T_stack = np.broadcast_to(T_true, (M + 1, M, N)).copy()
        A_stack = np.broadcast_to(A_true, (M + 1, M, N)).copy()
        T_stack[diag, diag] = np.stack([t.data for t in t_hats])
        A_stack[diag, diag] = np.stack([a.data for a in a_hats])
        T_b, A_b, gammas = clamp_predictions_batch(T_stack, A_stack, true_problem.gamma)
        full_batch = BatchProblem(
            T=T_b, A=A_b, gamma=gammas,
            beta=true_problem.beta, lam=true_problem.lam, entropy=true_problem.entropy,
        )
        with self._phase("solve"):
            full_sol = solve_relaxed_batch(
                full_batch,
                lr=scfg.lr,
                max_iters=scfg.max_iters,
                tol=scfg.tol,
                patience=scfg.patience,
            )
        X = full_sol.X[:M]  # (M, M, N) semi-predicted optima
        X_oracle = full_sol.X[M]
        batch = BatchProblem(
            T=T_b[:M], A=A_b[:M], gamma=gammas[:M],
            beta=true_problem.beta, lam=true_problem.lam, entropy=true_problem.entropy,
        )

        # Batched upstream gradients under the *true* problem, slack-floored
        # exactly like the scalar _upstream_gradient (flooring the slack ≡
        # shifting γ so the floored slack is attained at X*).
        true_batch = BatchProblem(
            T=np.broadcast_to(T_true, (M, M, N)),
            A=np.broadcast_to(A_true, (M, M, N)),
            gamma=np.full(M, true_problem.gamma),
            beta=true_problem.beta,
            lam=true_problem.lam,
            entropy=true_problem.entropy,
        )
        slack = np.einsum("bmn,mn->b", X, A_true) / (M * N) - true_problem.gamma
        g_X = batch_barrier_gradient(
            X, true_batch, slack=np.maximum(slack, cfg.slack_floor)
        ) / N

        # Monitoring loss: batched Eq. (12) regret proxy on the relaxed
        # matchings (LSE makespan under the truth, oracle-centered).
        loads = np.einsum("bmn,mn->bm", X, T_true)
        z = true_problem.beta * loads
        shift = z.max(axis=1, keepdims=True)
        lse = (np.log(np.exp(z - shift).sum(axis=1)) + shift[:, 0]) / true_problem.beta
        oracle_cost = self._regret_reference(X_oracle, true_problem)
        total_loss = float(np.mean(lse - oracle_cost)) / N

        with self._phase("vjp"):
            if self.gradient == "analytic":
                kg = batch_kkt_vjp(X, batch, g_X)
                dts = kg.dT[diag, diag]  # (M, N): instance i, cluster-i rows
                das = kg.dA[diag, diag]
            else:
                zg = zo_vjp_cross(
                    batch, X, diag, g_X,
                    cfg.zero_order, solver_config=scfg, rng=spawn(ctx.rng),
                )
                dts, das = zg.dt, zg.da

        with self._phase("optimizer"):
            for i in range(M):
                if update_time:
                    opt_time[i].zero_grad()
                    t_hats[i].backward(dts[i])
                    clip_grad_norm(opt_time[i].params, cfg.grad_clip)
                    opt_time[i].step()
                if update_rel:
                    opt_rel[i].zero_grad()
                    a_hats[i].backward(das[i])
                    clip_grad_norm(opt_rel[i].params, cfg.grad_clip)
                    opt_rel[i].step()
        return total_loss

    # ------------------------------------------------------------------ #

    def _snapshot(self) -> list[tuple[dict, dict]]:
        """State dicts of every predictor pair (for model selection)."""
        return [(p.time.state_dict(), p.reliability.state_dict()) for p in self._pairs]

    def _restore(self, state: list[tuple[dict, dict]]) -> None:
        for pair, (ts, rs) in zip(self._pairs, state):
            pair.time.load_state_dict(ts)
            pair.reliability.load_state_dict(rs)

    def _validation_score(self, ctx: FitContext, val_rounds: list) -> float:
        """Mean deployment regret proxy of the current predictors over the
        held-out rounds: solve the predicted problem, round, score under
        the truth (smaller is better)."""
        from repro.matching.objectives import decision_cost
        from repro.matching.rounding import round_assignment

        with self._phase("validation"):
            if self._can_batch(ctx.spec) and not any(
                p.is_parallel for _, p in val_rounds
            ):
                return self._validation_score_batched(ctx, val_rounds)
            total = 0.0
            for Z, true_problem in val_rounds:
                T_hat, A_hat = self._predict_rows(Z)
                pred_problem = true_problem.with_predictions(T_hat, A_hat)
                sol = solve_relaxed(pred_problem, ctx.spec.solver)
                X = round_assignment(sol.X, pred_problem)
                total += decision_cost(X, true_problem) / true_problem.N
            return total / len(val_rounds)

    def _validation_score_batched(self, ctx: FitContext, val_rounds: list) -> float:
        """All held-out rounds solved in one batch (same scoring rule)."""
        from repro.matching.objectives import decision_cost
        from repro.matching.rounding import round_assignment

        scfg = ctx.spec.solver
        preds = [self._predict_rows(Z) for Z, _ in val_rounds]
        T_hat = np.stack([p[0] for p in preds])
        A_hat = np.stack([p[1] for p in preds])
        gammas = np.array([p.gamma for _, p in val_rounds])
        T_b, A_b, g_b = clamp_predictions_batch(T_hat, A_hat, gammas)
        bp = BatchProblem(
            T=T_b, A=A_b, gamma=g_b,
            beta=val_rounds[0][1].beta,
            lam=val_rounds[0][1].lam,
            entropy=val_rounds[0][1].entropy,
        )
        sol = solve_relaxed_batch(
            bp, lr=scfg.lr, max_iters=scfg.max_iters, tol=scfg.tol,
            patience=scfg.patience,
        )
        total = 0.0
        for b, (Z, true_problem) in enumerate(val_rounds):
            pred_problem = true_problem.with_predictions(T_hat[b], A_hat[b])
            X = round_assignment(sol.X[b], pred_problem)
            total += decision_cost(X, true_problem) / true_problem.N
        return total / len(val_rounds)

    def _predict_rows(self, Z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rows = [(p.time.predict(Z), p.reliability.predict(Z)) for p in self._pairs]
        return np.stack([r[0] for r in rows]), np.stack([r[1] for r in rows])

    def _upstream_gradient(
        self, X_star: np.ndarray, true_problem: MatchingProblem
    ) -> np.ndarray:
        """``dL/dX* = (1/N) ∇_X F(X, T, A)|_{X*}`` with a slack floor.

        If the predicted matching is infeasible under the true
        reliabilities, evaluating Eq. (12)'s barrier gradient at the true
        slack would blow up; flooring the slack keeps a large-but-finite
        pull towards feasibility (an exact soft extension of the barrier).
        """
        slack = reliability_value(X_star, true_problem)
        problem = true_problem
        if slack < self.config.slack_floor:
            # Shift γ so the floored slack is attained exactly at X*.
            problem = replace(
                true_problem, gamma=true_problem.gamma - (self.config.slack_floor - slack)
            )
        return barrier_gradient(X_star, problem) / true_problem.N

    @staticmethod
    def _regret_reference(
        X_oracle: np.ndarray, true_problem: MatchingProblem
    ) -> float:
        from repro.matching.objectives import smooth_cost

        return smooth_cost(X_oracle, true_problem)

    @staticmethod
    def _regret_proxy(
        X_pred: np.ndarray, X_oracle: np.ndarray, true_problem: MatchingProblem
    ) -> float:
        """Monitoring value of the Eq. (12) loss on the relaxed matchings."""
        from repro.matching.objectives import smooth_cost

        return (
            smooth_cost(X_pred, true_problem) - smooth_cost(X_oracle, true_problem)
        ) / true_problem.N

    # ------------------------------------------------------------------ #

    def predict(self, tasks: list[Task]) -> tuple[np.ndarray, np.ndarray]:
        if not self._pairs:
            raise RuntimeError("MFCP.predict called before fit")
        Z = np.stack([t.features for t in tasks])
        rows = [pair.predict(Z) for pair in self._pairs]
        return np.stack([r[0] for r in rows]), np.stack([r[1] for r in rows])
