"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments {fig2,table1,fig4,fig5,table2,dfl}``
    Regenerate a paper artifact (``--profile full`` for paper sizes,
    ``--telemetry {off,summary,jsonl}`` for instrumentation, ``--seeds``
    to override the seed list).
``clusters``
    Print the archetype catalog and the A/B/C settings.
``pool``
    Sample a task pool and print workload statistics.
``trace export``
    Export a measurement trace (JSON) for a setting and pool.
``trace show / trace top / trace grep``
    Query per-task journeys from JSONL run logs recorded with
    ``--journeys``: render one task's waterfall across the fleet, list
    the slowest journeys by queue wait, or filter journeys by state
    (``shed``, ``requeued``, ...) or ``failover`` routing.
``demo``
    Run the quickstart end-to-end comparison.
``serve run``
    Run the online micro-batching dispatcher over a generated arrival
    stream and print the serving summary.  ``--retrain`` attaches the
    closed-loop retraining controller (drift/periodic triggers, canary
    gate, hot-swap + rollback) against a checkpoint registry.
    ``--profile`` attaches the stage profiler and prints the latency
    budget (``--flamegraph`` exports the collapsed-stack profile);
    ``--metrics-port`` serves live ``/metrics`` + ``/snapshot`` HTTP
    endpoints during the run (``--metrics-hold`` keeps them up after);
    ``--shard`` labels every recorded series for fleet aggregation.
``serve top``
    Terminal dashboard refreshing against one or more ``/snapshot``
    endpoints (several merge into the fleet view with a per-shard
    breakdown; ``--log`` renders from JSONL run logs instead): queue
    depth, seed sources, per-stage latency budgets, SLO burn rates.
``serve bench``
    Cold-vs-warm serving soak benchmark (``--smoke`` for the CI-sized
    run, ``--output`` to write a ``BENCH_serve.json``-shaped report,
    ``--flamegraph`` to export the profiled pass's collapsed stacks).
``fleet run``
    Route one arrival stream across N per-shard dispatchers
    (consistent-hash or load-aware routing, replicate or family
    partition) and summarize the merged fleet outcome.
    ``--telemetry jsonl`` writes one replayable log per shard.
``fleet bench``
    Throughput-vs-shard-count sweep on the warm soak workload
    (``--shards 1,2,4,8``); writes the ``"sharding"`` scaling curve.
``fleet replay``
    Rebuild a whole fleet run from its per-shard JSONL logs, re-drive
    it (router included), and verify counters, routing determinism and
    conservation.
``monitor``
    Render a monitoring snapshot (Prometheus text exposition + alert
    listing) from a JSONL telemetry run log.  Repeat ``--log`` to merge
    several shard-labeled runs into one fleet-level view.
``replay``
    Deterministically re-drive a serving run from its JSONL log and
    verify the replay against the logged final counters (including the
    hot-swap digest sequence for retrain-enabled runs).
``retrain``
    Offline closed-loop retraining: re-drive a logged run with the
    retraining controller attached and persist the resulting checkpoint
    lineage to a registry directory.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MFCP reproduction: joint prediction and matching for "
                    "computing resource exchange platforms (ICPP'25).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate a paper artifact")
    p_exp.add_argument("artifact",
                       choices=["fig2", "table1", "fig4", "fig5", "table2", "dfl"])
    p_exp.add_argument("--profile", choices=["fast", "full"], default=None,
                       help="override REPRO_PROFILE")
    p_exp.add_argument("--telemetry", choices=["off", "summary", "jsonl"],
                       default=None,
                       help="override REPRO_TELEMETRY (jsonl writes one run "
                            "log per experiment under results/telemetry/)")
    p_exp.add_argument("--seeds", default=None, metavar="S0,S1,...",
                       help="override the config's seed list "
                            "(comma-separated ints; sets REPRO_SEEDS)")

    sub.add_parser("clusters", help="print the cluster archetype catalog")

    p_pool = sub.add_parser("pool", help="sample a task pool and summarize it")
    p_pool.add_argument("--size", type=int, default=20)
    p_pool.add_argument("--seed", type=int, default=0)

    p_trace = sub.add_parser(
        "trace", help="measurement-trace export and task journey queries")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_texport = trace_sub.add_parser(
        "export", help="export a measurement trace (JSON)")
    p_texport.add_argument("output", help="path of the trace file to write")
    p_texport.add_argument("--setting", choices=["A", "B", "C"], default="A")
    p_texport.add_argument("--tasks", type=int, default=24)
    p_texport.add_argument("--seed", type=int, default=0)
    trace_logs = argparse.ArgumentParser(add_help=False)
    trace_logs.add_argument("--log", required=True, action="append",
                            metavar="PATH",
                            help="JSONL run log with journeys (repeat per "
                                 "shard for the stitched fleet view)")
    p_tshow = trace_sub.add_parser(
        "show", parents=[trace_logs],
        help="waterfall of one task's journey across the fleet")
    p_tshow.add_argument("task", metavar="TASK",
                         help="task id, or a (prefix of a) 16-hex trace id")
    p_ttop = trace_sub.add_parser(
        "top", parents=[trace_logs],
        help="slowest journeys by queue wait")
    p_ttop.add_argument("--slowest", type=int, default=10, metavar="K",
                        help="how many journeys to list")
    p_tgrep = trace_sub.add_parser(
        "grep", parents=[trace_logs],
        help="journeys passing through a state (or a failover route)")
    p_tgrep.add_argument("--state", required=True,
                         help="journey state (shed, requeued, unserved, "
                              "harvested, ...) or 'failover' for tasks "
                              "routed off their home shard")

    sub.add_parser("demo", help="run the quickstart comparison")

    p_serve = sub.add_parser("serve", help="online serving layer")
    serve_sub = p_serve.add_subparsers(dest="serve_command", required=True)
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--setting", choices=["A", "B", "C"], default="A")
    common.add_argument("--pattern", choices=["poisson", "bursty", "diurnal"],
                        default="poisson")
    common.add_argument("--rate", type=float, default=60.0,
                        help="mean arrivals per hour")
    common.add_argument("--horizon", type=float, default=12.0,
                        help="arrival horizon in hours")
    common.add_argument("--pool-size", type=int, default=64)
    common.add_argument("--max-batch", type=int, default=16)
    common.add_argument("--max-wait", type=float, default=0.25,
                        help="time trigger: oldest job's max wait (hours)")
    common.add_argument("--queue-capacity", type=int, default=128)
    common.add_argument("--seed", type=int, default=0)

    p_run = serve_sub.add_parser("run", parents=[common],
                                 help="run the dispatcher once and summarize")
    p_run.add_argument("--shed-policy", choices=["reject", "drop_oldest"],
                       default="reject")
    p_run.add_argument("--warm-start", choices=["cache", "learned", "off"],
                       default="cache",
                       help="window seed source: last-window cache, cache + "
                            "online-trained learned head on misses, or cold")
    p_run.add_argument("--no-warm-start", action="store_true",
                       help="legacy alias for --warm-start off")
    p_run.add_argument("--solve-mode", choices=["scalar", "blocks"],
                       default="scalar",
                       help="dense per-window solve, or block-decomposed "
                            "batched solve for large windows")
    p_run.add_argument("--train-epochs", type=int, default=120,
                       help="TSM predictor training epochs")
    p_run.add_argument("--monitor", action="store_true",
                       help="attach the online quality monitor "
                            "(drift + SLO + regret attribution)")
    p_run.add_argument("--alerts-out", default=None, metavar="PATH",
                       help="tail monitor alerts to this JSONL file as they "
                            "fire (implies --monitor)")
    p_run.add_argument("--retrain", action="store_true",
                       help="attach the closed-loop retraining controller "
                            "(label harvest, canary-gated refits, hot-swap)")
    p_run.add_argument("--retrain-mode", choices=["incremental", "full"],
                       default="incremental",
                       help="warm-started or from-scratch candidate refits")
    p_run.add_argument("--retrain-trigger",
                       choices=["drift", "periodic", "both"], default="drift",
                       help="what arms a refit (drift wires the monitor's "
                            "retrain_suggested alerts to the controller)")
    p_run.add_argument("--retrain-period", type=int, default=0, metavar="N",
                       help="periodic trigger cadence in dispatch windows "
                            "(required for --retrain-trigger periodic/both)")
    p_run.add_argument("--registry", default=None, metavar="DIR",
                       help="checkpoint registry directory (required with "
                            "--retrain; use a fresh directory for replayable "
                            "runs)")
    p_run.add_argument("--telemetry", choices=["off", "summary", "jsonl"],
                       default="summary")
    p_run.add_argument("--profile", action="store_true",
                       help="attach the stage profiler and print the "
                            "per-window latency budget")
    p_run.add_argument("--flamegraph", default=None, metavar="PATH",
                       help="write the collapsed-stack profile here "
                            "(speedscope / flamegraph.pl; implies --profile)")
    p_run.add_argument("--metrics-port", type=int, default=None, metavar="N",
                       help="serve live /metrics + /snapshot HTTP endpoints "
                            "on this port during the run (0 = ephemeral)")
    p_run.add_argument("--metrics-hold", type=float, default=0.0,
                       metavar="SECS",
                       help="keep the metrics endpoint up this long after "
                            "the run drains (for a final scrape / top)")
    p_run.add_argument("--shard", default=None, metavar="ID",
                       help="label every recorded series with shard=ID "
                            "(fleet runs merge losslessly via "
                            "'repro monitor --log a --log b')")
    p_run.add_argument("--instance", default=None, metavar="NAME",
                       help="label every recorded series with instance=NAME "
                            "(distinguishes replicas of one shard)")
    p_run.add_argument("--journeys", type=float, default=0.0,
                       metavar="FRACTION",
                       help="per-task journey tracing: keep this fraction of "
                            "uneventful journeys (shed/requeued/long-wait "
                            "tasks are always kept; query with 'repro trace "
                            "show/top/grep')")

    p_top = serve_sub.add_parser(
        "top", help="terminal dashboard against one or more /snapshot "
                    "endpoints (several = merged fleet view)")
    p_top.add_argument("urls", metavar="URL", nargs="*",
                       help="metrics endpoint(s) (host:port or "
                            "http://host:port) of 'serve run --metrics-port' "
                            "processes; several merge into one fleet view")
    p_top.add_argument("--log", action="append", default=None, metavar="PATH",
                       help="render from JSONL run log(s) instead of live "
                            "endpoints (repeat per shard; implies --once)")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="refresh period in seconds")
    p_top.add_argument("--once", action="store_true",
                       help="render a single frame and exit (scriptable)")

    p_bench = serve_sub.add_parser("bench", parents=[common],
                                   help="cold-vs-warm serving soak benchmark")
    p_bench.add_argument("--smoke", action="store_true",
                         help="CI-sized run (short horizon, small pool)")
    p_bench.add_argument("--output", default=None, metavar="PATH",
                         help="write the JSON report here")
    p_bench.add_argument("--flamegraph", default=None, metavar="PATH",
                         help="write the profiled pass's collapsed-stack "
                              "profile here")

    p_fleet = sub.add_parser("fleet",
                             help="sharded multi-dispatcher platform")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_common = argparse.ArgumentParser(add_help=False)
    fleet_common.add_argument("--shards", type=int, default=4,
                              help="number of dispatcher shards")
    fleet_common.add_argument("--routing", choices=["hash", "load"],
                              default="hash",
                              help="consistent-hash or load-aware routing")
    fleet_common.add_argument("--partition", choices=["replicate", "family"],
                              default="replicate",
                              help="replicate the setting's cluster pool per "
                                   "shard, or family-shard a specialist pool")
    fleet_common.add_argument("--pool-m", type=int, default=8,
                              help="specialist pool size for "
                                   "--partition family")

    p_frun = fleet_sub.add_parser(
        "run", parents=[common, fleet_common],
        help="route one arrival stream across N shards and summarize")
    p_frun.add_argument("--train-epochs", type=int, default=120,
                        help="TSM predictor training epochs")
    p_frun.add_argument("--telemetry", choices=["off", "summary", "jsonl"],
                        default="summary",
                        help="per-shard recording; jsonl writes one "
                             "replayable log per shard")
    p_frun.add_argument("--out-dir", default=None, metavar="DIR",
                        help="directory for per-shard JSONL logs "
                             "(default results/telemetry)")
    p_frun.add_argument("--profile", action="store_true",
                        help="attach per-shard stage profilers")
    p_frun.add_argument("--flamegraph", default=None, metavar="PATH",
                        help="write the merged fleet collapsed-stack "
                             "profile here (implies --profile)")
    p_frun.add_argument("--journeys", type=float, default=0.0,
                        metavar="FRACTION",
                        help="per-task journey tracing across the fleet "
                             "(routing decision included; stitch with "
                             "'repro trace show --log s0 --log s1 ...')")

    p_fbench = fleet_sub.add_parser(
        "bench", parents=[common],
        help="throughput-vs-shard-count sweep on the warm soak workload")
    p_fbench.add_argument("--shards", default="1,2,4,8", metavar="N,N,...",
                          help="comma-separated shard counts to sweep")
    p_fbench.add_argument("--routing", choices=["hash", "load"],
                          default="hash")
    p_fbench.add_argument("--smoke", action="store_true",
                          help="CI-sized run (short horizon, small pool)")
    p_fbench.add_argument("--output", default=None, metavar="PATH",
                          help="write the JSON report here")

    p_freplay = fleet_sub.add_parser(
        "replay", help="re-drive a fleet run from its per-shard JSONL logs")
    p_freplay.add_argument("--log", required=True, action="append",
                           metavar="PATH",
                           help="per-shard run log (repeat once per shard)")
    p_freplay.add_argument("--registry", default=None, metavar="DIR",
                           help="original checkpoint registry (required when "
                                "the logs contain fleet hot-swaps)")

    p_mon = sub.add_parser("monitor",
                           help="monitoring snapshot from JSONL run log(s)")
    p_mon.add_argument("--log", required=True, action="append", metavar="PATH",
                       help="telemetry run log (results/telemetry/*.jsonl); "
                            "repeat to merge shard-labeled runs into one "
                            "fleet-level exposition")
    p_mon.add_argument("--prometheus", default=None, metavar="PATH",
                       help="write the Prometheus text exposition here "
                            "(default: print to stdout)")

    p_replay = sub.add_parser("replay",
                              help="re-drive a serving run from its JSONL log")
    p_replay.add_argument("--log", required=True, metavar="PATH",
                          help="run log written by "
                               "'repro serve run --telemetry jsonl'")
    p_replay.add_argument("--monitor", action="store_true",
                          help="attach the quality monitor during the replay")
    p_replay.add_argument("--alerts-out", default=None, metavar="PATH",
                          help="write the replay monitor's alert log (JSONL)")
    p_replay.add_argument("--telemetry", choices=["off", "summary", "jsonl"],
                          default="off",
                          help="record the replay itself (run 'serve-replay')")

    p_retrain = sub.add_parser(
        "retrain",
        help="offline closed-loop retraining over a logged serving run")
    p_retrain.add_argument("--log", required=True, metavar="PATH",
                           help="run log written by "
                                "'repro serve run --telemetry jsonl'")
    p_retrain.add_argument("--registry", required=True, metavar="DIR",
                           help="checkpoint registry directory to populate "
                                "(should be empty)")
    p_retrain.add_argument("--mode", choices=["incremental", "full"],
                           default="incremental")
    p_retrain.add_argument("--period", type=int, default=8, metavar="N",
                           help="periodic refit cadence in dispatch windows")
    p_retrain.add_argument("--epochs", type=int, default=40,
                           help="refit epochs over the sampled labels")
    return parser


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.profile:
        os.environ["REPRO_PROFILE"] = args.profile
    if args.telemetry:
        os.environ["REPRO_TELEMETRY"] = args.telemetry
    if args.seeds:
        try:
            seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
        except ValueError:
            print(f"invalid --seeds value: {args.seeds!r}", file=sys.stderr)
            return 2
        if not seeds:
            print("--seeds needs at least one integer", file=sys.stderr)
            return 2
        os.environ["REPRO_SEEDS"] = ",".join(str(s) for s in seeds)
    from repro.experiments import dfl_landscape, fig2, fig4, fig5, table1, table2

    mains = {
        "fig2": fig2.main,
        "table1": table1.main,
        "fig4": fig4.main,
        "fig5": fig5.main,
        "table2": table2.main,
        "dfl": dfl_landscape.main,
    }
    mains[args.artifact]()
    return 0


def _cmd_clusters(args: argparse.Namespace) -> int:
    from repro.clusters import ARCHETYPES, SETTINGS
    from repro.utils.tables import Table

    table = Table(
        ["Archetype", "Peak TFLOPs", "Mem (GB)", "Shape", "Base rel.", "Hazard/h"],
        title="Cluster archetype catalog",
    )
    for name, (hw, shape, util, strength) in ARCHETYPES.items():
        table.add_row([
            name, f"{hw.peak_tflops:g}", f"{hw.memory_gb:g}", shape.value,
            f"{hw.base_reliability:.3f}", f"{hw.hazard_per_hour:g}",
        ])
    print(table.render())
    print("\nSettings:")
    for s, triple in SETTINGS.items():
        print(f"  {s}: {', '.join(triple)}")
    return 0


def _cmd_pool(args: argparse.Namespace) -> int:
    from repro.utils.tables import Table
    from repro.workloads import TaskPool

    pool = TaskPool(args.size, rng=args.seed)
    table = Table(["Task", "Family", "Depth", "Width", "Batch", "Epoch FLOPs", "Mem GB"],
                  title=f"Task pool (size={args.size}, seed={args.seed})")
    for task in list(pool)[: min(args.size, 20)]:
        s = task.spec
        table.add_row([task.task_id, s.family.value, s.depth, s.width, s.batch_size,
                       f"{s.epoch_flops:.2e}", f"{s.memory_gb:.2f}"])
    print(table.render())
    if args.size > 20:
        print(f"... ({args.size - 20} more)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "export":
        from repro.clusters import make_setting
        from repro.workloads import TaskPool, export_trace

        pool = TaskPool(args.tasks, rng=args.seed)
        clusters = make_setting(args.setting)
        trace = export_trace(clusters, pool.tasks, args.output, rng=args.seed)
        print(f"wrote {args.output}: {trace.n_tasks} tasks x "
              f"{trace.n_clusters} clusters")
        return 0
    journeys = _journeys_from_logs(args.log)
    if not journeys:
        print("no journeys in the given log(s) — was the run started with "
              "--journeys (journey_sample > 0)?", file=sys.stderr)
        return 2
    if args.trace_command == "show":
        return _trace_show(args.task, journeys)
    if args.trace_command == "top":
        return _trace_top(args.slowest, journeys)
    return _trace_grep(args.state, journeys)


def _journeys_from_logs(paths) -> "dict[str, list[dict]]":
    """All journeys across the given logs, shard-stamped and stitched."""
    from repro.telemetry.journey import stitch_journeys

    return stitch_journeys(paths)


def _journey_wait(events: "list[dict]") -> float:
    return max((e.get("wait_hours", 0.0) for e in events
                if e["state"] == "dispatched"), default=0.0)


def _journey_line(trace: str, events: "list[dict]") -> str:
    first, last = events[0], events[-1]
    shards = sorted({str(e["shard"]) for e in events
                     if e.get("shard") is not None})
    states = "->".join(e["state"] for e in events)
    return (f"{trace}  task {first['task_id']:>5}  "
            f"arrival {first['arrival']:>8.3f}h  "
            f"wait {_journey_wait(events):6.3f}h  "
            f"shard {','.join(shards) or '-':<4} {last['state']:<9} {states}")


def _trace_show(needle: str, journeys: "dict[str, list[dict]]") -> int:
    from repro.telemetry.journey import render_waterfall

    if needle.isdigit():
        tid = int(needle)
        matches = {t: evs for t, evs in journeys.items()
                   if any(e["task_id"] == tid for e in evs)}
    else:
        matches = {t: evs for t, evs in journeys.items()
                   if t.startswith(needle.lower())}
    if not matches:
        print(f"no journey matches {needle!r}", file=sys.stderr)
        return 1
    for i, trace in enumerate(sorted(matches)):
        if i:
            print()
        print(render_waterfall(trace, matches[trace]))
    return 0


def _trace_top(k: int, journeys: "dict[str, list[dict]]") -> int:
    ranked = sorted(journeys.items(),
                    key=lambda kv: (-_journey_wait(kv[1]), kv[0]))
    print(f"slowest {min(k, len(ranked))} of {len(ranked)} journeys "
          "by queue wait:")
    for trace, events in ranked[:k]:
        print(f"  {_journey_line(trace, events)}")
    return 0


def _trace_grep(state: str, journeys: "dict[str, list[dict]]") -> int:
    from repro.telemetry.journey import STATES

    if state == "failover":
        hits = {t: evs for t, evs in journeys.items()
                if any(e["state"] == "routed"
                       and e.get("reason") == "failover" for e in evs)}
    elif state in STATES:
        hits = {t: evs for t, evs in journeys.items()
                if any(e["state"] == state for e in evs)}
    else:
        print(f"unknown state {state!r}; one of "
              f"{', '.join(sorted(STATES))} or failover", file=sys.stderr)
        return 2
    print(f"{len(hits)} of {len(journeys)} journeys hit '{state}':")
    for trace in sorted(hits):
        print(f"  {_journey_line(trace, hits[trace])}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import importlib.util
    import pathlib

    script = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if script.exists():  # running from a source checkout
        spec = importlib.util.spec_from_file_location("quickstart", script)
        module = importlib.util.module_from_spec(spec)  # type: ignore[arg-type]
        spec.loader.exec_module(module)  # type: ignore[union-attr]
        module.main()
        return 0
    print("demo requires a source checkout with examples/quickstart.py", file=sys.stderr)
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.serve_command == "top":
        from repro.monitor import render_top, snapshot_from_logs, top

        if args.log:
            if args.urls:
                print("serve top: give URLs or --log, not both",
                      file=sys.stderr)
                return 2
            print(render_top(snapshot_from_logs(args.log)))
            return 0
        if not args.urls:
            print("serve top: need at least one URL (or --log PATH)",
                  file=sys.stderr)
            return 2
        return top(args.urls, interval=args.interval,
                   iterations=1 if args.once else None)

    if args.serve_command == "bench":
        from repro.serve import run_serve_benchmark

        report = run_serve_benchmark(
            setting=args.setting,
            pattern=args.pattern,
            rate_per_hour=args.rate,
            horizon_hours=args.horizon,
            pool_size=args.pool_size,
            max_batch=args.max_batch,
            max_wait_hours=args.max_wait,
            queue_capacity=args.queue_capacity,
            seed=args.seed,
            smoke=args.smoke,
            out_path=args.output,
            flamegraph_path=args.flamegraph,
        )
        for mode in ("cold", "warm"):
            m = report[mode]
            lat = m["assignment_latency_s"]
            print(f"{mode:>4}: windows={m['windows']} "
                  f"iters_mean={m['solve_iterations_mean']:.1f} "
                  f"throughput={m['throughput_tasks_per_s']:.0f} tasks/s "
                  f"p50={lat['p50'] * 1e3:.1f}ms p95={lat['p95'] * 1e3:.1f}ms "
                  f"p99={lat['p99'] * 1e3:.1f}ms")
        print(f"warm-start solver-iteration speedup: "
              f"{report['warm_start_iters_speedup']}x")
        prof = report["profiled"]
        print(f"latency budget coverage_p95: "
              f"{prof['profile']['coverage_p95']:.3f}  "
              f"profiler overhead bounds: "
              f"off {prof['overhead']['off_frac_bound']} / "
              f"on {prof['overhead']['on_frac_bound']}")
        if args.flamegraph:
            print(f"wrote {args.flamegraph}")
        if args.output:
            print(f"wrote {args.output}")
        return 0

    # serve run
    from repro.serve import ServeConfig, build_platform
    from repro.telemetry import recording
    from repro.utils.rng import as_generator

    monitor_cfg = retrain_cfg = None
    if args.monitor or args.alerts_out:
        from repro.monitor import MonitorConfig

        monitor_cfg = MonitorConfig()
    if args.retrain:
        from repro.retrain import RetrainConfig

        if args.registry is None:
            print("--retrain requires --registry DIR", file=sys.stderr)
            return 2
        try:
            retrain_cfg = RetrainConfig(
                trigger=args.retrain_trigger,
                period_windows=args.retrain_period,
                mode=args.retrain_mode,
                seed=args.seed,
            )
        except ValueError as exc:
            print(f"invalid retrain flags: {exc}", file=sys.stderr)
            return 2
    config = ServeConfig(
        setting=args.setting,
        pool_size=args.pool_size,
        seed=args.seed,
        train_epochs=args.train_epochs,
        max_batch=args.max_batch,
        max_wait_hours=args.max_wait,
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        warm_start="off" if args.no_warm_start else args.warm_start,
        solve_mode=args.solve_mode,
        profile=args.profile or args.flamegraph is not None,
        monitor=monitor_cfg,
        retrain=retrain_cfg,
        registry_root=args.registry if args.retrain else None,
        shard=args.shard,
        instance=args.instance,
        journey_sample=args.journeys,
    )
    print(f"training TSM predictors ({args.train_epochs} epochs) ...")
    platform = build_platform(config)
    if platform.registry is not None and len(platform.registry) > 1:
        print(f"note: registry {args.registry} was not empty; version numbers "
              "continue the existing sequence (replay assumes a fresh registry)")
    if args.alerts_out and platform.monitor is not None:
        from repro.monitor import FileTailSink

        platform.monitor.add_sink(FileTailSink(args.alerts_out))
    events = platform.load(args.pattern, args.rate).draw(
        args.horizon, as_generator(args.seed + 3)
    )
    # The meta["serve"] config plus the serve/arrival, serve/outage and
    # serve/hot_swap breadcrumbs make a jsonl log fully replayable
    # (``repro replay``), retrain-driven swaps included.
    labels = config.identity_labels() or None
    # Shard-qualified run name: fleet members each get their own JSONL
    # log, merged later with 'repro monitor --log a --log b'.
    run_name = "serve-run" if args.shard is None else f"serve-run-{args.shard}"
    server = None
    try:
        with recording(mode=args.telemetry, run=run_name,
                       meta={"serve": config.to_params()},
                       labels=labels) as rec:
            if args.metrics_port is not None:
                from repro.monitor import MetricsServer, serve_snapshot

                server = MetricsServer(
                    lambda: serve_snapshot(
                        rec,
                        profiler=platform.profiler,
                        monitor=platform.monitor,
                        journeys=platform.dispatcher.journeys,
                        extra={"run": run_name},
                    ),
                    port=args.metrics_port,
                ).start()
                print(f"metrics: {server.url}/metrics  "
                      f"(dashboard: repro serve top {server.url})")
            stats = platform.run(events)
            if server is not None and args.metrics_hold > 0:
                import time as _time

                print(f"holding metrics endpoint {args.metrics_hold:g}s ...")
                _time.sleep(args.metrics_hold)
    finally:
        if server is not None:
            server.stop()
    print(f"{len(events)} arrivals over {args.horizon:g}h ({args.pattern})")
    print(stats.summary())
    if stats.solver_iterations:
        print(f"mean solver iterations/window: {stats.mean_solver_iterations:.1f}")
    if stats.cache:
        print(f"warm-start cache: {stats.cache}")
    if stats.seed_sources:
        print(f"seed sources: {stats.seed_sources}")
    if stats.profile:
        budget = stats.profile
        print(f"latency budget ({budget['windows']} windows, coverage_p95 "
              f"{100 * budget['coverage_p95']:.1f}%):")
        for path, s in budget["stages"].items():
            if ";" in path:
                continue  # depth-1 view; nested paths go to the flamegraph
            print(f"  {path:<10} p95 {1e3 * s['p95']:8.3f} ms  "
                  f"total {s['total_s']:.3f} s  calls {s['calls']}")
        unattr = budget["unattributed"]
        print(f"  {'(unattr)':<10} p95 {1e3 * unattr['p95']:8.3f} ms  "
              f"total {unattr['total_s']:.3f} s")
        if args.flamegraph and platform.profiler is not None:
            out = platform.profiler.write_flamegraph(args.flamegraph)
            print(f"wrote {out} (collapsed stacks: speedscope / flamegraph.pl)")
    monitor = platform.monitor
    if monitor is not None:
        summary = monitor.summary()
        print(f"monitor: {summary['alerts']} alerts over "
              f"{summary['windows_seen']} windows "
              f"{summary['alerts_by_kind'] or ''}")
        for alert in monitor.alerts:
            print(f"  [{alert.kind}] window {alert.window} t={alert.time:.2f}h "
                  f"{alert.signal}/{alert.detector}: {alert.message}")
        if args.alerts_out:
            print(f"alerts tailed to {args.alerts_out}")
    if platform.controller is not None:
        _print_retrain_outcome(platform.controller, platform.registry, stats)
    return 0


def _print_retrain_outcome(controller, registry, stats) -> None:
    print(f"retrain: buffer {controller.buffer.stats()}")
    for ev in controller.events:
        kind = ev["kind"]
        if kind == "triggered":
            print(f"  window {ev['window']}: refit triggered ({ev['reason']}; "
                  f"{ev['n_train']} train / {ev['n_holdout']} holdout labels)")
        elif kind == "promoted":
            print(f"  window {ev['window']}: canary PASS -> {ev['version']} "
                  f"promoted (parent {ev['parent']})")
        elif kind == "rejected":
            print(f"  window {ev['window']}: canary FAIL -> {ev['version']} "
                  f"kept for audit ({', '.join(ev['reasons'])}); live unchanged")
        elif kind == "guard_passed":
            print(f"  window {ev['window']}: post-swap guard passed for "
                  f"{ev['version']}")
        elif kind == "rollback":
            print(f"  window {ev['window']}: guard degraded -> rolled back "
                  f"{ev['from_version']} to {ev['to_version']}")
    print(f"registry: {len(registry)} version(s), live={registry.live()}, "
          f"lineage={' <- '.join(registry.lineage())}, "
          f"{stats.swaps} hot-swap(s) applied")


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command == "replay":
        from repro.fleet import FleetReplay

        try:
            replay = FleetReplay.from_logs(args.log)
        except ValueError as exc:
            print(f"cannot replay fleet: {exc}", file=sys.stderr)
            return 2
        n_arrivals = len(replay.merged_arrivals())
        print(f"replaying {n_arrivals} arrivals across "
              f"{replay.config.n_shards} shard(s) from {len(args.log)} "
              "log(s) ...")
        try:
            stats = replay.replay(registry_root=args.registry)
        except ValueError as exc:
            print(f"fleet replay refused: {exc}", file=sys.stderr)
            return 2
        print(stats.summary())
        problems = replay.verify(stats)
        if problems:
            print("fleet replay verification FAILED:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print("fleet replay verified: per-shard counters, routing "
              "determinism and fleet conservation match the logs")
        return 0

    if args.fleet_command == "bench":
        from repro.fleet import run_sharding_benchmark

        try:
            shard_counts = tuple(int(s) for s in args.shards.split(",") if s)
        except ValueError:
            print(f"--shards must be comma-separated ints, got "
                  f"{args.shards!r}", file=sys.stderr)
            return 2
        report = run_sharding_benchmark(
            shard_counts=shard_counts,
            setting=args.setting,
            pattern=args.pattern,
            rate_per_hour=args.rate,
            horizon_hours=args.horizon,
            pool_size=args.pool_size,
            max_batch=args.max_batch,
            max_wait_hours=args.max_wait,
            queue_capacity=args.queue_capacity,
            seed=args.seed,
            routing=args.routing,
            smoke=args.smoke,
            out_path=args.output,
        )
        anchor = report["anchor"]
        print(f"anchor (1 shard @ {anchor['rate_per_hour']:.0f}/h soak): "
              f"trace {anchor['trace_sha256'][:16]}…")
        print(f"sweep @ {report['offered_rate_per_hour']:.0f}/h "
              f"({report['saturation']:.0f}x saturation):")
        for e in report["entries"]:
            print(f"shards={e['shards']:>2}: windows={e['windows']} "
                  f"matched={e['matched']} shed={e['shed']} "
                  f"throughput={e['throughput_tasks_per_s']:.0f} tasks/s "
                  f"p95={e['p95_decide_ms']:.1f}ms "
                  f"(speedup "
                  f"{report['speedup_vs_1shard'][str(e['shards'])]}x)")
        if args.output:
            print(f"wrote {args.output}")
        return 0

    # fleet run
    from repro.fleet import FleetConfig, FleetController
    from repro.serve import ServeConfig
    from repro.utils.rng import as_generator

    try:
        config = FleetConfig(
            n_shards=args.shards,
            routing=args.routing,
            partition=args.partition,
            pool_m=args.pool_m,
            serve=ServeConfig(
                setting=args.setting,
                pool_size=args.pool_size,
                seed=args.seed,
                train_epochs=args.train_epochs,
                max_batch=args.max_batch,
                max_wait_hours=args.max_wait,
                queue_capacity=args.queue_capacity,
                profile=args.profile or args.flamegraph is not None,
                journey_sample=args.journeys,
            ),
        )
    except ValueError as exc:
        print(f"invalid fleet flags: {exc}", file=sys.stderr)
        return 2
    print(f"training predictors for {config.n_shards} shard(s) "
          f"({config.partition} partition, {args.train_epochs} epochs) ...")
    controller = FleetController(config)
    from repro.serve.loadgen import make_load

    events = make_load(args.pattern, controller.pool, args.rate).draw(
        args.horizon, as_generator(args.seed + 3))
    stats = controller.run(events, telemetry=args.telemetry,
                           out_dir=args.out_dir)
    print(f"{len(events)} arrivals over {args.horizon:g}h ({args.pattern}), "
          f"{args.routing} routing")
    print(stats.summary())
    for sid, shard_stats in enumerate(stats.per_shard):
        print(f"  shard {sid}: {shard_stats.summary()}")
    print(f"fleet trace sha256: {stats.trace_sha256()}")
    if args.flamegraph:
        out = controller.write_flamegraph(args.flamegraph)
        print(f"wrote {out} (collapsed stacks: speedscope / flamegraph.pl)")
    if args.telemetry == "jsonl":
        print("per-shard logs replay with: repro fleet replay "
              "--log <s0.jsonl> --log <s1.jsonl> ...")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.monitor import prometheus_text
    from repro.telemetry import merge_aggregates
    from repro.telemetry.jsonl import aggregate_events, load_run, meta_of

    # One log renders directly; several merge into a fleet-level view
    # (shard-labeled series stay distinct, identical keys sum).
    runs = [load_run(path) for path in args.log]
    text = prometheus_text(merge_aggregates(
        [aggregate_events(events) for events in runs]))
    if args.prometheus:
        with open(args.prometheus, "w") as fh:
            fh.write(text)
        print(f"wrote {args.prometheus}")
    else:
        print(text, end="")
    for path, events in zip(args.log, runs):
        meta = meta_of(events)
        alerts = [ev for ev in events
                  if ev.get("type") == "event" and ev.get("name") == "alert"]
        label = f"run '{meta.get('run')}'"
        if len(runs) > 1:
            label += f" ({path})"
        print(f"# {label}: {len(alerts)} alert(s)")
        for ev in alerts:
            print(f"#   [{ev.get('kind')}] window {ev.get('window')} "
                  f"{ev.get('signal')}/{ev.get('detector')}: {ev.get('message')}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from repro.monitor import QualityMonitor, TraceReplay
    from repro.telemetry import recording

    replay = TraceReplay.from_log(args.log)
    monitor = QualityMonitor() if args.monitor or args.alerts_out else None
    callbacks = [monitor] if monitor else None
    print(f"replaying {len(replay.arrivals)} arrivals "
          f"({len(replay.outages)} outage(s)) from {args.log} ...")
    with recording(mode=args.telemetry, run="serve-replay",
                   meta={"serve": replay.params, "replay_of": str(args.log)}):
        stats = replay.replay(callbacks=callbacks)
    print(stats.summary())
    if monitor is not None:
        summary = monitor.summary()
        print(f"monitor: {summary['alerts']} alerts over "
              f"{summary['windows_seen']} windows")
    if args.alerts_out and monitor is not None:
        with open(args.alerts_out, "w") as fh:
            for entry in monitor.alert_log():
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"wrote {args.alerts_out} ({len(monitor.alerts)} alert(s))")
    problems = replay.verify(stats)
    if problems:
        print("replay verification FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("replay verified: counters, conservation identity and hot-swap "
          "digests match the log")
    return 0


def _cmd_retrain(args: argparse.Namespace) -> int:
    from repro.monitor import TraceReplay
    from repro.retrain import RetrainConfig
    from repro.serve import build_platform

    try:
        replay = TraceReplay.from_log(args.log)
    except ValueError as exc:
        print(f"cannot retrain from log: {exc}", file=sys.stderr)
        return 2
    try:
        retrain = RetrainConfig(
            trigger="periodic",
            period_windows=args.period,
            mode=args.mode,
            epochs=args.epochs,
            seed=replay.config.seed,
        )
    except ValueError as exc:
        print(f"invalid retrain flags: {exc}", file=sys.stderr)
        return 2
    config = replay.config.with_overrides(retrain=retrain,
                                          registry_root=args.registry)
    print(f"re-driving {len(replay.arrivals)} logged arrivals with "
          f"{args.mode} refits every {args.period} window(s) ...")
    platform = build_platform(config)
    events = replay.stream(platform.pool).draw(float("inf"))
    stats = platform.run(events, outages=replay.outages or None)
    print(stats.summary())
    _print_retrain_outcome(platform.controller, platform.registry, stats)
    print(f"registry persisted at {args.registry}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "experiments": _cmd_experiments,
        "clusters": _cmd_clusters,
        "pool": _cmd_pool,
        "trace": _cmd_trace,
        "demo": _cmd_demo,
        "serve": _cmd_serve,
        "fleet": _cmd_fleet,
        "monitor": _cmd_monitor,
        "replay": _cmd_replay,
        "retrain": _cmd_retrain,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
