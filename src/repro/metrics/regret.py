"""The regret metric (paper Eq. 6 / §4.1.3).

Regret is the makespan excess of the prediction-driven matching over the
ground-truth-driven matching, with *both* matchings evaluated on the true
execution times:

    Regret = (1/N) [ f(X*(T̂, Â), T) − f(X*(T, A), T) ]

Both argmins are produced by the same relax-and-round deployment pipeline
(§3.2), so regret isolates the effect of prediction error on decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.objectives import makespan
from repro.matching.problem import MatchingProblem
from repro.matching.relaxed import SolverConfig, solve_relaxed
from repro.matching.rounding import round_assignment

__all__ = ["deployment_matching", "regret", "RegretBreakdown", "regret_breakdown"]


def deployment_matching(
    problem: MatchingProblem,
    *,
    solver_config: SolverConfig | None = None,
) -> np.ndarray:
    """The paper's deployment pipeline: relaxed solve, then rounding."""
    sol = solve_relaxed(problem, solver_config)
    return round_assignment(sol.X, problem)


def regret(
    true_problem: MatchingProblem,
    T_hat: np.ndarray,
    A_hat: np.ndarray,
    *,
    solver_config: SolverConfig | None = None,
    X_true: np.ndarray | None = None,
) -> float:
    """Eq. (6) on one allocation round.

    Parameters
    ----------
    true_problem:
        Instance carrying the ground-truth T and A.
    T_hat, A_hat:
        Predicted matrices (same shape).
    X_true:
        Optional precomputed ground-truth matching — callers evaluating
        many methods on one instance pass it to avoid re-solving.
    """
    return regret_breakdown(
        true_problem, T_hat, A_hat, solver_config=solver_config, X_true=X_true
    ).regret


@dataclass(frozen=True)
class RegretBreakdown:
    """Regret plus the underlying matchings and costs (for reporting)."""

    regret: float
    cost_predicted: float  # f(X*(T̂,Â), T)
    cost_oracle: float  # f(X*(T,A), T)
    X_predicted: np.ndarray
    X_oracle: np.ndarray


def regret_breakdown(
    true_problem: MatchingProblem,
    T_hat: np.ndarray,
    A_hat: np.ndarray,
    *,
    solver_config: SolverConfig | None = None,
    X_true: np.ndarray | None = None,
) -> RegretBreakdown:
    """Full Eq. (6) evaluation with both matchings exposed."""
    pred_problem = true_problem.with_predictions(T_hat, A_hat)
    X_pred = deployment_matching(pred_problem, solver_config=solver_config)
    if X_true is None:
        X_true = deployment_matching(true_problem, solver_config=solver_config)
    cost_pred = makespan(X_pred, true_problem)
    cost_true = makespan(X_true, true_problem)
    n = true_problem.N
    return RegretBreakdown(
        regret=(cost_pred - cost_true) / n,
        cost_predicted=cost_pred,
        cost_oracle=cost_true,
        X_predicted=X_pred,
        X_oracle=X_true,
    )
