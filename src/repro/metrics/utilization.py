"""The cluster-utilization metric (paper §4.1.3).

"Cluster utilization is the total working time of all clusters divided by
their maximum possible working time" — with sequential execution the
maximum possible working time is M × makespan (every cluster busy until
the last one finishes), so

    U = Σ_i c_i / (M · max_i c_i)

where ``c_i`` is cluster i's completion time (ζ-adjusted in the parallel
setting).  U = 1 means perfectly balanced clusters; low U means some
clusters idle while the slowest finishes.
"""

from __future__ import annotations

import numpy as np

from repro.matching.objectives import cluster_loads
from repro.matching.problem import MatchingProblem

__all__ = ["cluster_utilization", "load_imbalance"]


def cluster_utilization(X: np.ndarray, problem: MatchingProblem) -> float:
    """Busy-time fraction U ∈ (0, 1] under matching ``X``."""
    loads = cluster_loads(np.asarray(X, dtype=np.float64), problem)
    span = loads.max()
    if span <= 0:
        raise ValueError("utilization undefined for an all-zero load vector")
    return float(loads.sum() / (problem.M * span))


def load_imbalance(X: np.ndarray, problem: MatchingProblem) -> float:
    """Coefficient of variation of cluster loads (0 = perfectly balanced);
    a complementary diagnostic used in the scaling study."""
    loads = cluster_loads(np.asarray(X, dtype=np.float64), problem)
    mean = loads.mean()
    if mean <= 0:
        raise ValueError("imbalance undefined for an all-zero load vector")
    return float(loads.std() / mean)
