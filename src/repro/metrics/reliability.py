"""The reliability metric (paper §4.1.3).

"Reliability reflects the average success probability of task execution" —
i.e. the mean, over tasks, of the *true* reliability of the cluster each
task was assigned to.  (Distinct from the constraint value g(X, A), which
additionally divides by M.)
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_assignment_matrix, check_matrix

__all__ = ["mean_assigned_reliability", "constraint_satisfied"]


def mean_assigned_reliability(X: np.ndarray, A_true: np.ndarray) -> float:
    """Average true success probability under matching ``X``.

    Works for relaxed X too (probability-weighted average), which the
    training diagnostics use.
    """
    A_true = check_matrix(A_true, name="A_true")
    X = check_assignment_matrix(X, name="X")
    if X.shape != A_true.shape:
        raise ValueError(f"shape mismatch: X {X.shape} vs A {A_true.shape}")
    return float(np.sum(X * A_true) / X.shape[1])


def constraint_satisfied(X: np.ndarray, A_true: np.ndarray, gamma: float) -> bool:
    """Whether Eq. (4)'s constraint holds under the *true* reliabilities."""
    M, N = np.asarray(A_true).shape
    return float(np.sum(np.asarray(X) * np.asarray(A_true)) / (M * N)) >= gamma
